bench/ablations.ml: Attr Bench_common Bytes Client Daemon Kfs Khazana Ksim List Printf Region Result Stats System
