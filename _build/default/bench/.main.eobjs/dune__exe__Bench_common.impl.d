bench/bench_common.ml: Kconsistency Kfs Khazana Kobj Ksim Kutil Printf
