bench/central_fs.ml: Bytes Hashtbl Knet Krpc Ksim List String
