bench/e10_release_ops.ml: Bench_common Bytes Client Ctypes Daemon Format Ksim Printf Region Stats System
