bench/e1_lock_fetch.ml: Bench_common Bytes Client List Region Stats System
