bench/e2_caching.ml: Bench_common Bytes Char Client Daemon List Printf Region Stats System
