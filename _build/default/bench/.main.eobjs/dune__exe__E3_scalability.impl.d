bench/e3_scalability.ml: Bench_common Bytes Char Client Ctypes Fun Ksim List Region Stats System
