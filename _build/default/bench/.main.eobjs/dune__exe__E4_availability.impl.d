bench/e4_availability.ml: Attr Bench_common Bytes Client Daemon Fun Khazana Ksim List Printf Region Stats String System
