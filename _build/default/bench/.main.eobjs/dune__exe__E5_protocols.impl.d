bench/e5_protocols.ml: Attr Bench_common Bytes Client Khazana Ksim List Printf Region Stats System
