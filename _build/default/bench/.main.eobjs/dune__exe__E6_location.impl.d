bench/e6_location.ml: Array Bench_common Bytes Client Daemon Khazana Ksim Kutil List Printf Region Stats System
