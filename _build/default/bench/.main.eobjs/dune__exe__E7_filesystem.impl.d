bench/e7_filesystem.ml: Bench_common Bytes Central_fs Kfs Knet Ksim List Printf Stats System
