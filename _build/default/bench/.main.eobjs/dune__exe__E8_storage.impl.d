bench/e8_storage.ml: Bench_common Bytes Client Daemon Gaddr Ksim Kstorage Kutil List Printf Region Stats System
