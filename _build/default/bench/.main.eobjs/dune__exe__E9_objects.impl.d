bench/e9_objects.ml: Bench_common Bytes Khazana Kobj Ksim Printf Stats System
