bench/main.ml: Ablations Array E10_release_ops E1_lock_fetch E2_caching E3_scalability E4_availability E5_protocols E6_location E7_filesystem E8_storage E9_objects List Micro Printf Sys
