bench/main.mli:
