bench/micro.ml: Analyze Bechamel Benchmark Bytes Hashtbl Instance Kconsistency Khazana Ksim Kstorage Kutil List Measure Printf Staged Test Time Toolkit
