(* Shared plumbing for the experiment harness. *)

module System = Khazana.System
module Client = Khazana.Client
module Daemon = Khazana.Daemon
module Region = Khazana.Region
module Attr = Khazana.Attr
module Gaddr = Kutil.Gaddr
module Stats = Kutil.Stats
module Ctypes = Kconsistency.Types

let ok = function
  | Ok v -> v
  | Error e -> failwith ("bench: " ^ Daemon.error_to_string e)

let fs_ok = function
  | Ok v -> v
  | Error e -> failwith ("bench: " ^ Kfs.Fs.error_to_string e)

let obj_ok = function
  | Ok v -> v
  | Error e -> failwith ("bench: " ^ Kobj.Runtime.error_to_string e)

(* Time a fiber-blocking thunk in simulated time (ms). *)
let timed sys f =
  let t0 = System.now sys in
  let r = f () in
  (r, Ksim.Time.to_ms_f (System.now sys - t0))

let header title claim =
  Printf.printf "\n=== %s ===\n%s\n\n" title claim

let print_table t = print_endline (Stats.render t)

let f2 v = Printf.sprintf "%.2f" v
let f1 v = Printf.sprintf "%.1f" v
let f3 v = Printf.sprintf "%.3f" v

(* Message count delta around a thunk. *)
let messages sys f =
  let before = (Khazana.Wire.Transport.Net.stats (System.net sys)).sent in
  let r = f () in
  let after = (Khazana.Wire.Transport.Net.stats (System.net sys)).sent in
  (r, after - before)
