(* E7 — The Khazana filesystem vs a hand-coded central file server (§4.1).

   The paper's pitch: a filesystem written as single-node code becomes
   distributed by storing its state in Khazana, gaining locality (repeated
   reads hit the local replica) and availability — while the conventional
   central server ships every operation to one node forever. The cost is
   heavier cold-path metadata traffic (every block is a region). *)

open Bench_common

let block = 4096
let blocks_per_file = 3

(* Each client creates one file, writes it, then reads it [read_rounds]
   times. Mixed LAN/WAN clients. *)
let client_nodes_for k = List.filteri (fun i _ -> i < k) [ 1; 4; 2; 5 ]

let kfs_run ~clients ~policy ~read_rounds =
  let sys = System.create ~nodes_per_cluster:3 ~clusters:2 () in
  let c1 = System.client sys 1 () in
  let sb = System.run_fiber sys (fun () -> fs_ok (Kfs.Fs.format c1 ~policy ())) in
  let nodes = client_nodes_for clients in
  let t0 = System.now sys in
  let ops = ref 0 in
  System.run_fiber sys (fun () ->
      let eng = System.engine sys in
      let fibers =
        List.map
          (fun n ->
            Ksim.Fiber.async eng (fun () ->
                let fs = fs_ok (Kfs.Fs.mount (System.client sys n ()) sb) in
                let path = Printf.sprintf "/file%d" n in
                fs_ok (Kfs.Fs.create fs path);
                incr ops;
                for b = 0 to blocks_per_file - 1 do
                  fs_ok (Kfs.Fs.write fs path ~off:(b * block) (Bytes.make block 'w'));
                  incr ops
                done;
                for _ = 1 to read_rounds do
                  for b = 0 to blocks_per_file - 1 do
                    ignore (fs_ok (Kfs.Fs.read fs path ~off:(b * block) ~len:block));
                    incr ops
                  done
                done;
                ignore (fs_ok (Kfs.Fs.readdir fs "/"));
                incr ops))
          nodes
      in
      Ksim.Fiber.join_all fibers);
  let elapsed = Ksim.Time.to_sec_f (System.now sys - t0) in
  float_of_int !ops /. elapsed

let central_run ~clients ~read_rounds =
  let engine = Ksim.Engine.create ~seed:42 () in
  let topology = Knet.Topology.symmetric ~nodes_per_cluster:3 ~clusters:2 in
  let cfs = Central_fs.start_server engine topology ~server:0 in
  let nodes = client_nodes_for clients in
  let t0 = Ksim.Engine.now engine in
  let ops = ref 0 in
  let p =
    Ksim.Fiber.async engine (fun () ->
        let fibers =
          List.map
            (fun n ->
              Ksim.Fiber.async engine (fun () ->
                  let path = Printf.sprintf "/file%d" n in
                  Central_fs.create cfs ~src:n path;
                  incr ops;
                  for b = 0 to blocks_per_file - 1 do
                    Central_fs.write cfs ~src:n path ~off:(b * block)
                      (Bytes.make block 'w');
                    incr ops
                  done;
                  for _ = 1 to read_rounds do
                    for b = 0 to blocks_per_file - 1 do
                      ignore
                        (Central_fs.read cfs ~src:n path ~off:(b * block) ~len:block);
                      incr ops
                    done
                  done;
                  ignore (Central_fs.readdir cfs ~src:n);
                  incr ops))
            nodes
        in
        Ksim.Fiber.join_all fibers)
  in
  while (not (Ksim.Promise.is_resolved p)) && Ksim.Engine.step engine do () done;
  let elapsed = Ksim.Time.to_sec_f (Ksim.Engine.now engine - t0) in
  float_of_int !ops /. elapsed

let run () =
  header "E7: filesystem ops/s — Khazana-based vs central server"
    (Printf.sprintf
       "each client: create + %d block writes + re-read x rounds + readdir; clients split LAN/WAN"
       blocks_per_file);
  let table =
    Stats.table
      ~columns:
        [ "clients"; "read rounds"; "central ops/s"; "kfs per-block ops/s";
          "kfs contiguous ops/s" ]
  in
  List.iter
    (fun (clients, read_rounds) ->
      let central = central_run ~clients ~read_rounds in
      let per_block =
        kfs_run ~clients ~policy:Kfs.Fs.Per_block_regions ~read_rounds
      in
      let contiguous =
        kfs_run ~clients ~policy:(Kfs.Fs.Contiguous (1 lsl 20)) ~read_rounds
      in
      Stats.row table
        [ string_of_int clients; string_of_int read_rounds; f1 central;
          f1 per_block; f1 contiguous ])
    [ (1, 1); (2, 1); (4, 1); (4, 8); (4, 32) ];
  print_table table;
  print_endline
    "\n(the central server wins cold, metadata-heavy runs; Khazana overtakes as\n\
     re-reads dominate, because every client serves repeated reads from its\n\
     local replica while the central design pays a WAN round-trip per read —\n\
     and the kfs numbers come with replication and no single point of failure)"
