(* E9 — Distributed objects: invocation placement and false sharing (§4.2).

   Two claims: (a) the runtime's local-copy-vs-remote-invocation choice
   matters — one-shot use is cheaper shipped, repeated use cheaper
   migrated; (b) "consistency management on fine-grain objects ... is
   likely to incur a substantial overhead if false sharing is not
   addressed": two nodes hammering different pooled objects on the same
   page ping-pong the page, unlike own-region objects. *)

open Bench_common
module Rt = Kobj.Runtime

let counter_class =
  {
    Rt.class_name = "counter";
    methods =
      [
        ( "incr",
          fun ~state ~arg:_ ->
            let v = int_of_string (Bytes.to_string state) + 1 in
            let s = Bytes.of_string (string_of_int v) in
            (s, Some s) );
      ];
  }

let mk_world () =
  let sys = System.create ~nodes_per_cluster:3 ~clusters:2 () in
  let overlay = Rt.Overlay.create (System.engine sys) (System.topology sys) in
  let rt n =
    let r = Rt.create overlay (System.client sys n ()) in
    Rt.register_class r counter_class;
    r
  in
  (sys, rt)

let run_invocation_styles () =
  let sys, rt = mk_world () in
  let rt1 = rt 1 and rt4 = rt 4 in
  let obj =
    System.run_fiber sys (fun () ->
        obj_ok (Rt.new_object rt1 ~class_name:"counter" ~init:(Bytes.of_string "0") ()))
  in
  System.run_fiber sys (fun () ->
      ignore (obj_ok (Rt.invoke rt1 obj ~meth:"incr" ~arg:Bytes.empty)));
  let table =
    Stats.table ~columns:[ "style (WAN caller)"; "call#"; "latency (ms)" ]
  in
  (* Shipped invocation: stateless caller each time. *)
  let (), ship_ms =
    timed sys (fun () ->
        System.run_fiber sys (fun () ->
            ignore (obj_ok (Rt.invoke_at rt4 1 obj ~meth:"incr" ~arg:Bytes.empty))))
  in
  Stats.row table [ "remote invocation (RPC)"; "each"; f2 ship_ms ];
  (* Migrating invocation: policy faults the object in after the threshold. *)
  for i = 1 to 4 do
    let (), ms =
      timed sys (fun () ->
          System.run_fiber sys (fun () ->
              ignore (obj_ok (Rt.invoke rt4 obj ~meth:"incr" ~arg:Bytes.empty))))
    in
    Stats.row table [ "adaptive policy"; string_of_int i; f2 ms ]
  done;
  print_table table;
  let s = Rt.stats rt4 in
  Printf.printf
    "(adaptive caller shipped %d call(s), then migrated: %d local)\n"
    s.Rt.remote_invocations s.Rt.local_invocations

(* Paced so both nodes' operations genuinely interleave (think: two
   services each periodically updating their own object). Returns the mean
   per-invocation latency, sleeps excluded. *)
let hammer sys rt_a rt_b obj_a obj_b rounds =
  let lat = Stats.summary () in
  System.run_fiber sys (fun () ->
      let eng = System.engine sys in
      let worker rt obj =
        Ksim.Fiber.async eng (fun () ->
            for _ = 1 to rounds do
              let (), ms =
                timed sys (fun () ->
                    ignore
                      (obj_ok (Rt.invoke_local rt obj ~meth:"incr" ~arg:Bytes.empty)))
              in
              Stats.add lat ms;
              Ksim.Fiber.sleep (Ksim.Time.ms 40)
            done)
      in
      let fa = worker rt_a obj_a and fb = worker rt_b obj_b in
      Ksim.Fiber.join_all [ fa; fb ]);
  Stats.mean lat

let pooled_pair ?attr sys rt1 =
  System.run_fiber sys (fun () ->
      let a =
        obj_ok
          (Rt.new_object rt1 ~class_name:"counter" ~placement:Rt.Pooled ?attr
             ~init:(Bytes.of_string "0") ())
      in
      let b =
        obj_ok
          (Rt.new_object rt1 ~class_name:"counter" ~placement:Rt.Pooled ?attr
             ~init:(Bytes.of_string "0") ())
      in
      (a, b))

let run_false_sharing () =
  let rounds = 15 in
  (* Pooled: two objects share a page; each node hammers its own object but
     the page-grain CREW lock ping-pongs. *)
  let sys, rt = mk_world () in
  let rt1 = rt 1 and rt4 = rt 4 in
  let o1, o2 = pooled_pair sys rt1 in
  let pooled_ms = hammer sys rt1 rt4 o1 o2 rounds in
  (* Pooled again, but under the write-shared protocol: the paper's cited
     cure ("Brun-Cottan ... application-specific conflict detection to
     address false sharing") — disjoint slots diff-merge, no ping-pong. *)
  let sys3, rt'' = mk_world () in
  let rt1'' = rt'' 1 and rt4'' = rt'' 4 in
  let ws_attr = Khazana.Attr.make ~owner:1 ~protocol:"wshared" () in
  let w1, w2 = pooled_pair ~attr:ws_attr sys3 rt1'' in
  let wshared_ms = hammer sys3 rt1'' rt4'' w1 w2 rounds in
  (* Own-region: no false sharing, both nodes run locally after migration. *)
  let sys2, rt' = mk_world () in
  let rt1' = rt' 1 and rt4' = rt' 4 in
  let p1, p2 =
    System.run_fiber sys2 (fun () ->
        let a =
          obj_ok (Rt.new_object rt1' ~class_name:"counter" ~init:(Bytes.of_string "0") ())
        in
        let b =
          obj_ok (Rt.new_object rt1' ~class_name:"counter" ~init:(Bytes.of_string "0") ())
        in
        (a, b))
  in
  let own_ms = hammer sys2 rt1' rt4' p1 p2 rounds in
  let table =
    Stats.table ~columns:[ "placement"; "mean per invocation (ms)"; "slowdown" ]
  in
  Stats.row table [ "one region per object (crew)"; f2 own_ms; "1.0x" ];
  Stats.row table
    [ "pooled on one page (crew: false sharing)"; f2 pooled_ms;
      Printf.sprintf "%.1fx" (pooled_ms /. own_ms) ];
  Stats.row table
    [ "pooled on one page (write-shared diffs)"; f2 wshared_ms;
      Printf.sprintf "%.1fx" (wshared_ms /. own_ms) ];
  print_table table

let run () =
  header "E9: object invocation placement and false sharing"
    "WAN caller: ship the call vs migrate the object; then two nodes on one page.";
  run_invocation_styles ();
  Printf.printf "\nfalse sharing (%s):\n"
    "each node increments its OWN object, 15 times";
  run_false_sharing ()
