examples/filesystem.ml: Bytes Format Kfs Khazana Ksim Kutil List Printf String
