examples/filesystem.mli:
