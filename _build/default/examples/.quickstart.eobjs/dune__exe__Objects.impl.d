examples/objects.ml: Bytes Format Khazana Kobj Ksim Kutil List Printf
