examples/objects.mli:
