examples/quickstart.ml: Bytes Format Fun Khazana Ksim Kutil List Printf
