examples/quickstart.mli:
