examples/web_cache.ml: Bytes Khazana Ksim Kutil List Printf
