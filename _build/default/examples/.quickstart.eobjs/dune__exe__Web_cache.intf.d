examples/web_cache.mli:
