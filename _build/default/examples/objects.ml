(* A distributed object system (paper §4.2).

   A bank of counter objects lives in Khazana; runtimes on several nodes
   invoke methods on them. The runtime consults Khazana's location
   information to decide between loading a local replica and shipping the
   invocation to a node that already instantiates the object — the paper's
   local-copy-vs-RPC tradeoff, visible in the stats.

   Run with: dune exec examples/objects.exe *)

module System = Khazana.System
module Rt = Kobj.Runtime

let ok = function
  | Ok v -> v
  | Error e -> failwith (Rt.error_to_string e)

let account_class =
  {
    Rt.class_name = "account";
    methods =
      [
        ( "deposit",
          fun ~state ~arg ->
            let v =
              int_of_string (Bytes.to_string state)
              + int_of_string (Bytes.to_string arg)
            in
            let s = Bytes.of_string (string_of_int v) in
            (s, Some s) );
        ("balance", fun ~state ~arg:_ -> (state, None));
      ];
  }

let () =
  let sys = System.create ~nodes_per_cluster:3 ~clusters:2 () in
  let overlay = Rt.Overlay.create (System.engine sys) (System.topology sys) in
  let runtime_on n =
    let rt = Rt.create overlay (System.client sys n ()) in
    Rt.register_class rt account_class;
    (n, rt)
  in
  let runtimes = List.map runtime_on [ 0; 1; 3; 4 ] in
  let rt_of n = List.assoc n runtimes in

  (* Node 0 creates ten account objects — each in a region of its own, so
     Khazana can replicate and migrate them independently. *)
  let accounts =
    System.run_fiber sys (fun () ->
        List.init 10 (fun i ->
            ok
              (Rt.new_object (rt_of 0) ~class_name:"account"
                 ~init:(Bytes.of_string (string_of_int (100 * i)))
                 ())))
  in
  Printf.printf "created 10 account objects; first at %s\n\n"
    (Kutil.Gaddr.to_string (List.hd accounts).Rt.addr);

  (* Every runtime deposits into every account. *)
  System.run_fiber sys (fun () ->
      List.iter
        (fun (_, rt) ->
          List.iter
            (fun acc ->
              ignore (ok (Rt.invoke rt acc ~meth:"deposit" ~arg:(Bytes.of_string "7"))))
            accounts)
        runtimes);

  (* Balances are consistent regardless of who asks. *)
  System.run_fiber sys (fun () ->
      let b0 =
        ok (Rt.invoke (rt_of 4) (List.hd accounts) ~meth:"balance" ~arg:Bytes.empty)
      in
      Printf.printf "account[0] balance read from node 4: %s (expected 28)\n\n"
        (Bytes.to_string b0));

  Printf.printf "invocation strategy per runtime (local vs shipped):\n";
  List.iter
    (fun (n, rt) ->
      let s = Rt.stats rt in
      Printf.printf "  node %d: %3d local, %3d remote\n" n s.Rt.local_invocations
        s.Rt.remote_invocations)
    runtimes;

  (* Reference counting: drop an account everywhere. *)
  System.run_fiber sys (fun () ->
      let doomed = List.nth accounts 9 in
      let rc = ok (Rt.decref (rt_of 0) doomed) in
      Printf.printf "\ndecref account[9] -> refcount %d (storage released)\n" rc);

  Printf.printf "\ntotal simulated time: %s\n"
    (Format.asprintf "%a" Ksim.Time.pp (System.now sys))
