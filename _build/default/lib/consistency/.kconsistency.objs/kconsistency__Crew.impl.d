lib/consistency/crew.ml: Int List Local_locks Queue Set Types
