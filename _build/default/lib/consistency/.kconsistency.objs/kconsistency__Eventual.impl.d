lib/consistency/eventual.ml: Int List Local_locks Queue Set Types
