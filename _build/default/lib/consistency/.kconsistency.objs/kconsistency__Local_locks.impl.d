lib/consistency/local_locks.ml: Types
