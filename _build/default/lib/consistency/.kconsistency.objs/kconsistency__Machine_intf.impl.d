lib/consistency/machine_intf.ml: Types
