lib/consistency/registry.ml: Crew Eventual Hashtbl List Machine_intf Printf Release Write_shared
