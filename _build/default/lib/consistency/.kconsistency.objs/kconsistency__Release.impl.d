lib/consistency/release.ml: Bytes Int List Local_locks Option Queue Set Types
