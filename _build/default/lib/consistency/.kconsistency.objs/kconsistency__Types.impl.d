lib/consistency/types.ml: Bytes Format Ksim List String
