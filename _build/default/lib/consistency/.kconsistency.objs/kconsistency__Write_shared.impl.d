lib/consistency/write_shared.ml: Bytes Int List Local_locks Option Queue Set Types
