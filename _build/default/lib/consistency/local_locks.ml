(** Node-local reader/writer lock accounting.

    Lock operations "indicate the caller's intention to access a portion of
    a region"; the machine combines this compatibility check with its
    protocol state to decide when to grant. *)

type t = { mutable readers : int; mutable writer : bool }

let create () = { readers = 0; writer = false }

let can t = function
  | Types.Read -> not t.writer
  | Types.Write -> (not t.writer) && t.readers = 0

let take t mode =
  assert (can t mode);
  match mode with
  | Types.Read -> t.readers <- t.readers + 1
  | Types.Write -> t.writer <- true

let drop t mode =
  match mode with
  | Types.Read ->
    if t.readers <= 0 then invalid_arg "Local_locks.drop: no readers";
    t.readers <- t.readers - 1
  | Types.Write ->
    if not t.writer then invalid_arg "Local_locks.drop: no writer";
    t.writer <- false

let held t = (t.readers, t.writer)
let idle t = t.readers = 0 && not t.writer
