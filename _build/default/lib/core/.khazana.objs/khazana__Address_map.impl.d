lib/core/address_map.ml: Array Bytes Knet Kutil Layout List Printf
