lib/core/address_map.mli: Knet Kutil
