lib/core/attr.ml: Format Kconsistency Kutil Option Printf
