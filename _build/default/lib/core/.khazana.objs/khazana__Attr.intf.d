lib/core/attr.mli: Format Kconsistency Kutil
