lib/core/client.ml: Bytes Daemon Fun Kconsistency Region
