lib/core/client.mli: Attr Daemon Kconsistency Kutil Region
