lib/core/cluster.ml: Hashtbl Knet Kutil Layout List Region
