lib/core/cluster.mli: Knet Kutil Region
