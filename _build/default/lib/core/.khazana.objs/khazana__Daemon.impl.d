lib/core/daemon.ml: Address_map Attr Bytes Cluster Fun Hashtbl Kconsistency Knet Ksim Kstorage Kutil Layout List Option Page_directory Region Region_directory Wire
