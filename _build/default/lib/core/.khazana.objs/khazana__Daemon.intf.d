lib/core/daemon.mli: Attr Cluster Kconsistency Knet Ksim Kstorage Kutil Page_directory Region Region_directory Wire
