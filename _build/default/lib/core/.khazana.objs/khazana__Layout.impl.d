lib/core/layout.ml: Attr Kutil Region
