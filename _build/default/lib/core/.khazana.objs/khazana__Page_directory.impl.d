lib/core/page_directory.ml: Knet Kutil List
