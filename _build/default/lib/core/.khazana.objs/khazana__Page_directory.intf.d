lib/core/page_directory.mli: Knet Kutil
