lib/core/region.ml: Attr Format Knet Kutil Printf
