lib/core/region.mli: Attr Format Knet Kutil
