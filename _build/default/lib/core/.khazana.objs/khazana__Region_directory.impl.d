lib/core/region_directory.ml: Kutil Region
