lib/core/region_directory.mli: Kutil Region
