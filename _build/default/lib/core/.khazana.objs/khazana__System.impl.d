lib/core/system.ml: Array Client Daemon Knet Ksim List Option Wire
