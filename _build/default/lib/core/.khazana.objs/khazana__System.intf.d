lib/core/system.mli: Client Daemon Knet Ksim Wire
