lib/core/wire.ml: Attr Kconsistency Knet Krpc Kutil List Region String
