module Gaddr = Kutil.Gaddr
module U128 = Kutil.U128
module Codec = Kutil.Codec

type reserved = {
  base : Gaddr.t;
  len : int;
  page_size : int;
  homes : Knet.Topology.node_id list;
}

type entry =
  | Reserved of reserved
  | Subtree of { base : Gaddr.t; span_log2 : int; page : int }

let entry_base = function Reserved r -> r.base | Subtree s -> s.base

let entry_end = function
  | Reserved r -> Gaddr.add_int r.base r.len
  | Subtree s -> U128.add s.base (U128.shift_left U128.one s.span_log2)

let entry_contains e addr =
  Gaddr.compare (entry_base e) addr <= 0 && Gaddr.compare addr (entry_end e) < 0

let ranges_overlap b1 e1 b2 e2 =
  Gaddr.compare b1 e2 < 0 && Gaddr.compare b2 e1 < 0

module Node = struct
  type t = {
    base : Gaddr.t;
    span_log2 : int;
    mutable next_free : int;
    mutable entries : entry list;
  }

  let max_entries = 48
  let magic = 0x4B41 (* "KA" *)

  let empty_root () =
    { base = Gaddr.zero; span_log2 = Layout.tree_span_log2; next_free = 1; entries = [] }

  let encode t =
    let e = Codec.encoder () in
    Codec.u16 e magic;
    Codec.u8 e t.span_log2;
    Codec.u128 e t.base;
    Codec.u32 e t.next_free;
    Codec.u16 e (List.length t.entries);
    List.iter
      (function
        | Reserved r ->
          Codec.u8 e 0;
          Codec.u128 e r.base;
          Codec.int e r.len;
          Codec.u32 e r.page_size;
          Codec.list e (Codec.u16 e) r.homes
        | Subtree s ->
          Codec.u8 e 1;
          Codec.u128 e s.base;
          Codec.u8 e s.span_log2;
          Codec.u32 e s.page)
      t.entries;
    let body = Codec.to_bytes e in
    if Bytes.length body > Layout.map_page_size then
      invalid_arg "Address_map.Node.encode: node overflows page";
    let page = Bytes.make Layout.map_page_size '\000' in
    Bytes.blit body 0 page 0 (Bytes.length body);
    page

  let decode bytes =
    let d = Codec.decoder bytes in
    let m = Codec.read_u16 d in
    if m <> magic then
      raise (Codec.Decode_error (Printf.sprintf "bad tree-node magic %#x" m));
    let span_log2 = Codec.read_u8 d in
    let base = Codec.read_u128 d in
    let next_free = Codec.read_u32 d in
    let n = Codec.read_u16 d in
    let read_entry () =
      match Codec.read_u8 d with
      | 0 ->
        let base = Codec.read_u128 d in
        let len = Codec.read_int d in
        let page_size = Codec.read_u32 d in
        let homes = Codec.read_list d (fun () -> Codec.read_u16 d) in
        Reserved { base; len; page_size; homes }
      | 1 ->
        let base = Codec.read_u128 d in
        let span_log2 = Codec.read_u8 d in
        let page = Codec.read_u32 d in
        Subtree { base; span_log2; page }
      | n -> raise (Codec.Decode_error (Printf.sprintf "bad entry tag %d" n))
    in
    let entries = List.init n (fun _ -> read_entry ()) in
    { base; span_log2; next_free; entries }
end

type io = {
  read_page : int -> Node.t;
  mutate :
    (root:Node.t -> read:(int -> Node.t) -> write:(int -> Node.t -> unit) -> unit) ->
    unit;
}

type lookup_result = { entry : reserved option; depth : int }

let lookup io addr =
  let rec go page depth =
    let node = io.read_page page in
    match List.find_opt (fun e -> entry_contains e addr) node.Node.entries with
    | Some (Reserved r) -> { entry = Some r; depth }
    | Some (Subtree s) -> go s.page (depth + 1)
    | None -> { entry = None; depth }
  in
  go 0 1

let sorted_insert entry entries =
  List.sort (fun a b -> Gaddr.compare (entry_base a) (entry_base b)) (entry :: entries)

(* Fan a full node out into children covering 1/16th each; entries wholly
   inside a child move down, entries crossing child boundaries stay. *)
let fanout_log2 = 4

let split_node ~root ~read ~write page (node : Node.t) =
  if node.Node.span_log2 - fanout_log2 < 12 then
    Error "address map node cannot be split further"
  else begin
    let child_span = node.Node.span_log2 - fanout_log2 in
    let child_base i =
      U128.add node.Node.base (U128.shift_left (U128.of_int i) child_span)
    in
    let child_index addr =
      U128.to_int
        (U128.shift_right (U128.sub addr node.Node.base) child_span)
    in
    let wholly_inside e =
      let b = entry_base e and en = entry_end e in
      let i = child_index b in
      let cb = child_base i in
      let ce = U128.add cb (U128.shift_left U128.one child_span) in
      if Gaddr.compare b cb >= 0 && Gaddr.compare en ce <= 0 then Some i else None
    in
    let buckets = Array.make (1 lsl fanout_log2) [] in
    let keep = ref [] in
    List.iter
      (fun e ->
        match e with
        | Subtree _ -> keep := e :: !keep
        | Reserved _ -> (
          match wholly_inside e with
          | Some i -> buckets.(i) <- e :: buckets.(i)
          | None -> keep := e :: !keep))
      node.Node.entries;
    let new_entries = ref !keep in
    let ok = ref true in
    Array.iteri
      (fun i bucket ->
        if bucket <> [] && !ok then begin
          if root.Node.next_free >= Layout.map_pages then ok := false
          else begin
            let child_page = root.Node.next_free in
            root.Node.next_free <- root.Node.next_free + 1;
            let child =
              {
                Node.base = child_base i;
                span_log2 = child_span;
                next_free = 0;
                entries =
                  List.sort
                    (fun a b -> Gaddr.compare (entry_base a) (entry_base b))
                    bucket;
              }
            in
            write child_page child;
            new_entries :=
              Subtree { base = child_base i; span_log2 = child_span; page = child_page }
              :: !new_entries
          end
        end)
      buckets;
    if not !ok then Error "address map out of tree pages"
    else begin
      node.Node.entries <-
        List.sort
          (fun a b -> Gaddr.compare (entry_base a) (entry_base b))
          !new_entries;
      write page node;
      ignore read;
      Ok ()
    end
  end

let insert io (r : reserved) =
  let result = ref (Ok ()) in
  let rend = Gaddr.add_int r.base r.len in
  io.mutate (fun ~root ~read ~write ->
      let rec descend page (node : Node.t) depth =
        if depth > 40 then result := Error "address map too deep"
        else begin
          (* Overlap with an existing reservation is an error; descent into
             a subtree that fully contains the range continues. *)
          let overlapping =
            List.find_opt
              (fun e ->
                match e with
                | Reserved x ->
                  ranges_overlap r.base rend x.base (Gaddr.add_int x.base x.len)
                | Subtree _ -> false)
              node.Node.entries
          in
          match overlapping with
          | Some _ -> result := Error "range overlaps an existing reservation"
          | None -> (
            let child =
              List.find_opt
                (fun e ->
                  match e with
                  | Subtree s ->
                    let sb = s.base
                    and se = U128.add s.base (U128.shift_left U128.one s.span_log2) in
                    Gaddr.compare sb r.base <= 0 && Gaddr.compare rend se <= 0
                  | Reserved _ -> false)
                node.Node.entries
            in
            match child with
            | Some (Subtree s) -> descend s.page (read s.page) (depth + 1)
            | Some (Reserved _) -> assert false
            | None ->
              if List.length node.Node.entries < Node.max_entries then begin
                node.Node.entries <- sorted_insert (Reserved r) node.Node.entries;
                write page node
              end
              else begin
                match split_node ~root ~read ~write page node with
                | Error _ as e -> result := e
                | Ok () -> descend page node (depth + 1)
              end)
        end
      in
      descend 0 root 1);
  !result

let remove io base =
  let removed = ref false in
  io.mutate (fun ~root ~read ~write ->
      let rec descend page (node : Node.t) =
        let here =
          List.exists
            (function Reserved x -> Gaddr.equal x.base base | Subtree _ -> false)
            node.Node.entries
        in
        if here then begin
          node.Node.entries <-
            List.filter
              (function
                | Reserved x -> not (Gaddr.equal x.base base)
                | Subtree _ -> true)
              node.Node.entries;
          write page node;
          removed := true
        end
        else
          match
            List.find_opt
              (fun e -> match e with Subtree _ -> entry_contains e base | Reserved _ -> false)
              node.Node.entries
          with
          | Some (Subtree s) -> descend s.page (read s.page)
          | Some (Reserved _) | None -> ()
      in
      descend 0 root);
  !removed

let update_homes io base homes =
  let updated = ref false in
  io.mutate (fun ~root ~read ~write ->
      let rec descend page (node : Node.t) =
        let found =
          List.exists
            (function Reserved x -> Gaddr.equal x.base base | Subtree _ -> false)
            node.Node.entries
        in
        if found then begin
          node.Node.entries <-
            List.map
              (function
                | Reserved x when Gaddr.equal x.base base -> Reserved { x with homes }
                | e -> e)
              node.Node.entries;
          write page node;
          updated := true
        end
        else
          match
            List.find_opt
              (fun e -> match e with Subtree _ -> entry_contains e base | Reserved _ -> false)
              node.Node.entries
          with
          | Some (Subtree s) -> descend s.page (read s.page)
          | Some (Reserved _) | None -> ()
      in
      descend 0 root);
  !updated

let fold_reserved io f init =
  let rec walk page acc =
    let node = io.read_page page in
    List.fold_left
      (fun acc e ->
        match e with Reserved r -> f acc r | Subtree s -> walk s.page acc)
      acc node.Node.entries
  in
  walk 0 init
