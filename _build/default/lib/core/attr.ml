type consistency_level = Strict | Release | Eventual

let level_to_string = function
  | Strict -> "strict"
  | Release -> "release"
  | Eventual -> "eventual"

let level_of_string = function
  | "strict" -> Some Strict
  | "release" -> Some Release
  | "eventual" -> Some Eventual
  | _ -> None

let default_protocol_for = function
  | Strict -> "crew"
  | Release -> "release"
  | Eventual -> "eventual"

type access = No_access | Read_only | Read_write

type t = {
  level : consistency_level;
  protocol : string;
  owner : int;
  world : access;
  min_replicas : int;
  page_size : int;
}

let make ?(level = Strict) ?protocol ?(world = Read_write) ?(min_replicas = 1)
    ?(page_size = Kutil.Gaddr.default_page_size) ~owner () =
  let protocol = Option.value protocol ~default:(default_protocol_for level) in
  if not (Kutil.Gaddr.valid_page_size page_size) then
    invalid_arg "Attr.make: invalid page size";
  if min_replicas < 1 then invalid_arg "Attr.make: min_replicas must be >= 1";
  if Kconsistency.Registry.find protocol = None then
    invalid_arg (Printf.sprintf "Attr.make: unknown protocol %S" protocol);
  { level; protocol; owner; world; min_replicas; page_size }

let allows t ~principal mode =
  principal = t.owner
  ||
  match (t.world, mode) with
  | Read_write, _ -> true
  | Read_only, Kconsistency.Types.Read -> true
  | Read_only, Kconsistency.Types.Write -> false
  | No_access, _ -> false

let access_to_int = function No_access -> 0 | Read_only -> 1 | Read_write -> 2

let access_of_int = function
  | 0 -> No_access
  | 1 -> Read_only
  | 2 -> Read_write
  | n -> raise (Kutil.Codec.Decode_error (Printf.sprintf "bad access %d" n))

let encode e t =
  Kutil.Codec.string e (level_to_string t.level);
  Kutil.Codec.string e t.protocol;
  Kutil.Codec.u32 e t.owner;
  Kutil.Codec.u8 e (access_to_int t.world);
  Kutil.Codec.u8 e t.min_replicas;
  Kutil.Codec.u32 e t.page_size

let decode d =
  let level_str = Kutil.Codec.read_string d in
  let level =
    match level_of_string level_str with
    | Some l -> l
    | None ->
      raise (Kutil.Codec.Decode_error (Printf.sprintf "bad level %S" level_str))
  in
  let protocol = Kutil.Codec.read_string d in
  let owner = Kutil.Codec.read_u32 d in
  let world = access_of_int (Kutil.Codec.read_u8 d) in
  let min_replicas = Kutil.Codec.read_u8 d in
  let page_size = Kutil.Codec.read_u32 d in
  { level; protocol; owner; world; min_replicas; page_size }

let pp ppf t =
  Format.fprintf ppf "{%s/%s owner=%d replicas=%d page=%d}"
    (level_to_string t.level) t.protocol t.owner t.min_replicas t.page_size
