type t = { daemon : Daemon.t; principal : int }

let connect daemon ~principal = { daemon; principal }
let daemon t = t.daemon
let principal t = t.principal

let reserve t ?attr ~len () =
  Daemon.reserve t.daemon ?attr ~principal:t.principal ~len ()

let unreserve t base = Daemon.unreserve t.daemon base
let allocate t base = Daemon.allocate t.daemon base
let free t base = Daemon.free t.daemon base

let lock t ~addr ~len mode =
  Daemon.lock t.daemon ~principal:t.principal ~addr ~len mode

let unlock t ctx = Daemon.unlock t.daemon ctx
let read t ctx ~addr ~len = Daemon.read t.daemon ctx ~addr ~len
let write t ctx ~addr data = Daemon.write t.daemon ctx ~addr data
let get_attr t addr = Daemon.get_attr t.daemon addr
let set_attr t base attr = Daemon.set_attr t.daemon ~principal:t.principal base attr

let create_region t ?attr ~len () =
  match reserve t ?attr ~len () with
  | Error _ as e -> e
  | Ok region -> (
    match allocate t region.Region.base with
    | Ok () -> Ok (Region.allocated region)
    | Error e -> Error e)

let with_lock t ~addr ~len mode f =
  match lock t ~addr ~len mode with
  | Error e -> Error e
  | Ok ctx -> Fun.protect ~finally:(fun () -> unlock t ctx) (fun () -> f ctx)

let read_bytes t ~addr ~len =
  with_lock t ~addr ~len Kconsistency.Types.Read (fun ctx ->
      read t ctx ~addr ~len)

let write_bytes t ~addr data =
  with_lock t ~addr ~len:(Bytes.length data) Kconsistency.Types.Write (fun ctx ->
      write t ctx ~addr data)
