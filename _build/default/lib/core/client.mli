(** Client library.

    "Typically an application process (client) interacts with Khazana
    through library routines" — this module is those routines: a thin,
    principal-carrying veneer over the local daemon, plus convenience
    helpers for whole-region access. All operations are fiber-blocking. *)

type t

val connect : Daemon.t -> principal:int -> t
val daemon : t -> Daemon.t
val principal : t -> int

(** {1 The paper's operations} *)

val reserve : t -> ?attr:Attr.t -> len:int -> unit -> (Region.t, Daemon.error) result
val unreserve : t -> Kutil.Gaddr.t -> unit
val allocate : t -> Kutil.Gaddr.t -> (unit, Daemon.error) result
val free : t -> Kutil.Gaddr.t -> unit

val lock :
  t -> addr:Kutil.Gaddr.t -> len:int -> Kconsistency.Types.mode ->
  (Daemon.lock_ctx, Daemon.error) result

val unlock : t -> Daemon.lock_ctx -> unit

val read :
  t -> Daemon.lock_ctx -> addr:Kutil.Gaddr.t -> len:int ->
  (bytes, Daemon.error) result

val write :
  t -> Daemon.lock_ctx -> addr:Kutil.Gaddr.t -> bytes ->
  (unit, Daemon.error) result

val get_attr : t -> Kutil.Gaddr.t -> (Attr.t, Daemon.error) result
val set_attr : t -> Kutil.Gaddr.t -> Attr.t -> (unit, Daemon.error) result

(** {1 Convenience} *)

val create_region :
  t -> ?attr:Attr.t -> len:int -> unit -> (Region.t, Daemon.error) result
(** reserve + allocate. *)

val with_lock :
  t -> addr:Kutil.Gaddr.t -> len:int -> Kconsistency.Types.mode ->
  (Daemon.lock_ctx -> ('a, Daemon.error) result) ->
  ('a, Daemon.error) result
(** Lock, run, always unlock. *)

val read_bytes :
  t -> addr:Kutil.Gaddr.t -> len:int -> (bytes, Daemon.error) result
(** lock(read) + read + unlock. *)

val write_bytes :
  t -> addr:Kutil.Gaddr.t -> bytes -> (unit, Daemon.error) result
(** lock(write) + write + unlock. *)
