(** Cluster-manager role state.

    "Each cluster has one or more designated cluster managers, nodes
    responsible for being aware of other cluster locations, caching hint
    information about regions stored in the local cluster, and representing
    the local cluster during inter-cluster communication." The manager also
    parcels unreserved address space into 1 GiB chunks for member nodes and
    tracks hints about their free pools. *)

type t

val create : cluster_id:int -> t

val next_chunk : t -> Kutil.Gaddr.t * int
(** Hand out the next unreserved chunk of this cluster's address slice. *)

val record_report :
  t ->
  node:Knet.Topology.node_id ->
  regions:(Kutil.Gaddr.t * Region.t) list ->
  free_bytes:int ->
  unit
(** Refresh hints from a member's periodic report: which regions it caches
    or homes, and how much unreserved pool it still holds. *)

val lookup :
  t -> Kutil.Gaddr.t -> (Region.t option * Knet.Topology.node_id list)
(** Hint answer for "is the region containing this address cached in this
    cluster, and by whom?". *)

val forget_node : t -> Knet.Topology.node_id -> unit
(** Drop all hints about a (crashed) member. *)

val free_bytes_hint : t -> (Knet.Topology.node_id * int) list
val chunks_granted : t -> int
