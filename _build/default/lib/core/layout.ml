(** Well-known constants of the global address space.

    Bootstrap knowledge every daemon shares: where the self-hosted address
    map lives and how raw address space is parcelled out to clusters and
    nodes. "A well-known region beginning at address 0 stores the root node
    of the address map tree." *)

module Gaddr = Kutil.Gaddr
module U128 = Kutil.U128

let map_page_size = Gaddr.default_page_size

(* 4096 tree pages = 16 MiB of metadata, enough for ~hundreds of thousands
   of regions at our entry sizes. *)
let map_pages = 4096
let map_base = Gaddr.zero
let map_len = map_pages * map_page_size

(** The address of map tree page [i]. *)
let map_page_addr i =
  if i < 0 || i >= map_pages then invalid_arg "Layout.map_page_addr";
  Gaddr.add_int map_base (i * map_page_size)

(* Client data lives far above the map; each cluster owns a 2^50-byte slice
   carved into 1 GiB chunks that its cluster manager hands to member nodes
   ("a large (e.g., one gigabyte) region of unreserved space that it will
   then locally manage"). *)
let data_base = U128.shift_left U128.one 40
let cluster_slice_log2 = 50
let chunk_size = 1 lsl 30

let cluster_slice_base cluster =
  U128.add data_base (U128.shift_left (U128.of_int cluster) cluster_slice_log2)

let chunk_addr ~cluster ~index =
  U128.add (cluster_slice_base cluster) (U128.mul_int (U128.of_int index) chunk_size)

(* The whole space the address-map tree indexes: everything from zero up to
   2^controlled_span_log2. *)
let tree_span_log2 = 64

let map_region_attr ~bootstrap_node =
  Attr.make ~level:Attr.Release ~protocol:"release" ~world:Attr.Read_write
    ~min_replicas:1 ~page_size:map_page_size ~owner:bootstrap_node ()

(** The well-known descriptor of the map region, constructible by any node
    without communication. *)
let map_region ~bootstrap_node =
  Region.allocated
    (Region.make ~base:map_base ~len:map_len
       ~attr:(map_region_attr ~bootstrap_node)
       ~home:bootstrap_node)
