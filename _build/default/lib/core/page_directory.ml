module Gaddr = Kutil.Gaddr

type entry = {
  region_base : Gaddr.t;
  homed_here : bool;
  mutable sharers : Knet.Topology.node_id list;
}

type t = entry Gaddr.Table.t

let create () = Gaddr.Table.create 256

let ensure t ~page ~region_base ~homed_here =
  match Gaddr.Table.find_opt t page with
  | Some e -> e
  | None ->
    let e = { region_base; homed_here; sharers = [] } in
    Gaddr.Table.replace t page e;
    e

let find t page = Gaddr.Table.find_opt t page

let set_sharers t page sharers =
  match Gaddr.Table.find_opt t page with
  | Some e -> e.sharers <- sharers
  | None -> ()

let remove t page = Gaddr.Table.remove t page

let crash t =
  let hints =
    Gaddr.Table.fold
      (fun page e acc -> if e.homed_here then acc else page :: acc)
      t []
  in
  List.iter (Gaddr.Table.remove t) hints

let length t = Gaddr.Table.length t
let fold f t acc = Gaddr.Table.fold f t acc
