(** Per-node page directory.

    "The local storage subsystem on each node maintains a page directory,
    indexed by global addresses, that contains information about individual
    pages of global regions including the list of nodes sharing this page."
    Entries for locally-homed pages are authoritative (they mirror the
    consistency manager's sharer knowledge and survive crashes, like the
    disk tier); entries for remote pages are hints. *)

type entry = {
  region_base : Kutil.Gaddr.t;
  homed_here : bool;
  mutable sharers : Knet.Topology.node_id list;  (** possibly-stale hint *)
}

type t

val create : unit -> t
val ensure : t -> page:Kutil.Gaddr.t -> region_base:Kutil.Gaddr.t -> homed_here:bool -> entry
val find : t -> Kutil.Gaddr.t -> entry option
val set_sharers : t -> Kutil.Gaddr.t -> Knet.Topology.node_id list -> unit
val remove : t -> Kutil.Gaddr.t -> unit
val crash : t -> unit
(** Drop hint entries (remote pages); keep authoritative local ones. *)

val length : t -> int
val fold : (Kutil.Gaddr.t -> entry -> 'a -> 'a) -> t -> 'a -> 'a
