module Gaddr = Kutil.Gaddr

type state = Reserved | Allocated

type t = {
  base : Gaddr.t;
  len : int;
  attr : Attr.t;
  home : Knet.Topology.node_id;
  state : state;
}

let make ~base ~len ~attr ~home =
  let page_size = attr.Attr.page_size in
  if not (Gaddr.is_page_aligned base ~page_size) then
    invalid_arg "Region.make: base not page-aligned";
  if len <= 0 || len mod page_size <> 0 then
    invalid_arg "Region.make: length must be a positive page multiple";
  { base; len; attr; home; state = Reserved }

let allocated t = { t with state = Allocated }
let page_count t = t.len / t.attr.Attr.page_size

let pages t =
  Gaddr.pages_in t.base ~len:t.len ~page_size:t.attr.Attr.page_size

let end_ t = Gaddr.add_int t.base t.len

let contains t addr =
  Gaddr.compare t.base addr <= 0 && Gaddr.compare addr (end_ t) < 0

let contains_range t addr ~len =
  len >= 0 && contains t addr
  && (len = 0 || contains t (Gaddr.add_int addr (len - 1)))

let page_of t addr =
  if not (contains t addr) then invalid_arg "Region.page_of: out of range";
  Gaddr.page_floor addr ~page_size:t.attr.Attr.page_size

let state_to_int = function Reserved -> 0 | Allocated -> 1

let state_of_int = function
  | 0 -> Reserved
  | 1 -> Allocated
  | n -> raise (Kutil.Codec.Decode_error (Printf.sprintf "bad state %d" n))

let encode e t =
  Kutil.Codec.u128 e t.base;
  Kutil.Codec.int e t.len;
  Attr.encode e t.attr;
  Kutil.Codec.u32 e t.home;
  Kutil.Codec.u8 e (state_to_int t.state)

let decode d =
  let base = Kutil.Codec.read_u128 d in
  let len = Kutil.Codec.read_int d in
  let attr = Attr.decode d in
  let home = Kutil.Codec.read_u32 d in
  let state = state_of_int (Kutil.Codec.read_u8 d) in
  { base; len; attr; home; state }

let pp ppf t =
  Format.fprintf ppf "region[%a+%d home=n%d %a %s]" Gaddr.pp t.base t.len
    t.home Attr.pp t.attr
    (match t.state with Reserved -> "reserved" | Allocated -> "allocated")
