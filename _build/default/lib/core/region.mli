(** Region descriptors.

    "Khazana maintains a global region descriptor associated with each
    region that stores various region attributes such as its security
    attributes, page size, and desired consistency protocol. In addition,
    each region has a home node that maintains a copy of the region's
    descriptor and keeps track of all the nodes maintaining copies of the
    region's data." *)

type state = Reserved | Allocated
(** Reserved address space cannot be accessed until storage is allocated. *)

type t = {
  base : Kutil.Gaddr.t;       (** first address; page-aligned *)
  len : int;                  (** bytes; multiple of [attr.page_size] *)
  attr : Attr.t;
  home : Knet.Topology.node_id;
  state : state;
}

val make :
  base:Kutil.Gaddr.t -> len:int -> attr:Attr.t -> home:Knet.Topology.node_id -> t
(** A fresh descriptor in [Reserved] state. Raises [Invalid_argument] on
    misaligned base or length. *)

val allocated : t -> t
val page_count : t -> int
val pages : t -> Kutil.Gaddr.t list
val contains : t -> Kutil.Gaddr.t -> bool
val contains_range : t -> Kutil.Gaddr.t -> len:int -> bool
val page_of : t -> Kutil.Gaddr.t -> Kutil.Gaddr.t
(** Enclosing page base for an address inside the region. *)

val end_ : t -> Kutil.Gaddr.t
val encode : Kutil.Codec.encoder -> t -> unit
val decode : Kutil.Codec.decoder -> t
val pp : Format.formatter -> t -> unit
