module Gaddr = Kutil.Gaddr

(* Descriptors keyed by region base in a sorted map (for containing-address
   lookups via predecessor search) with LRU bookkeeping by tick. *)

type entry = { desc : Region.t; mutable last_use : int }

type t = {
  capacity : int;
  mutable map : entry Gaddr.Map.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Region_directory.create";
  { capacity; map = Gaddr.Map.empty; tick = 0; hits = 0; misses = 0 }

let touch t e =
  t.tick <- t.tick + 1;
  e.last_use <- t.tick

let evict_lru t =
  let victim =
    Gaddr.Map.fold
      (fun base e best ->
        match best with
        | Some (_, b) when b.last_use <= e.last_use -> best
        | _ -> Some (base, e))
      t.map None
  in
  match victim with
  | Some (base, _) -> t.map <- Gaddr.Map.remove base t.map
  | None -> ()

let put t desc =
  let base = desc.Region.base in
  (match Gaddr.Map.find_opt base t.map with
   | Some e ->
     t.map <- Gaddr.Map.remove base t.map;
     ignore e
   | None -> ());
  if Gaddr.Map.cardinal t.map >= t.capacity then evict_lru t;
  let e = { desc; last_use = 0 } in
  touch t e;
  t.map <- Gaddr.Map.add base e t.map

let containing t addr =
  match Gaddr.Map.find_last_opt (fun base -> Gaddr.compare base addr <= 0) t.map with
  | Some (_, e) when Region.contains e.desc addr -> Some e
  | Some _ | None -> None

let find t addr =
  match containing t addr with
  | Some e ->
    t.hits <- t.hits + 1;
    touch t e;
    Some e.desc
  | None ->
    t.misses <- t.misses + 1;
    None

let remove t base = t.map <- Gaddr.Map.remove base t.map

let invalidate_containing t addr =
  match containing t addr with
  | Some e -> remove t e.desc.Region.base
  | None -> ()

let length t = Gaddr.Map.cardinal t.map
let entries t = Gaddr.Map.fold (fun _ e acc -> e.desc :: acc) t.map []
let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
