lib/kfs/fs.ml: Bytes Fun Kconsistency Khazana Kutil List Option Printf Result String
