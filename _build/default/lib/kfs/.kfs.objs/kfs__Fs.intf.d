lib/kfs/fs.mli: Khazana Kutil
