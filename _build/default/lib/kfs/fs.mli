(** A wide-area distributed filesystem on Khazana (paper §4.1).

    "The filesystem treats the entire Khazana space as a single disk ...
    Mounting this filesystem only requires the Khazana address of the
    superblock. Creating a file involves the creation of an inode and
    directory entry for the file. Each inode is allocated as a region of its
    own. ... In the current implementation, each block of the filesystem is
    allocated into a separate 4-kilobyte region. An alternative would be for
    the filesystem to allocate each file into a single contiguous region."

    Both block policies are implemented ({!block_policy}); per-file
    attributes (replica count, consistency level, access rights) are passed
    at creation time, exactly as the paper prescribes. The same code runs
    single-node or distributed: instances on different nodes {!mount} the
    same superblock address and share state purely through Khazana. *)

type block_policy =
  | Per_block_regions  (** each 4 KiB block is its own region (paper default) *)
  | Contiguous of int  (** one region per file of this maximum byte size *)

type error =
  [ Khazana.Daemon.error
  | `Not_found
  | `Exists
  | `Not_a_directory
  | `Is_a_directory
  | `Not_empty
  | `File_too_big
  | `Corrupt of string ]

val error_to_string : error -> string

type t
(** A mounted filesystem instance (one per client process). *)

val format :
  Khazana.Client.t ->
  ?policy:block_policy ->
  ?attr:Khazana.Attr.t ->
  unit ->
  (Kutil.Gaddr.t, error) result
(** Create a fresh filesystem; returns the superblock address, the only
    thing other nodes need in order to {!mount}. [attr] is the default
    template for metadata and data regions. *)

val mount : Khazana.Client.t -> Kutil.Gaddr.t -> (t, error) result
val client : t -> Khazana.Client.t
val superblock_addr : t -> Kutil.Gaddr.t

(** {1 Files} *)

val create :
  t -> ?attr:Khazana.Attr.t -> string -> (unit, error) result
(** Create an empty file. Per-file [attr] overrides the filesystem default
    (e.g. more replicas for precious files, weaker consistency for
    scratch). *)

val write : t -> string -> off:int -> bytes -> (unit, error) result

(** [append t path data] is an atomic append: concurrent appenders (on any
    node) serialise on the file's inode lock, so no entry is lost. *)
val append : t -> string -> bytes -> (unit, error) result
val read : t -> string -> off:int -> len:int -> (bytes, error) result
val size : t -> string -> (int, error) result
val truncate : t -> string -> len:int -> (unit, error) result
val unlink : t -> string -> (unit, error) result

(** [rename t src dst] moves a file or directory to a new name/parent.
    Fails with [`Exists] if [dst] already exists. Distinct parent
    directories are locked in global-address order, so concurrent renames
    cannot deadlock. *)
val rename : t -> string -> string -> (unit, error) result

(** {1 Directories} *)

val mkdir : t -> string -> (unit, error) result
val rmdir : t -> string -> (unit, error) result
val readdir : t -> string -> (string list, error) result

type kind = File | Directory

type stat = {
  kind : kind;
  bytes : int;
  blocks : int;
  inode_addr : Kutil.Gaddr.t;
}

val stat : t -> string -> (stat, error) result
val exists : t -> string -> bool
