lib/kobj/runtime.ml: Bytes Fun Hashtbl Kconsistency Khazana Knet Krpc Ksim Kutil List Option Result String
