lib/kobj/runtime.mli: Khazana Knet Ksim Kutil
