(** A distributed object runtime on Khazana (paper §4.2).

    Object state lives in Khazana regions; "Khazana provides location
    transparency for the object by associating with each object a unique
    identifying Khazana address". Methods are registered per class and
    execute against the serialised state under a Khazana lock; the runtime
    "use[s] location information exported from Khazana to decide if it is
    more efficient to load a local copy of the object or perform a remote
    invocation of the object on a node where it is already physically
    instantiated".

    Remote invocation travels over a thin application-level overlay
    ({!Overlay}) on the same simulated network topology; everything else —
    replication, consistency, caching, fault handling — is Khazana's job.

    Two placements support the paper's false-sharing discussion: objects in
    a region of their own, or many small objects pooled into shared pages
    (where unrelated objects contend for the same page lock). *)

type error =
  [ Khazana.Daemon.error
  | `Unknown_class of string
  | `Unknown_method of string
  | `Unknown_object
  | `Remote_failure of string
  | `Corrupt of string ]

val error_to_string : error -> string

(** {1 Classes} *)

type method_impl = state:bytes -> arg:bytes -> bytes * bytes option
(** [f ~state ~arg] returns (result, updated state or [None] if
    read-only). *)

type class_def = { class_name : string; methods : (string * method_impl) list }

(** {1 Overlay: app-level RPC between runtimes} *)

module Overlay : sig
  type t

  val create : Ksim.Engine.t -> Knet.Topology.t -> t
end

(** {1 Runtime} *)

type t

val create : Overlay.t -> Khazana.Client.t -> t
(** One runtime per application process; registers itself on the overlay at
    its client's node. *)

val register_class : t -> class_def -> unit

type obj = { addr : Kutil.Gaddr.t }

type placement =
  | Own_region          (** the object gets a region of its own *)
  | Pooled              (** packed with other small objects into shared pages *)

val new_object :
  t ->
  class_name:string ->
  ?placement:placement ->
  ?attr:Khazana.Attr.t ->
  init:bytes ->
  unit ->
  (obj, error) result

val invoke :
  t -> obj -> meth:string -> arg:bytes -> (bytes, error) result
(** Location-aware invocation: runs locally when this node holds a copy of
    the object's page (or nothing better is known), otherwise ships the call
    to a node that does. *)

val invoke_local : t -> obj -> meth:string -> arg:bytes -> (bytes, error) result
(** Force local execution (faults the object in if needed). *)

val invoke_at :
  t -> Knet.Topology.node_id -> obj -> meth:string -> arg:bytes ->
  (bytes, error) result
(** Force remote execution on a given node. *)

(** {1 Reference counting (an "object veneer" semantic, §4.2)} *)

val incref : t -> obj -> (int, error) result
val decref : t -> obj -> (int, error) result
(** At zero the object's storage is released (own-region objects free their
    region; pooled objects free their slot). *)

val get_state : t -> obj -> (bytes, error) result
(** Read the object's current state (diagnostics/tests). *)

type stats = { local_invocations : int; remote_invocations : int }

val stats : t -> stats
