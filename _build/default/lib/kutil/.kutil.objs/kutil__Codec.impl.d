lib/kutil/codec.ml: Buffer Bytes Char Int32 Int64 List Printf String U128
