lib/kutil/codec.mli: U128
