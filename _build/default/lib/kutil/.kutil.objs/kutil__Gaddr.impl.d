lib/kutil/gaddr.ml: Hashtbl List Map U128
