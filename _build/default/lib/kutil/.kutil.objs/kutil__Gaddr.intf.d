lib/kutil/gaddr.mli: Format Hashtbl Map U128
