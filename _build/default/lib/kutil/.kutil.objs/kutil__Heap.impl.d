lib/kutil/heap.ml: Array
