lib/kutil/heap.mli:
