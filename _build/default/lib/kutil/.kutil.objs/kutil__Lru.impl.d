lib/kutil/lru.ml: Hashtbl List Option
