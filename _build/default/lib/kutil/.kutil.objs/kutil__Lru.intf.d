lib/kutil/lru.mli:
