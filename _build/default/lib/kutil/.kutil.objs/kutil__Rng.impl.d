lib/kutil/rng.ml: Array Int64
