lib/kutil/rng.mli:
