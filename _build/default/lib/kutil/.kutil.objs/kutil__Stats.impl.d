lib/kutil/stats.ml: Array Float Format List Stdlib String
