lib/kutil/stats.mli: Format
