lib/kutil/u128.ml: Array Char Format Int64 Printf String
