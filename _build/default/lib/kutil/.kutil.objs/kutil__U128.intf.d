lib/kutil/u128.mli: Format
