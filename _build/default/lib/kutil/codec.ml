exception Decode_error of string

type encoder = Buffer.t

let encoder () = Buffer.create 256
let to_bytes e = Buffer.to_bytes e

let u8 e v =
  if v < 0 || v > 0xFF then invalid_arg "Codec.u8: out of range";
  Buffer.add_char e (Char.chr v)

let u16 e v =
  if v < 0 || v > 0xFFFF then invalid_arg "Codec.u16: out of range";
  Buffer.add_uint16_be e v

let u32 e v =
  if v < 0 || v > 0xFFFF_FFFF then invalid_arg "Codec.u32: out of range";
  Buffer.add_int32_be e (Int32.of_int (v land 0xFFFF_FFFF))

let u64 e v = Buffer.add_int64_be e v
let int e v = u64 e (Int64.of_int v)

let u128 e (v : U128.t) =
  u64 e v.U128.hi;
  u64 e v.U128.lo

let bool e v = u8 e (if v then 1 else 0)

let string e s =
  u32 e (String.length s);
  Buffer.add_string e s

let bytes e b = string e (Bytes.unsafe_to_string b)

let list e f xs =
  u32 e (List.length xs);
  List.iter f xs

let option e f = function
  | None -> u8 e 0
  | Some x ->
    u8 e 1;
    f x

type decoder = { buf : bytes; mutable pos : int }

let decoder buf = { buf; pos = 0 }
let remaining d = Bytes.length d.buf - d.pos

let need d n =
  if remaining d < n then
    raise (Decode_error (Printf.sprintf "need %d bytes, have %d" n (remaining d)))

let read_u8 d =
  need d 1;
  let v = Char.code (Bytes.get d.buf d.pos) in
  d.pos <- d.pos + 1;
  v

let read_u16 d =
  need d 2;
  let v = Bytes.get_uint16_be d.buf d.pos in
  d.pos <- d.pos + 2;
  v

let read_u32 d =
  need d 4;
  let v = Int32.to_int (Bytes.get_int32_be d.buf d.pos) land 0xFFFF_FFFF in
  d.pos <- d.pos + 4;
  v

let read_u64 d =
  need d 8;
  let v = Bytes.get_int64_be d.buf d.pos in
  d.pos <- d.pos + 8;
  v

let read_int d = Int64.to_int (read_u64 d)

let read_u128 d =
  let hi = read_u64 d in
  let lo = read_u64 d in
  U128.make ~hi ~lo

let read_bool d =
  match read_u8 d with
  | 0 -> false
  | 1 -> true
  | n -> raise (Decode_error (Printf.sprintf "bad bool tag %d" n))

let read_string d =
  let len = read_u32 d in
  need d len;
  let s = Bytes.sub_string d.buf d.pos len in
  d.pos <- d.pos + len;
  s

let read_bytes d = Bytes.unsafe_of_string (read_string d)

let read_list d f =
  let len = read_u32 d in
  (* Never trust a length prefix: every element occupies at least one byte
     in our formats, so a count beyond the remaining input is malformed —
     and must not drive a multi-gigabyte allocation. *)
  if len > remaining d then
    raise
      (Decode_error
         (Printf.sprintf "list length %d exceeds %d remaining bytes" len
            (remaining d)));
  List.init len (fun _ -> f ())

let read_option d f =
  match read_u8 d with
  | 0 -> None
  | 1 -> Some (f ())
  | n -> raise (Decode_error (Printf.sprintf "bad option tag %d" n))
