(** Binary encoding helpers.

    Khazana stores its own metadata (address-map tree nodes, file-system
    inodes, object headers) inside ordinary pages, so structured values must
    round-trip through bytes. Encoders append to a buffer; decoders consume
    from a cursor and raise {!Decode_error} on malformed input. *)

exception Decode_error of string

(** {1 Encoding} *)

type encoder

val encoder : unit -> encoder
val to_bytes : encoder -> bytes

val u8 : encoder -> int -> unit
val u16 : encoder -> int -> unit
val u32 : encoder -> int -> unit
val u64 : encoder -> int64 -> unit
val int : encoder -> int -> unit
val u128 : encoder -> U128.t -> unit
val bool : encoder -> bool -> unit
val string : encoder -> string -> unit
val bytes : encoder -> bytes -> unit
val list : encoder -> ('a -> unit) -> 'a list -> unit
val option : encoder -> ('a -> unit) -> 'a option -> unit

(** {1 Decoding} *)

type decoder

val decoder : bytes -> decoder
val remaining : decoder -> int

val read_u8 : decoder -> int
val read_u16 : decoder -> int
val read_u32 : decoder -> int
val read_u64 : decoder -> int64
val read_int : decoder -> int
val read_u128 : decoder -> U128.t
val read_bool : decoder -> bool
val read_string : decoder -> string
val read_bytes : decoder -> bytes
(* [read_list d f] rejects length prefixes exceeding the remaining input
   (every element in our formats occupies at least one byte), so malformed
   input cannot drive unbounded allocation. *)
val read_list : decoder -> (unit -> 'a) -> 'a list
val read_option : decoder -> (unit -> 'a) -> 'a option
