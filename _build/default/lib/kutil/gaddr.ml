type t = U128.t

let zero = U128.zero
let of_int = U128.of_int
let add_int = U128.add_int

let diff a b =
  if U128.compare a b < 0 then invalid_arg "Gaddr.diff: negative";
  U128.to_int (U128.sub a b)

let compare = U128.compare
let equal = U128.equal
let hash = U128.hash
let pp = U128.pp
let to_string = U128.to_string
let default_page_size = 4096
let valid_page_size n = n >= 4096 && n land (n - 1) = 0

let page_floor addr ~page_size =
  if not (valid_page_size page_size) then invalid_arg "Gaddr: bad page size";
  let q, _ = U128.divmod_int addr page_size in
  U128.mul_int q page_size

let page_offset addr ~page_size =
  if not (valid_page_size page_size) then invalid_arg "Gaddr: bad page size";
  let _, r = U128.divmod_int addr page_size in
  r

let is_page_aligned addr ~page_size = page_offset addr ~page_size = 0

let pages_in addr ~len ~page_size =
  if len < 0 then invalid_arg "Gaddr.pages_in: negative length";
  if len = 0 then []
  else begin
    let first = page_floor addr ~page_size in
    let last = page_floor (add_int addr (len - 1)) ~page_size in
    let rec loop acc p =
      if U128.compare p last > 0 then List.rev acc
      else loop (p :: acc) (add_int p page_size)
    in
    loop [] first
  end

module Key = struct
  type nonrec t = t

  let compare = compare
  let equal = equal
  let hash = hash
end

module Map = Map.Make (Key)
module Table = Hashtbl.Make (Key)
