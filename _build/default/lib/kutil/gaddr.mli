(** Global addresses: 128-bit identifiers into Khazana's shared store.

    A thin layer over {!U128} adding the page arithmetic the daemon needs.
    Page sizes are powers of two, 4 KiB by default. *)

type t = U128.t

val zero : t
val of_int : int -> t
val add_int : t -> int -> t
val diff : t -> t -> int
(** [diff a b] is [a - b] as an int; raises if negative or too large. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val default_page_size : int
(** 4096, "to match the most common machine virtual memory page size". *)

val valid_page_size : int -> bool
(** Power of two, at least 4 KiB (the paper allows 4K, 16K, 64K, ...). *)

val page_floor : t -> page_size:int -> t
(** Round down to the enclosing page boundary. *)

val page_offset : t -> page_size:int -> int
val is_page_aligned : t -> page_size:int -> bool

val pages_in : t -> len:int -> page_size:int -> t list
(** Page-aligned addresses of every page overlapping [\[addr, addr+len)]. *)

module Map : Map.S with type key = t
module Table : Hashtbl.S with type key = t
