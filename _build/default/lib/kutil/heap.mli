(** Imperative binary min-heap.

    Backs the discrete-event queue; elements with equal priority pop in
    insertion order (the comparator should fold in a sequence number, as
    {!Ksim.Engine} does), which keeps simulations deterministic. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val peek : 'a t -> 'a option
val clear : 'a t -> unit
