(* Intrusive doubly-linked list threaded through a hashtable: O(1) find,
   put, remove and eviction. [head] is most recently used. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  capacity : int;
  table : (int, ('k, 'v) node list) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable length : int;
}

let create ?(hash = Hashtbl.hash) ?(equal = ( = )) ~capacity () =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  { hash; equal; capacity; table = Hashtbl.create 64; head = None; tail = None;
    length = 0 }

let length t = t.length
let capacity t = t.capacity

let bucket_find t k =
  let h = t.hash k in
  match Hashtbl.find_opt t.table h with
  | None -> None
  | Some nodes -> List.find_opt (fun n -> t.equal n.key k) nodes

let bucket_remove t k =
  let h = t.hash k in
  match Hashtbl.find_opt t.table h with
  | None -> ()
  | Some nodes ->
    let nodes' = List.filter (fun n -> not (t.equal n.key k)) nodes in
    if nodes' = [] then Hashtbl.remove t.table h
    else Hashtbl.replace t.table h nodes'

let bucket_add t node =
  let h = t.hash node.key in
  let nodes = Option.value (Hashtbl.find_opt t.table h) ~default:[] in
  Hashtbl.replace t.table h (node :: nodes)

let unlink t node =
  (match node.prev with
   | Some p -> p.next <- node.next
   | None -> t.head <- node.next);
  (match node.next with
   | Some n -> n.prev <- node.prev
   | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t k =
  match bucket_find t k with
  | None -> None
  | Some node ->
    unlink t node;
    push_front t node;
    Some node.value

let peek t k = Option.map (fun n -> n.value) (bucket_find t k)
let mem t k = bucket_find t k <> None

let remove t k =
  match bucket_find t k with
  | None -> ()
  | Some node ->
    unlink t node;
    bucket_remove t k;
    t.length <- t.length - 1

let put t k v =
  match bucket_find t k with
  | Some node ->
    node.value <- v;
    unlink t node;
    push_front t node;
    None
  | None ->
    let node = { key = k; value = v; prev = None; next = None } in
    bucket_add t node;
    push_front t node;
    t.length <- t.length + 1;
    if t.length > t.capacity then begin
      match t.tail with
      | None -> None
      | Some victim ->
        unlink t victim;
        bucket_remove t victim.key;
        t.length <- t.length - 1;
        Some (victim.key, victim.value)
    end
    else None

let lru t = Option.map (fun n -> (n.key, n.value)) t.tail

let iter f t =
  let rec loop = function
    | None -> ()
    | Some node ->
      let next = node.next in
      f node.key node.value;
      loop next
  in
  loop t.head

let fold f t acc =
  let acc = ref acc in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.length <- 0
