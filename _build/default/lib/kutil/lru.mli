(** Bounded LRU map.

    Used for the region directory (per-node cache of region descriptors) and
    for RAM-tier victim selection. Keys are hashed with the polymorphic hash
    unless a custom [hash]/[equal] pair is supplied. *)

type ('k, 'v) t

val create :
  ?hash:('k -> int) -> ?equal:('k -> 'k -> bool) -> capacity:int -> unit ->
  ('k, 'v) t
(** [create ~capacity ()] makes an empty cache evicting least-recently-used
    entries beyond [capacity] (which must be positive). *)

val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** [find t k] returns the binding and marks it most recently used. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Like {!find} but without touching recency. *)

val mem : ('k, 'v) t -> 'k -> bool

val put : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option
(** [put t k v] inserts or replaces the binding and returns the evicted
    entry, if insertion pushed the cache over capacity. *)

val remove : ('k, 'v) t -> 'k -> unit

val lru : ('k, 'v) t -> ('k * 'v) option
(** Least-recently-used binding, if any. *)

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
(** Iterate from most to least recently used. *)

val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
val clear : ('k, 'v) t -> unit
