type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t =
  let seed = int64 t in
  { state = mix seed }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the top 62 bits avoids modulo bias. *)
  let mask = max_int in
  let rec draw () =
    let v = Int64.to_int (int64 t) land mask in
    if v >= mask - (mask mod n) then draw () else v mod n
  in
  draw ()

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  x *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
