(** Deterministic pseudo-random numbers (SplitMix64).

    Every source of randomness in the simulator flows from one of these
    generators so that a run is fully reproducible from its seed. *)

type t

val create : seed:int -> t

val split : t -> t
(** [split t] derives an independent generator; the parent and child streams
    do not interfere, so subsystems can be reseeded without perturbing each
    other's draws. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Raises [Invalid_argument] if
    [n <= 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean; used for
    inter-arrival times in workload generators. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
