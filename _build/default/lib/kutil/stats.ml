type counter = { mutable n : int }

let counter () = { n = 0 }
let incr ?(by = 1) c = c.n <- c.n + by
let count c = c.n
let reset_counter c = c.n <- 0

type summary = {
  mutable values : float array;
  mutable len : int;
  mutable sorted : bool;
}

let summary () = { values = [||]; len = 0; sorted = true }

let add s v =
  let cap = Array.length s.values in
  if s.len = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let nvalues = Array.make ncap 0.0 in
    Array.blit s.values 0 nvalues 0 s.len;
    s.values <- nvalues
  end;
  s.values.(s.len) <- v;
  s.len <- s.len + 1;
  s.sorted <- false

let samples s = s.len

let fold f acc s =
  let acc = ref acc in
  for i = 0 to s.len - 1 do
    acc := f !acc s.values.(i)
  done;
  !acc

let total s = fold ( +. ) 0.0 s
let mean s = if s.len = 0 then 0.0 else total s /. float_of_int s.len
let minimum s = if s.len = 0 then 0.0 else fold Float.min infinity s
let maximum s = if s.len = 0 then 0.0 else fold Float.max neg_infinity s

let ensure_sorted s =
  if not s.sorted then begin
    let arr = Array.sub s.values 0 s.len in
    Array.sort Float.compare arr;
    Array.blit arr 0 s.values 0 s.len;
    s.sorted <- true
  end

let percentile s p =
  if s.len = 0 then 0.0
  else begin
    ensure_sorted s;
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int s.len)) in
    let idx = Stdlib.max 0 (Stdlib.min (s.len - 1) (rank - 1)) in
    s.values.(idx)
  end

let stddev s =
  if s.len < 2 then 0.0
  else begin
    let m = mean s in
    let ss = fold (fun acc v -> acc +. ((v -. m) ** 2.0)) 0.0 s in
    sqrt (ss /. float_of_int (s.len - 1))
  end

let pp_summary ~unit ppf s =
  Format.fprintf ppf "n=%d mean=%.2f%s p50=%.2f%s p99=%.2f%s max=%.2f%s"
    (samples s) (mean s) unit (percentile s 50.0) unit (percentile s 99.0)
    unit (maximum s) unit

type table = { columns : string list; mutable rows : string list list }

let table ~columns = { columns; rows = [] }
let row t cells = t.rows <- cells :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let width i =
    List.fold_left
      (fun acc r ->
        match List.nth_opt r i with
        | Some cell -> Stdlib.max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let pad w s = s ^ String.make (Stdlib.max 0 (w - String.length s)) ' ' in
  let line cells =
    String.concat "  " (List.mapi (fun i c -> pad (List.nth widths i) c) cells)
  in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (line t.columns :: sep :: List.map line rows)
