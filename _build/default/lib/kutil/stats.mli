(** Metric collection: counters and latency summaries.

    Benchmarks report simulated-time latencies; a {!summary} accumulates raw
    samples and answers mean/percentile queries. *)

type counter

val counter : unit -> counter
val incr : ?by:int -> counter -> unit
val count : counter -> int
val reset_counter : counter -> unit

type summary

val summary : unit -> summary
val add : summary -> float -> unit
val samples : summary -> int
val mean : summary -> float
val minimum : summary -> float
val maximum : summary -> float
val total : summary -> float

val percentile : summary -> float -> float
(** [percentile s p] with [p] in [\[0,100\]] by nearest-rank on the sorted
    samples; 0.0 when empty. *)

val stddev : summary -> float

val pp_summary : unit:string -> Format.formatter -> summary -> unit
(** One-line [n/mean/p50/p99/max] rendering. *)

type table
(** Aligned console tables for experiment output. *)

val table : columns:string list -> table
val row : table -> string list -> unit
val render : table -> string
