type t = { hi : int64; lo : int64 }

let zero = { hi = 0L; lo = 0L }
let one = { hi = 0L; lo = 1L }
let max_value = { hi = -1L; lo = -1L }
let make ~hi ~lo = { hi; lo }

let of_int n =
  if n < 0 then invalid_arg "U128.of_int: negative";
  { hi = 0L; lo = Int64.of_int n }

let to_int v =
  if v.hi <> 0L || Int64.unsigned_compare v.lo (Int64.of_int max_int) > 0 then
    invalid_arg "U128.to_int: does not fit";
  Int64.to_int v.lo

let of_int64 lo = { hi = 0L; lo }

let add a b =
  let lo = Int64.add a.lo b.lo in
  let carry = if Int64.unsigned_compare lo a.lo < 0 then 1L else 0L in
  { hi = Int64.add (Int64.add a.hi b.hi) carry; lo }

let sub a b =
  let lo = Int64.sub a.lo b.lo in
  let borrow = if Int64.unsigned_compare a.lo b.lo < 0 then 1L else 0L in
  { hi = Int64.sub (Int64.sub a.hi b.hi) borrow; lo }

let add_int v n = add v (of_int n)
let succ v = add v one

(* Multiply by a small non-negative integer using 32-bit limbs so every
   intermediate product fits in a signed int64. *)
let mul_int v n =
  if n < 0 then invalid_arg "U128.mul_int: negative";
  if n >= 0x8000_0000 then invalid_arg "U128.mul_int: factor too large";
  let n64 = Int64.of_int n in
  let mask = 0xFFFF_FFFFL in
  let limb i =
    match i with
    | 0 -> Int64.logand v.lo mask
    | 1 -> Int64.shift_right_logical v.lo 32
    | 2 -> Int64.logand v.hi mask
    | 3 -> Int64.shift_right_logical v.hi 32
    | _ -> assert false
  in
  let out = Array.make 4 0L in
  let carry = ref 0L in
  for i = 0 to 3 do
    let p = Int64.add (Int64.mul (limb i) n64) !carry in
    out.(i) <- Int64.logand p mask;
    carry := Int64.shift_right_logical p 32
  done;
  {
    lo = Int64.logor out.(0) (Int64.shift_left out.(1) 32);
    hi = Int64.logor out.(2) (Int64.shift_left out.(3) 32);
  }

let logand a b = { hi = Int64.logand a.hi b.hi; lo = Int64.logand a.lo b.lo }
let logor a b = { hi = Int64.logor a.hi b.hi; lo = Int64.logor a.lo b.lo }

let shift_left v n =
  if n < 0 || n > 128 then invalid_arg "U128.shift_left";
  if n = 0 then v
  else if n >= 128 then zero
  else if n >= 64 then { hi = Int64.shift_left v.lo (n - 64); lo = 0L }
  else
    {
      hi =
        Int64.logor (Int64.shift_left v.hi n)
          (Int64.shift_right_logical v.lo (64 - n));
      lo = Int64.shift_left v.lo n;
    }

let shift_right v n =
  if n < 0 || n > 128 then invalid_arg "U128.shift_right";
  if n = 0 then v
  else if n >= 128 then zero
  else if n >= 64 then { hi = 0L; lo = Int64.shift_right_logical v.hi (n - 64) }
  else
    {
      hi = Int64.shift_right_logical v.hi n;
      lo =
        Int64.logor
          (Int64.shift_right_logical v.lo n)
          (Int64.shift_left v.hi (64 - n));
    }

let compare a b =
  let c = Int64.unsigned_compare a.hi b.hi in
  if c <> 0 then c else Int64.unsigned_compare a.lo b.lo

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let distance a b = if compare a b >= 0 then sub a b else sub b a

let bit v i =
  if i < 64 then Int64.to_int (Int64.logand (Int64.shift_right_logical v.lo i) 1L)
  else Int64.to_int (Int64.logand (Int64.shift_right_logical v.hi (i - 64)) 1L)

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec loop acc n = if n <= 1 then acc else loop (acc + 1) (n lsr 1) in
  loop 0 n

(* Long division of a 128-bit value by a small positive integer. The common
   power-of-two case (page sizes) short-circuits to shifts; otherwise a
   bitwise schoolbook division keeps the running remainder below [2*n], so
   [n] must stay below 2^61 to avoid native-int overflow. *)
let divmod_int v n =
  if n <= 0 then invalid_arg "U128.divmod_int: non-positive divisor";
  if is_power_of_two n then
    let k = log2 n in
    let q = shift_right v k in
    let r = Int64.to_int (Int64.logand v.lo (Int64.of_int (n - 1))) in
    (q, r)
  else begin
    if n >= 1 lsl 61 then invalid_arg "U128.divmod_int: divisor too large";
    let q = ref zero and rem = ref 0 in
    for i = 127 downto 0 do
      rem := (!rem lsl 1) lor bit v i;
      if !rem >= n then begin
        rem := !rem - n;
        q := logor !q (shift_left one i)
      end
    done;
    (!q, !rem)
  end

let to_hex v = Printf.sprintf "%016Lx%016Lx" v.hi v.lo

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "U128.of_hex: bad digit"

let of_hex s =
  let s =
    if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
      String.sub s 2 (String.length s - 2)
    else s
  in
  let len = String.length s in
  if len = 0 || len > 32 then invalid_arg "U128.of_hex: bad length";
  let acc = ref zero in
  String.iter
    (fun c -> acc := logor (shift_left !acc 4) (of_int (hex_digit c)))
    s;
  !acc

let to_string v =
  let h = to_hex v in
  let rec first_nonzero i =
    if i >= String.length h - 1 then i
    else if h.[i] <> '0' then i
    else first_nonzero (i + 1)
  in
  let i = first_nonzero 0 in
  "0x" ^ String.sub h i (String.length h - i)

let pp ppf v = Format.pp_print_string ppf (to_string v)

let hash v =
  let mix a b = (a * 0x9E3779B1) lxor (b + (a lsl 6) + (a lsr 2)) in
  mix (Int64.to_int v.hi) (Int64.to_int v.lo) land max_int
