(** Unsigned 128-bit integers.

    Khazana addresses its global store with 128-bit identifiers; this module
    provides the arithmetic the address map and region allocator need.
    Values are immutable pairs of [int64] halves and compare as unsigned
    quantities. *)

type t = private { hi : int64; lo : int64 }

val zero : t
val one : t
val max_value : t

val make : hi:int64 -> lo:int64 -> t

val of_int : int -> t
(** [of_int n] injects a non-negative OCaml integer. Raises
    [Invalid_argument] on negative input. *)

val to_int : t -> int
(** [to_int v] converts back to an OCaml integer. Raises [Invalid_argument]
    when [v] does not fit in 62 bits. *)

val of_int64 : int64 -> t
(** [of_int64 n] treats [n] as unsigned. *)

val add : t -> t -> t
(** Wrapping addition modulo 2^128. *)

val sub : t -> t -> t
(** Wrapping subtraction modulo 2^128. *)

val add_int : t -> int -> t
(** [add_int v n] adds a non-negative integer offset. *)

val succ : t -> t
val mul_int : t -> int -> t

val divmod_int : t -> int -> t * int
(** [divmod_int v n] is the unsigned quotient and remainder of [v] by a
    positive integer [n]. *)

val logand : t -> t -> t
val logor : t -> t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Logical (unsigned) shift; shift counts in [0, 128]. *)

val compare : t -> t -> int
(** Unsigned comparison. *)

val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val distance : t -> t -> t
(** [distance a b] is [abs (a - b)] in the unsigned order. *)

val to_hex : t -> string
(** Lower-case, zero-padded 32-digit hex representation. *)

val of_hex : string -> t
(** Inverse of {!to_hex}; accepts 1 to 32 hex digits, optionally prefixed
    with ["0x"]. Raises [Invalid_argument] on malformed input. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
(** Compact form: hex with leading zeros elided, ["0x"]-prefixed. *)

val hash : t -> int
