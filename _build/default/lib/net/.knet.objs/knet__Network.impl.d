lib/net/network.ml: Array Hashtbl Ksim Kutil List Option Topology
