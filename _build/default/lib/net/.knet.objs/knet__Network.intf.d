lib/net/network.mli: Ksim Topology
