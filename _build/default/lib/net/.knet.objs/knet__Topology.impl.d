lib/net/topology.ml: Array Format Fun Ksim List
