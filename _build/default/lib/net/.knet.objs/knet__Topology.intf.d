lib/net/topology.mli: Format Ksim
