type node_id = int

let pp_node ppf n = Format.fprintf ppf "n%d" n

type link_profile = {
  base_latency : Ksim.Time.t;
  jitter : Ksim.Time.t;
  bandwidth_bps : float;
  loss : float;
}

let lan_default =
  {
    base_latency = Ksim.Time.us 150;
    jitter = Ksim.Time.us 50;
    bandwidth_bps = 125_000_000.0;
    loss = 0.0;
  }

let wan_default =
  {
    base_latency = Ksim.Time.ms 30;
    jitter = Ksim.Time.ms 5;
    bandwidth_bps = 1_250_000.0;
    loss = 0.0;
  }

type t = {
  clusters : int array;
  mutable lan : link_profile;
  mutable wan : link_profile;
}

let create ~clusters =
  if Array.length clusters = 0 then invalid_arg "Topology.create: no nodes";
  { clusters = Array.copy clusters; lan = lan_default; wan = wan_default }

let symmetric ~nodes_per_cluster ~clusters =
  if nodes_per_cluster <= 0 || clusters <= 0 then
    invalid_arg "Topology.symmetric: sizes must be positive";
  create
    ~clusters:
      (Array.init (nodes_per_cluster * clusters) (fun i -> i / nodes_per_cluster))

let node_count t = Array.length t.clusters
let nodes t = List.init (node_count t) Fun.id

let cluster_of t n =
  if n < 0 || n >= node_count t then invalid_arg "Topology.cluster_of: bad node";
  t.clusters.(n)

let cluster_members t c =
  List.filter (fun n -> t.clusters.(n) = c) (nodes t)

let cluster_count t =
  Array.fold_left (fun acc c -> max acc (c + 1)) 0 t.clusters

let same_cluster t a b = cluster_of t a = cluster_of t b
let set_lan t p = t.lan <- p
let set_wan t p = t.wan <- p
let profile t src dst = if same_cluster t src dst then t.lan else t.wan
