(** Network topology: nodes grouped into clusters of nearby machines.

    The paper's Khazana organises nodes into "groups of closely-connected
    nodes called clusters"; links within a cluster behave like a LAN, links
    between clusters like a WAN. *)

type node_id = int

val pp_node : Format.formatter -> node_id -> unit

type link_profile = {
  base_latency : Ksim.Time.t;  (** propagation delay *)
  jitter : Ksim.Time.t;        (** uniform extra delay in [0, jitter) *)
  bandwidth_bps : float;       (** bytes per second; serialisation delay *)
  loss : float;                (** independent drop probability in [0,1] *)
}

val lan_default : link_profile
(** ~150us RTT/2, 1 Gb/s: mid-90s switched Ethernet. *)

val wan_default : link_profile
(** ~30ms one-way, 10 Mb/s: the paper's "slow or intermittent WAN links". *)

type t

val create : clusters:int array -> t
(** [create ~clusters] builds a topology where node [i] belongs to cluster
    [clusters.(i)]. Node ids are dense, [0 .. n-1]. *)

val symmetric : nodes_per_cluster:int -> clusters:int -> t
(** Convenience builder for a balanced topology. *)

val node_count : t -> int
val nodes : t -> node_id list
val cluster_of : t -> node_id -> int
val cluster_members : t -> int -> node_id list
val cluster_count : t -> int
val same_cluster : t -> node_id -> node_id -> bool

val set_lan : t -> link_profile -> unit
val set_wan : t -> link_profile -> unit

val profile : t -> node_id -> node_id -> link_profile
(** The link profile governing a [src -> dst] message. *)
