lib/rpc/rpc.ml: Array Hashtbl Knet Ksim List
