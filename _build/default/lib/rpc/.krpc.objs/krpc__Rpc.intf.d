lib/rpc/rpc.mli: Knet Ksim
