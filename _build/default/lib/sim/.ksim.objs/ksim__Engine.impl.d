lib/sim/engine.ml: Kutil Time
