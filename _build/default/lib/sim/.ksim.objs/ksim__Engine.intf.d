lib/sim/engine.mli: Kutil Time
