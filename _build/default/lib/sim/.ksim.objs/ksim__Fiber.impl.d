lib/sim/fiber.ml: Effect Engine Fun List Printexc Printf Promise Time
