lib/sim/fiber.mli: Engine Promise Time
