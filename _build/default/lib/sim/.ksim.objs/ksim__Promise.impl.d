lib/sim/promise.ml: List
