lib/sim/promise.mli:
