open Effect
open Effect.Deep

exception Fiber_failure of string * exn

let () =
  Printexc.register_printer (function
    | Fiber_failure (name, inner) ->
      Some
        (Printf.sprintf "Fiber_failure(%s: %s)" name (Printexc.to_string inner))
    | _ -> None)

type _ Effect.t +=
  | Sleep : Engine.t * Time.t -> unit Effect.t
  | Await : ('a Promise.t) -> 'a Effect.t

(* The engine a fiber runs on is threaded through the handler environment:
   [current_engine] is only valid while fiber code is executing. The
   save/restore wrapper sits *outside* [match_with] / [continue]: when the
   fiber suspends, control returns normally out of those calls and the
   restore fires, so the ref never dangles across a suspension (a protect
   inside the fiber's own stack would be captured by the continuation and
   deferred instead). *)
let current_engine : Engine.t option ref = ref None

let engine_now () =
  match !current_engine with
  | Some eng -> eng
  | None -> failwith "Fiber: blocking call outside of a fiber"

let with_engine eng seg =
  let saved = !current_engine in
  current_engine := Some eng;
  Fun.protect ~finally:(fun () -> current_engine := saved) seg

let run_fiber eng name f =
  let on_exn e = raise (Fiber_failure (name, e)) in
  let handler =
    {
      retc = (fun () -> ());
      exnc =
        (fun e ->
          match e with Fiber_failure _ -> raise e | e -> on_exn e);
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Sleep (eng, d) ->
            Some
              (fun (k : (b, unit) continuation) ->
                ignore
                  (Engine.schedule eng ~after:d (fun () ->
                       with_engine eng (fun () -> continue k ()))))
          | Await p ->
            Some
              (fun (k : (b, unit) continuation) ->
                Promise.on_resolve p (fun v ->
                    with_engine eng (fun () -> continue k v)))
          | _ -> None);
    }
  in
  with_engine eng (fun () -> match_with f () handler)

let spawn eng ?(name = "fiber") f =
  ignore (Engine.schedule eng ~after:0 (fun () -> run_fiber eng name f))

let spawn_after eng ~after ?(name = "fiber") f =
  ignore (Engine.schedule eng ~after (fun () -> run_fiber eng name f))

let sleep d = perform (Sleep (engine_now (), d))
let yield () = sleep 0

let await p =
  match Promise.peek p with Some v -> v | None -> perform (Await p)

let await_timeout eng p ~timeout =
  match Promise.peek p with
  | Some v -> Some v
  | None ->
    let race = Promise.create () in
    Promise.on_resolve p (fun v -> ignore (Promise.try_resolve race (Some v)));
    let timer =
      Engine.schedule eng ~after:timeout (fun () ->
          ignore (Promise.try_resolve race None))
    in
    let result = await race in
    Engine.cancel timer;
    result

let join_all promises = List.iter await promises

let async eng ?(name = "fiber") f =
  let p = Promise.create () in
  spawn eng ~name (fun () -> Promise.resolve p (f ()));
  p
