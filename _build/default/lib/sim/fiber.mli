(** Direct-style cooperative fibers over the event engine.

    Implemented with OCaml 5 effects: daemon logic reads as straight-line
    code (`let page = await (fetch ...) in ...`) while the engine interleaves
    fibers deterministically. The blocking operations below may only be
    called from inside a fiber started with {!spawn}. *)

exception Fiber_failure of string * exn
(** Raised out of {!Engine.run} when a fiber dies with an uncaught
    exception; carries the fiber name. *)

val spawn : Engine.t -> ?name:string -> (unit -> unit) -> unit
(** Start a fiber at the current instant. *)

val spawn_after : Engine.t -> after:Time.t -> ?name:string -> (unit -> unit) -> unit

val sleep : Time.t -> unit
(** Suspend the calling fiber for the given virtual duration. *)

val yield : unit -> unit

val await : 'a Promise.t -> 'a
(** Suspend until the promise resolves (returns immediately if it already
    has). *)

val await_timeout : Engine.t -> 'a Promise.t -> timeout:Time.t -> 'a option
(** [None] if the timeout elapses first. *)

val join_all : unit Promise.t list -> unit

val async : Engine.t -> ?name:string -> (unit -> 'a) -> 'a Promise.t
(** Spawn a fiber and expose its result as a promise. An exception in the
    child propagates as {!Fiber_failure} out of the engine, not into the
    promise. *)
