type 'a state = Pending of ('a -> unit) list | Resolved of 'a
type 'a t = { mutable state : 'a state }

let create () = { state = Pending [] }
let resolved v = { state = Resolved v }

let try_resolve t v =
  match t.state with
  | Resolved _ -> false
  | Pending waiters ->
    t.state <- Resolved v;
    List.iter (fun k -> k v) (List.rev waiters);
    true

let resolve t v =
  if not (try_resolve t v) then invalid_arg "Promise.resolve: already resolved"

let is_resolved t = match t.state with Resolved _ -> true | Pending _ -> false
let peek t = match t.state with Resolved v -> Some v | Pending _ -> None

let on_resolve t k =
  match t.state with
  | Resolved v -> k v
  | Pending waiters -> t.state <- Pending (k :: waiters)

let map_into src dst f = on_resolve src (fun v -> ignore (try_resolve dst (f v)))
