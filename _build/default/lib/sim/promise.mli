(** Write-once cells with completion callbacks.

    Promises bridge the event-driven world (message handlers, timers) and
    fibers: a handler resolves, a fiber awaits (see {!Fiber.await}). *)

type 'a t

val create : unit -> 'a t
val resolved : 'a -> 'a t

val resolve : 'a t -> 'a -> unit
(** Raises [Invalid_argument] if already resolved. *)

val try_resolve : 'a t -> 'a -> bool
(** [false] if the promise was already resolved; used to race a result
    against a timeout. *)

val is_resolved : 'a t -> bool
val peek : 'a t -> 'a option

val on_resolve : 'a t -> ('a -> unit) -> unit
(** Run the callback when the value arrives (immediately if it already
    has). Callbacks run in resolution order. *)

val map_into : 'a t -> 'b t -> ('a -> 'b) -> unit
(** [map_into src dst f] forwards [src]'s result through [f] into [dst]
    (best-effort: ignored if [dst] is already resolved). *)
