type t = int

let ns t = t
let us t = t * 1_000
let ms t = t * 1_000_000
let sec t = t * 1_000_000_000
let of_sec_f f = int_of_float (f *. 1e9)
let to_us_f t = float_of_int t /. 1e3
let to_ms_f t = float_of_int t /. 1e6
let to_sec_f t = float_of_int t /. 1e9

let pp ppf t =
  if t < 1_000 then Format.fprintf ppf "%dns" t
  else if t < 1_000_000 then Format.fprintf ppf "%.1fus" (to_us_f t)
  else if t < 1_000_000_000 then Format.fprintf ppf "%.2fms" (to_ms_f t)
  else Format.fprintf ppf "%.3fs" (to_sec_f t)
