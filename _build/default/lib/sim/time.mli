(** Simulated time.

    All latencies in the simulator are integers in nanoseconds of virtual
    time; a 63-bit int covers ~292 years, far beyond any run. *)

type t = int

val ns : int -> t
val us : int -> t
val ms : int -> t
val sec : int -> t
val of_sec_f : float -> t
val to_us_f : t -> float
val to_ms_f : t -> float
val to_sec_f : t -> float

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit. *)
