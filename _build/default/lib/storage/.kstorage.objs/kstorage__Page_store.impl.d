lib/storage/page_store.ml: Bytes Ksim Kutil
