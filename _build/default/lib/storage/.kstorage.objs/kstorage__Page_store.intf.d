lib/storage/page_store.mli: Ksim Kutil
