test/cm_harness.ml: Hashtbl Kconsistency Kutil List Printf
