test/test_address_map.ml: Alcotest Bytes Hashtbl Khazana Kutil List Printf QCheck QCheck_alcotest
