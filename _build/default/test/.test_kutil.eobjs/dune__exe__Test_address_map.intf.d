test/test_address_map.mli:
