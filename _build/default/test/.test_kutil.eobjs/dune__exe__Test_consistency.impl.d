test/test_consistency.ml: Alcotest Bytes Cm_harness Format Kconsistency List Option Printf
