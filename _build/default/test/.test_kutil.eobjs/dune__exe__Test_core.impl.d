test/test_core.ml: Alcotest Bytes Kconsistency Khazana Kutil List
