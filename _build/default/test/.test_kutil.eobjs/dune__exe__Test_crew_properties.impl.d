test/test_crew_properties.ml: Alcotest Bytes Char Cm_harness Hashtbl Kconsistency Kutil List Option Printf QCheck QCheck_alcotest String
