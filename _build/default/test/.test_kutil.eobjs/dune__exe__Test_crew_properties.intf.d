test/test_crew_properties.mli:
