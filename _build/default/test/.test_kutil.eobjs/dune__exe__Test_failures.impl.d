test/test_failures.ml: Alcotest Bytes Fun Kconsistency Khazana Knet Ksim Kstorage Kutil List Printf
