test/test_figure2.ml: Alcotest Bytes Kconsistency Khazana List Printf String
