test/test_figure2.mli:
