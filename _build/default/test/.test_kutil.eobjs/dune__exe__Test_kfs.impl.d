test/test_kfs.ml: Alcotest Bytes Char Kfs Khazana Ksim Kutil
