test/test_kfs.mli:
