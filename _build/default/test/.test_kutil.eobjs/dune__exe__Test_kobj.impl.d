test/test_kobj.ml: Alcotest Bytes Khazana Kobj Kutil
