test/test_kobj.mli:
