test/test_kutil.ml: Alcotest Array Bytes Fun Kutil List QCheck QCheck_alcotest String
