test/test_kutil.mli:
