test/test_net.ml: Alcotest Knet Ksim
