test/test_rpc.ml: Alcotest Knet Krpc Ksim List String
