test/test_sim.ml: Alcotest Buffer Ksim Kutil List
