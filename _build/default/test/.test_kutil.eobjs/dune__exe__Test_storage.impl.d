test/test_storage.ml: Alcotest Bytes Ksim Kstorage Kutil List Option
