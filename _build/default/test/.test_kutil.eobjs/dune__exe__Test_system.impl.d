test/test_system.ml: Alcotest Bytes Char Fun Kconsistency Khazana Ksim Kutil List Printf String
