(* Tests for the address-map tree over a fake in-memory page store. Every
   read/write round-trips through the page codec, exercising serialisation
   exactly as the self-hosted tree does. *)

module AM = Khazana.Address_map
module Gaddr = Kutil.Gaddr
module U128 = Kutil.U128

let mk_io () =
  let pages : (int, bytes) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace pages 0 (AM.Node.encode (AM.Node.empty_root ()));
  let read_page i =
    match Hashtbl.find_opt pages i with
    | Some bytes -> AM.Node.decode bytes
    | None -> failwith (Printf.sprintf "read of unwritten tree page %d" i)
  in
  let mutate f =
    let root = read_page 0 in
    let write i node = Hashtbl.replace pages i (AM.Node.encode node) in
    f ~root ~read:read_page ~write;
    Hashtbl.replace pages 0 (AM.Node.encode root)
  in
  ({ AM.read_page; mutate }, pages)

let addr n = Gaddr.of_int n
let high n = U128.add (U128.shift_left U128.one 40) (U128.of_int n)

let reserved ?(page_size = 4096) ?(homes = [ 1 ]) base len =
  { AM.base; len; page_size; homes }

let insert_ok io r =
  match AM.insert io r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "insert failed: %s" e

let test_node_codec_roundtrip () =
  let node =
    {
      AM.Node.base = high 0;
      span_log2 = 40;
      next_free = 17;
      entries =
        [
          AM.Reserved (reserved (high 4096) 8192 ~homes:[ 1; 2; 3 ]);
          AM.Subtree { base = high 65536; span_log2 = 16; page = 9 };
        ];
    }
  in
  let node' = AM.Node.decode (AM.Node.encode node) in
  Alcotest.(check int) "span" 40 node'.AM.Node.span_log2;
  Alcotest.(check int) "next_free" 17 node'.AM.Node.next_free;
  Alcotest.(check int) "entries" 2 (List.length node'.AM.Node.entries);
  (match node'.AM.Node.entries with
   | [ AM.Reserved r; AM.Subtree s ] ->
     Alcotest.(check bool) "base" true (Gaddr.equal r.AM.base (high 4096));
     Alcotest.(check (list int)) "homes" [ 1; 2; 3 ] r.AM.homes;
     Alcotest.(check int) "subtree page" 9 s.page
   | _ -> Alcotest.fail "bad entries");
  Alcotest.(check int) "page-sized image" 4096
    (Bytes.length (AM.Node.encode node))

let test_decode_garbage_fails () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (AM.Node.decode (Bytes.make 4096 '\000'));
       false
     with Kutil.Codec.Decode_error _ -> true)

let test_insert_lookup () =
  let io, _ = mk_io () in
  insert_ok io (reserved (high 0) 8192);
  let r = AM.lookup io (high 0) in
  Alcotest.(check bool) "found at base" true (r.AM.entry <> None);
  let r = AM.lookup io (high 8191) in
  Alcotest.(check bool) "found at last byte" true (r.AM.entry <> None);
  let r = AM.lookup io (high 8192) in
  Alcotest.(check bool) "one past end is free" true (r.AM.entry = None);
  Alcotest.(check int) "root-only depth" 1 (AM.lookup io (high 0)).AM.depth

let test_lookup_returns_homes () =
  let io, _ = mk_io () in
  insert_ok io (reserved (high 0) 4096 ~homes:[ 7; 8 ]);
  match (AM.lookup io (high 100)).AM.entry with
  | Some r -> Alcotest.(check (list int)) "homes" [ 7; 8 ] r.AM.homes
  | None -> Alcotest.fail "missing"

let test_overlap_rejected () =
  let io, _ = mk_io () in
  insert_ok io (reserved (high 4096) 8192);
  (match AM.insert io (reserved (high 8192) 4096) with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "overlap accepted");
  (* Adjacent is fine. *)
  insert_ok io (reserved (high 12288) 4096);
  insert_ok io (reserved (high 0) 4096)

let test_remove () =
  let io, _ = mk_io () in
  insert_ok io (reserved (high 0) 4096);
  Alcotest.(check bool) "removed" true (AM.remove io (high 0));
  Alcotest.(check bool) "now free" true ((AM.lookup io (high 0)).AM.entry = None);
  Alcotest.(check bool) "absent returns false" false (AM.remove io (high 0));
  (* Space is reusable after removal. *)
  insert_ok io (reserved (high 0) 8192)

let test_update_homes () =
  let io, _ = mk_io () in
  insert_ok io (reserved (high 0) 4096 ~homes:[ 1 ]);
  Alcotest.(check bool) "updated" true (AM.update_homes io (high 0) [ 4; 5 ]);
  (match (AM.lookup io (high 0)).AM.entry with
   | Some r -> Alcotest.(check (list int)) "new homes" [ 4; 5 ] r.AM.homes
   | None -> Alcotest.fail "missing");
  Alcotest.(check bool) "absent false" false (AM.update_homes io (addr 99999) [])

let test_split_on_overflow () =
  let io, pages = mk_io () in
  (* Insert far more regions than one node holds; they are small and
     aligned, so they redistribute into subtrees. *)
  let n = (3 * AM.Node.max_entries) + 5 in
  for i = 0 to n - 1 do
    insert_ok io (reserved (high (i * 4096)) 4096 ~homes:[ i mod 4 ])
  done;
  Alcotest.(check bool) "tree grew beyond the root" true (Hashtbl.length pages > 1);
  (* Every region still findable, and depths exceed 1 somewhere. *)
  let max_depth = ref 0 in
  for i = 0 to n - 1 do
    let r = AM.lookup io (high ((i * 4096) + 123)) in
    max_depth := max !max_depth r.AM.depth;
    match r.AM.entry with
    | Some e ->
      Alcotest.(check (list int))
        (Printf.sprintf "homes of %d" i)
        [ i mod 4 ] e.AM.homes
    | None -> Alcotest.failf "region %d lost after split" i
  done;
  Alcotest.(check bool) "descends subtrees" true (!max_depth > 1);
  (* Free space between regions is still free. *)
  Alcotest.(check bool) "beyond end free" true
    ((AM.lookup io (high (n * 4096))).AM.entry = None)

let test_fold_reserved () =
  let io, _ = mk_io () in
  for i = 0 to 9 do
    insert_ok io (reserved (high (i * 65536)) 4096)
  done;
  let count = AM.fold_reserved io (fun acc _ -> acc + 1) 0 in
  Alcotest.(check int) "all visited" 10 count;
  let total = AM.fold_reserved io (fun acc r -> acc + r.AM.len) 0 in
  Alcotest.(check int) "lengths" 40960 total

let test_remove_after_split () =
  let io, _ = mk_io () in
  let n = AM.Node.max_entries + 10 in
  for i = 0 to n - 1 do
    insert_ok io (reserved (high (i * 4096)) 4096)
  done;
  (* Remove a region that migrated into a subtree. *)
  Alcotest.(check bool) "removed deep entry" true (AM.remove io (high 0));
  Alcotest.(check bool) "gone" true ((AM.lookup io (high 0)).AM.entry = None);
  Alcotest.(check int) "rest survive" (n - 1)
    (AM.fold_reserved io (fun acc _ -> acc + 1) 0)

let test_large_region_stays_high () =
  let io, _ = mk_io () in
  (* A large region crossing child boundaries stays in an upper node even
     after splits around it. *)
  let big = reserved (high 0) (1 lsl 20) in
  insert_ok io big;
  for i = 0 to AM.Node.max_entries + 5 do
    insert_ok io (reserved (high ((1 lsl 20) + (i * 4096))) 4096)
  done;
  match (AM.lookup io (high 12345)).AM.entry with
  | Some r -> Alcotest.(check int) "big region intact" (1 lsl 20) r.AM.len
  | None -> Alcotest.fail "big region lost"

let prop_insert_lookup_random =
  QCheck.Test.make ~name:"random disjoint inserts all findable" ~count:30
    QCheck.(int_range 1 200)
    (fun n ->
      let io, _ = mk_io () in
      let ok = ref true in
      for i = 0 to n - 1 do
        match AM.insert io (reserved (high (i * 16384)) 8192 ~homes:[ i ]) with
        | Ok () -> ()
        | Error _ -> ok := false
      done;
      for i = 0 to n - 1 do
        match (AM.lookup io (high ((i * 16384) + 8000))).AM.entry with
        | Some r -> if r.AM.homes <> [ i ] then ok := false
        | None -> ok := false
      done;
      (* Gaps must be free. *)
      for i = 0 to n - 1 do
        if (AM.lookup io (high ((i * 16384) + 8192))).AM.entry <> None then
          ok := false
      done;
      !ok)

let () =
  Alcotest.run "address_map"
    [
      ( "codec",
        [
          Alcotest.test_case "node roundtrip" `Quick test_node_codec_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_decode_garbage_fails;
        ] );
      ( "tree",
        [
          Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
          Alcotest.test_case "homes hint" `Quick test_lookup_returns_homes;
          Alcotest.test_case "overlap rejected" `Quick test_overlap_rejected;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "update homes" `Quick test_update_homes;
          Alcotest.test_case "split on overflow" `Quick test_split_on_overflow;
          Alcotest.test_case "fold" `Quick test_fold_reserved;
          Alcotest.test_case "remove after split" `Quick test_remove_after_split;
          Alcotest.test_case "boundary-crossing region" `Quick
            test_large_region_stays_high;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_insert_lookup_random ] );
    ]
