(* Property-based tests: random operation interleavings against the CREW
   machine must never violate concurrent-read-exclusive-write safety, and
   must stay live (every request eventually granted once conflicting locks
   drain); random interleavings of the eventual protocol must converge. *)

module H = Cm_harness
module Ctypes = Kconsistency.Types

let nodes = [ 0; 1; 2; 3 ]

(* One scripted step: a client action on a node, or delivering a random
   in-flight message. *)
type step = Deliver | Client of int * Ctypes.mode

let gen_step =
  QCheck.Gen.(
    frequency
      [
        (3, return Deliver);
        ( 2,
          map2
            (fun n m -> Client (n, if m then Ctypes.Write else Ctypes.Read))
            (oneofl nodes) bool );
      ])

let print_step = function
  | Deliver -> "D"
  | Client (n, m) -> Printf.sprintf "C(%d,%s)" n (Ctypes.mode_to_string m)

let arb_script =
  QCheck.make
    ~print:(fun (seed, steps) ->
      Printf.sprintf "seed=%d [%s]" seed
        (String.concat ";" (List.map print_step steps)))
    QCheck.Gen.(pair (int_range 0 10_000) (list_size (int_range 10 80) gen_step))

(* Execute a script. Each node holds at most one lock at a time; a Client
   step on a node releases a held lock (with data when it was a write) or
   issues a fresh request when idle. Returns the first safety violation. *)
let run_script ~protocol (seed, steps) =
  let h =
    H.create ~seed ~protocol ~home:0 ~min_replicas:1 ~nodes
      ~initial:(Bytes.of_string "init") ()
  in
  (* node -> Held (req, mode) | Waiting (req, mode) | Idle *)
  let status = Hashtbl.create 8 in
  let violation = ref None in
  let note v = if !violation = None then violation := v in
  let refresh_status () =
    Hashtbl.iter
      (fun node s ->
        match s with
        | `Waiting (req, mode) when H.is_granted h req ->
          Hashtbl.replace status node (`Held (req, mode))
        | `Waiting (req, _) when H.is_rejected h req ->
          Hashtbl.replace status node `Idle
        | _ -> ())
      (Hashtbl.copy status)
  in
  let step counter = function
    | Deliver ->
      if h.H.wire <> [] then ignore (H.deliver_random h)
    | Client (node, mode) -> (
      match Option.value (Hashtbl.find_opt status node) ~default:`Idle with
      | `Held (_, held_mode) ->
        let data =
          if held_mode = Ctypes.Write then
            Some (Bytes.of_string (Printf.sprintf "w%d.%d" node counter))
          else None
        in
        H.release h node held_mode ~data;
        Hashtbl.replace status node `Idle
      | `Waiting _ -> () (* still queued; leave it *)
      | `Idle ->
        let req = H.acquire h node mode in
        Hashtbl.replace status node (`Waiting (req, mode)))
  in
  List.iteri
    (fun i s ->
      step i s;
      refresh_status ();
      note (H.crew_invariant_violation h))
    steps;
  (* Liveness epilogue: release everything held, drain, and check that all
     waiting requests resolve. *)
  let rec settle rounds =
    refresh_status ();
    Hashtbl.iter
      (fun node s ->
        match s with
        | `Held (_, mode) ->
          H.release h node mode ~data:None;
          Hashtbl.replace status node `Idle
        | `Waiting _ | `Idle -> ())
      (Hashtbl.copy status);
    H.drain ~random:true h;
    refresh_status ();
    note (H.crew_invariant_violation h);
    let still_waiting =
      Hashtbl.fold
        (fun _ s acc -> match s with `Waiting _ -> acc + 1 | _ -> acc)
        status 0
    in
    if still_waiting > 0 && rounds > 0 then settle (rounds - 1)
    else if still_waiting > 0 then
      note (Some (Printf.sprintf "%d requests never resolved" still_waiting))
  in
  settle 8;
  !violation

let prop_crew_safety =
  QCheck.Test.make ~name:"crew: random interleavings stay safe and live"
    ~count:150 arb_script (fun script ->
      match run_script ~protocol:"crew" script with
      | None -> true
      | Some v -> QCheck.Test.fail_report v)

let prop_release_liveness =
  QCheck.Test.make ~name:"release: random interleavings stay live" ~count:100
    arb_script (fun script ->
      (* Release consistency permits concurrent reader+writer, so only the
         liveness half of the oracle applies. *)
      match run_script ~protocol:"release" script with
      | None -> true
      | Some v ->
        if
          String.length v >= 6
          && String.sub v (String.length v - 14) 14 = "never resolved"
        then QCheck.Test.fail_report v
        else true)

(* Eventual consistency: after any interleaving plus anti-entropy, all
   replicas converge to identical (version, data). *)
let prop_eventual_convergence =
  QCheck.Test.make ~name:"eventual: replicas converge" ~count:100 arb_script
    (fun (seed, steps) ->
      let h =
        H.create ~seed ~protocol:"eventual" ~home:0 ~min_replicas:1 ~nodes
          ~initial:(Bytes.of_string "init") ()
      in
      let held = Hashtbl.create 8 in
      List.iteri
        (fun i s ->
          match s with
          | Deliver -> if h.H.wire <> [] then ignore (H.deliver_random h)
          | Client (node, mode) -> (
            match Hashtbl.find_opt held node with
            | Some held_mode ->
              let data =
                if held_mode = Ctypes.Write then
                  Some (Bytes.of_string (Printf.sprintf "e%d.%d" node i))
                else None
              in
              H.release h node held_mode ~data;
              Hashtbl.remove held node
            | None ->
              let req = H.acquire h node mode in
              H.drain ~random:true h;
              if H.is_granted h req then Hashtbl.replace held node mode))
        steps;
      Hashtbl.iter (fun node mode -> H.release h node mode ~data:None) held;
      H.drain ~random:true h;
      for _ = 1 to 6 do
        H.fire_all_timers h;
        H.drain ~random:true h
      done;
      (* Convergence over nodes that hold a copy. *)
      let holders = List.filter (fun n -> H.has_copy h n) nodes in
      match holders with
      | [] -> true
      | first :: rest ->
        let v = H.version h first in
        List.for_all (fun n -> H.version h n = v) rest)

(* CREW safety must also survive an adversarial network: random message
   LOSS plus timers firing (the manager's retry/fail-over machinery kicks
   in). Liveness is excluded — lost grants legitimately strand requests
   until daemon-level retries, which are outside the machine. *)
let prop_crew_safety_under_loss =
  QCheck.Test.make ~name:"crew: safety holds under message loss + timeouts"
    ~count:100 arb_script (fun (seed, steps) ->
      let h =
        H.create ~seed ~protocol:"crew" ~home:0 ~min_replicas:1 ~nodes
          ~initial:(Bytes.of_string "init") ()
      in
      let rng = Kutil.Rng.create ~seed:(seed + 77) in
      let status = Hashtbl.create 8 in
      let violation = ref None in
      let note v = if !violation = None then violation := v in
      let refresh () =
        Hashtbl.iter
          (fun node s ->
            match s with
            | `Waiting (req, mode) when H.is_granted h req ->
              Hashtbl.replace status node (`Held (req, mode))
            | `Waiting (req, _) when H.is_rejected h req ->
              Hashtbl.replace status node `Idle
            | _ -> ())
          (Hashtbl.copy status)
      in
      List.iteri
        (fun i s ->
          (match s with
           | Deliver ->
             if h.H.wire <> [] then begin
               (* 25% of deliveries are losses; occasionally a timer fires. *)
               if Kutil.Rng.int rng 4 = 0 then
                 h.H.wire <- List.tl h.H.wire
               else ignore (H.deliver_random h)
             end
             else H.fire_all_timers h
           | Client (node, mode) -> (
             match Option.value (Hashtbl.find_opt status node) ~default:`Idle with
             | `Held (_, held_mode) ->
               let data =
                 if held_mode = Ctypes.Write then
                   Some (Bytes.of_string (Printf.sprintf "l%d.%d" node i))
                 else None
               in
               H.release h node held_mode ~data;
               Hashtbl.replace status node `Idle
             | `Waiting _ -> ()
             | `Idle ->
               let req = H.acquire h node mode in
               Hashtbl.replace status node (`Waiting (req, mode))));
          if Kutil.Rng.int rng 10 = 0 then H.fire_all_timers h;
          refresh ();
          note (H.crew_invariant_violation h))
        steps;
      match !violation with
      | None -> true
      | Some v -> QCheck.Test.fail_report v)

(* Write-shared: any interleaving of disjoint-range writers converges, and
   nobody's byte is lost. Each node owns byte [node] of a 4-byte page and
   only ever writes there, so the final page must reflect every node's
   last committed write. *)
let prop_wshared_disjoint_no_lost_updates =
  QCheck.Test.make ~name:"wshared: disjoint writers lose nothing" ~count:100
    arb_script (fun (seed, steps) ->
      let h =
        H.create ~seed ~protocol:"wshared" ~home:0 ~min_replicas:1 ~nodes
          ~initial:(Bytes.make 4 '.') ()
      in
      let held = Hashtbl.create 8 in
      let committed = Hashtbl.create 8 in
      List.iteri
        (fun i s ->
          match s with
          | Deliver -> if h.H.wire <> [] then ignore (H.deliver_random h)
          | Client (node, mode) -> (
            match Hashtbl.find_opt held node with
            | Some Ctypes.Write ->
              (* Commit a fresh byte into our slot, reading the current
                 local replica first (as a real client under a lock
                 would). *)
              let c = Char.chr (Char.code 'a' + ((node + i) mod 26)) in
              let base =
                Option.value (H.installed_data h node)
                  ~default:(Bytes.make 4 '.')
              in
              let page = Bytes.copy base in
              Bytes.set page node c;
              H.release h node Ctypes.Write ~data:(Some page);
              Hashtbl.replace committed node c;
              Hashtbl.remove held node
            | Some Ctypes.Read ->
              H.release h node Ctypes.Read ~data:None;
              Hashtbl.remove held node
            | None ->
              let req = H.acquire h node mode in
              H.drain ~random:true h;
              if H.is_granted h req then Hashtbl.replace held node mode))
        steps;
      (* Release stragglers without writing, then converge. *)
      Hashtbl.iter (fun node mode -> H.release h node mode ~data:None) held;
      H.drain ~random:true h;
      for _ = 1 to 8 do
        H.fire_all_timers h;
        H.drain ~random:true h
      done;
      (* The home's copy must contain every node's last committed byte. *)
      match H.installed_data h 0 with
      | None -> Hashtbl.length committed = 0
      | Some page ->
        Hashtbl.fold
          (fun node c acc -> acc && Bytes.get page node = c)
          committed true)

let () =
  Alcotest.run "crew-properties"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_crew_safety; prop_release_liveness; prop_eventual_convergence;
            prop_crew_safety_under_loss; prop_wshared_disjoint_no_lost_updates;
          ] );
    ]
