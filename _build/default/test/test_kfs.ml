(* Tests for the Khazana filesystem (paper §4.1): namespace operations,
   file data under both block policies, distribution across nodes, and
   per-file attributes. *)

module System = Khazana.System
module Client = Khazana.Client
module Attr = Khazana.Attr
module Fs = Kfs.Fs

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "fs error: %s" (Fs.error_to_string e)

let bytes_s = Bytes.of_string

let with_fs ?policy f =
  let sys = System.create ~nodes_per_cluster:3 ~clusters:2 () in
  let c1 = System.client sys 1 () in
  System.run_fiber sys (fun () ->
      let sb = ok (Fs.format c1 ?policy ()) in
      let fs = ok (Fs.mount c1 sb) in
      f sys sb fs)

let test_format_mount () =
  with_fs (fun _sys sb fs ->
      Alcotest.(check bool) "superblock addr kept" true
        (Kutil.Gaddr.equal (Fs.superblock_addr fs) sb);
      Alcotest.(check (list string)) "empty root" [] (ok (Fs.readdir fs "/")))

let test_create_write_read () =
  with_fs (fun _sys _sb fs ->
      ok (Fs.create fs "/hello.txt");
      ok (Fs.write fs "/hello.txt" ~off:0 (bytes_s "hello, khazana"));
      let b = ok (Fs.read fs "/hello.txt" ~off:0 ~len:14) in
      Alcotest.(check string) "content" "hello, khazana" (Bytes.to_string b);
      Alcotest.(check int) "size" 14 (ok (Fs.size fs "/hello.txt"));
      (* Partial read and read past EOF. *)
      let b = ok (Fs.read fs "/hello.txt" ~off:7 ~len:100) in
      Alcotest.(check string) "tail clamped" "khazana" (Bytes.to_string b);
      let b = ok (Fs.read fs "/hello.txt" ~off:100 ~len:10) in
      Alcotest.(check int) "past eof empty" 0 (Bytes.length b))

let test_multi_block_file () =
  with_fs (fun _sys _sb fs ->
      ok (Fs.create fs "/big");
      (* Write 3.5 pages of patterned data. *)
      let n = 14336 in
      let data = Bytes.init n (fun i -> Char.chr (i mod 251)) in
      ok (Fs.write fs "/big" ~off:0 data);
      Alcotest.(check int) "size" n (ok (Fs.size fs "/big"));
      let st = ok (Fs.stat fs "/big") in
      Alcotest.(check int) "four blocks" 4 st.Fs.blocks;
      let b = ok (Fs.read fs "/big" ~off:0 ~len:n) in
      Alcotest.(check bool) "content equal" true (Bytes.equal data b);
      (* Cross-block overwrite in the middle. *)
      ok (Fs.write fs "/big" ~off:4090 (bytes_s "XBOUNDARYX"));
      let b = ok (Fs.read fs "/big" ~off:4090 ~len:10) in
      Alcotest.(check string) "overwrite" "XBOUNDARYX" (Bytes.to_string b))

let test_sparse_extend () =
  with_fs (fun _sys _sb fs ->
      ok (Fs.create fs "/sparse");
      ok (Fs.write fs "/sparse" ~off:9000 (bytes_s "far"));
      Alcotest.(check int) "size extends" 9003 (ok (Fs.size fs "/sparse"));
      let b = ok (Fs.read fs "/sparse" ~off:0 ~len:4) in
      Alcotest.(check string) "hole zero-filled" "\000\000\000\000" (Bytes.to_string b))

let test_directories () =
  with_fs (fun _sys _sb fs ->
      ok (Fs.mkdir fs "/a");
      ok (Fs.mkdir fs "/a/b");
      ok (Fs.create fs "/a/b/c.txt");
      ok (Fs.create fs "/a/top.txt");
      Alcotest.(check (list string)) "root" [ "a" ] (ok (Fs.readdir fs "/"));
      Alcotest.(check (list string)) "nested" [ "b"; "top.txt" ]
        (ok (Fs.readdir fs "/a"));
      Alcotest.(check (list string)) "deep" [ "c.txt" ] (ok (Fs.readdir fs "/a/b"));
      let st = ok (Fs.stat fs "/a/b") in
      Alcotest.(check bool) "is dir" true (st.Fs.kind = Fs.Directory);
      (* Errors. *)
      (match Fs.readdir fs "/a/top.txt" with
       | Error `Not_a_directory -> ()
       | Error e -> Alcotest.failf "wrong error: %s" (Fs.error_to_string e)
       | Ok _ -> Alcotest.fail "readdir on a file");
      (match Fs.create fs "/a/top.txt" with
       | Error `Exists -> ()
       | Error e -> Alcotest.failf "wrong error: %s" (Fs.error_to_string e)
       | Ok _ -> Alcotest.fail "duplicate create");
      match Fs.read fs "/missing" ~off:0 ~len:1 with
      | Error `Not_found -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Fs.error_to_string e)
      | Ok _ -> Alcotest.fail "read of missing file")

let test_unlink_rmdir () =
  with_fs (fun _sys _sb fs ->
      ok (Fs.mkdir fs "/d");
      ok (Fs.create fs "/d/f");
      ok (Fs.write fs "/d/f" ~off:0 (bytes_s "bye"));
      (match Fs.rmdir fs "/d" with
       | Error `Not_empty -> ()
       | Error e -> Alcotest.failf "wrong error: %s" (Fs.error_to_string e)
       | Ok () -> Alcotest.fail "removed non-empty dir");
      ok (Fs.unlink fs "/d/f");
      Alcotest.(check bool) "gone" false (Fs.exists fs "/d/f");
      ok (Fs.rmdir fs "/d");
      Alcotest.(check (list string)) "root empty" [] (ok (Fs.readdir fs "/"));
      match Fs.unlink fs "/d/f" with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "unlink through a removed dir")

let test_truncate () =
  with_fs (fun _sys _sb fs ->
      ok (Fs.create fs "/t");
      ok (Fs.write fs "/t" ~off:0 (Bytes.make 10000 'x'));
      Alcotest.(check int) "blocks before" 3 (ok (Fs.stat fs "/t")).Fs.blocks;
      ok (Fs.truncate fs "/t" ~len:4000);
      Alcotest.(check int) "size after" 4000 (ok (Fs.size fs "/t"));
      Alcotest.(check int) "blocks freed" 1 (ok (Fs.stat fs "/t")).Fs.blocks;
      let b = ok (Fs.read fs "/t" ~off:3990 ~len:100) in
      Alcotest.(check int) "clamped" 10 (Bytes.length b);
      (* Extending truncate grows size without data. *)
      ok (Fs.truncate fs "/t" ~len:5000);
      Alcotest.(check int) "regrown" 5000 (ok (Fs.size fs "/t")))

let test_distributed_mounts () =
  let sys = System.create ~nodes_per_cluster:3 ~clusters:2 () in
  let c1 = System.client sys 1 () in
  let c4 = System.client sys 4 () in
  System.run_fiber sys (fun () ->
      let sb = ok (Fs.format c1 ()) in
      let fs1 = ok (Fs.mount c1 sb) in
      ok (Fs.mkdir fs1 "/shared");
      ok (Fs.create fs1 "/shared/doc");
      ok (Fs.write fs1 "/shared/doc" ~off:0 (bytes_s "written on n1"));
      (* The same filesystem code, pointed at the same superblock, on a
         node in the other cluster. *)
      let fs4 = ok (Fs.mount c4 sb) in
      let b = ok (Fs.read fs4 "/shared/doc" ~off:0 ~len:13) in
      Alcotest.(check string) "n4 reads n1's file" "written on n1" (Bytes.to_string b);
      ok (Fs.write fs4 "/shared/doc" ~off:0 (bytes_s "UPDATED on n4"));
      ok (Fs.create fs4 "/shared/from4");
      let b = ok (Fs.read fs1 "/shared/doc" ~off:0 ~len:13) in
      Alcotest.(check string) "n1 sees n4's update" "UPDATED on n4" (Bytes.to_string b);
      Alcotest.(check (list string)) "n1 sees n4's create" [ "doc"; "from4" ]
        (ok (Fs.readdir fs1 "/shared")))

let test_contiguous_policy () =
  with_fs ~policy:(Fs.Contiguous 65536) (fun _sys _sb fs ->
      ok (Fs.create fs "/c");
      let data = Bytes.init 10000 (fun i -> Char.chr (i mod 256)) in
      ok (Fs.write fs "/c" ~off:0 data);
      let b = ok (Fs.read fs "/c" ~off:0 ~len:10000) in
      Alcotest.(check bool) "roundtrip" true (Bytes.equal data b);
      let st = ok (Fs.stat fs "/c") in
      Alcotest.(check int) "single data region" 1 st.Fs.blocks;
      (* The fixed maximum is enforced. *)
      match Fs.write fs "/c" ~off:65530 (bytes_s "overflow!") with
      | Error `File_too_big -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Fs.error_to_string e)
      | Ok () -> Alcotest.fail "wrote past contiguous max")

let test_per_file_attributes () =
  with_fs (fun sys _sb fs ->
      (* A precious file with 3 replicas; paper: "parameters specified at
         file creation time may be used to specify the number of replicas
         required". *)
      let attr = Attr.make ~owner:1 ~min_replicas:3 () in
      ok (Fs.create fs ~attr "/precious");
      ok (Fs.write fs "/precious" ~off:0 (bytes_s "replicated"));
      System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys;
      let st = ok (Fs.stat fs "/precious") in
      (* The file's first data block should be replicated on 3+ nodes. *)
      let block_attr = ok ((Client.get_attr (Fs.client fs) st.Fs.inode_addr
                            :> (Attr.t, Fs.error) result)) in
      Alcotest.(check int) "inode carries replicas" 3 block_attr.Attr.min_replicas)

let test_rename () =
  with_fs (fun _sys _sb fs ->
      ok (Fs.mkdir fs "/a");
      ok (Fs.mkdir fs "/b");
      ok (Fs.create fs "/a/old");
      ok (Fs.write fs "/a/old" ~off:0 (bytes_s "payload"));
      (* Same-directory rename. *)
      ok (Fs.rename fs "/a/old" "/a/new");
      Alcotest.(check bool) "old gone" false (Fs.exists fs "/a/old");
      let b = ok (Fs.read fs "/a/new" ~off:0 ~len:7) in
      Alcotest.(check string) "data follows" "payload" (Bytes.to_string b);
      (* Cross-directory rename. *)
      ok (Fs.rename fs "/a/new" "/b/moved");
      Alcotest.(check (list string)) "a empty" [] (ok (Fs.readdir fs "/a"));
      Alcotest.(check (list string)) "b has it" [ "moved" ] (ok (Fs.readdir fs "/b"));
      let b = ok (Fs.read fs "/b/moved" ~off:0 ~len:7) in
      Alcotest.(check string) "data still follows" "payload" (Bytes.to_string b);
      (* Renaming a directory moves its subtree. *)
      ok (Fs.create fs "/b/moved2");
      (match Fs.rename fs "/b/moved" "/b/moved2" with
       | Error `Exists -> ()
       | Error e -> Alcotest.failf "wrong error: %s" (Fs.error_to_string e)
       | Ok () -> Alcotest.fail "clobbered existing target");
      ok (Fs.rename fs "/b" "/c");
      Alcotest.(check bool) "dir contents move" true (Fs.exists fs "/c/moved");
      match Fs.rename fs "/missing" "/x" with
      | Error `Not_found -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Fs.error_to_string e)
      | Ok () -> Alcotest.fail "renamed a ghost")

let test_large_pages () =
  (* The paper allows regions "managed in pages larger than 4-kilobytes
     (e.g., 16 kilobytes...)": a filesystem formatted with 16K pages uses
     16K blocks throughout. *)
  let sys = System.create ~nodes_per_cluster:3 ~clusters:2 () in
  let c1 = System.client sys 1 () in
  System.run_fiber sys (fun () ->
      let attr = Attr.make ~owner:1 ~page_size:16384 () in
      let sb = ok (Fs.format c1 ~attr ()) in
      let fs = ok (Fs.mount c1 sb) in
      ok (Fs.create fs "/big-blocks");
      let data = Bytes.init 20000 (fun i -> Char.chr (i mod 251)) in
      ok (Fs.write fs "/big-blocks" ~off:0 data);
      let st = ok (Fs.stat fs "/big-blocks") in
      Alcotest.(check int) "two 16K blocks" 2 st.Fs.blocks;
      let b = ok (Fs.read fs "/big-blocks" ~off:0 ~len:20000) in
      Alcotest.(check bool) "roundtrip" true (Bytes.equal data b);
      (* And it still shares across the WAN. *)
      let fs4 = ok (Fs.mount (System.client sys 4 ()) sb) in
      let b = ok (Fs.read fs4 "/big-blocks" ~off:16000 ~len:100) in
      Alcotest.(check bool) "remote read" true
        (Bytes.equal b (Bytes.sub data 16000 100)))

let test_wshared_scratch_files () =
  (* A scratch file under the write-shared protocol: two nodes append to
     disjoint halves concurrently without ownership ping-pong. *)
  let sys = System.create ~nodes_per_cluster:3 ~clusters:2 () in
  let c1 = System.client sys 1 () in
  System.run_fiber sys (fun () ->
      let sb = ok (Fs.format c1 ()) in
      let fs1 = ok (Fs.mount c1 sb) in
      let attr = Attr.make ~owner:1 ~protocol:"wshared" () in
      ok (Fs.create fs1 ~attr "/scratch");
      (* Preallocate one block so both writers hit the same page. *)
      ok (Fs.write fs1 "/scratch" ~off:0 (Bytes.make 4096 '.'));
      let fs4 = ok (Fs.mount (System.client sys 4 ()) sb) in
      let eng = System.engine sys in
      let w node fs off ch =
        Ksim.Fiber.async eng (fun () ->
            ignore node;
            ok (Fs.write fs "/scratch" ~off (Bytes.make 100 ch)))
      in
      Ksim.Fiber.join_all [ w 1 fs1 0 'a'; w 4 fs4 2000 'b' ];
      Ksim.Fiber.sleep (Ksim.Time.sec 2);
      (* Both halves visible from a third node. *)
      let fs2 = ok (Fs.mount (System.client sys 2 ()) sb) in
      let b = ok (Fs.read fs2 "/scratch" ~off:0 ~len:4096) in
      Alcotest.(check char) "n1's bytes" 'a' (Bytes.get b 50);
      Alcotest.(check char) "n4's bytes" 'b' (Bytes.get b 2050))

let test_file_too_big_per_block () =
  with_fs (fun _sys _sb fs ->
      ok (Fs.create fs "/huge");
      match Fs.write fs "/huge" ~off:(201 * 4096) (bytes_s "x") with
      | Error `File_too_big -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Fs.error_to_string e)
      | Ok () -> Alcotest.fail "exceeded the direct-block limit")

let () =
  Alcotest.run "kfs"
    [
      ( "fs",
        [
          Alcotest.test_case "format/mount" `Quick test_format_mount;
          Alcotest.test_case "create/write/read" `Quick test_create_write_read;
          Alcotest.test_case "multi-block" `Quick test_multi_block_file;
          Alcotest.test_case "sparse extend" `Quick test_sparse_extend;
          Alcotest.test_case "directories" `Quick test_directories;
          Alcotest.test_case "unlink/rmdir" `Quick test_unlink_rmdir;
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "distributed mounts" `Quick test_distributed_mounts;
          Alcotest.test_case "contiguous policy" `Quick test_contiguous_policy;
          Alcotest.test_case "per-file attributes" `Quick test_per_file_attributes;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "16K pages" `Quick test_large_pages;
          Alcotest.test_case "write-shared scratch" `Quick test_wshared_scratch_files;
          Alcotest.test_case "file size limit" `Quick test_file_too_big_per_block;
        ] );
    ]
