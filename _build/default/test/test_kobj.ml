(* Tests for the distributed object runtime (paper §4.2). *)

module System = Khazana.System
module Rt = Kobj.Runtime

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "kobj error: %s" (Rt.error_to_string e)

let bytes_s = Bytes.of_string

let counter_class =
  {
    Rt.class_name = "counter";
    methods =
      [
        ( "incr",
          fun ~state ~arg:_ ->
            let v = int_of_string (Bytes.to_string state) + 1 in
            let s = bytes_s (string_of_int v) in
            (s, Some s) );
        ("get", fun ~state ~arg:_ -> (state, None));
        ( "add",
          fun ~state ~arg ->
            let v =
              int_of_string (Bytes.to_string state)
              + int_of_string (Bytes.to_string arg)
            in
            let s = bytes_s (string_of_int v) in
            (s, Some s) );
      ];
  }

let with_runtimes f =
  let sys = System.create ~nodes_per_cluster:3 ~clusters:2 () in
  let overlay = Rt.Overlay.create (System.engine sys) (System.topology sys) in
  let rt_of node =
    let rt = Rt.create overlay (System.client sys node ()) in
    Rt.register_class rt counter_class;
    rt
  in
  let rt1 = rt_of 1 and rt4 = rt_of 4 in
  System.run_fiber sys (fun () -> f sys rt1 rt4)

let test_new_invoke_local () =
  with_runtimes (fun _sys rt1 _rt4 ->
      let obj = ok (Rt.new_object rt1 ~class_name:"counter" ~init:(bytes_s "0") ()) in
      let v = ok (Rt.invoke rt1 obj ~meth:"incr" ~arg:Bytes.empty) in
      Alcotest.(check string) "incr" "1" (Bytes.to_string v);
      let v = ok (Rt.invoke rt1 obj ~meth:"add" ~arg:(bytes_s "10")) in
      Alcotest.(check string) "add" "11" (Bytes.to_string v);
      let v = ok (Rt.invoke rt1 obj ~meth:"get" ~arg:Bytes.empty) in
      Alcotest.(check string) "get" "11" (Bytes.to_string v);
      Alcotest.(check string) "state readable" "11"
        (Bytes.to_string (ok (Rt.get_state rt1 obj))))

let test_cross_node_state_shared () =
  with_runtimes (fun _sys rt1 rt4 ->
      let obj = ok (Rt.new_object rt1 ~class_name:"counter" ~init:(bytes_s "0") ()) in
      ignore (ok (Rt.invoke rt1 obj ~meth:"incr" ~arg:Bytes.empty));
      (* Node 4 operates on the same object; Khazana keeps the state
         consistent whichever path the call takes. *)
      let v = ok (Rt.invoke rt4 obj ~meth:"incr" ~arg:Bytes.empty) in
      Alcotest.(check string) "sees n1's increment" "2" (Bytes.to_string v);
      let v = ok (Rt.invoke rt1 obj ~meth:"get" ~arg:Bytes.empty) in
      Alcotest.(check string) "n1 sees n4's" "2" (Bytes.to_string v))

let test_explicit_remote_invocation () =
  with_runtimes (fun _sys rt1 rt4 ->
      let obj = ok (Rt.new_object rt1 ~class_name:"counter" ~init:(bytes_s "5") ()) in
      (* Force the RPC path: run the method on node 1 from node 4. *)
      let v = ok (Rt.invoke_at rt4 1 obj ~meth:"incr" ~arg:Bytes.empty) in
      Alcotest.(check string) "remote result" "6" (Bytes.to_string v);
      let s4 = Rt.stats rt4 in
      Alcotest.(check int) "remote counted" 1 s4.Rt.remote_invocations;
      (* invoke_at to self is just local. *)
      let v = ok (Rt.invoke_at rt1 1 obj ~meth:"get" ~arg:Bytes.empty) in
      Alcotest.(check string) "self-at" "6" (Bytes.to_string v))

let test_location_aware_invoke () =
  with_runtimes (fun sys rt1 _rt4 ->
      let obj = ok (Rt.new_object rt1 ~class_name:"counter" ~init:(bytes_s "0") ()) in
      ignore (ok (Rt.invoke rt1 obj ~meth:"incr" ~arg:Bytes.empty));
      (* n1 holds the object: its own invokes must stay local. *)
      let s1 = Rt.stats rt1 in
      Alcotest.(check int) "n1 all local" 0 s1.Rt.remote_invocations;
      Alcotest.(check bool) "n1 holds page" true
        (Khazana.Daemon.holds_page (System.daemon sys 1)
           (Rt.invoke rt1 obj ~meth:"get" ~arg:Bytes.empty |> fun _ -> obj.Rt.addr)))

let test_unknown_class_and_method () =
  with_runtimes (fun _sys rt1 _rt4 ->
      (match Rt.new_object rt1 ~class_name:"nope" ~init:Bytes.empty () with
       | Error (`Unknown_class "nope") -> ()
       | Error e -> Alcotest.failf "wrong error: %s" (Rt.error_to_string e)
       | Ok _ -> Alcotest.fail "unknown class accepted");
      let obj = ok (Rt.new_object rt1 ~class_name:"counter" ~init:(bytes_s "0") ()) in
      match Rt.invoke rt1 obj ~meth:"destroy_world" ~arg:Bytes.empty with
      | Error (`Unknown_method _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Rt.error_to_string e)
      | Ok _ -> Alcotest.fail "unknown method ran")

let test_pooled_objects () =
  with_runtimes (fun _sys rt1 rt4 ->
      let o1 =
        ok (Rt.new_object rt1 ~class_name:"counter" ~placement:Rt.Pooled
              ~init:(bytes_s "100") ())
      in
      let o2 =
        ok (Rt.new_object rt1 ~class_name:"counter" ~placement:Rt.Pooled
              ~init:(bytes_s "200") ())
      in
      (* Both live in the same page: 256-byte slots. *)
      Alcotest.(check int) "slot spacing" 256
        (Kutil.Gaddr.diff o2.Rt.addr o1.Rt.addr);
      ignore (ok (Rt.invoke rt1 o1 ~meth:"incr" ~arg:Bytes.empty));
      let v = ok (Rt.invoke rt4 o2 ~meth:"get" ~arg:Bytes.empty) in
      Alcotest.(check string) "o2 unaffected" "200" (Bytes.to_string v);
      let v = ok (Rt.invoke rt4 o1 ~meth:"get" ~arg:Bytes.empty) in
      Alcotest.(check string) "o1 incremented" "101" (Bytes.to_string v))

let test_refcounting () =
  with_runtimes (fun _sys rt1 _rt4 ->
      let obj = ok (Rt.new_object rt1 ~class_name:"counter" ~init:(bytes_s "0") ()) in
      Alcotest.(check int) "incref" 2 (ok (Rt.incref rt1 obj));
      Alcotest.(check int) "decref" 1 (ok (Rt.decref rt1 obj));
      Alcotest.(check int) "last ref" 0 (ok (Rt.decref rt1 obj)))

let test_pooled_slot_recycled () =
  with_runtimes (fun _sys rt1 _rt4 ->
      let o1 =
        ok (Rt.new_object rt1 ~class_name:"counter" ~placement:Rt.Pooled
              ~init:(bytes_s "1") ())
      in
      ignore (ok (Rt.decref rt1 o1));
      let o2 =
        ok (Rt.new_object rt1 ~class_name:"counter" ~placement:Rt.Pooled
              ~init:(bytes_s "2") ())
      in
      Alcotest.(check bool) "slot reused" true (Kutil.Gaddr.equal o1.Rt.addr o2.Rt.addr))

let test_adaptive_ship_then_migrate () =
  with_runtimes (fun sys rt1 rt4 ->
      let obj = ok (Rt.new_object rt1 ~class_name:"counter" ~init:(bytes_s "0") ()) in
      ignore (ok (Rt.invoke rt1 obj ~meth:"incr" ~arg:Bytes.empty));
      (* The WAN caller's first invocations ship to a node that holds the
         object; past the migration threshold it faults a replica in and
         goes local. *)
      for _ = 1 to 4 do
        ignore (ok (Rt.invoke rt4 obj ~meth:"incr" ~arg:Bytes.empty))
      done;
      let s4 = Rt.stats rt4 in
      Alcotest.(check int) "shipped below the threshold" 1 s4.Rt.remote_invocations;
      Alcotest.(check int) "then migrated local" 3 s4.Rt.local_invocations;
      Alcotest.(check bool) "replica now resident" true
        (Khazana.Daemon.holds_page (System.daemon sys 4) obj.Rt.addr);
      (* And the final count reflects every increment exactly once. *)
      let v = ok (Rt.invoke rt1 obj ~meth:"get" ~arg:Bytes.empty) in
      Alcotest.(check string) "no lost increments" "5" (Bytes.to_string v))

let test_state_growth_guard () =
  with_runtimes (fun _sys rt1 _rt4 ->
      let big = Bytes.make 5000 'x' in
      match Rt.new_object rt1 ~class_name:"counter" ~init:big () with
      | Error (`Corrupt _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Rt.error_to_string e)
      | Ok _ -> Alcotest.fail "oversized object accepted")

let () =
  Alcotest.run "kobj"
    [
      ( "runtime",
        [
          Alcotest.test_case "new/invoke local" `Quick test_new_invoke_local;
          Alcotest.test_case "cross-node state" `Quick test_cross_node_state_shared;
          Alcotest.test_case "remote invocation" `Quick test_explicit_remote_invocation;
          Alcotest.test_case "location-aware invoke" `Quick test_location_aware_invoke;
          Alcotest.test_case "unknown class/method" `Quick test_unknown_class_and_method;
          Alcotest.test_case "pooled placement" `Quick test_pooled_objects;
          Alcotest.test_case "refcounting" `Quick test_refcounting;
          Alcotest.test_case "slot recycling" `Quick test_pooled_slot_recycled;
          Alcotest.test_case "adaptive ship-then-migrate" `Quick
            test_adaptive_ship_then_migrate;
          Alcotest.test_case "size guard" `Quick test_state_growth_guard;
        ] );
    ]
