(* Unit and property tests for the kutil foundation library. *)

module U128 = Kutil.U128
module Gaddr = Kutil.Gaddr
module Rng = Kutil.Rng
module Codec = Kutil.Codec

let u128 = Alcotest.testable U128.pp U128.equal

(* ------------------------------- U128 ------------------------------ *)

let test_of_to_int () =
  Alcotest.(check int) "roundtrip" 12345 U128.(to_int (of_int 12345));
  Alcotest.(check int) "zero" 0 U128.(to_int zero);
  Alcotest.check_raises "negative" (Invalid_argument "U128.of_int: negative")
    (fun () -> ignore (U128.of_int (-1)))

let test_add_carry () =
  let a = U128.make ~hi:0L ~lo:(-1L) (* 2^64 - 1 *) in
  let b = U128.add a U128.one in
  Alcotest.check u128 "carry into hi" (U128.make ~hi:1L ~lo:0L) b;
  Alcotest.check u128 "sub undoes add" a (U128.sub b U128.one)

let test_sub_borrow () =
  let a = U128.make ~hi:1L ~lo:0L in
  let b = U128.sub a U128.one in
  Alcotest.check u128 "borrow from hi" (U128.make ~hi:0L ~lo:(-1L)) b

let test_wraparound () =
  Alcotest.check u128 "max + 1 = 0" U128.zero (U128.add U128.max_value U128.one);
  Alcotest.check u128 "0 - 1 = max" U128.max_value (U128.sub U128.zero U128.one)

let test_compare_unsigned () =
  (* hi = -1L is a huge unsigned value, not a negative one. *)
  let big = U128.make ~hi:(-1L) ~lo:0L in
  Alcotest.(check bool) "big > one" true (U128.compare big U128.one > 0);
  Alcotest.(check bool) "one < big" true (U128.compare U128.one big < 0);
  Alcotest.check u128 "min" U128.one (U128.min big U128.one);
  Alcotest.check u128 "max" big (U128.max big U128.one)

let test_mul_int () =
  Alcotest.check u128 "7 * 6" (U128.of_int 42) (U128.mul_int (U128.of_int 7) 6);
  let big = U128.make ~hi:0L ~lo:(-1L) in
  (* (2^64-1) * 2 = 2^65 - 2 *)
  Alcotest.check u128 "cross-limb carry"
    (U128.make ~hi:1L ~lo:(-2L))
    (U128.mul_int big 2);
  Alcotest.check u128 "by zero" U128.zero (U128.mul_int big 0)

let test_divmod () =
  let v = U128.of_int 1000003 in
  let q, r = U128.divmod_int v 4096 in
  Alcotest.(check int) "quotient" (1000003 / 4096) (U128.to_int q);
  Alcotest.(check int) "remainder" (1000003 mod 4096) r;
  (* Non power of two. *)
  let q, r = U128.divmod_int v 37 in
  Alcotest.(check int) "npot quotient" (1000003 / 37) (U128.to_int q);
  Alcotest.(check int) "npot remainder" (1000003 mod 37) r;
  (* Dividend above 64 bits. *)
  let huge = U128.make ~hi:5L ~lo:0L in
  let q, r = U128.divmod_int huge 2 in
  Alcotest.check u128 "hi shift" (U128.make ~hi:2L ~lo:0x8000000000000000L) q;
  Alcotest.(check int) "even" 0 r

let test_shift () =
  let v = U128.of_int 1 in
  Alcotest.check u128 "shl 64" (U128.make ~hi:1L ~lo:0L) (U128.shift_left v 64);
  Alcotest.check u128 "shl then shr" v
    (U128.shift_right (U128.shift_left v 100) 100);
  Alcotest.check u128 "shl 128 = 0" U128.zero (U128.shift_left v 128);
  Alcotest.check u128 "cross-boundary"
    (U128.make ~hi:0x10L ~lo:0L)
    (U128.shift_left (U128.of_int 0x100) 60)

let test_hex () =
  let v = U128.make ~hi:0xDEADL ~lo:0xBEEFL in
  Alcotest.check u128 "hex roundtrip" v (U128.of_hex (U128.to_hex v));
  Alcotest.check u128 "0x prefix" (U128.of_int 255) (U128.of_hex "0xff");
  Alcotest.(check string) "compact" "0x2a" (U128.to_string (U128.of_int 42));
  Alcotest.check_raises "empty" (Invalid_argument "U128.of_hex: bad length")
    (fun () -> ignore (U128.of_hex ""))

let test_distance () =
  let a = U128.of_int 100 and b = U128.of_int 260 in
  Alcotest.check u128 "forward" (U128.of_int 160) (U128.distance a b);
  Alcotest.check u128 "backward" (U128.of_int 160) (U128.distance b a)

(* qcheck properties over random 128-bit values *)

let arb_u128 =
  QCheck.make
    ~print:(fun v -> U128.to_string v)
    QCheck.Gen.(
      map2 (fun hi lo -> U128.make ~hi ~lo) int64 int64)

let prop_add_sub =
  QCheck.Test.make ~name:"u128 add/sub inverse" ~count:500
    (QCheck.pair arb_u128 arb_u128)
    (fun (a, b) -> U128.equal a (U128.sub (U128.add a b) b))

let prop_add_commutes =
  QCheck.Test.make ~name:"u128 add commutes" ~count:500
    (QCheck.pair arb_u128 arb_u128)
    (fun (a, b) -> U128.equal (U128.add a b) (U128.add b a))

let prop_compare_total =
  QCheck.Test.make ~name:"u128 compare antisymmetric" ~count:500
    (QCheck.pair arb_u128 arb_u128)
    (fun (a, b) -> U128.compare a b = -U128.compare b a)

let prop_divmod =
  QCheck.Test.make ~name:"u128 divmod reconstructs" ~count:500
    (QCheck.pair arb_u128 (QCheck.int_range 1 1_000_000))
    (fun (v, n) ->
      let q, r = U128.divmod_int v n in
      r >= 0 && r < n && U128.equal v (U128.add (U128.mul_int q n) (U128.of_int r)))

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"u128 hex roundtrip" ~count:500 arb_u128 (fun v ->
      U128.equal v (U128.of_hex (U128.to_hex v)))

(* ------------------------------ Gaddr ------------------------------ *)

let test_page_math () =
  let a = Gaddr.of_int 10_000 in
  Alcotest.check u128 "floor" (Gaddr.of_int 8192)
    (Gaddr.page_floor a ~page_size:4096);
  Alcotest.(check int) "offset" (10_000 - 8192)
    (Gaddr.page_offset a ~page_size:4096);
  Alcotest.(check bool) "aligned" true
    (Gaddr.is_page_aligned (Gaddr.of_int 8192) ~page_size:4096)

let test_pages_in () =
  let pages = Gaddr.pages_in (Gaddr.of_int 4000) ~len:5000 ~page_size:4096 in
  Alcotest.(check int) "spans three pages" 3 (List.length pages);
  Alcotest.check u128 "first" Gaddr.zero (List.hd pages);
  Alcotest.(check int) "empty" 0
    (List.length (Gaddr.pages_in Gaddr.zero ~len:0 ~page_size:4096));
  (* exactly one page *)
  Alcotest.(check int) "one page" 1
    (List.length (Gaddr.pages_in (Gaddr.of_int 4096) ~len:4096 ~page_size:4096))

let test_diff () =
  Alcotest.(check int) "diff" 42
    (Gaddr.diff (Gaddr.of_int 142) (Gaddr.of_int 100));
  Alcotest.check_raises "negative" (Invalid_argument "Gaddr.diff: negative")
    (fun () -> ignore (Gaddr.diff (Gaddr.of_int 1) (Gaddr.of_int 2)))

(* ------------------------------- Rng ------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create ~seed:7 in
  let child = Rng.split a in
  let v1 = Rng.int64 child in
  (* Re-derive: same parent seed, same split point -> same child stream. *)
  let a' = Rng.create ~seed:7 in
  let child' = Rng.split a' in
  Alcotest.(check int64) "derived stream deterministic" v1 (Rng.int64 child')

let test_rng_bounds () =
  let r = Rng.create ~seed:11 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let f = Rng.float r 2.5 in
    Alcotest.(check bool) "float range" true (f >= 0.0 && f < 2.5)
  done;
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0))

let test_rng_exponential_positive () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "positive" true (Rng.exponential r ~mean:5.0 > 0.0)
  done

let test_rng_shuffle_permutes () =
  let r = Rng.create ~seed:5 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------- Heap ------------------------------ *)

let test_heap_sorts () =
  let h = Kutil.Heap.create ~cmp:compare in
  List.iter (Kutil.Heap.push h) [ 5; 1; 4; 1; 5; 9; 2; 6 ];
  let rec drain acc =
    match Kutil.Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 4; 5; 5; 6; 9 ] (drain [])

let test_heap_stability_via_seq () =
  (* Equal priorities break ties by an explicit sequence number. *)
  let h = Kutil.Heap.create ~cmp:(fun (p1, s1, _) (p2, s2, _) ->
      match compare p1 p2 with 0 -> compare s1 s2 | c -> c)
  in
  List.iteri (fun i label -> Kutil.Heap.push h (1, i, label)) [ "a"; "b"; "c" ];
  let pop () = match Kutil.Heap.pop h with Some (_, _, l) -> l | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "fifo for equal prio" [ "a"; "b"; "c" ]
    [ first; second; third ]

let test_heap_empty () =
  let h = Kutil.Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Kutil.Heap.is_empty h);
  Alcotest.(check (option int)) "pop empty" None (Kutil.Heap.pop h);
  Alcotest.(check (option int)) "peek empty" None (Kutil.Heap.peek h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Kutil.Heap.create ~cmp:compare in
      List.iter (Kutil.Heap.push h) xs;
      let rec drain acc =
        match Kutil.Heap.pop h with
        | None -> List.rev acc
        | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

(* -------------------------------- Lru ------------------------------ *)

let test_lru_evicts_oldest () =
  let lru = Kutil.Lru.create ~capacity:2 () in
  Alcotest.(check (option (pair int string))) "no evict" None
    (Kutil.Lru.put lru 1 "a");
  ignore (Kutil.Lru.put lru 2 "b");
  Alcotest.(check (option (pair int string))) "evicts 1" (Some (1, "a"))
    (Kutil.Lru.put lru 3 "c");
  Alcotest.(check (option string)) "2 stays" (Some "b") (Kutil.Lru.find lru 2)

let test_lru_touch_on_find () =
  let lru = Kutil.Lru.create ~capacity:2 () in
  ignore (Kutil.Lru.put lru 1 "a");
  ignore (Kutil.Lru.put lru 2 "b");
  ignore (Kutil.Lru.find lru 1);
  (* 2 is now the LRU entry. *)
  Alcotest.(check (option (pair int string))) "evicts 2" (Some (2, "b"))
    (Kutil.Lru.put lru 3 "c")

let test_lru_peek_no_touch () =
  let lru = Kutil.Lru.create ~capacity:2 () in
  ignore (Kutil.Lru.put lru 1 "a");
  ignore (Kutil.Lru.put lru 2 "b");
  ignore (Kutil.Lru.peek lru 1);
  Alcotest.(check (option (pair int string))) "still evicts 1" (Some (1, "a"))
    (Kutil.Lru.put lru 3 "c")

let test_lru_replace () =
  let lru = Kutil.Lru.create ~capacity:2 () in
  ignore (Kutil.Lru.put lru 1 "a");
  ignore (Kutil.Lru.put lru 1 "a2");
  Alcotest.(check int) "no duplicate" 1 (Kutil.Lru.length lru);
  Alcotest.(check (option string)) "updated" (Some "a2") (Kutil.Lru.find lru 1)

let test_lru_remove () =
  let lru = Kutil.Lru.create ~capacity:4 () in
  ignore (Kutil.Lru.put lru 1 "a");
  ignore (Kutil.Lru.put lru 2 "b");
  Kutil.Lru.remove lru 1;
  Alcotest.(check int) "one left" 1 (Kutil.Lru.length lru);
  Alcotest.(check (option string)) "gone" None (Kutil.Lru.find lru 1);
  Kutil.Lru.remove lru 99 (* absent: no-op *)

let test_lru_iter_order () =
  let lru = Kutil.Lru.create ~capacity:4 () in
  ignore (Kutil.Lru.put lru 1 "a");
  ignore (Kutil.Lru.put lru 2 "b");
  ignore (Kutil.Lru.put lru 3 "c");
  ignore (Kutil.Lru.find lru 1);
  let order = ref [] in
  Kutil.Lru.iter (fun k _ -> order := k :: !order) lru;
  Alcotest.(check (list int)) "mru first" [ 1; 3; 2 ] (List.rev !order)

(* ------------------------------- Codec ----------------------------- *)

let test_codec_roundtrip () =
  let e = Codec.encoder () in
  Codec.u8 e 200;
  Codec.u16 e 65535;
  Codec.u32 e 0xFFFF_FFFF;
  Codec.u64 e (-1L);
  Codec.int e (-42);
  Codec.u128 e (U128.make ~hi:1L ~lo:2L);
  Codec.bool e true;
  Codec.string e "hello";
  Codec.bytes e (Bytes.of_string "\x00\x01\x02");
  Codec.list e (fun x -> Codec.int e x) [ 1; 2; 3 ];
  Codec.option e (fun s -> Codec.string e s) (Some "x");
  Codec.option e (fun s -> Codec.string e s) None;
  let d = Codec.decoder (Codec.to_bytes e) in
  Alcotest.(check int) "u8" 200 (Codec.read_u8 d);
  Alcotest.(check int) "u16" 65535 (Codec.read_u16 d);
  Alcotest.(check int) "u32" 0xFFFF_FFFF (Codec.read_u32 d);
  Alcotest.(check int64) "u64" (-1L) (Codec.read_u64 d);
  Alcotest.(check int) "int" (-42) (Codec.read_int d);
  Alcotest.check u128 "u128" (U128.make ~hi:1L ~lo:2L) (Codec.read_u128 d);
  Alcotest.(check bool) "bool" true (Codec.read_bool d);
  Alcotest.(check string) "string" "hello" (Codec.read_string d);
  Alcotest.(check string) "bytes" "\x00\x01\x02"
    (Bytes.to_string (Codec.read_bytes d));
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ]
    (Codec.read_list d (fun () -> Codec.read_int d));
  Alcotest.(check (option string)) "some" (Some "x")
    (Codec.read_option d (fun () -> Codec.read_string d));
  Alcotest.(check (option string)) "none" None
    (Codec.read_option d (fun () -> Codec.read_string d));
  Alcotest.(check int) "drained" 0 (Codec.remaining d)

let test_codec_underflow () =
  let d = Codec.decoder (Bytes.create 2) in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Codec.read_u64 d);
       false
     with Codec.Decode_error _ -> true)

let test_codec_bad_tags () =
  let e = Codec.encoder () in
  Codec.u8 e 7;
  let d = Codec.decoder (Codec.to_bytes e) in
  Alcotest.(check bool) "bad bool" true
    (try
       ignore (Codec.read_bool d);
       false
     with Codec.Decode_error _ -> true)

(* ------------------------------- Stats ----------------------------- *)

let test_stats_summary () =
  let s = Kutil.Stats.summary () in
  List.iter (Kutil.Stats.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Alcotest.(check int) "n" 5 (Kutil.Stats.samples s);
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Kutil.Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Kutil.Stats.minimum s);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Kutil.Stats.maximum s);
  Alcotest.(check (float 1e-9)) "p50" 3.0 (Kutil.Stats.percentile s 50.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Kutil.Stats.percentile s 100.0);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.5) (Kutil.Stats.stddev s)

let test_stats_empty () =
  let s = Kutil.Stats.summary () in
  Alcotest.(check (float 0.0)) "mean empty" 0.0 (Kutil.Stats.mean s);
  Alcotest.(check (float 0.0)) "p99 empty" 0.0 (Kutil.Stats.percentile s 99.0)

let test_stats_counter () =
  let c = Kutil.Stats.counter () in
  Kutil.Stats.incr c;
  Kutil.Stats.incr ~by:5 c;
  Alcotest.(check int) "count" 6 (Kutil.Stats.count c);
  Kutil.Stats.reset_counter c;
  Alcotest.(check int) "reset" 0 (Kutil.Stats.count c)

let test_stats_table () =
  let t = Kutil.Stats.table ~columns:[ "a"; "bb" ] in
  Kutil.Stats.row t [ "xxx"; "y" ];
  let rendered = Kutil.Stats.render t in
  Alcotest.(check bool) "has header" true
    (String.length rendered > 0
    && String.sub rendered 0 1 = "a")

(* Decoders over attacker-controlled bytes must fail closed: any input
   either decodes or raises Decode_error — never an unexpected exception. *)
let prop_decoder_fails_closed =
  QCheck.Test.make ~name:"decoders fail closed on random bytes" ~count:300
    QCheck.(string_of_size (QCheck.Gen.int_range 0 64))
    (fun s ->
      let b = Bytes.of_string s in
      let probe f = try ignore (f ()) with Codec.Decode_error _ -> () in
      probe (fun () -> Codec.read_u128 (Codec.decoder b));
      probe (fun () -> Codec.read_string (Codec.decoder b));
      probe (fun () -> Codec.read_list (Codec.decoder b) (fun () -> ()));
      probe (fun () ->
          Codec.read_option (Codec.decoder b) (fun () ->
              Codec.read_u64 (Codec.decoder b)));
      true)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "kutil"
    [
      ( "u128",
        [
          Alcotest.test_case "of/to int" `Quick test_of_to_int;
          Alcotest.test_case "add carry" `Quick test_add_carry;
          Alcotest.test_case "sub borrow" `Quick test_sub_borrow;
          Alcotest.test_case "wraparound" `Quick test_wraparound;
          Alcotest.test_case "unsigned compare" `Quick test_compare_unsigned;
          Alcotest.test_case "mul_int" `Quick test_mul_int;
          Alcotest.test_case "divmod" `Quick test_divmod;
          Alcotest.test_case "shifts" `Quick test_shift;
          Alcotest.test_case "hex" `Quick test_hex;
          Alcotest.test_case "distance" `Quick test_distance;
        ] );
      qsuite "u128-properties"
        [ prop_add_sub; prop_add_commutes; prop_compare_total; prop_divmod;
          prop_hex_roundtrip ];
      ( "gaddr",
        [
          Alcotest.test_case "page math" `Quick test_page_math;
          Alcotest.test_case "pages_in" `Quick test_pages_in;
          Alcotest.test_case "diff" `Quick test_diff;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "exponential" `Quick test_rng_exponential_positive;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "tie-break by seq" `Quick test_heap_stability_via_seq;
          Alcotest.test_case "empty" `Quick test_heap_empty;
        ] );
      qsuite "heap-properties" [ prop_heap_sorts ];
      ( "lru",
        [
          Alcotest.test_case "evicts oldest" `Quick test_lru_evicts_oldest;
          Alcotest.test_case "find touches" `Quick test_lru_touch_on_find;
          Alcotest.test_case "peek does not touch" `Quick test_lru_peek_no_touch;
          Alcotest.test_case "replace" `Quick test_lru_replace;
          Alcotest.test_case "remove" `Quick test_lru_remove;
          Alcotest.test_case "iter order" `Quick test_lru_iter_order;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "underflow" `Quick test_codec_underflow;
          Alcotest.test_case "bad tags" `Quick test_codec_bad_tags;
          QCheck_alcotest.to_alcotest prop_decoder_fails_closed;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "counter" `Quick test_stats_counter;
          Alcotest.test_case "table" `Quick test_stats_table;
        ] );
    ]
