(* Tests for the discrete-event engine, promises and fibers. *)

module Engine = Ksim.Engine
module Promise = Ksim.Promise
module Fiber = Ksim.Fiber
module Time = Ksim.Time

(* ------------------------------ Engine ----------------------------- *)

let test_clock_advances () =
  let eng = Engine.create () in
  let seen = ref [] in
  ignore (Engine.schedule eng ~after:(Time.ms 5) (fun () -> seen := 5 :: !seen));
  ignore (Engine.schedule eng ~after:(Time.ms 1) (fun () -> seen := 1 :: !seen));
  ignore (Engine.schedule eng ~after:(Time.ms 3) (fun () -> seen := 3 :: !seen));
  Engine.run eng;
  Alcotest.(check (list int)) "time order" [ 1; 3; 5 ] (List.rev !seen);
  Alcotest.(check int) "clock at last event" (Time.ms 5) (Engine.now eng)

let test_same_time_fifo () =
  let eng = Engine.create () in
  let seen = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule eng ~after:(Time.ms 1) (fun () -> seen := i :: !seen))
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "scheduling order" [ 1; 2; 3; 4; 5 ] (List.rev !seen)

let test_cancel () =
  let eng = Engine.create () in
  let fired = ref false in
  let timer = Engine.schedule eng ~after:(Time.ms 1) (fun () -> fired := true) in
  Engine.cancel timer;
  Engine.run eng;
  Alcotest.(check bool) "cancelled timer silent" false !fired

let test_run_until () =
  let eng = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule eng ~after:(Time.ms i) (fun () -> incr count))
  done;
  Engine.run ~until:(Time.ms 5) eng;
  Alcotest.(check int) "first five" 5 !count;
  Alcotest.(check int) "clock clamped" (Time.ms 5) (Engine.now eng);
  Engine.run eng;
  Alcotest.(check int) "rest fire later" 10 !count

let test_nested_schedule () =
  let eng = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule eng ~after:(Time.ms 1) (fun () ->
         log := "outer" :: !log;
         ignore
           (Engine.schedule eng ~after:(Time.ms 1) (fun () ->
                log := "inner" :: !log))));
  Engine.run eng;
  Alcotest.(check (list string)) "nesting" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.(check int) "clock" (Time.ms 2) (Engine.now eng)

let test_events_fired () =
  let eng = Engine.create () in
  for _ = 1 to 7 do
    ignore (Engine.schedule eng ~after:0 ignore)
  done;
  Engine.run eng;
  Alcotest.(check int) "count" 7 (Engine.events_fired eng)

let test_determinism_across_runs () =
  let trace seed =
    let eng = Engine.create ~seed () in
    let rng = Engine.rng eng in
    let log = Buffer.create 64 in
    for _ = 1 to 20 do
      let d = Kutil.Rng.int rng 1000 in
      ignore
        (Engine.schedule eng ~after:d (fun () ->
             Buffer.add_string log (string_of_int (Engine.now eng) ^ ";")))
    done;
    Engine.run eng;
    Buffer.contents log
  in
  Alcotest.(check string) "same seed same trace" (trace 9) (trace 9);
  Alcotest.(check bool) "different seed differs" true (trace 9 <> trace 10)

(* ----------------------------- Promise ----------------------------- *)

let test_promise_resolve () =
  let p = Promise.create () in
  Alcotest.(check bool) "pending" false (Promise.is_resolved p);
  let got = ref None in
  Promise.on_resolve p (fun v -> got := Some v);
  Promise.resolve p 42;
  Alcotest.(check (option int)) "callback" (Some 42) !got;
  Alcotest.(check (option int)) "peek" (Some 42) (Promise.peek p)

let test_promise_double_resolve () =
  let p = Promise.create () in
  Promise.resolve p 1;
  Alcotest.(check bool) "try_resolve refused" false (Promise.try_resolve p 2);
  Alcotest.check_raises "resolve raises"
    (Invalid_argument "Promise.resolve: already resolved") (fun () ->
      Promise.resolve p 3)

let test_promise_late_callback () =
  let p = Promise.resolved 7 in
  let got = ref 0 in
  Promise.on_resolve p (fun v -> got := v);
  Alcotest.(check int) "immediate" 7 !got

let test_promise_callback_order () =
  let p = Promise.create () in
  let log = ref [] in
  Promise.on_resolve p (fun _ -> log := 1 :: !log);
  Promise.on_resolve p (fun _ -> log := 2 :: !log);
  Promise.resolve p ();
  Alcotest.(check (list int)) "registration order" [ 1; 2 ] (List.rev !log)

let test_map_into () =
  let src = Promise.create () and dst = Promise.create () in
  Promise.map_into src dst string_of_int;
  Promise.resolve src 5;
  Alcotest.(check (option string)) "mapped" (Some "5") (Promise.peek dst)

(* ------------------------------ Fiber ------------------------------ *)

let test_fiber_sleep () =
  let eng = Engine.create () in
  let woke = ref (-1) in
  Fiber.spawn eng (fun () ->
      Fiber.sleep (Time.ms 10);
      woke := Engine.now eng);
  Engine.run eng;
  Alcotest.(check int) "woke at 10ms" (Time.ms 10) !woke

let test_fiber_await () =
  let eng = Engine.create () in
  let p = Promise.create () in
  let got = ref 0 in
  Fiber.spawn eng (fun () -> got := Fiber.await p);
  Fiber.spawn eng (fun () ->
      Fiber.sleep (Time.ms 3);
      Promise.resolve p 99);
  Engine.run eng;
  Alcotest.(check int) "value" 99 !got

let test_fiber_await_resolved () =
  let eng = Engine.create () in
  let got = ref 0 in
  Fiber.spawn eng (fun () -> got := Fiber.await (Promise.resolved 5));
  Engine.run eng;
  Alcotest.(check int) "no suspension needed" 5 !got

let test_fiber_timeout () =
  let eng = Engine.create () in
  let result = ref (Some ()) in
  Fiber.spawn eng (fun () ->
      result := Fiber.await_timeout eng (Promise.create ()) ~timeout:(Time.ms 5));
  Engine.run eng;
  Alcotest.(check (option unit)) "timed out" None !result;
  Alcotest.(check int) "clock at timeout" (Time.ms 5) (Engine.now eng)

let test_fiber_timeout_wins_race () =
  let eng = Engine.create () in
  let p = Promise.create () in
  let result = ref None in
  Fiber.spawn eng (fun () ->
      result := Fiber.await_timeout eng p ~timeout:(Time.ms 10));
  Fiber.spawn eng (fun () ->
      Fiber.sleep (Time.ms 2);
      Promise.resolve p 1);
  Engine.run eng;
  Alcotest.(check (option int)) "resolution wins" (Some 1) !result

let test_fiber_exception_propagates () =
  let eng = Engine.create () in
  Fiber.spawn eng ~name:"dying" (fun () -> failwith "boom");
  Alcotest.(check bool) "raises Fiber_failure" true
    (try
       Engine.run eng;
       false
     with Fiber.Fiber_failure (name, Failure msg) -> name = "dying" && msg = "boom")

let test_fiber_async_join () =
  let eng = Engine.create () in
  let sum = ref 0 in
  Fiber.spawn eng (fun () ->
      let children =
        List.map
          (fun d ->
            Fiber.async eng (fun () ->
                Fiber.sleep (Time.ms d);
                sum := !sum + d))
          [ 3; 1; 2 ]
      in
      Fiber.join_all children);
  Engine.run eng;
  Alcotest.(check int) "all ran" 6 !sum

let test_fiber_many_interleaved () =
  let eng = Engine.create () in
  let log = ref [] in
  for i = 1 to 3 do
    Fiber.spawn eng (fun () ->
        for step = 1 to 3 do
          Fiber.sleep (Time.ms i);
          log := (i, step) :: !log
        done)
  done;
  Engine.run eng;
  Alcotest.(check int) "all steps" 9 (List.length !log);
  (* Fiber 1 wakes at 1,2,3ms; fiber 3 at 3,6,9ms: last event is (3,3). *)
  Alcotest.(check (pair int int)) "last" (3, 3) (List.hd !log)

let test_blocking_outside_fiber_fails () =
  Alcotest.(check bool) "sleep outside fiber fails" true
    (try
       Fiber.sleep 1;
       false
     with Failure _ -> true)

let () =
  Alcotest.run "ksim"
    [
      ( "engine",
        [
          Alcotest.test_case "clock advances in order" `Quick test_clock_advances;
          Alcotest.test_case "same-time fifo" `Quick test_same_time_fifo;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "run ~until" `Quick test_run_until;
          Alcotest.test_case "nested schedule" `Quick test_nested_schedule;
          Alcotest.test_case "events_fired" `Quick test_events_fired;
          Alcotest.test_case "deterministic" `Quick test_determinism_across_runs;
        ] );
      ( "promise",
        [
          Alcotest.test_case "resolve" `Quick test_promise_resolve;
          Alcotest.test_case "double resolve" `Quick test_promise_double_resolve;
          Alcotest.test_case "late callback" `Quick test_promise_late_callback;
          Alcotest.test_case "callback order" `Quick test_promise_callback_order;
          Alcotest.test_case "map_into" `Quick test_map_into;
        ] );
      ( "fiber",
        [
          Alcotest.test_case "sleep" `Quick test_fiber_sleep;
          Alcotest.test_case "await" `Quick test_fiber_await;
          Alcotest.test_case "await resolved" `Quick test_fiber_await_resolved;
          Alcotest.test_case "timeout" `Quick test_fiber_timeout;
          Alcotest.test_case "timeout race" `Quick test_fiber_timeout_wins_race;
          Alcotest.test_case "exceptions" `Quick test_fiber_exception_propagates;
          Alcotest.test_case "async/join" `Quick test_fiber_async_join;
          Alcotest.test_case "interleaving" `Quick test_fiber_many_interleaved;
          Alcotest.test_case "outside fiber" `Quick test_blocking_outside_fiber_fails;
        ] );
    ]
