(* Tests for the two-tier local page store. *)

module Store = Kstorage.Page_store
module Gaddr = Kutil.Gaddr
module Time = Ksim.Time

let page n = Gaddr.of_int (n * 4096)
let data s = Bytes.of_string s

let in_fiber eng f =
  let result = ref None in
  Ksim.Fiber.spawn eng (fun () -> result := Some (f ()));
  Ksim.Engine.run eng;
  match !result with Some v -> v | None -> Alcotest.fail "fiber did not finish"

let mk ?(ram = 4) ?(disk = 16) () =
  let eng = Ksim.Engine.create () in
  (eng, Store.create eng (Store.config ~ram_pages:ram ~disk_pages:disk ()))

let test_write_read () =
  let eng, s = mk () in
  in_fiber eng (fun () ->
      Store.write s (page 1) (data "hello") ~dirty:false;
      match Store.read s (page 1) with
      | Some b -> Alcotest.(check string) "content" "hello" (Bytes.to_string b)
      | None -> Alcotest.fail "missing");
  Alcotest.(check int) "one ram page" 1 (Store.ram_used s)

let test_read_returns_copy () =
  let eng, s = mk () in
  in_fiber eng (fun () ->
      Store.write s (page 1) (data "abc") ~dirty:false;
      (match Store.read s (page 1) with
       | Some b -> Bytes.set b 0 'X'
       | None -> Alcotest.fail "missing");
      match Store.read s (page 1) with
      | Some b -> Alcotest.(check string) "unchanged" "abc" (Bytes.to_string b)
      | None -> Alcotest.fail "missing")

let test_miss () =
  let eng, s = mk () in
  in_fiber eng (fun () ->
      Alcotest.(check (option unit)) "miss" None
        (Option.map ignore (Store.read s (page 9))));
  Alcotest.(check int) "counted" 1 (Store.stats s).misses

let test_ram_latency_vs_disk () =
  let eng, s = mk ~ram:1 () in
  in_fiber eng (fun () ->
      Store.write s (page 1) (data "a") ~dirty:false;
      (* Push page 1 to disk by filling RAM. *)
      Store.write s (page 2) (data "b") ~dirty:false;
      let t0 = Ksim.Engine.now eng in
      ignore (Store.read s (page 2));
      let ram_cost = Ksim.Engine.now eng - t0 in
      let t1 = Ksim.Engine.now eng in
      ignore (Store.read s (page 1));
      let disk_cost = Ksim.Engine.now eng - t1 in
      Alcotest.(check bool) "disk much slower" true (disk_cost > 100 * ram_cost))

let test_eviction_to_disk () =
  let eng, s = mk ~ram:2 () in
  in_fiber eng (fun () ->
      Store.write s (page 1) (data "one") ~dirty:false;
      Store.write s (page 2) (data "two") ~dirty:false;
      Store.write s (page 3) (data "three") ~dirty:false;
      Alcotest.(check int) "ram capped" 2 (Store.ram_used s);
      Alcotest.(check int) "victim on disk" 1 (Store.disk_used s);
      Alcotest.(check bool) "lru victim" true (Store.where s (page 1) = Some Store.Disk);
      (* Disk hit promotes back into RAM. *)
      match Store.read s (page 1) with
      | Some b ->
        Alcotest.(check string) "survived" "one" (Bytes.to_string b);
        Alcotest.(check bool) "promoted" true (Store.where s (page 1) = Some Store.Ram)
      | None -> Alcotest.fail "lost");
  let st = Store.stats s in
  Alcotest.(check bool) "evictions counted" true (st.ram_evictions >= 1);
  Alcotest.(check int) "disk hit" 1 st.disk_hits

let test_pinned_not_victimised () =
  let eng, s = mk ~ram:2 () in
  in_fiber eng (fun () ->
      Store.write s (page 1) (data "pinned") ~dirty:false;
      Store.pin s (page 1);
      Store.write s (page 2) (data "b") ~dirty:false;
      Store.write s (page 3) (data "c") ~dirty:false;
      Store.write s (page 4) (data "d") ~dirty:false;
      Alcotest.(check bool) "pinned stays in ram" true
        (Store.where s (page 1) = Some Store.Ram);
      Store.unpin s (page 1);
      Store.write s (page 5) (data "e") ~dirty:false;
      Store.write s (page 6) (data "f") ~dirty:false;
      Alcotest.(check bool) "unpinned can move" true
        (Store.where s (page 1) <> Some Store.Ram))

let test_evict_hook_on_disk_overflow () =
  let eng, s = mk ~ram:1 ~disk:2 () in
  let evicted = ref [] in
  Store.set_evict_hook s (fun addr _bytes ~dirty -> evicted := (addr, dirty) :: !evicted);
  in_fiber eng (fun () ->
      Store.write s (page 1) (data "1") ~dirty:true;
      Store.write s (page 2) (data "2") ~dirty:false;
      Store.write s (page 3) (data "3") ~dirty:false;
      Store.write s (page 4) (data "4") ~dirty:false);
  (* ram=1, disk=2: the fourth write must push one page off the disk. *)
  Alcotest.(check bool) "hook called" true (List.length !evicted >= 1);
  let st = Store.stats s in
  Alcotest.(check bool) "writeback counted for dirty" true
    (st.writebacks >= if List.exists snd !evicted then 1 else 0)

let test_dirty_tracking () =
  let eng, s = mk () in
  in_fiber eng (fun () ->
      Store.write s (page 1) (data "x") ~dirty:true;
      Alcotest.(check bool) "dirty" true (Store.is_dirty s (page 1));
      Store.mark_clean s (page 1);
      Alcotest.(check bool) "clean" false (Store.is_dirty s (page 1));
      (* Dirty bit is sticky across clean writes. *)
      Store.write s (page 1) (data "y") ~dirty:true;
      Store.write s (page 1) (data "z") ~dirty:false;
      Alcotest.(check bool) "sticky" true (Store.is_dirty s (page 1)))

let test_immediate_ops () =
  let _eng, s = mk () in
  (* No fiber needed: immediate ops never sleep. *)
  Store.write_immediate s (page 1) (data "imm") ~dirty:false;
  (match Store.read_immediate s (page 1) with
   | Some b -> Alcotest.(check string) "content" "imm" (Bytes.to_string b)
   | None -> Alcotest.fail "missing");
  Alcotest.(check (option unit)) "absent" None
    (Option.map ignore (Store.read_immediate s (page 2)))

let test_drop () =
  let eng, s = mk () in
  in_fiber eng (fun () -> Store.write s (page 1) (data "x") ~dirty:true);
  Store.drop s (page 1);
  Alcotest.(check (option unit)) "gone" None
    (Option.map ignore (Store.read_immediate s (page 1)))

let test_crash_loses_ram_keeps_disk () =
  let eng, s = mk ~ram:1 () in
  in_fiber eng (fun () ->
      Store.write s (page 1) (data "old") ~dirty:false;
      Store.write s (page 2) (data "new") ~dirty:false);
  (* page 1 is on disk, page 2 in RAM. *)
  Store.crash s;
  Alcotest.(check bool) "ram gone" true (Store.where s (page 2) = None);
  Alcotest.(check bool) "disk survives" true (Store.where s (page 1) = Some Store.Disk)

let test_pages_listing () =
  let eng, s = mk ~ram:1 () in
  in_fiber eng (fun () ->
      Store.write s (page 1) (data "a") ~dirty:false;
      Store.write s (page 2) (data "b") ~dirty:false);
  let pages = List.sort Gaddr.compare (Store.pages s) in
  Alcotest.(check int) "two pages" 2 (List.length pages);
  Alcotest.(check bool) "page1 listed" true
    (List.exists (Gaddr.equal (page 1)) pages)

let () =
  Alcotest.run "kstorage"
    [
      ( "page_store",
        [
          Alcotest.test_case "write/read" `Quick test_write_read;
          Alcotest.test_case "read copies" `Quick test_read_returns_copy;
          Alcotest.test_case "miss" `Quick test_miss;
          Alcotest.test_case "ram vs disk latency" `Quick test_ram_latency_vs_disk;
          Alcotest.test_case "eviction to disk" `Quick test_eviction_to_disk;
          Alcotest.test_case "pinning" `Quick test_pinned_not_victimised;
          Alcotest.test_case "evict hook" `Quick test_evict_hook_on_disk_overflow;
          Alcotest.test_case "dirty tracking" `Quick test_dirty_tracking;
          Alcotest.test_case "immediate ops" `Quick test_immediate_ops;
          Alcotest.test_case "drop" `Quick test_drop;
          Alcotest.test_case "crash semantics" `Quick test_crash_loses_ram_keeps_disk;
          Alcotest.test_case "pages listing" `Quick test_pages_listing;
        ] );
    ]
