(* Ablations over design knobs DESIGN.md calls out: the cluster-manager
   hint machinery, the CM suspicion timeout, and the paper's
   load-balance-by-adding-instances claim for the filesystem. *)

open Bench_common

(* --- A1: cluster hints — refresh period vs lookup latency and traffic --- *)

let hint_period_run ~report_ms =
  let config =
    { Daemon.default_config with
      Daemon.report_every =
        (if report_ms = 0 then Ksim.Time.sec 3600 (* effectively off *)
         else Ksim.Time.ms report_ms);
    }
  in
  let sys = System.create ~config ~nodes_per_cluster:4 ~clusters:1 () in
  (* Node 1 creates regions over time; node 2 cold-locates each shortly
     after creation. With fresh hints the cluster manager answers; without,
     every lookup walks the tree. *)
  let lookup_ms = Stats.summary () in
  let d2 = System.daemon sys 2 in
  Daemon.reset_lookup_stats d2;
  System.run_fiber sys (fun () ->
      let c1 = System.client sys 1 () in
      for _ = 1 to 15 do
        let r = ok (Client.create_region c1 4096) in
        ok (Client.write_bytes c1 ~addr:r.Region.base (Bytes.make 8 'h'));
        Ksim.Fiber.sleep (Ksim.Time.ms 700);
        let (), ms =
          timed sys (fun () ->
              match Daemon.locate_region d2 r.Region.base with
              | Ok _ -> ()
              | Error e -> failwith (Daemon.error_to_string e))
        in
        Stats.add lookup_ms ms
      done);
  let s = Daemon.lookup_stats d2 in
  let stats = Khazana.Wire.Sim.Net.stats (System.net sys) in
  let report_msgs =
    match List.assoc_opt "cluster_report" stats.by_kind with
    | Some n -> n
    | None -> 0
  in
  (Stats.mean lookup_ms, s.Daemon.cluster_hits, s.Daemon.map_walks, report_msgs)

let run_hint_ablation () =
  header "Ablation A1: cluster-manager hint refresh period"
    "Cold lookups from a cluster-mate, 700ms after each region's creation.";
  let table =
    Stats.table
      ~columns:
        [ "report period"; "mean lookup (ms)"; "cluster hits"; "map walks";
          "hint msgs" ]
  in
  List.iter
    (fun report_ms ->
      let mean, hits, walks, msgs = hint_period_run ~report_ms in
      Stats.row table
        [ (if report_ms = 0 then "off" else Printf.sprintf "%dms" report_ms);
          f3 mean; string_of_int hits; string_of_int walks; string_of_int msgs ])
    [ 100; 500; 2000; 0 ];
  print_table table

(* --- A2: CM suspicion timeout vs fail-over latency under partition --- *)

let timeout_run ~request_timeout_ms =
  let config =
    { Daemon.default_config with
      Daemon.request_timeout = Ksim.Time.ms request_timeout_ms;
      lock_timeout = Ksim.Time.sec 30;
      lock_retries = 1;
    }
  in
  let sys = System.create ~config ~nodes_per_cluster:6 ~clusters:1 () in
  let c1 = System.client sys 1 () in
  let region =
    System.run_fiber sys (fun () ->
        let attr = Attr.make ~owner:1 ~min_replicas:3 () in
        let r = ok (Client.create_region c1 ~attr 4096) in
        ok (Client.write_bytes c1 ~addr:r.Region.base (Bytes.make 8 'x'));
        r)
  in
  System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys;
  (* n2 takes ownership, then is partitioned away (silent, not crashed — so
     fail-fast does not apply and the timeout machinery must run). *)
  let c2 = System.client sys 2 () in
  System.run_fiber sys (fun () ->
      ok (Client.write_bytes c2 ~addr:region.Region.base (Bytes.make 8 'y')));
  System.partition sys [ 2 ] [ 0; 1; 3; 4; 5 ];
  let c3 = System.client sys 3 () in
  let result, ms =
    timed sys (fun () ->
        System.run_fiber sys (fun () ->
            Client.read_bytes c3 ~addr:region.Region.base 8))
  in
  System.heal sys;
  (ms, Result.is_ok result)

let run_timeout_ablation () =
  header "Ablation A2: CM suspicion budget vs fail-over latency"
    "The page's owner is silently partitioned away; a reader must fail over\n\
     to a replica. The manager re-sends up to 60 times before suspecting.";
  let table =
    Stats.table
      ~columns:[ "request_timeout"; "read latency (ms)"; "succeeded" ]
  in
  List.iter
    (fun ms ->
      let latency, okd = timeout_run ~request_timeout_ms:ms in
      Stats.row table
        [ Printf.sprintf "%dms" ms; f1 latency; string_of_bool okd ])
    [ 25; 50; 100; 200 ];
  print_table table;
  print_endline
    "(shorter timeouts fail over faster but suspect slow peers sooner: the\n\
     classic failure-detector trade-off, here bounded by 60 re-sends)"

(* --- A3: filesystem load balancing by adding instances (§4.1) --- *)

let fs_instances_run ~instances =
  let sys = System.create ~nodes_per_cluster:6 ~clusters:1 () in
  let c1 = System.client sys 1 () in
  let sb = System.run_fiber sys (fun () -> fs_ok (Kfs.Fs.format c1 ())) in
  System.run_fiber sys (fun () ->
      let fs = fs_ok (Kfs.Fs.mount c1 sb) in
      fs_ok (Kfs.Fs.create fs "/hot");
      fs_ok (Kfs.Fs.write fs "/hot" ~off:0 (Bytes.make 4096 'h')));
  (* [instances] mounts spread over the cluster each serve the hot file
     (think: web servers serving one popular page). Mount + first fetch
     happen before timing: the claim is about steady-state serving
     capacity. *)
  let reads_per_instance = 50 in
  let mounts =
    System.run_fiber sys (fun () ->
        List.init instances (fun i ->
            let node = 1 + (i mod 5) in
            let fs = fs_ok (Kfs.Fs.mount (System.client sys node ()) sb) in
            ignore (fs_ok (Kfs.Fs.read fs "/hot" ~off:0 ~len:4096));
            fs))
  in
  let t0 = System.now sys in
  System.run_fiber sys (fun () ->
      let eng = System.engine sys in
      let fibers =
        List.map
          (fun fs ->
            Ksim.Fiber.async eng (fun () ->
                for _ = 1 to reads_per_instance do
                  ignore (fs_ok (Kfs.Fs.read fs "/hot" ~off:0 ~len:4096))
                done))
          mounts
      in
      Ksim.Fiber.join_all fibers);
  let elapsed = Ksim.Time.to_sec_f (System.now sys - t0) in
  float_of_int (instances * reads_per_instance) /. elapsed

let run_fs_instances () =
  header "Ablation A3: \"starting up additional instances of the server\" (§4.1)"
    "Aggregate read throughput on one hot file as filesystem instances are added.";
  let table =
    Stats.table ~columns:[ "instances"; "aggregate reads/s"; "scaling" ]
  in
  let base = ref 0.0 in
  List.iter
    (fun instances ->
      let tput = fs_instances_run ~instances in
      if instances = 1 then base := tput;
      Stats.row table
        [ string_of_int instances; f1 tput;
          Printf.sprintf "%.1fx" (tput /. !base) ])
    [ 1; 2; 4 ];
  print_table table;
  print_endline
    "(each instance serves repeated reads from its local replica, so adding\n\
     instances adds capacity — no code changes, as the paper promises)"

let run () =
  run_hint_ablation ();
  run_timeout_ablation ();
  run_fs_instances ()
