(* Shared plumbing for the experiment harness. *)

module System = Khazana.System
module Client = Khazana.Client
module Daemon = Khazana.Daemon
module Region = Khazana.Region
module Attr = Khazana.Attr
module Gaddr = Kutil.Gaddr
module Stats = Kutil.Stats
module Ctypes = Kconsistency.Types

let ok = function
  | Ok v -> v
  | Error e -> failwith ("bench: " ^ Daemon.error_to_string e)

let fs_ok = function
  | Ok v -> v
  | Error e -> failwith ("bench: " ^ Kfs.Fs.error_to_string e)

let obj_ok = function
  | Ok v -> v
  | Error e -> failwith ("bench: " ^ Kobj.Runtime.error_to_string e)

(* Time a fiber-blocking thunk in simulated time (ms). *)
let timed sys f =
  let t0 = System.now sys in
  let r = f () in
  (r, Ksim.Time.to_ms_f (System.now sys - t0))

let header title claim =
  Printf.printf "\n=== %s ===\n%s\n\n" title claim

let print_table t = print_endline (Stats.render t)

let f2 v = Printf.sprintf "%.2f" v
let f1 v = Printf.sprintf "%.1f" v
let f3 v = Printf.sprintf "%.3f" v

(* Message count delta around a thunk. *)
let messages sys f =
  let before = (Khazana.Wire.Sim.Net.stats (System.net sys)).sent in
  let r = f () in
  let after = (Khazana.Wire.Sim.Net.stats (System.net sys)).sent in
  (r, after - before)

(* Traffic deltas around a thunk: envelopes sent, logical messages
   (batch items count individually) and bytes. The envelope/atom gap is
   what RPC coalescing saves. *)
let traffic sys f =
  let s0 = Khazana.Wire.Sim.Net.stats (System.net sys) in
  let r = f () in
  let s1 = Khazana.Wire.Sim.Net.stats (System.net sys) in
  ( r,
    s1.sent - s0.sent,
    s1.atoms - s0.atoms,
    s1.bytes_sent - s0.bytes_sent )

module Trace = Ktrace.Trace

(* Run [f] with a ring sink installed and print where the simulated time of
   the traced operations went, grouped by span name. Tracing is disabled
   again (and the span counter reset) before returning, so surrounding
   measurements stay sink-free. *)
let traced_phases f =
  Trace.reset ();
  let ring = Trace.Ring.create () in
  let sink = Trace.Ring.install ring in
  let finally () = Trace.uninstall sink; Trace.reset () in
  Fun.protect ~finally (fun () -> f ());
  Trace.phase_breakdown (Trace.Ring.records ring)

let print_phase_breakdown title phases =
  let table = Stats.table ~columns:[ title; "spans"; "total (ms)" ] in
  List.iter
    (fun (name, count, total_ms) ->
      Stats.row table [ name; string_of_int count; f2 total_ms ])
    phases;
  print_table table

(* One traced cold read across the WAN: the per-phase view of the Figure 2
   path that E1's latency table summarises. *)
let span_breakdown sys ~reader ~writer =
  let cw = System.client sys writer () in
  let region =
    System.run_fiber sys (fun () ->
        let r = ok (Client.create_region cw 4096) in
        ok (Client.write_bytes cw ~addr:r.Region.base (Bytes.make 64 'd'));
        r)
  in
  let cr = System.client sys reader () in
  let phases =
    traced_phases (fun () ->
        System.run_fiber sys (fun () ->
            ignore (ok (Client.read_bytes cr ~addr:region.Region.base 64))))
  in
  Printf.printf "per-phase span breakdown (one cold WAN read, traced):\n";
  print_phase_breakdown "phase" phases
