(* A hand-coded central-server file service: the conventional design
   Khazana's filesystem is compared against in E7. One server node keeps
   all files; every client operation is an RPC. No caching, no
   replication — fast and simple on a LAN, a bottleneck and a single point
   of failure otherwise. *)

module Proto = struct
  type request =
    | Create of string
    | Write of { path : string; off : int; data : bytes }
    | Read of { path : string; off : int; len : int }
    | Readdir
    | Size of string

  type response =
    | R_unit
    | R_data of bytes
    | R_names of string list
    | R_size of int
    | R_err of string

  let request_size = function
    | Create p -> 16 + String.length p
    | Write { path; data; _ } -> 24 + String.length path + Bytes.length data
    | Read { path; _ } -> 24 + String.length path
    | Readdir -> 8
    | Size p -> 8 + String.length p

  let response_size = function
    | R_unit -> 8
    | R_data b -> 8 + Bytes.length b
    | R_names ns -> 8 + List.fold_left (fun a n -> a + String.length n + 4) 0 ns
    | R_size _ -> 16
    | R_err e -> 8 + String.length e

  let request_kind = function
    | Create _ -> "cfs.create"
    | Write _ -> "cfs.write"
    | Read _ -> "cfs.read"
    | Readdir -> "cfs.readdir"
    | Size _ -> "cfs.size"
end

module T = Krpc.Rpc.Make (Proto)

type t = { transport : T.t; server : Knet.Topology.node_id }

(* The server charges a per-op local storage cost comparable to Khazana's
   RAM tier, so comparisons are about *distribution*, not disk models. *)
let server_op_cost = Ksim.Time.us 10

let start_server engine topology ~server =
  let transport = T.create engine topology in
  let files : (string, bytes ref) Hashtbl.t = Hashtbl.create 64 in
  T.set_server transport server (fun ~src:_ ~span:_ req ~reply ->
      Ksim.Fiber.spawn engine ~name:"cfs-serve" (fun () ->
          Ksim.Fiber.sleep server_op_cost;
          match req with
          | Proto.Create path ->
            if Hashtbl.mem files path then reply (Proto.R_err "exists")
            else begin
              Hashtbl.replace files path (ref Bytes.empty);
              reply Proto.R_unit
            end
          | Proto.Write { path; off; data } -> (
            match Hashtbl.find_opt files path with
            | None -> reply (Proto.R_err "not found")
            | Some content ->
              let needed = off + Bytes.length data in
              if Bytes.length !content < needed then begin
                let grown = Bytes.make needed '\000' in
                Bytes.blit !content 0 grown 0 (Bytes.length !content);
                content := grown
              end;
              Bytes.blit data 0 !content off (Bytes.length data);
              reply Proto.R_unit)
          | Proto.Read { path; off; len } -> (
            match Hashtbl.find_opt files path with
            | None -> reply (Proto.R_err "not found")
            | Some content ->
              let avail = max 0 (Bytes.length !content - off) in
              reply (Proto.R_data (Bytes.sub !content off (min len avail))))
          | Proto.Readdir ->
            reply
              (Proto.R_names
                 (List.sort compare (Hashtbl.fold (fun k _ a -> k :: a) files [])))
          | Proto.Size path -> (
            match Hashtbl.find_opt files path with
            | None -> reply (Proto.R_err "not found")
            | Some content -> reply (Proto.R_size (Bytes.length !content)))));
  { transport; server }

let call t ~src req =
  match T.call t.transport ~src ~dst:t.server ~policy:(Krpc.Policy.with_timeout (Ksim.Time.sec 5)) req with
  | Ok r -> r
  | Error `Timeout -> Proto.R_err "timeout"

let create t ~src path =
  match call t ~src (Proto.Create path) with
  | Proto.R_unit -> ()
  | _ -> failwith "cfs create failed"

let write t ~src path ~off data =
  match call t ~src (Proto.Write { path; off; data }) with
  | Proto.R_unit -> ()
  | _ -> failwith "cfs write failed"

let read t ~src path ~off ~len =
  match call t ~src (Proto.Read { path; off; len }) with
  | Proto.R_data b -> b
  | _ -> failwith "cfs read failed"

let readdir t ~src =
  match call t ~src Proto.Readdir with
  | Proto.R_names ns -> ns
  | _ -> failwith "cfs readdir failed"
