(* E10 — Release-class operations never fail toward the client (§3.5).

   "All errors encountered while acquiring resources ... are reflected back
   to the original client, while errors encountered while releasing
   resources ... are not. Instead, the Khazana system keeps trying the
   operation in the background until it succeeds." Measure the
   client-visible latency of free/unreserve across a partition, and how
   long the background retry takes to land once the partition heals. *)

open Bench_common

let run () =
  header "E10: acquire-class vs release-class error handling"
    "A node partitioned from a region's home frees it anyway; retries land after heal.";
  let sys = System.create ~nodes_per_cluster:3 ~clusters:2 () in
  let c1 = System.client sys 1 () in
  let region =
    System.run_fiber sys (fun () ->
        let r = ok (Client.create_region c1 4096) in
        ok (Client.write_bytes c1 ~addr:r.Region.base (Bytes.make 8 'x'));
        r)
  in
  let c4 = System.client sys 4 () in
  (* Warm node 4's directory so the partition hits the op, not the lookup. *)
  System.run_fiber sys (fun () ->
      ignore (ok (Client.read_bytes c4 ~addr:region.Region.base 8)));
  System.partition sys [ 0; 1; 2 ] [ 3; 4; 5 ];

  let table =
    Stats.table
      ~columns:[ "operation (partitioned)"; "class"; "client-visible latency (ms)"; "outcome" ]
  in
  (* Acquire-class: a write lock must reflect the failure. *)
  let result, acquire_ms =
    timed sys (fun () ->
        System.run_fiber sys (fun () ->
            Client.lock c4 ~addr:region.Region.base ~len:8 Ctypes.Write))
  in
  Stats.row table
    [ "lock(write)"; "acquire";
      f1 acquire_ms;
      (match result with
       | Error e -> "error reflected: " ^ Daemon.error_to_string e
       | Ok _ -> "unexpectedly succeeded") ];
  (* Release-class: free returns instantly and retries behind the scenes. *)
  let (), free_ms =
    timed sys (fun () ->
        System.run_fiber sys (fun () -> Client.free c4 region.Region.base))
  in
  Stats.row table [ "free"; "release"; f1 free_ms; "returned immediately" ];
  print_table table;

  Printf.printf "\nhome still holds storage during the partition: %b\n"
    (Daemon.holds_page (System.daemon sys 1) region.Region.base);
  (* Heal after 5 simulated seconds; measure when the free lands. *)
  let heal_at = System.now sys in
  System.heal sys;
  let landed_after = ref None in
  let rec poll () =
    if not (Daemon.holds_page (System.daemon sys 1) region.Region.base) then
      landed_after := Some (System.now sys - heal_at)
    else if System.now sys - heal_at < Ksim.Time.sec 30 then begin
      Ksim.Fiber.sleep (Ksim.Time.ms 50);
      poll ()
    end
  in
  System.run_fiber sys poll;
  (match !landed_after with
   | Some d ->
     Printf.printf "background retry completed %s after the partition healed\n"
       (Format.asprintf "%a" Ksim.Time.pp d)
   | None -> print_endline "background retry DID NOT land (bug)")
