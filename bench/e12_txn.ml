(* E12 — Distributed atomic commit cost (2PC over the WAL).

   A transaction touching P regions homed on P distinct nodes pays one
   prepare round (parallel, pipelined with the payload) plus one logged
   decision and its broadcast. Measure client-visible commit latency as P
   grows, against the non-atomic baseline of P sequential write_bytes —
   the price of all-or-nothing over best-effort. *)

open Bench_common

let txns_per_point = 20

let run () =
  header "E12: commit latency vs participant count"
    "2PC cost grows with the prepare fan-out; the decision round is off the \
     client path only after the coordinator's log write.";
  let table =
    Stats.table
      ~columns:
        [ "participants";
          "txn commit mean (ms)";
          "txn commit p95 (ms)";
          "sequential writes mean (ms)";
          "atomicity overhead (ms)" ]
  in
  List.iter
    (fun p ->
      let sys = System.create ~nodes_per_cluster:10 ~clusters:1 () in
      let coord = 9 in
      let ccoord = System.client sys coord () in
      let regions =
        List.init p (fun i ->
            let home = 1 + i in
            let c = System.client sys home () in
            let r =
              System.run_fiber sys (fun () ->
                  let attr = Attr.make ~owner:home () in
                  let r = ok (Client.create_region c ~attr 4096) in
                  ok
                    (Client.write_bytes c ~addr:r.Region.base
                       (Bytes.make 8 '0'));
                  r)
            in
            r.Region.base)
      in
      System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys;
      let payload n = Bytes.of_string (Printf.sprintf "%08d" n) in
      (* Warm the coordinator's region directory so every measured commit
         pays locking and 2PC, not cold lookups. *)
      System.run_fiber sys (fun () ->
          List.iter
            (fun addr -> ignore (ok (Client.read_bytes ccoord ~addr 8)))
            regions);
      let txn_ms = ref [] in
      for n = 1 to txns_per_point do
        let (), ms =
          timed sys (fun () ->
              System.run_fiber sys (fun () ->
                  ok
                    (Client.txn ccoord (fun txn ->
                         List.fold_left
                           (fun acc addr ->
                             match acc with
                             | Error _ as e -> e
                             | Ok () ->
                               Client.txn_write ccoord txn ~addr (payload n))
                           (Ok ()) regions))))
        in
        txn_ms := ms :: !txn_ms
      done;
      let seq_ms = ref [] in
      for n = 1 to txns_per_point do
        let (), ms =
          timed sys (fun () ->
              System.run_fiber sys (fun () ->
                  List.iter
                    (fun addr ->
                      ok (Client.write_bytes ccoord ~addr (payload n)))
                    regions))
        in
        seq_ms := ms :: !seq_ms
      done;
      let mean xs = List.fold_left ( +. ) 0. xs /. float (List.length xs) in
      let p95 xs =
        let a = Array.of_list xs in
        Array.sort compare a;
        a.(min (Array.length a - 1) (Array.length a * 95 / 100))
      in
      let tm = mean !txn_ms and sm = mean !seq_ms in
      Stats.row table
        [ string_of_int p;
          f2 tm;
          f2 (p95 !txn_ms);
          f2 sm;
          (* Both paths run against a warm cache, so the delta is purely
             the 2PC rounds: prepare fan-out + logged decision. *)
          f2 (tm -. sm) ])
    [ 1; 2; 4; 8 ];
  print_table table
