(* E13 — History checker overhead (Khistory).

   The nemesis harnesses record every client operation and run the
   linearizability / serializability checkers over the assembled history
   after the run. Both costs must stay negligible for the checker to be
   usable as an always-on CI oracle: recording is a constant-time append
   per operation, and checking is search — worst-case exponential in the
   number of concurrent ambiguous operations, but near-linear on the
   mostly-sequential histories real runs produce.

   This experiment runs a contended read/write/txn workload (3 clients on
   3 shared addresses) at growing sizes and reports, in wall-clock time
   (recording costs nothing in simulated time — the sink is outside the
   simulation):

     - recording overhead per operation (run with a Ring recorder
       attached minus the same seeded run without one),
     - History.assemble time,
     - Check.analyze time, and the verdict (which must be OK). *)

open Bench_common
module History = Kcheck.History
module Check = Kcheck.Check

let nodes = 3
let value_len = 8

let wall () = Unix.gettimeofday ()

(* One seeded workload run: [per_client] ops per client, three clients on
   three page-aligned addresses of one shared region. Returns the entries
   recorded (empty when [record] is false) and the wall-clock seconds the
   run took. The op mix is deterministic, so the recorded and unrecorded
   runs execute identical simulations. *)
let run_workload ~per_client ~record =
  let sys = System.create ~nodes_per_cluster:nodes ~clusters:1 () in
  let region =
    System.run_fiber sys (fun () ->
        let c = System.client sys 0 () in
        ok (Client.create_region c (3 * 4096)))
  in
  let addr i = Gaddr.add_int region.Region.base (i * 4096) in
  let ring = History.Ring.create () in
  let counter = ref 0 in
  let fresh_value () =
    incr counter;
    Bytes.of_string (Printf.sprintf "%0*d" value_len !counter)
  in
  let t0 = wall () in
  System.run_fiber sys (fun () ->
      let eng = System.engine sys in
      let fibers =
        List.init nodes (fun n ->
            Ksim.Fiber.async eng (fun () ->
                let c = System.client sys n () in
                if record then
                  Client.set_history c
                    (Some
                       (History.recorder
                          ~now:(fun () -> System.now sys)
                          ~proc:n (History.Ring.sink ring)));
                for i = 0 to per_client - 1 do
                  let a = addr ((n + i) mod 3) in
                  match i mod 4 with
                  | 0 | 1 -> ok (Client.write_bytes c ~addr:a (fresh_value ()))
                  | 2 -> ignore (ok (Client.read_bytes c ~addr:a value_len))
                  | _ ->
                    (* read one address, rewrite another, atomically *)
                    let b = addr ((n + i + 1) mod 3) in
                    ok
                      (Client.txn c (fun txn ->
                           match Client.txn_read c txn ~addr:a ~len:value_len with
                           | Error _ as e -> e
                           | Ok _ ->
                             Client.txn_write c txn ~addr:b (fresh_value ())))
                done))
      in
      Ksim.Fiber.join_all fibers);
  (History.Ring.entries ring, wall () -. t0)

let run () =
  header "E13: history checker overhead"
    "Recording is a constant-time append per op; assembling and checking a \
     mostly-sequential contended history stays near-linear, so the checker \
     can gate every nemesis run.";
  let table =
    Stats.table
      ~columns:
        [
          "ops"; "events"; "record (us/op)"; "assemble (ms)"; "check (ms)";
          "verdict";
        ]
  in
  List.iter
    (fun per_client ->
      let total_ops = nodes * per_client in
      (* Median-of-3 on the wall-clock deltas: one-shot GC pauses would
         otherwise dominate the per-op subtraction. *)
      let med3 f =
        let xs = List.sort compare [ f (); f (); f () ] in
        List.nth xs 1
      in
      let bare = med3 (fun () -> snd (run_workload ~per_client ~record:false)) in
      let recorded = med3 (fun () -> snd (run_workload ~per_client ~record:true)) in
      let entries, _ = run_workload ~per_client ~record:true in
      let overhead_us =
        Float.max 0. (recorded -. bare) *. 1e6 /. float_of_int total_ops
      in
      let t0 = wall () in
      let events = History.assemble entries in
      let t_assemble = (wall () -. t0) *. 1e3 in
      let t1 = wall () in
      let report =
        Check.analyze ~init:(fun _ -> String.make value_len '\000') events
      in
      let t_check = (wall () -. t1) *. 1e3 in
      Stats.row table
        [
          string_of_int total_ops;
          string_of_int (List.length events);
          f2 overhead_us;
          f3 t_assemble;
          f3 t_check;
          (if Check.passed report then "OK" else "FAIL");
        ])
    [ 20; 50; 100; 200 ];
  print_table table;
  print_endline
    "Verdicts must read OK: the workload is fault-free, so any FAIL is a \
     checker or protocol bug."
