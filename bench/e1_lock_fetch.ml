(* E1 — Lock+fetch cost along the Figure 2 path (§3.2, §3.6).

   Claim under test: a cold lock+fetch pays for region location plus a CM
   round through home and owner; caching the descriptor (region directory)
   and the data (local replica) removes those legs one by one, down to a
   purely local operation. *)

open Bench_common

let trials = 30

let scenario sys ~reader ~writer ~cold_directory =
  (* A fresh region per trial keeps "cold" genuinely cold. *)
  let latencies = Stats.summary () in
  let msgs = Stats.summary () in
  for _ = 1 to trials do
    let cw = System.client sys writer () in
    let region =
      System.run_fiber sys (fun () ->
          let r = ok (Client.create_region cw 4096) in
          ok (Client.write_bytes cw ~addr:r.Region.base (Bytes.make 64 'd'));
          r)
    in
    let cr = System.client sys reader () in
    if not cold_directory then
      (* Warm the reader's directory (but not its data cache): locate once
         via get_attr. *)
      System.run_fiber sys (fun () ->
          ignore (ok (Client.get_attr cr region.Region.base)));
    let (), n =
      messages sys (fun () ->
          let (), ms =
            timed sys (fun () ->
                System.run_fiber sys (fun () ->
                    ignore
                      (ok (Client.read_bytes cr ~addr:region.Region.base 64))))
          in
          Stats.add latencies ms)
    in
    Stats.add msgs (float_of_int n)
  done;
  (latencies, msgs)

let warm_local sys ~node =
  let latencies = Stats.summary () in
  let msgs = Stats.summary () in
  let c = System.client sys node () in
  let region =
    System.run_fiber sys (fun () ->
        let r = ok (Client.create_region c 4096) in
        ok (Client.write_bytes c ~addr:r.Region.base (Bytes.make 64 'd'));
        r)
  in
  for _ = 1 to trials do
    let (), n =
      messages sys (fun () ->
          let (), ms =
            timed sys (fun () ->
                System.run_fiber sys (fun () ->
                    ignore (ok (Client.read_bytes c ~addr:region.Region.base 64))))
          in
          Stats.add latencies ms)
    in
    Stats.add msgs (float_of_int n)
  done;
  (latencies, msgs)

(* E1d — sequential vs pipelined+batched multi-page lock.

   A cold 64-page read lock from a WAN peer. The sequential baseline
   (acquire window 1, RPC coalescing off) pays one home round trip per
   page; the batched configuration issues a window of concurrent acquires
   per wave and coalesces same-tick CM messages per destination, so
   latency drops to O(pages / window) round-trip waves and the envelope
   count falls well below the logical message count. *)
let multi_page_pages = 64

let multi_page_trial ~window ~coalesce =
  let len = multi_page_pages * 4096 in
  let cfg = { Daemon.default_config with Daemon.acquire_window = window } in
  let sys = System.create ~config:cfg ~nodes_per_cluster:3 ~clusters:2 () in
  Khazana.Wire.Transport.set_coalescing (System.transport sys) coalesce;
  let cw = System.client sys 1 () in
  let region =
    System.run_fiber sys (fun () ->
        let r = ok (Client.create_region cw len) in
        ok (Client.write_bytes cw ~addr:r.Region.base (Bytes.make len 'd'));
        r)
  in
  let cr = System.client sys 4 () in
  let lock_ms = ref 0.0 in
  let (), envelopes, atoms, _bytes =
    traffic sys (fun () ->
        System.run_fiber sys (fun () ->
            let lctx, ms =
              timed sys (fun () ->
                  ok (Client.lock cr ~addr:region.Region.base ~len Ctypes.Read))
            in
            lock_ms := ms;
            Client.unlock cr lctx))
  in
  (!lock_ms, envelopes, atoms)

let multi_page_table () =
  Printf.printf "\nE1d: %d-page cold lock from a WAN peer, sequential vs batched:\n"
    multi_page_pages;
  let table =
    Stats.table
      ~columns:
        [ "strategy"; "lock (ms)"; "envelopes"; "logical msgs" ]
  in
  List.iter
    (fun (name, window, coalesce) ->
      let ms, envelopes, atoms = multi_page_trial ~window ~coalesce in
      Stats.row table
        [ name; f2 ms; string_of_int envelopes; string_of_int atoms ])
    [
      ("sequential (window 1, no coalescing)", 1, false);
      ("pipelined (window 16, no coalescing)", 16, false);
      ("pipelined + batched (window 16)", 16, true);
    ];
  print_table table

let run () =
  header "E1: lock+fetch latency along the Figure 2 path"
    "Each cached layer (descriptor, then data) removes a leg of the cold path.";
  let sys = System.create ~nodes_per_cluster:3 ~clusters:2 () in
  let rows =
    [
      ("local, owner-warm (steps 11-13 only)", warm_local sys ~node:1);
      ("LAN peer, cold directory", scenario sys ~reader:2 ~writer:1 ~cold_directory:true);
      ("LAN peer, warm directory", scenario sys ~reader:2 ~writer:1 ~cold_directory:false);
      ("WAN peer, cold directory", scenario sys ~reader:4 ~writer:1 ~cold_directory:true);
      ("WAN peer, warm directory", scenario sys ~reader:4 ~writer:1 ~cold_directory:false);
    ]
  in
  let table =
    Stats.table
      ~columns:[ "scenario"; "mean (ms)"; "p99 (ms)"; "msgs/op" ]
  in
  List.iter
    (fun (name, (lat, msgs)) ->
      Stats.row table
        [ name; f2 (Stats.mean lat); f2 (Stats.percentile lat 99.0);
          f1 (Stats.mean msgs) ])
    rows;
  print_table table;
  multi_page_table ();
  span_breakdown sys ~reader:4 ~writer:1
