(* E1 — Lock+fetch cost along the Figure 2 path (§3.2, §3.6).

   Claim under test: a cold lock+fetch pays for region location plus a CM
   round through home and owner; caching the descriptor (region directory)
   and the data (local replica) removes those legs one by one, down to a
   purely local operation. *)

open Bench_common

let trials = 30

let scenario sys ~reader ~writer ~cold_directory =
  (* A fresh region per trial keeps "cold" genuinely cold. *)
  let latencies = Stats.summary () in
  let msgs = Stats.summary () in
  for _ = 1 to trials do
    let cw = System.client sys writer () in
    let region =
      System.run_fiber sys (fun () ->
          let r = ok (Client.create_region cw 4096) in
          ok (Client.write_bytes cw ~addr:r.Region.base (Bytes.make 64 'd'));
          r)
    in
    let cr = System.client sys reader () in
    if not cold_directory then
      (* Warm the reader's directory (but not its data cache): locate once
         via get_attr. *)
      System.run_fiber sys (fun () ->
          ignore (ok (Client.get_attr cr region.Region.base)));
    let (), n =
      messages sys (fun () ->
          let (), ms =
            timed sys (fun () ->
                System.run_fiber sys (fun () ->
                    ignore
                      (ok (Client.read_bytes cr ~addr:region.Region.base 64))))
          in
          Stats.add latencies ms)
    in
    Stats.add msgs (float_of_int n)
  done;
  (latencies, msgs)

let warm_local sys ~node =
  let latencies = Stats.summary () in
  let msgs = Stats.summary () in
  let c = System.client sys node () in
  let region =
    System.run_fiber sys (fun () ->
        let r = ok (Client.create_region c 4096) in
        ok (Client.write_bytes c ~addr:r.Region.base (Bytes.make 64 'd'));
        r)
  in
  for _ = 1 to trials do
    let (), n =
      messages sys (fun () ->
          let (), ms =
            timed sys (fun () ->
                System.run_fiber sys (fun () ->
                    ignore (ok (Client.read_bytes c ~addr:region.Region.base 64))))
          in
          Stats.add latencies ms)
    in
    Stats.add msgs (float_of_int n)
  done;
  (latencies, msgs)

let run () =
  header "E1: lock+fetch latency along the Figure 2 path"
    "Each cached layer (descriptor, then data) removes a leg of the cold path.";
  let sys = System.create ~nodes_per_cluster:3 ~clusters:2 () in
  let rows =
    [
      ("local, owner-warm (steps 11-13 only)", warm_local sys ~node:1);
      ("LAN peer, cold directory", scenario sys ~reader:2 ~writer:1 ~cold_directory:true);
      ("LAN peer, warm directory", scenario sys ~reader:2 ~writer:1 ~cold_directory:false);
      ("WAN peer, cold directory", scenario sys ~reader:4 ~writer:1 ~cold_directory:true);
      ("WAN peer, warm directory", scenario sys ~reader:4 ~writer:1 ~cold_directory:false);
    ]
  in
  let table =
    Stats.table
      ~columns:[ "scenario"; "mean (ms)"; "p99 (ms)"; "msgs/op" ]
  in
  List.iter
    (fun (name, (lat, msgs)) ->
      Stats.row table
        [ name; f2 (Stats.mean lat); f2 (Stats.percentile lat 99.0);
          f1 (Stats.mean msgs) ])
    rows;
  print_table table;
  span_breakdown sys ~reader:4 ~writer:1
