(* E2 — "Data should be cached near where it is used" (§2, §3.1).

   A WAN reader's first access fetches the page; subsequent accesses are
   served from the local replica until a remote write invalidates it, at
   which point exactly one re-fetch is paid. *)

open Bench_common

let run () =
  header "E2: caching and invalidation at a WAN reader"
    "Access #1 fetches over the WAN; #2-#5 are local; a remote write forces one re-fetch.";
  let sys = System.create ~nodes_per_cluster:3 ~clusters:2 () in
  let writer = System.client sys 1 () in
  let reader_node = 4 in
  let reader = System.client sys reader_node () in
  let region =
    System.run_fiber sys (fun () ->
        let r = ok (Client.create_region writer 4096) in
        ok (Client.write_bytes writer ~addr:r.Region.base (Bytes.make 32 'a'));
        r)
  in
  let table =
    Stats.table ~columns:[ "event"; "latency (ms)"; "reader holds copy after" ]
  in
  let read_once label =
    let (), ms =
      timed sys (fun () ->
          System.run_fiber sys (fun () ->
              ignore (ok (Client.read_bytes reader ~addr:region.Region.base 32))))
    in
    Stats.row table
      [ label; f2 ms;
        string_of_bool
          (Daemon.holds_page (System.daemon sys reader_node) region.Region.base) ]
  in
  for i = 1 to 5 do
    read_once (Printf.sprintf "reader access #%d" i)
  done;
  (* Remote write invalidates the cached replica. *)
  let (), ms =
    timed sys (fun () ->
        System.run_fiber sys (fun () ->
            ok (Client.write_bytes writer ~addr:region.Region.base (Bytes.make 32 'b'))))
  in
  Stats.row table
    [ "writer updates (invalidation)"; f2 ms;
      string_of_bool
        (Daemon.holds_page (System.daemon sys reader_node) region.Region.base) ];
  read_once "reader access #6 (re-fetch)";
  read_once "reader access #7 (local again)";
  print_table table;

  (* Second half: ping-pong migration. Two alternating writers make the
     page bounce; co-located writers do not. *)
  Printf.printf "\nwrite ping-pong (20 alternating writes each):\n";
  let bounce nodes =
    let region =
      System.run_fiber sys (fun () ->
          let c = System.client sys (List.hd nodes) () in
          let r = ok (Client.create_region c 4096) in
          ok (Client.write_bytes c ~addr:r.Region.base (Bytes.make 8 'x'));
          r)
    in
    let (), ms =
      timed sys (fun () ->
          System.run_fiber sys (fun () ->
              for i = 1 to 20 do
                List.iter
                  (fun n ->
                    let c = System.client sys n () in
                    ok
                      (Client.write_bytes c ~addr:region.Region.base
                         (Bytes.make 8 (Char.chr (65 + (i mod 26))))))
                  nodes
              done))
    in
    ms /. (20.0 *. float_of_int (List.length nodes))
  in
  let same = bounce [ 1 ] in
  let lan = bounce [ 1; 2 ] in
  let wan = bounce [ 1; 4 ] in
  let t2 = Stats.table ~columns:[ "writers"; "mean write (ms)" ] in
  Stats.row t2 [ "single node"; f3 same ];
  Stats.row t2 [ "two nodes, same cluster"; f3 lan ];
  Stats.row t2 [ "two nodes, across WAN"; f3 wan ];
  print_table t2
