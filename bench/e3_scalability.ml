(* E3 — Scalability (§2 design goals).

   "Performance should scale as nodes are added if the new nodes do not
   contend for access to the same regions as existing nodes." Aggregate
   throughput with disjoint per-node regions should grow with node count;
   with one contended region it should not. *)

open Bench_common

let ops_per_node = 40

let run_workload ~nodes ~disjoint =
  let sys = System.create ~nodes_per_cluster:nodes ~clusters:1 () in
  let node_ids = List.init nodes Fun.id in
  (* Regions: one per node, or a single shared one homed at node 0. *)
  let region_for =
    if disjoint then begin
      let regions =
        System.run_fiber sys (fun () ->
            List.map
              (fun n ->
                let c = System.client sys n () in
                let r = ok (Client.create_region c 4096) in
                ok (Client.write_bytes c ~addr:r.Region.base (Bytes.make 8 'i'));
                (n, r))
              node_ids)
      in
      fun n -> List.assoc n regions
    end
    else begin
      let shared =
        System.run_fiber sys (fun () ->
            let c = System.client sys 0 () in
            let r = ok (Client.create_region c 4096) in
            ok (Client.write_bytes c ~addr:r.Region.base (Bytes.make 8 'i'));
            r)
      in
      fun _ -> shared
    end
  in
  let t0 = System.now sys in
  System.run_fiber sys (fun () ->
      let eng = System.engine sys in
      let fibers =
        List.map
          (fun n ->
            Ksim.Fiber.async eng (fun () ->
                let c = System.client sys n () in
                let region = region_for n in
                for i = 1 to ops_per_node do
                  let ctx =
                    ok (Client.lock c ~addr:region.Region.base ~len:8 Ctypes.Write)
                  in
                  ok
                    (Client.write c ctx ~addr:region.Region.base
                       (Bytes.make 8 (Char.chr (65 + (i mod 26)))));
                  Client.unlock c ctx
                done))
          node_ids
      in
      Ksim.Fiber.join_all fibers);
  let elapsed = Ksim.Time.to_sec_f (System.now sys - t0) in
  float_of_int (nodes * ops_per_node) /. elapsed

let run () =
  header "E3: throughput scaling with node count"
    "Disjoint working sets scale with nodes; a single contended region does not.";
  let table =
    Stats.table
      ~columns:
        [ "nodes"; "disjoint ops/s"; "speedup"; "contended ops/s"; "speedup" ]
  in
  let base_d = ref 0.0 and base_c = ref 0.0 in
  List.iter
    (fun nodes ->
      let d = run_workload ~nodes ~disjoint:true in
      let c = run_workload ~nodes ~disjoint:false in
      if nodes = 1 then begin
        base_d := d;
        base_c := c
      end;
      Stats.row table
        [ string_of_int nodes; f1 d; f2 (d /. !base_d); f1 c; f2 (c /. !base_c) ])
    [ 1; 2; 4; 8; 16 ];
  print_table table
