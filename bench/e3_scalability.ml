(* E3 — Scalability (§2 design goals).

   "Performance should scale as nodes are added if the new nodes do not
   contend for access to the same regions as existing nodes." Aggregate
   throughput with disjoint per-node regions should grow with node count;
   with one contended region it should not. *)

open Bench_common

let ops_per_node = 40

let run_workload ~nodes ~disjoint =
  let sys = System.create ~nodes_per_cluster:nodes ~clusters:1 () in
  let node_ids = List.init nodes Fun.id in
  (* Regions: one per node, or a single shared one homed at node 0. *)
  let region_for =
    if disjoint then begin
      let regions =
        System.run_fiber sys (fun () ->
            List.map
              (fun n ->
                let c = System.client sys n () in
                let r = ok (Client.create_region c 4096) in
                ok (Client.write_bytes c ~addr:r.Region.base (Bytes.make 8 'i'));
                (n, r))
              node_ids)
      in
      fun n -> List.assoc n regions
    end
    else begin
      let shared =
        System.run_fiber sys (fun () ->
            let c = System.client sys 0 () in
            let r = ok (Client.create_region c 4096) in
            ok (Client.write_bytes c ~addr:r.Region.base (Bytes.make 8 'i'));
            r)
      in
      fun _ -> shared
    end
  in
  let t0 = System.now sys in
  System.run_fiber sys (fun () ->
      let eng = System.engine sys in
      let fibers =
        List.map
          (fun n ->
            Ksim.Fiber.async eng (fun () ->
                let c = System.client sys n () in
                let region = region_for n in
                for i = 1 to ops_per_node do
                  let ctx =
                    ok (Client.lock c ~addr:region.Region.base ~len:8 Ctypes.Write)
                  in
                  ok
                    (Client.write c ctx ~addr:region.Region.base
                       (Bytes.make 8 (Char.chr (65 + (i mod 26)))));
                  Client.unlock c ctx
                done))
          node_ids
      in
      Ksim.Fiber.join_all fibers);
  let elapsed = Ksim.Time.to_sec_f (System.now sys - t0) in
  float_of_int (nodes * ops_per_node) /. elapsed

(* E3b — message count at equal workload, coalescing off vs on.

   Same seed, same ops: 8 nodes each take 10 whole-region write locks over
   their neighbour's 16-page region (disjoint working sets, but every lock
   crosses the wire to the region's home). Coalescing merges each event
   cascade's same-destination CM messages (acquire fan-out, grant replies,
   release notifications) into batch envelopes, so the envelope count
   drops while the logical message count stays put. *)
let e3b_nodes = 8
let e3b_pages = 16
let e3b_ops = 10

let run_batched_workload ~coalesce =
  let len = e3b_pages * 4096 in
  let sys = System.create ~nodes_per_cluster:e3b_nodes ~clusters:1 () in
  Khazana.Wire.Transport.set_coalescing (System.transport sys) coalesce;
  let node_ids = List.init e3b_nodes Fun.id in
  let regions =
    System.run_fiber sys (fun () ->
        List.map
          (fun n ->
            let c = System.client sys n () in
            let r = ok (Client.create_region c len) in
            ok (Client.write_bytes c ~addr:r.Region.base (Bytes.make len 'i'));
            (n, r))
          node_ids)
  in
  let t0 = System.now sys in
  let (), envelopes, atoms, bytes =
    Bench_common.traffic sys (fun () ->
        System.run_fiber sys (fun () ->
            let eng = System.engine sys in
            let fibers =
              List.map
                (fun n ->
                  Ksim.Fiber.async eng (fun () ->
                      let c = System.client sys n () in
                      (* Lock the neighbour's region: remote home, no
                         contention. *)
                      let region =
                        List.assoc ((n + 1) mod e3b_nodes) regions
                      in
                      for i = 1 to e3b_ops do
                        let ctx =
                          ok
                            (Client.lock c ~addr:region.Region.base ~len
                               Ctypes.Write)
                        in
                        ok
                          (Client.write c ctx ~addr:region.Region.base
                             (Bytes.make 8 (Char.chr (65 + (i mod 26)))));
                        Client.unlock c ctx
                      done))
                node_ids
            in
            Ksim.Fiber.join_all fibers))
  in
  let elapsed_ms = Ksim.Time.to_ms_f (System.now sys - t0) in
  (elapsed_ms, envelopes, atoms, bytes)

let message_table () =
  Printf.printf
    "\nE3b: equal workload (%d nodes x %d whole-region locks, %d pages each):\n"
    e3b_nodes e3b_ops e3b_pages;
  let table =
    Stats.table
      ~columns:
        [ "coalescing"; "elapsed (ms)"; "envelopes"; "logical msgs"; "KiB sent" ]
  in
  List.iter
    (fun (name, coalesce) ->
      let ms, envelopes, atoms, bytes = run_batched_workload ~coalesce in
      Stats.row table
        [ name; f1 ms; string_of_int envelopes; string_of_int atoms;
          f1 (float_of_int bytes /. 1024.) ])
    [ ("off", false); ("on", true) ];
  print_table table

let run () =
  header "E3: throughput scaling with node count"
    "Disjoint working sets scale with nodes; a single contended region does not.";
  let table =
    Stats.table
      ~columns:
        [ "nodes"; "disjoint ops/s"; "speedup"; "contended ops/s"; "speedup" ]
  in
  let base_d = ref 0.0 and base_c = ref 0.0 in
  List.iter
    (fun nodes ->
      let d = run_workload ~nodes ~disjoint:true in
      let c = run_workload ~nodes ~disjoint:false in
      if nodes = 1 then begin
        base_d := d;
        base_c := c
      end;
      Stats.row table
        [ string_of_int nodes; f1 d; f2 (d /. !base_d); f1 c; f2 (c /. !base_c) ])
    [ 1; 2; 4; 8; 16 ];
  print_table table;
  message_table ()
