(* E3c — contended writes under the versioned (MVCC) CM.

   The CREW collapse, quantified in E3's contended column: every write to
   a shared region migrates ownership, so adding writers adds ping-pong
   and aggregate throughput falls. The versioned CM publishes immutable
   page versions at the home instead — no ownership transfer, no
   invalidation — so the same contended workload must not collapse:
   throughput from 2 to 16 writers rises, or at worst stays flat.

   Second claim: sub-page diff propagation. A publish whose dirty byte
   ranges are small ships [Page_diff] runs, not the whole page image; the
   applied result is byte-identical to whole-image shipping while the
   bytes on the wire drop by orders of magnitude. *)

open Bench_common

let ops_per_writer = 40

(* One shared 1-page region homed at node 0; every node hammers it with
   whole-op writes (lock + write + unlock via write_bytes). *)
let run_contended ~protocol ~writers =
  let sys = System.create ~nodes_per_cluster:writers ~clusters:1 () in
  let node_ids = List.init writers Fun.id in
  let region =
    System.run_fiber sys (fun () ->
        let c = System.client sys 0 () in
        let attr = Attr.make ~protocol ~owner:0 () in
        let r = ok (Client.create_region c ~attr 4096) in
        ok (Client.write_bytes c ~addr:r.Region.base (Bytes.make 8 'i'));
        r)
  in
  let t0 = System.now sys in
  System.run_fiber sys (fun () ->
      let eng = System.engine sys in
      let fibers =
        List.map
          (fun n ->
            Ksim.Fiber.async eng (fun () ->
                let c = System.client sys n () in
                for i = 1 to ops_per_writer do
                  ok
                    (Client.write_bytes c ~addr:region.Region.base
                       (Bytes.make 8 (Char.chr (65 + ((n + i) mod 26)))))
                done))
          node_ids
      in
      Ksim.Fiber.join_all fibers);
  let elapsed = Ksim.Time.to_sec_f (System.now sys - t0) in
  float_of_int (writers * ops_per_writer) /. elapsed

let contended_table () =
  let table =
    Stats.table
      ~columns:
        [ "writers"; "crew ops/s"; "vs 2w"; "versioned ops/s"; "vs 2w" ]
  in
  let base_c = ref 0.0 and base_v = ref 0.0 in
  List.iter
    (fun writers ->
      let c = run_contended ~protocol:"crew" ~writers in
      let v = run_contended ~protocol:"versioned" ~writers in
      if writers = 2 then begin
        base_c := c;
        base_v := v
      end;
      Stats.row table
        [ string_of_int writers; f1 c; f2 (c /. !base_c); f1 v;
          f2 (v /. !base_v) ])
    [ 2; 4; 8; 16 ];
  print_table table

(* ------------------- Diff vs whole-image publish --------------------- *)

let diff_ops = 20
let dirty_len = 32

(* A remote writer dirties [dirty_len] bytes of a 4 KiB page, [diff_ops]
   times. With diffs on (default density threshold) each publish ships
   runs; with the threshold at 0.0 every publish falls back to the whole
   image. Same workload, same final bytes — only the wire differs. *)
let run_publish_bytes ~whole =
  let config =
    if whole then
      Some { Daemon.default_config with Daemon.diff_density_max = 0.0 }
    else None
  in
  let sys = System.create ?config ~nodes_per_cluster:2 ~clusters:1 () in
  let c0 = System.client sys 0 () in
  let c1 = System.client sys 1 () in
  let region =
    System.run_fiber sys (fun () ->
        let attr = Attr.make ~protocol:"versioned" ~owner:0 () in
        let r = ok (Client.create_region c0 ~attr 4096) in
        ok (Client.write_bytes c0 ~addr:r.Region.base (Bytes.make 4096 'i'));
        r)
  in
  (* Warm the writer's replica so the measured window holds only the
     publish traffic (plus the home's fan-out, identical in both arms). *)
  System.run_fiber sys (fun () ->
      ignore (ok (Client.read_bytes c1 ~addr:region.Region.base 8)));
  let (), _envelopes, _atoms, bytes =
    traffic sys (fun () ->
        System.run_fiber sys (fun () ->
            for i = 1 to diff_ops do
              ok
                (Client.write_bytes c1
                   ~addr:(Gaddr.add_int region.Region.base 128)
                   (Bytes.make dirty_len (Char.chr (65 + (i mod 26)))))
            done))
  in
  let image =
    System.run_fiber sys (fun () ->
        ok (Client.read_bytes c0 ~addr:region.Region.base 4096))
  in
  (bytes, image)

let diff_table () =
  Printf.printf
    "\nE3c diff propagation: %d publishes of %d dirty bytes in a 4096-byte \
     page,\nremote writer -> home (fan-out traffic identical in both arms):\n"
    diff_ops dirty_len;
  let whole_bytes, whole_img = run_publish_bytes ~whole:true in
  let diff_bytes, diff_img = run_publish_bytes ~whole:false in
  if not (Bytes.equal whole_img diff_img) then
    failwith "E3c: diff-applied image differs from whole-image publish";
  let table = Stats.table ~columns:[ "publish payload"; "KiB on wire" ] in
  Stats.row table [ "whole image"; f1 (float_of_int whole_bytes /. 1024.) ];
  Stats.row table [ "dirty runs"; f1 (float_of_int diff_bytes /. 1024.) ];
  print_table table;
  Printf.printf
    "final images byte-identical; dirty-run publishing sent %.1fx fewer \
     bytes\n"
    (float_of_int whole_bytes /. float_of_int (max 1 diff_bytes))

let run () =
  header "E3c: contended writes under the versioned CM"
    "CREW collapses as writers are added to one region (ownership \
     ping-pong); the versioned CM's publish path must not — and sub-page \
     diffs keep publish bytes near the dirty footprint, not the page size.";
  contended_table ();
  diff_table ()
