(* E4 — Availability under node failures (§3.5).

   "Khazana allows clients to specify a minimum number of primary replicas
   ... This functionality further enhances availability, at a cost of
   resource consumption." Sweep min_replicas, kill a fixed set of nodes,
   and measure how many regions stay readable — and what the replicas cost
   in messages and storage. *)

open Bench_common

let regions_count = 24
let total_nodes = 10
let victims = [ 2; 4; 6 ]

let run_once ~min_replicas ~seed =
  let sys = System.create ~seed ~nodes_per_cluster:total_nodes ~clusters:1 () in
  (* Spread regions over the non-bootstrap nodes. *)
  let regions =
    System.run_fiber sys (fun () ->
        List.init regions_count (fun i ->
            let node = 1 + (i mod (total_nodes - 1)) in
            let c = System.client sys node () in
            let attr = Attr.make ~owner:node ~min_replicas () in
            let r = ok (Client.create_region c ~attr 4096) in
            ok (Client.write_bytes c ~addr:r.Region.base (Bytes.make 128 'v'));
            r))
  in
  (* Let replication pushes and hint refreshes settle. *)
  System.run_until_quiet ~limit:(Ksim.Time.sec 3) sys;
  let msgs_before = (Khazana.Wire.Sim.Net.stats (System.net sys)).sent in
  let copies =
    List.fold_left
      (fun acc (r : Region.t) ->
        acc
        + List.length
            (List.filter
               (fun n -> Daemon.holds_page (System.daemon sys n) r.Region.base)
               (List.init total_nodes Fun.id)))
      0 regions
  in
  List.iter (fun n -> System.crash sys n) victims;
  (* A region counts as available when any of a few surviving vantage
     points can still read it (replicas grant reads locally even when the
     CREW manager died with its home). *)
  let vantage = [ 1; 3; 5 ] in
  let readable =
    List.length
      (List.filter
         (fun (r : Region.t) ->
           List.exists
             (fun survivor ->
               System.run_fiber sys (fun () ->
                   let c = System.client sys survivor () in
                   match Client.read_bytes c ~addr:r.Region.base 16 with
                   | Ok _ -> true
                   | Error _ -> false))
             vantage)
         regions)
  in
  ignore msgs_before;
  ( 100.0 *. float_of_int readable /. float_of_int regions_count,
    float_of_int copies /. float_of_int regions_count )

(* ------------------------------------------------------------------ *)
(* Fault schedule: availability while faults churn, repair after heal   *)
(* ------------------------------------------------------------------ *)

let schedule_rounds = 6
let schedule_regions = 12
let schedule_victims = [ 2; 4; 6; 8 ]

(* Drive a deterministic crash/recover schedule, sampling one read per
   region per round from a surviving vantage node. After the final heal,
   measure how long the anti-entropy repair loop takes to bring every
   region back to its replica floor. *)
let run_schedule ~min_replicas ~seed =
  let sys = System.create ~seed ~nodes_per_cluster:total_nodes ~clusters:1 () in
  let rng = Kutil.Rng.create ~seed:(0x6534 + (seed * 131)) in
  let regions =
    System.run_fiber sys (fun () ->
        List.init schedule_regions (fun i ->
            let node = 1 + (i mod (total_nodes - 1)) in
            let c = System.client sys node () in
            let attr = Attr.make ~owner:node ~min_replicas () in
            let r = ok (Client.create_region c ~attr 4096) in
            ok (Client.write_bytes c ~addr:r.Region.base (Bytes.make 128 'v'));
            r))
  in
  System.run_until_quiet ~limit:(Ksim.Time.sec 3) sys;
  let down = ref [] in
  let attempts = ref 0 in
  let served = ref 0 in
  for round = 1 to schedule_rounds do
    (match !down with
     | n :: rest when round mod 3 = 0 ->
       System.recover sys n;
       down := rest
     | _ -> (
       match List.filter (fun n -> not (List.mem n !down)) schedule_victims with
       | [] -> ()
       | l ->
         let v = List.nth l (Kutil.Rng.int rng (List.length l)) in
         System.crash sys v;
         down := v :: !down));
    System.run_until_quiet ~limit:(Ksim.Time.sec 1) sys;
    List.iter
      (fun (r : Region.t) ->
        match List.filter (fun n -> not (List.mem n !down)) [ 1; 3; 5; 7 ] with
        | [] -> ()
        | v :: _ ->
          incr attempts;
          if
            System.run_fiber sys (fun () ->
                let c = System.client sys v () in
                match Client.read_bytes c ~addr:r.Region.base 16 with
                | Ok _ -> true
                | Error _ -> false)
          then incr served)
      regions
  done;
  List.iter (fun n -> System.recover sys n) !down;
  down := [];
  let t_heal = System.now sys in
  let holders (r : Region.t) =
    List.length
      (List.filter
         (fun n -> Daemon.holds_page (System.daemon sys n) r.Region.base)
         (List.init total_nodes Fun.id))
  in
  let deficient () = List.filter (fun r -> holders r < min_replicas) regions in
  let cap = Ksim.Time.sec 20 in
  while deficient () <> [] && System.now sys - t_heal < cap do
    System.run_until_quiet ~limit:(Ksim.Time.ms 500) sys
  done;
  let repair_ms = float_of_int (System.now sys - t_heal) /. 1e6 in
  ( 100.0 *. float_of_int !served /. float_of_int (max 1 !attempts),
    repair_ms,
    List.length (deficient ()) )

let run () =
  header "E4: region availability vs min_replicas"
    (Printf.sprintf
       "%d regions over %d nodes; nodes %s crash; a survivor then reads everything."
       regions_count total_nodes
       (String.concat "," (List.map string_of_int victims)));
  let table =
    Stats.table
      ~columns:[ "min_replicas"; "readable %"; "avg copies/region (pre-crash)" ]
  in
  List.iter
    (fun min_replicas ->
      (* Two seeds, averaged, to smooth placement luck. *)
      let a1, c1 = run_once ~min_replicas ~seed:11 in
      let a2, c2 = run_once ~min_replicas ~seed:23 in
      Stats.row table
        [ string_of_int min_replicas; f1 ((a1 +. a2) /. 2.0);
          f2 ((c1 +. c2) /. 2.0) ])
    [ 1; 2; 3; 4 ];
  print_table table;
  header "E4b: availability under a fault schedule"
    (Printf.sprintf
       "%d regions over %d nodes; %d rounds of crash/recover churn among \
        nodes %s; reads sampled each round; repair clocked after the final \
        heal."
       schedule_regions total_nodes schedule_rounds
       (String.concat "," (List.map string_of_int schedule_victims)));
  let table =
    Stats.table
      ~columns:
        [ "min_replicas"; "reads served %"; "repair latency (ms)";
          "regions under floor" ]
  in
  List.iter
    (fun min_replicas ->
      let avail, repair_ms, under = run_schedule ~min_replicas ~seed:17 in
      Stats.row table
        [ string_of_int min_replicas; f1 avail; f1 repair_ms;
          string_of_int under ])
    [ 1; 2; 3 ];
  print_table table
