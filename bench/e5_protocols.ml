(* E5 — Pluggable consistency protocols (§2, §3.3).

   "A variety of consistency protocols can be implemented ... to suit
   various application needs." The same read/write workload runs under
   CREW, release and eventual consistency; strictness costs latency and
   messages, weakness costs freshness. *)

open Bench_common

let rounds = 25

let run_protocol (label, attr) =
  ignore (label : string);
  let sys = System.create ~nodes_per_cluster:3 ~clusters:2 () in
  let writer = System.client sys 1 () in
  let readers = List.map (fun n -> (n, System.client sys n ())) [ 2; 3; 4; 5 ] in

  let region =
    System.run_fiber sys (fun () ->
        let r = ok (Client.create_region writer ~attr 4096) in
        ok (Client.write_bytes writer ~addr:r.Region.base (Bytes.of_string "00000000"));
        List.iter
          (fun (_, c) -> ignore (ok (Client.read_bytes c ~addr:r.Region.base 8)))
          readers;
        r)
  in
  let addr = region.Region.base in
  let wlat = Stats.summary () and rlat = Stats.summary () in
  let stale = ref 0 and reads = ref 0 in
  let current = ref "00000000" in
  let msgs_before = (Khazana.Wire.Sim.Net.stats (System.net sys)).sent in
  System.run_fiber sys (fun () ->
      for i = 1 to rounds do
        let v = Printf.sprintf "%08d" i in
        let (), ms = timed sys (fun () -> ok (Client.write_bytes writer ~addr (Bytes.of_string v))) in
        Stats.add wlat ms;
        current := v;
        (* Readers run shortly after the write: long enough for eager
           (per-release) propagation to land, not for lazy anti-entropy. *)
        Ksim.Fiber.sleep (Ksim.Time.ms 40);
        List.iter
          (fun (_, c) ->
            let b, ms = timed sys (fun () -> ok (Client.read_bytes c ~addr 8)) in
            Stats.add rlat ms;
            incr reads;
            if Bytes.to_string b <> !current then incr stale)
          readers;
        Ksim.Fiber.sleep (Ksim.Time.ms 20)
      done);
  let msgs = (Khazana.Wire.Sim.Net.stats (System.net sys)).sent - msgs_before in
  ( label,
    Stats.mean wlat,
    Stats.mean rlat,
    100.0 *. float_of_int !stale /. float_of_int !reads,
    float_of_int msgs /. float_of_int (rounds * 5) )

let run () =
  header "E5: one workload, four consistency protocols"
    "1 writer + 4 readers (two across a WAN), 25 update rounds.";
  let table =
    Stats.table
      ~columns:
        [ "protocol"; "write mean (ms)"; "read mean (ms)"; "stale reads %";
          "msgs/op" ]
  in
  List.iter
    (fun proto ->
      let name, w, r, s, m = run_protocol proto in
      Stats.row table [ name; f2 w; f2 r; f1 s; f1 m ])
    [
      ("strict (crew)", Attr.make ~owner:1 ~level:Attr.Strict ());
      ("release", Attr.make ~owner:1 ~level:Attr.Release ());
      ("eventual", Attr.make ~owner:1 ~level:Attr.Eventual ());
      ("write-shared", Attr.make ~owner:1 ~protocol:"wshared" ());
    ];
  print_table table;
  print_endline
    "\n(strict: invalidation-based CREW; release: update-on-unlock with a write\n\
     token; eventual: local grants, anti-entropy fan-out — the paper's web-cache\n\
     regime; write-shared: concurrent writers, byte-range diff merging)"
