(* E6 — The region-location path (§3.2, §3.5).

   "The local region directory is searched first and then the cluster
   manager is queried, before an address map tree search is started."
   Force each resolution level and measure what it costs; then sweep the
   region-directory capacity to show the hit-rate/latency tradeoff. *)

open Bench_common

let locate sys node addr =
  let d = System.daemon sys node in
  Daemon.reset_lookup_stats d;
  let (), ms =
    timed sys (fun () ->
        System.run_fiber sys (fun () ->
            match Daemon.locate_region d addr with
            | Ok _ -> ()
            | Error e -> failwith (Daemon.error_to_string e)))
  in
  let s = Daemon.lookup_stats d in
  let path =
    if s.Daemon.homed_hits > 0 then "homed table"
    else if s.Daemon.rdir_hits > 0 then "region directory"
    else if s.Daemon.cluster_hits > 0 then "cluster manager"
    else if s.Daemon.map_walks > 0 then
      Printf.sprintf "map walk (depth %d)" s.Daemon.map_walk_depth_total
    else "?"
  in
  (path, ms)

let run () =
  header "E6: cost by location-resolution level"
    "Directory hit, then cluster walk, then tree search — each level costs more.";
  let sys = System.create ~nodes_per_cluster:3 ~clusters:2 () in
  let c1 = System.client sys 1 () in
  let region =
    System.run_fiber sys (fun () ->
        let r = ok (Client.create_region c1 4096) in
        ok (Client.write_bytes c1 ~addr:r.Region.base (Bytes.make 8 'x'));
        r)
  in
  let addr = region.Region.base in
  let table = Stats.table ~columns:[ "scenario"; "resolved via"; "latency (ms)" ] in
  (* (a) at the home itself *)
  let path, ms = locate sys 1 addr in
  Stats.row table [ "home node"; path; f2 ms ];
  (* (b) cluster-mate after hint refresh: node 2's CM (node 0) learns about
     the region from node 1's periodic report. *)
  System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys;
  let path, ms = locate sys 2 addr in
  Stats.row table [ "cluster-mate, cold directory"; path; f2 ms ];
  (* (c) same node again: now cached in its region directory. *)
  let path, ms = locate sys 2 addr in
  Stats.row table [ "cluster-mate, warm directory"; path; f2 ms ];
  (* (d) WAN node: no cluster hint, full address-map walk. *)
  let path, ms = locate sys 4 addr in
  Stats.row table [ "remote cluster, cold"; path; f2 ms ];
  let path, ms = locate sys 4 addr in
  Stats.row table [ "remote cluster, warm"; path; f2 ms ];
  print_table table;

  (* The §3.1 fallback: with the address map unreachable (its home is
     down), a cold node can still resolve via the cluster-walk. *)
  Printf.printf "\ncluster walk (map home crashed):\n";
  let sys2 = System.create ~nodes_per_cluster:3 ~clusters:3 () in
  let c1 = System.client sys2 1 () in
  let region2 =
    System.run_fiber sys2 (fun () ->
        let r = ok (Client.create_region c1 4096) in
        ok (Client.write_bytes c1 ~addr:r.Region.base (Bytes.make 8 'x'));
        ignore (ok (Client.read_bytes (System.client sys2 4 ()) ~addr:r.Region.base 8));
        r)
  in
  System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys2;
  System.crash sys2 0;
  let d7 = System.daemon sys2 7 in
  Daemon.reset_lookup_stats d7;
  let (), ms =
    timed sys2 (fun () ->
        System.run_fiber sys2 (fun () ->
            match Daemon.locate_region d7 region2.Region.base with
            | Ok _ -> ()
            | Error e -> failwith (Daemon.error_to_string e)))
  in
  let s = Daemon.lookup_stats d7 in
  Printf.printf
    "  resolved via %d cluster-walk hop(s) in %.2f ms with the map offline\n"
    s.Daemon.cluster_walks ms;

  (* Directory capacity sweep: a working set of R regions through an LRU
     directory of capacity C. *)
  Printf.printf "\nregion-directory capacity sweep (60 regions, zipf-ish access):\n";
  let sweep capacity =
    let config = { Daemon.default_config with Daemon.rdir_capacity = capacity } in
    let sys = System.create ~config ~nodes_per_cluster:3 ~clusters:2 () in
    let c1 = System.client sys 1 () in
    let regions =
      System.run_fiber sys (fun () ->
          Array.init 60 (fun _ ->
              let r = ok (Client.create_region c1 4096) in
              ok (Client.write_bytes c1 ~addr:r.Region.base (Bytes.make 8 'x'));
              r))
    in
    System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys;
    let reader = System.daemon sys 2 in
    let rng = Kutil.Rng.create ~seed:5 in
    Daemon.reset_lookup_stats reader;
    Khazana.Region_directory.reset_stats (Daemon.region_directory reader);
    let (), ms =
      timed sys (fun () ->
          System.run_fiber sys (fun () ->
              for _ = 1 to 400 do
                (* Favour low indices: a skewed working set. *)
                let i =
                  min (Kutil.Rng.int rng 60) (Kutil.Rng.int rng 60)
                in
                match Daemon.locate_region reader regions.(i).Region.base with
                | Ok _ -> ()
                | Error e -> failwith (Daemon.error_to_string e)
              done))
    in
    let rd = Daemon.region_directory reader in
    let hits = Khazana.Region_directory.hits rd in
    let misses = Khazana.Region_directory.misses rd in
    ( 100.0 *. float_of_int hits /. float_of_int (hits + misses),
      ms /. 400.0 )
  in
  let t2 =
    Stats.table ~columns:[ "directory capacity"; "hit rate %"; "mean lookup (ms)" ]
  in
  List.iter
    (fun cap ->
      let rate, ms = sweep cap in
      Stats.row t2 [ string_of_int cap; f1 rate; f3 ms ])
    [ 4; 16; 64; 128 ];
  print_table t2
