(* E8 — Two-tier local storage (§3.4).

   "When memory is full, the local storage system can victimize pages from
   RAM to disk. When the disk cache wants to victimize a page, it must
   invoke the consistency protocol associated with the page." Sweep the
   working set against the RAM capacity and watch the latency cliff; then
   shrink the disk too and watch dirty evictions invoke the CM. *)

open Bench_common
module Store = Kstorage.Page_store
module Wal = Kstorage.Wal

let accesses = 2000

let sweep_working_set ~ram_pages ~working_set =
  let eng = Ksim.Engine.create ~seed:7 () in
  let store = Store.create eng (Store.config ~ram_pages ~disk_pages:100_000 ()) in
  let rng = Kutil.Rng.create ~seed:13 in
  let page i = Gaddr.of_int (i * 4096) in
  let done_ = ref false in
  Ksim.Fiber.spawn eng (fun () ->
      (* Populate. *)
      for i = 0 to working_set - 1 do
        Store.write store (page i) (Bytes.make 64 'p') ~dirty:false
      done;
      Store.reset_stats store;
      for _ = 1 to accesses do
        ignore (Store.read store (page (Kutil.Rng.int rng working_set)))
      done;
      done_ := true);
  let t0 = Ksim.Engine.now eng in
  Ksim.Engine.run eng;
  assert !done_;
  let elapsed_ms = Ksim.Time.to_ms_f (Ksim.Engine.now eng - t0) in
  let st = Store.stats store in
  let hit_rate =
    100.0 *. float_of_int st.Store.ram_hits /. float_of_int accesses
  in
  (hit_rate, elapsed_ms /. float_of_int accesses)

let run () =
  header "E8: local storage hierarchy"
    "Uniform access over a working set; RAM capacity fixed at 256 frames.";
  let table =
    Stats.table
      ~columns:[ "working set / RAM"; "RAM hit %"; "mean access (ms)" ]
  in
  List.iter
    (fun factor ->
      let ws = int_of_float (256.0 *. factor) in
      let hit, ms = sweep_working_set ~ram_pages:256 ~working_set:ws in
      Stats.row table [ Printf.sprintf "%.2fx" factor; f1 hit; f3 ms ])
    [ 0.5; 1.0; 1.5; 2.0; 4.0 ];
  print_table table;

  (* Dirty eviction invokes the CM: watch writebacks flow to the home when
     a WAN reader's tiny cache thrashes. *)
  Printf.printf "\ndirty eviction writebacks (8-frame RAM, 16-frame disk node):\n";
  let config =
    { Daemon.default_config with Daemon.ram_pages = 8; disk_pages = 16 }
  in
  let sys = System.create ~config ~nodes_per_cluster:3 ~clusters:2 () in
  let c1 = System.client sys 1 () in
  let regions =
    System.run_fiber sys (fun () ->
        List.init 32 (fun _ ->
            let r = ok (Client.create_region c1 4096) in
            ok (Client.write_bytes c1 ~addr:r.Region.base (Bytes.make 16 'a'));
            r))
  in
  let reader = System.client sys 4 () in
  System.run_fiber sys (fun () ->
      List.iter
        (fun (r : Region.t) ->
          ok (Client.write_bytes reader ~addr:r.Region.base (Bytes.make 16 'z')))
        regions);
  System.run_until_quiet ~limit:(Ksim.Time.sec 5) sys;
  let st = Store.stats (Daemon.store (System.daemon sys 4)) in
  let t2 = Stats.table ~columns:[ "metric"; "count" ] in
  Stats.row t2 [ "RAM->disk evictions"; string_of_int st.Store.ram_evictions ];
  Stats.row t2 [ "disk evictions"; string_of_int st.Store.disk_evictions ];
  Stats.row t2 [ "dirty writebacks via CM"; string_of_int st.Store.writebacks ];
  print_table t2;
  (* Every dirtied-then-evicted page returned its ownership home; the data
     must still be readable there. *)
  let alive =
    List.for_all
      (fun (r : Region.t) ->
        System.run_fiber sys (fun () ->
            match Client.read_bytes c1 ~addr:r.Region.base 16 with
            | Ok b -> Bytes.get b 0 = 'z'
            | Error _ -> false))
      regions
  in
  Printf.printf "\nall 32 evicted-dirty pages still serve the newest data: %b\n" alive;

  (* E8c: crash-recovery replay. One node homes a region (no replicas, so
     the intent log is the only recovery path), takes a stream of writes,
     crashes, recovers. The checkpoint interval controls how long the log
     grows and therefore how long the node stays unavailable replaying
     it. *)
  Printf.printf
    "\nrecovery replay vs checkpoint interval (240 writes, then crash):\n";
  let recovery_run ~checkpoint_every =
    let config =
      { Daemon.default_config with Daemon.wal_checkpoint_every = checkpoint_every }
    in
    let sys = System.create ~config ~seed:29 ~nodes_per_cluster:4 ~clusters:1 () in
    let c1 = System.client sys 1 () in
    let pages = 4 in
    let region =
      System.run_fiber sys (fun () ->
          let attr = Attr.make ~owner:1 ~min_replicas:1 () in
          ok (Client.create_region c1 ~attr (pages * 4096)))
    in
    let addr i = Gaddr.add_int region.Region.base (i mod pages * 4096) in
    let last = Array.make pages "" in
    System.run_fiber sys (fun () ->
        for i = 0 to 239 do
          let v = Printf.sprintf "w%06d!" i in
          last.(i mod pages) <- v;
          ok (Client.write_bytes c1 ~addr:(addr i) (Bytes.of_string v))
        done);
    System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys;
    let d1 = System.daemon sys 1 in
    let log_len = Wal.size (Daemon.wal d1) in
    let replay_ms = Ksim.Time.to_ms_f (Wal.replay_cost (Daemon.wal d1)) in
    System.crash sys 1;
    let t0 = System.now sys in
    System.recover sys 1;
    while not (Daemon.is_up d1) do
      System.run_until_quiet ~limit:(Ksim.Time.ms 1) sys
    done;
    let gap_ms = Ksim.Time.to_ms_f (System.now sys - t0) in
    System.run_until_quiet ~limit:(Ksim.Time.sec 2) sys;
    let intact =
      List.for_all
        (fun p ->
          System.run_fiber sys (fun () ->
              match Client.read_bytes c1 ~addr:(addr p) 8 with
              | Ok b -> Bytes.to_string b = last.(p)
              | Error _ -> false))
        (List.init pages Fun.id)
    in
    (log_len, replay_ms, gap_ms, intact)
  in
  let t3 =
    Stats.table
      ~columns:
        [ "checkpoint every"; "log records at crash"; "replay cost (ms)";
          "availability gap (ms)"; "all writes recovered" ]
  in
  List.iter
    (fun (label, interval) ->
      let log_len, replay_ms, gap_ms, intact = recovery_run ~checkpoint_every:interval in
      Stats.row t3
        [ label; string_of_int log_len; f2 replay_ms; f2 gap_ms;
          string_of_bool intact ])
    [ ("64", 64); ("256", 256); ("1024", 1024); ("never", max_int) ];
  print_table t3
