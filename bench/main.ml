(* Experiment harness: `dune exec bench/main.exe` runs everything (the
   per-claim experiment tables E1-E10 plus the Bechamel microbenchmarks);
   pass experiment ids to run a subset, e.g. `bench/main.exe e3 e5`. See
   EXPERIMENTS.md for the experiment-to-claim index. *)

let experiments =
  [
    ("e1", "lock+fetch latency (Figure 2 path)", E1_lock_fetch.run);
    ("e2", "caching near the consumer", E2_caching.run);
    ("e3", "throughput scaling", E3_scalability.run);
    ("e3c", "MVCC contended writes & diff propagation", E3c_versioned.run);
    ("e4", "availability vs min_replicas", E4_availability.run);
    ("e5", "consistency protocol spectrum", E5_protocols.run);
    ("e6", "region-location path costs", E6_location.run);
    ("e7", "filesystem vs central server", E7_filesystem.run);
    ("e8", "local storage hierarchy", E8_storage.run);
    ("e9", "object placement & false sharing", E9_objects.run);
    ("e10", "release-class background retry", E10_release_ops.run);
    ("e12", "2PC commit latency vs participants", E12_txn.run);
    ("e13", "history checker overhead", E13_check.run);
    ("ablations", "design-knob ablations (hints, timeouts, fs instances)", Ablations.run);
    ("micro", "wall-clock microbenchmarks", Micro.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as ids) -> ids
    | _ -> List.map (fun (id, _, _) -> id) experiments
  in
  let unknown =
    List.filter
      (fun id -> not (List.exists (fun (i, _, _) -> i = id) experiments))
      requested
  in
  List.iter (Printf.eprintf "unknown experiment %S (known: e1..e10, micro)\n") unknown;
  List.iter
    (fun (id, _, run) -> if List.mem id requested then run ())
    experiments
