(* Wall-clock microbenchmarks (Bechamel) of the hot code paths: one
   Test.make per experiment family, so regressions in the substrate show up
   independently of the simulated-time experiment tables. *)

open Bechamel
open Toolkit

let u128_tests =
  let a = Kutil.U128.of_hex "deadbeefcafebabe0123456789abcdef" in
  let b = Kutil.U128.of_hex "0fedcba987654321" in
  [
    Test.make ~name:"u128 add+sub" (Staged.stage (fun () ->
        Kutil.U128.sub (Kutil.U128.add a b) b));
    Test.make ~name:"u128 divmod 4096" (Staged.stage (fun () ->
        Kutil.U128.divmod_int a 4096));
    Test.make ~name:"u128 divmod non-pot" (Staged.stage (fun () ->
        Kutil.U128.divmod_int a 37));
  ]

let container_tests =
  [
    Test.make ~name:"heap push+pop x100" (Staged.stage (fun () ->
        let h = Kutil.Heap.create ~cmp:compare in
        for i = 0 to 99 do
          Kutil.Heap.push h ((i * 37) mod 100)
        done;
        while Kutil.Heap.pop h <> None do () done));
    Test.make ~name:"lru put+find x100"
      (let lru = Kutil.Lru.create ~capacity:64 () in
       Staged.stage (fun () ->
           for i = 0 to 99 do
             ignore (Kutil.Lru.put lru (i mod 80) i);
             ignore (Kutil.Lru.find lru (i mod 80))
           done));
  ]

let engine_tests =
  [
    Test.make ~name:"engine schedule+run x100" (Staged.stage (fun () ->
        let eng = Ksim.Engine.create () in
        for i = 1 to 100 do
          ignore (Ksim.Engine.schedule eng ~after:i ignore)
        done;
        Ksim.Engine.run eng));
    Test.make ~name:"fiber spawn+sleep x10" (Staged.stage (fun () ->
        let eng = Ksim.Engine.create () in
        for _ = 1 to 10 do
          Ksim.Fiber.spawn eng (fun () -> Ksim.Fiber.sleep 100)
        done;
        Ksim.Engine.run eng));
  ]

let crew_tests =
  [
    Test.make ~name:"crew local acquire/release" (Staged.stage (fun () ->
        let cfg = Kconsistency.Types.default_config ~self:0 ~home:0 in
        let m = Kconsistency.Crew.create cfg (Kconsistency.Types.Start_owner (Bytes.create 64)) in
        for i = 0 to 9 do
          ignore (Kconsistency.Crew.handle m
                    (Kconsistency.Types.Acquire { req = i; mode = Kconsistency.Types.Write }));
          ignore (Kconsistency.Crew.handle m
                    (Kconsistency.Types.Release
                       { mode = Kconsistency.Types.Write; data = Some (Bytes.create 64) }))
        done));
  ]

let storage_tests =
  [
    Test.make ~name:"page_store write+read immediate"
      (let eng = Ksim.Engine.create () in
       let store = Kstorage.Page_store.create eng (Kstorage.Page_store.config ()) in
       let data = Bytes.create 4096 in
       let counter = ref 0 in
       Staged.stage (fun () ->
           incr counter;
           let addr = Kutil.Gaddr.of_int ((!counter mod 128) * 4096) in
           Kstorage.Page_store.write_immediate store addr data ~dirty:false;
           ignore (Kstorage.Page_store.read_immediate store addr)));
  ]

let codec_tests =
  let node =
    {
      Khazana.Address_map.Node.base = Kutil.U128.zero;
      span_log2 = 64;
      next_free = 5;
      entries =
        List.init 20 (fun i ->
            Khazana.Address_map.Reserved
              {
                Khazana.Address_map.base = Kutil.Gaddr.of_int (i * 65536);
                len = 4096;
                page_size = 4096;
                homes = [ i mod 4 ];
              });
    }
  in
  [
    Test.make ~name:"address-map node encode+decode" (Staged.stage (fun () ->
        Khazana.Address_map.Node.decode (Khazana.Address_map.Node.encode node)));
  ]

let end_to_end_tests =
  (* A full simulated lock/write/unlock against a pre-built 6-node system:
     measures the whole daemon/CM/engine stack per operation. *)
  let sys = Khazana.System.create ~nodes_per_cluster:3 ~clusters:2 () in
  let c = Khazana.System.client sys 1 () in
  let region =
    Khazana.System.run_fiber sys (fun () ->
        match Khazana.Client.create_region c 4096 with
        | Ok r -> r
        | Error _ -> assert false)
  in
  let payload = Bytes.make 64 'b' in
  [
    Test.make ~name:"simulated local write op (full stack)"
      (Staged.stage (fun () ->
           Khazana.System.run_fiber sys (fun () ->
               match Khazana.Client.write_bytes c ~addr:region.Khazana.Region.base payload with
               | Ok () -> ()
               | Error _ -> assert false)));
  ]

let all_tests () =
  Test.make_grouped ~name:"khazana" ~fmt:"%s %s"
    (u128_tests @ container_tests @ engine_tests @ crew_tests @ storage_tests
    @ codec_tests @ end_to_end_tests)

let run () =
  Printf.printf "\n=== Microbenchmarks (wall clock) ===\n\n";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.3) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (all_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table = Kutil.Stats.table ~columns:[ "benchmark"; "ns/op" ] in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (n :: _) -> Printf.sprintf "%.1f" n
        | Some [] | None -> "n/a"
      in
      Kutil.Stats.row table [ name; ns ])
    (List.sort compare rows);
  print_endline (Kutil.Stats.render table)
