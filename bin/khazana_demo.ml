(* khazana_demo — drive a simulated Khazana deployment from the command
   line: inspect topologies, run synthetic workloads, list protocols.

     dune exec bin/khazana_demo.exe -- workload --nodes 4 --clusters 2
     dune exec bin/khazana_demo.exe -- fs-demo
     dune exec bin/khazana_demo.exe -- protocols *)

module System = Khazana.System
module Client = Khazana.Client
module Daemon = Khazana.Daemon
module Region = Khazana.Region
module Attr = Khazana.Attr

let ok = function
  | Ok v -> v
  | Error e -> failwith (Daemon.error_to_string e)

(* With --trace, stream every span and event to stderr via the pretty
   sink while [f] runs. *)
let maybe_traced trace f =
  if not trace then f ()
  else begin
    let sink = Ktrace.Trace.install (Ktrace.Trace.pretty_sink Format.err_formatter) in
    Fun.protect
      ~finally:(fun () ->
        Format.pp_print_flush Format.err_formatter ();
        Ktrace.Trace.uninstall sink)
      f
  end

(* ------------------------------- workload -------------------------- *)

let run_workload nodes clusters ops seed level trace =
  (* Accept either a paper consistency level (strict/release/eventual) or
     any registered protocol name (crew, wshared, versioned, ...). *)
  let mk_attr, level_name =
    match Attr.level_of_string level with
    | Some l -> ((fun ~owner -> Attr.make ~owner ~level:l ()), Attr.level_to_string l)
    | None when Kconsistency.Registry.find level <> None ->
      ((fun ~owner -> Attr.make ~owner ~protocol:level ()), level)
    | None -> failwith ("unknown consistency level " ^ level)
  in
  let sys = System.create ~seed ~nodes_per_cluster:nodes ~clusters () in
  let n = System.node_count sys in
  Printf.printf "system: %d nodes in %d cluster(s), seed %d, %s consistency\n"
    n clusters seed level_name;
  let rng = Kutil.Rng.create ~seed in
  (* A handful of shared regions, random readers/writers. *)
  let regions =
    System.run_fiber sys (fun () ->
        Array.init (max 2 (n / 2)) (fun i ->
            let node = i mod n in
            let c = System.client sys node () in
            let attr = mk_attr ~owner:node in
            let r = ok (Client.create_region c ~attr 4096) in
            ok (Client.write_bytes c ~addr:r.Region.base (Bytes.make 32 '0'));
            r))
  in
  let latencies = Kutil.Stats.summary () in
  let writes = ref 0 and reads = ref 0 in
  maybe_traced trace @@ fun () ->
  System.run_fiber sys (fun () ->
      for _ = 1 to ops do
        let node = Kutil.Rng.int rng n in
        let region = regions.(Kutil.Rng.int rng (Array.length regions)) in
        let c = System.client sys node () in
        let t0 = System.now sys in
        (if Kutil.Rng.int rng 100 < 30 then begin
           incr writes;
           ok (Client.write_bytes c ~addr:region.Region.base (Bytes.make 32 'x'))
         end
         else begin
           incr reads;
           ignore (ok (Client.read_bytes c ~addr:region.Region.base 32))
         end);
        Kutil.Stats.add latencies (Ksim.Time.to_ms_f (System.now sys - t0))
      done);
  Format.printf "ran %d ops (%d reads / %d writes) in %a of simulated time\n"
    ops !reads !writes Ksim.Time.pp (System.now sys);
  Format.printf "op latency: %a\n" (Kutil.Stats.pp_summary ~unit:"ms") latencies;
  let stats = Khazana.Wire.Sim.Net.stats (System.net sys) in
  Printf.printf "network: %d msgs, %d bytes (%.1f msgs/op)\n" stats.sent
    stats.bytes_sent
    (float_of_int stats.sent /. float_of_int ops);
  Printf.printf "\nper-node lookup paths (homed/directory/cluster/map-walk):\n";
  List.iter
    (fun d ->
      let s = Daemon.lookup_stats d in
      Printf.printf "  node %d: %d / %d / %d / %d\n" (Daemon.id d)
        s.Daemon.homed_hits s.Daemon.rdir_hits s.Daemon.cluster_hits
        s.Daemon.map_walks)
    (System.daemons sys);
  Printf.printf "\nper-node lock outcomes (grant/reject/timeout):\n";
  List.iter
    (fun d ->
      let counters = Ktrace.Metrics.counters (Daemon.metrics d) in
      let get k = try List.assoc k counters with Not_found -> 0 in
      Printf.printf "  node %d: %d / %d / %d\n" (Daemon.id d)
        (get "lock.grant") (get "lock.reject") (get "lock.timeout"))
    (System.daemons sys)

(* -------------------------------- fs demo -------------------------- *)

let run_fs_demo trace =
  let sys = System.create ~nodes_per_cluster:3 ~clusters:2 () in
  let fs_err = function
    | Ok v -> v
    | Error e -> failwith (Kfs.Fs.error_to_string e)
  in
  maybe_traced trace @@ fun () ->
  System.run_fiber sys (fun () ->
      let c1 = System.client sys 1 () in
      let sb = fs_err (Kfs.Fs.format c1 ()) in
      let fs1 = fs_err (Kfs.Fs.mount c1 sb) in
      fs_err (Kfs.Fs.mkdir fs1 "/demo");
      fs_err (Kfs.Fs.create fs1 "/demo/hello");
      fs_err (Kfs.Fs.write fs1 "/demo/hello" ~off:0 (Bytes.of_string "hello from node 1"));
      let c4 = System.client sys 4 () in
      let fs4 = fs_err (Kfs.Fs.mount c4 sb) in
      let data = fs_err (Kfs.Fs.read fs4 "/demo/hello" ~off:0 ~len:17) in
      Printf.printf "node 4 (other cluster) mounted %s and read: %S\n"
        (Kutil.Gaddr.to_string sb) (Bytes.to_string data));
  Format.printf "simulated time: %a\n" Ksim.Time.pp (System.now sys)

(* ------------------------------- protocols ------------------------- *)

let run_protocols () =
  print_endline "registered consistency protocols:";
  List.iter
    (fun name -> Printf.printf "  %s\n" name)
    (Kconsistency.Registry.names ())

(* ------------------------------ cmdliner --------------------------- *)

open Cmdliner

let nodes_arg =
  Arg.(value & opt int 3 & info [ "nodes" ] ~docv:"N" ~doc:"Nodes per cluster.")

let clusters_arg =
  Arg.(value & opt int 2 & info [ "clusters" ] ~docv:"C" ~doc:"Cluster count.")

let ops_arg =
  Arg.(value & opt int 200 & info [ "ops" ] ~docv:"OPS" ~doc:"Operations to run.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")

let level_arg =
  Arg.(
    value
    & opt string "strict"
    & info [ "consistency" ] ~docv:"LEVEL"
        ~doc:"strict | release | eventual, or a registered protocol name \
              (see the protocols subcommand).")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:"Stream operation traces (spans, CM transitions, page-store \
              events) to stderr while the workload runs.")

let workload_cmd =
  Cmd.v
    (Cmd.info "workload" ~doc:"Run a synthetic shared-state workload.")
    Term.(
      const run_workload $ nodes_arg $ clusters_arg $ ops_arg $ seed_arg
      $ level_arg $ trace_arg)

let fs_cmd =
  Cmd.v
    (Cmd.info "fs-demo" ~doc:"Format and cross-mount the distributed filesystem.")
    Term.(const run_fs_demo $ trace_arg)

let protocols_cmd =
  Cmd.v
    (Cmd.info "protocols" ~doc:"List registered consistency protocols.")
    Term.(const run_protocols $ const ())

let main =
  Cmd.group
    (Cmd.info "khazana_demo" ~version:"1.0"
       ~doc:"Drive a simulated Khazana deployment.")
    [ workload_cmd; fs_cmd; protocols_cmd ]

let () = exit (Cmd.eval main)
