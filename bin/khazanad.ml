(* khazanad — Khazana as real processes.

   Forks one OS process per node, each running a full daemon over the
   Unix-domain-socket transport backend ({!Ktransport.Transport_unix}), and
   drives workloads against the fleet. Processes coordinate through files
   in a scratch directory (addresses, per-node results, flags), written
   atomically via rename.

   Two modes:

   - default (smoke): an E1-shaped workload — node 0 creates and writes a
     region, every other node cold-reads it (lock+fetch across real
     sockets), re-reads it warm (local replica), then write-locks it
     (invalidation across real sockets), plus a two-participant 2PC phase.
     Wall-clock numbers print next to the same workload on the simulated
     backend, same daemon code — the whole point of the transport seam.

   - [--chaos]: a kill/restart/rejoin harness. Every node runs with a
     file-backed WAL. A victim worker streams sequenced, settled writes to
     a region it homes while a supervisor process SIGKILLs and SIGTERMs it
     in seeded rounds, restarting it each time with the same id and WAL
     file. The run validates, over real sockets: settled-write durability
     (WAL replay restores every acknowledged write), the CREW uniform-read
     invariant (no reader ever sees a torn or regressed payload), gossip
     suspicion and re-admission at the cluster manager, graceful SIGTERM
     shutdown (checkpoint + clean exit), and in-doubt 2PC resolution — the
     victim is hard-killed between logging its prepare and learning the
     decision, and must resolve the transaction after restart. *)

open Khazana
module Topology = Knet.Topology
module Sockets = Wire.Sockets
module Gaddr = Kutil.Gaddr

let ( / ) = Filename.concat

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("khazanad: " ^ s); exit 1) fmt

let ok = function
  | Ok v -> v
  | Error e -> fail "operation failed: %s" (Daemon.error_to_string e)

let write_file_atomic path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc contents;
  close_out oc;
  Sys.rename tmp path

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> try Sys.remove (dir / f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

(* SIGKILL-then-reap every child still alive, so a timed-out run leaves no
   orphan daemons pumping sockets in the scratch directory. *)
let reap_children pids =
  List.iter
    (fun pid ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    pids

(* Pump the endpoint (so heartbeats and peer requests keep flowing) until
   a coordination file appears. On timeout, run [on_timeout] (the parent
   passes child-reaping + scratch-dir removal) before dying. *)
let wait_for_file ?(on_timeout = fun () -> ()) ep path ~deadline =
  while (not (Sys.file_exists path)) && Unix.gettimeofday () < deadline do
    try Sockets.pump ~max_wait:0.01 ep
    with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  if not (Sys.file_exists path) then begin
    on_timeout ();
    fail "timed out waiting for %s" path
  end

let timed_ms f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, (Unix.gettimeofday () -. t0) *. 1000.0)

(* ------------------------------------------------------------------ *)
(* Per-process node logic                                              *)
(* ------------------------------------------------------------------ *)

let region_len = 4096
let payload = 64

let make_daemon ?wal_file ~dir ~id topology =
  Ktrace.Trace.set_namespace id;
  let ep = Sockets.create ~dir ~id topology in
  let transport = Sockets.pack ep in
  let daemon =
    Daemon.create ?wal_file ~peer_managers:[ 0 ] ~id ~bootstrap:0
      ~cluster_manager:0 transport
  in
  (ep, daemon)

(* Node 0: bootstrap, publish the region, serve until every worker has
   reported, then raise the stop flag. *)
let run_bootstrap ~dir ~nodes ~children ~deadline topology =
  let ep, daemon = make_daemon ~dir ~id:0 topology in
  let on_timeout () = reap_children children; rm_rf dir in
  Sockets.run_fiber ep ~name:"bootstrap" (fun () -> Daemon.bootstrap_map daemon);
  let client = Client.connect daemon ~principal:0 in
  let region =
    Sockets.run_fiber ep ~name:"create-region" (fun () ->
        let r = ok (Client.create_region client region_len) in
        ok (Client.write_bytes client ~addr:r.Region.base (Bytes.make payload 'd'));
        r)
  in
  write_file_atomic (dir / "region.addr") (Kutil.U128.to_hex region.Region.base);
  let results = List.init (nodes - 1) (fun i -> dir / Printf.sprintf "result-%d" (i + 1)) in
  while
    (not (List.for_all Sys.file_exists results)) && Unix.gettimeofday () < deadline
  do
    Sockets.pump ~max_wait:0.01 ep
  done;
  if not (List.for_all Sys.file_exists results) then begin
    write_file_atomic (dir / "stop") "";
    on_timeout ();
    fail "timed out waiting for worker results"
  end;
  (* Workers are done measuring but still pumping (they block on the stop
     flag), so the fleet is quiet and every node still serves RPCs: run
     the atomic-commit phase now. Worker 1 published a region homed on
     itself; each transaction spans that region and ours — a real
     two-participant 2PC over the sockets. *)
  wait_for_file ~on_timeout ep (dir / "region1.addr") ~deadline;
  let r1base = Kutil.U128.of_hex (String.trim (read_file (dir / "region1.addr"))) in
  let txns = 10 in
  let txn_total = ref 0.0 in
  for n = 1 to txns do
    let fill = Bytes.make payload (Char.chr (Char.code 'a' + (n mod 16))) in
    let (), ms =
      timed_ms (fun () ->
          Sockets.run_fiber ep ~name:"txn" (fun () ->
              ok
                (Client.txn client (fun txn ->
                     match
                       Client.txn_write client txn ~addr:region.Region.base fill
                     with
                     | Error _ as e -> e
                     | Ok () -> Client.txn_write client txn ~addr:r1base fill))))
    in
    txn_total := !txn_total +. ms
  done;
  Printf.printf
    "2pc: %d two-participant atomic commits, wall-clock mean %.2f ms\n%!" txns
    (!txn_total /. float_of_int txns);
  write_file_atomic (dir / "stop") "";
  let rows =
    List.map
      (fun path ->
        match String.split_on_char ' ' (String.trim (read_file path)) with
        | [ node; cold; warm; write ] -> (node, cold, warm, write)
        | _ -> fail "malformed result file %s" path)
      results
  in
  Sockets.close ep;
  rows

(* Worker node: wait for the region, measure, report, wait for stop. *)
let run_worker ~dir ~id ~trials ~deadline topology =
  let ep, daemon = make_daemon ~dir ~id topology in
  wait_for_file ep (dir / "region.addr") ~deadline;
  let base = Kutil.U128.of_hex (String.trim (read_file (dir / "region.addr"))) in
  let client = Client.connect daemon ~principal:id in
  (* Worker 1 doubles as the second 2PC participant: it homes a region of
     its own and publishes the address for the bootstrap's txn phase. *)
  if id = 1 then begin
    let r1 =
      Sockets.run_fiber ep ~name:"create-region1" (fun () ->
          ok (Client.create_region client region_len))
    in
    write_file_atomic (dir / "region1.addr") (Kutil.U128.to_hex r1.Region.base)
  end;
  (* Workers run concurrently and all write the same page, so a read may
     see the initial fill or any single worker's write — but never a torn
     mix: CREW serialises writers against readers. *)
  let check b =
    let uniform =
      Bytes.length b = payload
      &&
      let c = Bytes.get b 0 in
      (c = 'd' || (c > 'a' && Char.code c <= Char.code 'a' + 16))
      && Bytes.for_all (Char.equal c) b
    in
    if not uniform then fail "node %d read torn bytes" id
  in
  let read_once () =
    let b =
      Sockets.run_fiber ep ~name:"read" (fun () ->
          ok (Client.read_bytes client ~addr:base payload))
    in
    check b;
    b
  in
  let _data, cold_ms = timed_ms read_once in
  let warm_total = ref 0.0 in
  for _ = 1 to trials do
    let _, ms = timed_ms read_once in
    warm_total := !warm_total +. ms
  done;
  let (), write_ms =
    timed_ms (fun () ->
        Sockets.run_fiber ep ~name:"write" (fun () ->
            ok (Client.write_bytes client ~addr:base (Bytes.make payload (Char.chr (Char.code 'a' + id))))))
  in
  write_file_atomic
    (dir / Printf.sprintf "result-%d" id)
    (Printf.sprintf "%d %.2f %.2f %.2f" id cold_ms
       (!warm_total /. float_of_int trials)
       write_ms);
  (* The parent raises the flag once every result is in — or at its own
     deadline; the cushion keeps a slow parent from stranding us. *)
  wait_for_file ep (dir / "stop") ~deadline:(deadline +. 10.0);
  Sockets.close ep;
  exit 0

(* ------------------------------------------------------------------ *)
(* The simulated twin: same workload, same daemon code, virtual clock.  *)
(* ------------------------------------------------------------------ *)

let simulated_rows ~nodes ~trials =
  let sys = System.create ~nodes_per_cluster:nodes ~clusters:1 () in
  let cw = System.client sys 0 () in
  let region =
    System.run_fiber sys (fun () ->
        let r = ok (Client.create_region cw region_len) in
        ok (Client.write_bytes cw ~addr:r.Region.base (Bytes.make payload 'd'));
        r)
  in
  let virt_ms f =
    let t0 = System.now sys in
    let v = System.run_fiber sys f in
    (v, Ksim.Time.to_ms_f (System.now sys - t0))
  in
  List.init (nodes - 1) (fun i ->
      let id = i + 1 in
      let c = System.client sys id () in
      let read_once () = ok (Client.read_bytes c ~addr:region.Region.base payload) in
      let _, cold = virt_ms read_once in
      let warm_total = ref 0.0 in
      for _ = 1 to trials do
        let _, ms = virt_ms read_once in
        warm_total := !warm_total +. ms
      done;
      let (), write_ms =
        virt_ms (fun () ->
            ok
              (Client.write_bytes c ~addr:region.Region.base
                 (Bytes.make payload (Char.chr (Char.code 'a' + id)))))
      in
      ( string_of_int id,
        Printf.sprintf "%.2f" cold,
        Printf.sprintf "%.2f" (!warm_total /. float_of_int trials),
        Printf.sprintf "%.2f" write_ms ))

(* ------------------------------------------------------------------ *)
(* Chaos mode: kill/restart/rejoin under a file-backed WAL.            *)
(* ------------------------------------------------------------------ *)

(* The victim's settled writes carry their sequence number eight times
   over as big-endian 64-bit words: any torn or mixed read is detectable
   (the words disagree), and any surviving read names exactly which write
   it observed. *)
let seq_payload seq =
  let b = Bytes.create payload in
  for i = 0 to 7 do
    Bytes.set_int64_be b (i * 8) (Int64.of_int seq)
  done;
  b

let seq_of_payload b =
  if Bytes.length b <> payload then None
  else begin
    let v = Bytes.get_int64_be b 0 in
    let uniform = ref true in
    for i = 1 to 7 do
      if Bytes.get_int64_be b (i * 8) <> v then uniform := false
    done;
    if !uniform then Some (Int64.to_int v) else None
  end

(* The in-doubt transaction's fill, written at this offset into both
   regions — off the victim's settled-write words but on the same page,
   so the prepared image and the settled stream interleave in one WAL. *)
let zoff = 1024
let zfill = Bytes.make payload 'Z'
let indoubt_exit = 40

module History = Kcheck.History

(* Every chaos process records its client operations into a jsonl shard
   ([hist-<proc>.jsonl]): invoke and return entries flushed per line, so a
   SIGKILL costs at most a torn final line — whose orphaned invoke then
   assembles as an ambiguous ("maybe applied") event. The supervisor
   concatenates the shards once the fleet has exited and rejects the run
   unless the merged history is linearizable per address and the
   transactions serialize. Shard timestamps are wall-clock nanoseconds:
   every process reads the same host clock, which is the real-time order
   the checker needs. Process ids must be unique per incarnation, so the
   victim's generation [gen] records as proc [1 + 100 * gen]. *)
let wall_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))

let attach_history ~dir ~proc client =
  let path = dir / Printf.sprintf "hist-%d.jsonl" proc in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Client.set_history client
    (Some (History.recorder ~now:wall_ns ~proc (History.jsonl_sink oc)))

(* Chaos runs mutilate the real wire as well as the processes: a seeded
   shim drops and duplicates outgoing frames and jitters their departure.
   The RPC retry ladder absorbs the damage; the history checker owns the
   verdict on what it may not do. *)
let arm_chaos_faults ~id ep =
  Sockets.set_frame_faults ep ~seed:(0xfaf + id) ~drop:0.02 ~duplicate:0.02
    ~delay:0.002 ()

(* SIGTERM means graceful shutdown: the serve loops poll this flag and
   exit through [Daemon.shutdown] (WAL checkpoint) + [Sockets.close]. *)
let arm_sigterm () =
  let flag = ref false in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> flag := true));
  flag

let pump_quiet ?(max_wait = 0.01) ep =
  try Sockets.pump ~max_wait ep
  with Unix.Unix_error (Unix.EINTR, _, _) -> ()

(* Re-read until the predicate accepts: a page pinned by an in-doubt
   prepare or a mid-restart home surfaces as transient errors or stale
   bytes, both of which must clear on their own. *)
let poll_read ep client ~addr ~len ~deadline ~what pred =
  let rec go () =
    match
      Sockets.run_fiber ep ~name:"poll-read" (fun () ->
          Client.read_bytes client ~addr len)
    with
    | Ok b when pred b -> b
    | Ok _ | Error _ ->
        if Unix.gettimeofday () > deadline then fail "timed out: %s" what;
        pump_quiet ~max_wait:0.05 ep;
        go ()
  in
  go ()

let graceful_exit ep daemon =
  Daemon.shutdown daemon;
  Sockets.close ep;
  exit 0

(* Chaos node 0: bootstrap + cluster manager. Publishes its gossip
   suspicion list for the supervisor, coordinates the in-doubt 2PC on
   request, and validates the victim's region over real sockets at the
   end of the run. *)
let run_chaos_manager ~dir ~deadline topology =
  let ep, daemon = make_daemon ~wal_file:(dir / "wal-0") ~dir ~id:0 topology in
  let term = arm_sigterm () in
  arm_chaos_faults ~id:0 ep;
  Sockets.run_fiber ep ~name:"bootstrap" (fun () -> Daemon.bootstrap_map daemon);
  let client = Client.connect daemon ~principal:0 in
  attach_history ~dir ~proc:0 client;
  let region =
    Sockets.run_fiber ep ~name:"create-region" (fun () ->
        ok (Client.create_region client region_len))
  in
  write_file_atomic (dir / "region.addr") (Kutil.U128.to_hex region.Region.base);
  let last_pub = ref 0.0 in
  let indoubt_ran = ref false in
  let validated = ref false in
  while not (!term || Sys.file_exists (dir / "stop")) do
    pump_quiet ep;
    let now = Unix.gettimeofday () in
    if now > deadline then fail "chaos manager: budget exhausted";
    if now -. !last_pub > 0.1 then begin
      last_pub := now;
      write_file_atomic (dir / "suspects-0")
        (String.concat " " (List.map string_of_int (Daemon.suspects daemon)))
    end;
    if (not !indoubt_ran) && Sys.file_exists (dir / "indoubt-req") then begin
      indoubt_ran := true;
      let r1base =
        Kutil.U128.of_hex (String.trim (read_file (dir / "region1.addr")))
      in
      (* Two-participant 2PC; the victim's txn hook hard-kills it between
         its prepare and the decision, so our commit point lands with the
         participant already dead. The decision is durable here — the
         repair loop and the victim's post-restart Tx_status query race to
         finish delivery. *)
      let res =
        Sockets.run_fiber ep ~name:"indoubt-txn" (fun () ->
            Client.txn client (fun txn ->
                match
                  Client.txn_write client txn
                    ~addr:(Gaddr.add_int region.Region.base zoff) zfill
                with
                | Error _ as e -> e
                | Ok () ->
                    Client.txn_write client txn ~addr:(Gaddr.add_int r1base zoff)
                      zfill))
      in
      write_file_atomic (dir / "indoubt-done")
        (match res with
        | Ok () -> "ok"
        | Error e -> "fail " ^ Daemon.error_to_string e)
    end;
    if (not !validated) && Sys.file_exists (dir / "validate") then begin
      validated := true;
      let settled = int_of_string (String.trim (read_file (dir / "validate"))) in
      let r1base =
        Kutil.U128.of_hex (String.trim (read_file (dir / "region1.addr")))
      in
      (* Uniform-read invariant, from the coordinator's seat: a fetch from
         the victim's latest incarnation must be whole and at least as new
         as every write the victim acknowledged before its last death. *)
      let b =
        poll_read ep client ~addr:r1base ~len:payload ~deadline
          ~what:"manager validation read" (fun b ->
            match seq_of_payload b with Some s -> s >= settled | None -> false)
      in
      let z =
        poll_read ep client ~addr:(Gaddr.add_int r1base zoff) ~len:payload
          ~deadline ~what:"manager in-doubt read" (Bytes.equal zfill)
      in
      ignore z;
      write_file_atomic (dir / "final-0")
        (Printf.sprintf "ok %d"
           (match seq_of_payload b with Some s -> s | None -> -1))
    end
  done;
  graceful_exit ep daemon

(* Chaos victim (node 1): homes a region and streams settled writes to it.
   Each write is acknowledged (hence WAL-committed at the home) before the
   settled marker advances, so the marker is a durability floor any
   restart must reach. Generation 0 additionally arms the in-doubt crash
   hook; restarts first self-validate replayed state. *)
let run_chaos_victim ~dir ~gen ~expect_indoubt ~deadline topology =
  let ep, daemon =
    make_daemon ~wal_file:(dir / "wal-1") ~dir ~id:1 topology
  in
  let term = arm_sigterm () in
  arm_chaos_faults ~id:(1 + (7 * gen)) ep;
  let client = Client.connect daemon ~principal:1 in
  attach_history ~dir ~proc:(1 + (100 * gen)) client;
  let settled_path = dir / "settled-1" in
  let settled () =
    if Sys.file_exists settled_path then
      int_of_string (String.trim (read_file settled_path))
    else 0
  in
  let r1base =
    if gen = 0 then begin
      wait_for_file ep (dir / "region.addr") ~deadline;
      let r1 =
        Sockets.run_fiber ep ~name:"create-region1" (fun () ->
            ok (Client.create_region client region_len))
      in
      write_file_atomic (dir / "region1.addr") (Kutil.U128.to_hex r1.Region.base);
      (* Die between Tx_prepare and Tx_decide: the vote is durable and
         sent, the decision has arrived but is neither logged nor applied.
         [Unix._exit] skips every OCaml cleanup — as hard as SIGKILL. *)
      Daemon.set_txn_hook daemon
        (Some
           (fun step -> if step = "part.decide_recv" then Unix._exit indoubt_exit));
      r1.Region.base
    end
    else
      Kutil.U128.of_hex (String.trim (read_file (dir / "region1.addr")))
  in
  let seq = ref (settled ()) in
  if gen = 0 then begin
    (* First write before declaring ready, so the page always holds a
       sequence payload and metadata records are synced behind it. *)
    incr seq;
    Sockets.run_fiber ep ~name:"settle" (fun () ->
        ok (Client.write_bytes client ~addr:r1base (seq_payload !seq)));
    write_file_atomic settled_path (string_of_int !seq)
  end
  else begin
    (* Restart: the WAL replay already ran inside [Daemon.create]. If the
       previous incarnation died in doubt, resolution must commit the
       prepared transaction first (the page is pinned until then). *)
    if expect_indoubt then
      ignore
        (poll_read ep client ~addr:(Gaddr.add_int r1base zoff) ~len:payload
           ~deadline:(Unix.gettimeofday () +. 25.0)
           ~what:"in-doubt transaction resolution after restart"
           (Bytes.equal zfill));
    let floor = settled () in
    let b =
      poll_read ep client ~addr:r1base ~len:payload
        ~deadline:(Unix.gettimeofday () +. 15.0)
        ~what:"victim self-check read after replay" (fun b ->
          seq_of_payload b <> None)
    in
    (match seq_of_payload b with
    | Some s when s >= floor ->
        (* Jump past every value an earlier incarnation may have written
           (including unacknowledged writes that landed anyway): the
           history checker matches reads to writes by value, so each
           write of the run must carry a distinct payload. *)
        seq := max s (gen * 1_000_000)
    | Some s ->
        fail "victim gen %d: replay lost settled writes (page seq %d < settled %d)"
          gen s floor
    | None -> assert false);
    if expect_indoubt then write_file_atomic (dir / "indoubt-ok-1") ""
  end;
  write_file_atomic (dir / Printf.sprintf "ready-1-%d" gen) "";
  let settle_every = 0.02 in
  let last = ref 0.0 in
  while not (!term || Sys.file_exists (dir / "stop")) do
    pump_quiet ep;
    if Unix.gettimeofday () > deadline +. 10.0 then
      fail "chaos victim: budget exhausted";
    let now = Unix.gettimeofday () in
    if now -. !last >= settle_every then begin
      last := now;
      incr seq;
      match
        (try
           Some
             (Sockets.run_fiber ep ~name:"settle" (fun () ->
                  Client.write_bytes client ~addr:r1base (seq_payload !seq)))
         with Unix.Unix_error (Unix.EINTR, _, _) -> None)
      with
      | Some (Ok ()) -> write_file_atomic settled_path (string_of_int !seq)
      | Some (Error _) | None ->
          (* Failed or interrupted: leave [seq] consumed. The write may
             have landed anyway (it is ambiguous in the history), so the
             number must never be written again with a fresh meaning. *)
          ()
    end
  done;
  graceful_exit ep daemon

(* Chaos observers (nodes >= 2): heartbeat members that give gossip a
   quorum to converge over. Node 2 repeats the final validation read, so
   the uniform-read check also runs from a node that never touched the
   region before. *)
let run_chaos_observer ~dir ~id ~deadline topology =
  let ep, daemon =
    make_daemon ~wal_file:(dir / Printf.sprintf "wal-%d" id) ~dir ~id topology
  in
  let term = arm_sigterm () in
  arm_chaos_faults ~id ep;
  let client = Client.connect daemon ~principal:id in
  attach_history ~dir ~proc:id client;
  let validated = ref false in
  while not (!term || Sys.file_exists (dir / "stop")) do
    pump_quiet ep;
    if Unix.gettimeofday () > deadline +. 10.0 then
      fail "chaos observer %d: budget exhausted" id;
    if
      (not !validated) && id = 2
      && Sys.file_exists (dir / "validate")
      && Sys.file_exists (dir / "region1.addr")
    then begin
      validated := true;
      let settled = int_of_string (String.trim (read_file (dir / "validate"))) in
      let r1base =
        Kutil.U128.of_hex (String.trim (read_file (dir / "region1.addr")))
      in
      let b =
        poll_read ep client ~addr:r1base ~len:payload ~deadline
          ~what:"observer validation read" (fun b ->
            match seq_of_payload b with Some s -> s >= settled | None -> false)
      in
      write_file_atomic (dir / "final-2")
        (Printf.sprintf "ok %d"
           (match seq_of_payload b with Some s -> s | None -> -1))
    end
  done;
  graceful_exit ep daemon

(* The chaos supervisor: not a node — forks the whole fleet (so restarts
   fork just as cleanly as first launches), then runs the schedule:
   in-doubt 2PC kill, then seeded SIGKILL/SIGTERM rounds, each with
   enough downtime for gossip suspicion to fire, then fleet-wide
   validation and a clean stop. *)
let run_chaos ~nodes ~seed ~rounds ~budget =
  if nodes < 3 then fail "--chaos needs at least 3 nodes";
  let dir =
    Filename.get_temp_dir_name ()
    / Printf.sprintf "khazanad-chaos-%d" (Unix.getpid ())
  in
  rm_rf dir;
  Unix.mkdir dir 0o700;
  let deadline = Unix.gettimeofday () +. budget in
  let topology = Topology.symmetric ~nodes_per_cluster:nodes ~clusters:1 in
  let rng = Kutil.Rng.create ~seed in
  let live : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let bail fmt =
    Printf.ksprintf
      (fun s ->
        reap_children (Hashtbl.fold (fun pid _ acc -> pid :: acc) live []);
        rm_rf dir;
        prerr_endline ("khazanad: " ^ s);
        exit 1)
      fmt
  in
  let spawn label f =
    match Unix.fork () with
    | 0 -> f ()
    | pid ->
        Hashtbl.replace live pid label;
        pid
  in
  let await ?(what = "") path =
    let what = if what = "" then path else what in
    while (not (Sys.file_exists path)) && Unix.gettimeofday () < deadline do
      Unix.sleepf 0.02
    done;
    if not (Sys.file_exists path) then bail "timed out waiting for %s" what
  in
  let await_pred what pred =
    while (not (pred ())) && Unix.gettimeofday () < deadline do
      Unix.sleepf 0.05
    done;
    if not (pred ()) then bail "timed out waiting until %s" what
  in
  let suspects () =
    if Sys.file_exists (dir / "suspects-0") then
      String.trim (read_file (dir / "suspects-0"))
      |> String.split_on_char ' '
      |> List.filter_map int_of_string_opt
    else []
  in
  (* Bounded reap: a process that ignores its signal is a bug, not a
     reason to hang the harness. *)
  let wait_exit pid ~label ~expect ~desc =
    let t0 = Unix.gettimeofday () in
    let rec go () =
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
          if Unix.gettimeofday () -. t0 > 15.0 then
            bail "%s did not exit within 15s" label
          else begin
            Unix.sleepf 0.02;
            go ()
          end
      | _, st ->
          Hashtbl.remove live pid;
          if not (expect st) then bail "%s exited unexpectedly (wanted %s)" label desc
    in
    go ()
  in
  let exited code st = st = Unix.WEXITED code in
  let killed st = st = Unix.WSIGNALED Sys.sigkill in
  Printf.printf
    "khazanad --chaos: %d processes, seed %d, %d kill rounds, sockets in %s\n%!"
    nodes seed rounds dir;
  let mgr = spawn "manager" (fun () -> run_chaos_manager ~dir ~deadline topology) in
  let observers =
    List.init (nodes - 2) (fun i ->
        let id = i + 2 in
        spawn
          (Printf.sprintf "observer-%d" id)
          (fun () -> run_chaos_observer ~dir ~id ~deadline topology))
  in
  let victim_gen = ref 0 in
  let victim =
    ref
      (spawn "victim-gen0" (fun () ->
           run_chaos_victim ~dir ~gen:0 ~expect_indoubt:false ~deadline topology))
  in
  let restart_victim ~expect_indoubt =
    incr victim_gen;
    let gen = !victim_gen in
    victim :=
      spawn
        (Printf.sprintf "victim-gen%d" gen)
        (fun () -> run_chaos_victim ~dir ~gen ~expect_indoubt ~deadline topology);
    await (dir / Printf.sprintf "ready-1-%d" gen)
      ~what:(Printf.sprintf "victim generation %d to rejoin" gen);
    await_pred "the manager re-admits the victim" (fun () ->
        not (List.mem 1 (suspects ())))
  in
  let ensure_downtime t_kill =
    (* Longer than the manager's suspicion threshold (1.5 s), so gossip
       must notice every death. *)
    let until = t_kill +. 2.6 in
    let now = Unix.gettimeofday () in
    if now < until then Unix.sleepf (until -. now);
    await_pred "the manager suspects the dead victim" (fun () ->
        List.mem 1 (suspects ()))
  in
  await (dir / "region1.addr");
  await (dir / "ready-1-0") ~what:"victim to come up";
  Unix.sleepf (0.4 +. Kutil.Rng.float rng 0.4);
  (* Phase 1: in-doubt 2PC. The victim dies between prepare and decide;
     the commit must survive its restart. *)
  write_file_atomic (dir / "indoubt-req") "";
  wait_exit !victim ~label:"in-doubt victim" ~expect:(exited indoubt_exit)
    ~desc:(Printf.sprintf "exit %d from the txn hook" indoubt_exit);
  let t_kill = Unix.gettimeofday () in
  await (dir / "indoubt-done") ~what:"coordinator to finish the in-doubt txn";
  (match String.trim (read_file (dir / "indoubt-done")) with
  | "ok" -> ()
  | other -> bail "in-doubt transaction failed at the coordinator: %s" other);
  ensure_downtime t_kill;
  restart_victim ~expect_indoubt:true;
  await (dir / "indoubt-ok-1") ~what:"in-doubt resolution after restart";
  Printf.printf "chaos: in-doubt 2PC resolved across kill -9 + restart\n%!";
  (* Phase 2: seeded kill/restart rounds, alternating hard and graceful. *)
  for round = 1 to rounds do
    Unix.sleepf (0.3 +. Kutil.Rng.float rng 0.5);
    let graceful = round mod 2 = 0 in
    Unix.kill !victim (if graceful then Sys.sigterm else Sys.sigkill);
    let t_kill = Unix.gettimeofday () in
    if graceful then
      wait_exit !victim ~label:"victim (SIGTERM)" ~expect:(exited 0)
        ~desc:"clean exit 0 after checkpoint"
    else
      wait_exit !victim ~label:"victim (SIGKILL)" ~expect:killed
        ~desc:"death by SIGKILL";
    ensure_downtime t_kill;
    restart_victim ~expect_indoubt:false;
    Printf.printf "chaos: round %d (%s) — killed, suspected, rejoined\n%!" round
      (if graceful then "SIGTERM" else "SIGKILL")
  done;
  (* Phase 3: fleet-wide validation, then a clean stop. *)
  let settled = int_of_string (String.trim (read_file (dir / "settled-1"))) in
  write_file_atomic (dir / "validate") (string_of_int settled);
  await (dir / "final-0") ~what:"manager validation";
  await (dir / "final-2") ~what:"observer validation";
  let final_seq path =
    match String.split_on_char ' ' (String.trim (read_file path)) with
    | [ "ok"; s ] -> int_of_string s
    | _ -> bail "validation failed: %s" path
  in
  let s0 = final_seq (dir / "final-0") and s2 = final_seq (dir / "final-2") in
  write_file_atomic (dir / "stop") "";
  wait_exit mgr ~label:"manager" ~expect:(exited 0) ~desc:"clean exit 0";
  List.iter
    (fun pid ->
      wait_exit pid ~label:"observer" ~expect:(exited 0) ~desc:"clean exit 0")
    observers;
  wait_exit !victim ~label:"victim" ~expect:(exited 0) ~desc:"clean exit 0";
  (* Every process has exited: merge the per-process history shards and
     run the linearizability / serializability checkers over the whole
     run. Region pages start zero-filled, so reads that beat the first
     write legitimately observe zeros. *)
  let shards =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f >= 5
           && String.sub f 0 5 = "hist-"
           && Filename.check_suffix f ".jsonl")
    |> List.sort compare
  in
  let entries = List.concat_map (fun f -> History.read_jsonl (dir / f)) shards in
  let events = History.assemble entries in
  let report =
    Kcheck.Check.analyze ~init:(fun _ -> String.make payload '\000') events
  in
  if not (Kcheck.Check.passed report) then begin
    Format.eprintf "%a@." Kcheck.Check.pp report;
    bail "history check failed: %s" (Kcheck.Check.summary report)
  end;
  rm_rf dir;
  Printf.printf "chaos: %d shards, %s\n" (List.length shards)
    (Kcheck.Check.summary report);
  Printf.printf
    "ok: chaos run survived — %d settled writes floor, reads saw seq %d/%d, \
     %d restarts (1 in-doubt, %d rounds), every exit clean\n"
    settled s0 s2 (rounds + 1) rounds

(* ------------------------------------------------------------------ *)

let print_rows ~header rows =
  print_endline header;
  Printf.printf "  %-6s %14s %16s %12s\n" "node" "cold read (ms)" "warm mean (ms)" "write (ms)";
  List.iter
    (fun (node, cold, warm, write) ->
      Printf.printf "  %-6s %14s %16s %12s\n" node cold warm write)
    rows

let run_smoke ~nodes ~trials ~budget =
  if nodes < 2 then fail "--nodes must be at least 2";
  let dir =
    Filename.get_temp_dir_name ()
    / Printf.sprintf "khazanad-%d" (Unix.getpid ())
  in
  rm_rf dir;
  Unix.mkdir dir 0o700;
  let deadline = Unix.gettimeofday () +. budget in
  let topology = Topology.symmetric ~nodes_per_cluster:nodes ~clusters:1 in
  let children =
    List.init (nodes - 1) (fun i ->
        let id = i + 1 in
        match Unix.fork () with
        | 0 -> run_worker ~dir ~id ~trials ~deadline topology
        | pid -> pid)
  in
  Printf.printf "khazanad: %d processes, unix-domain sockets in %s\n%!" nodes dir;
  let rows = run_bootstrap ~dir ~nodes ~children ~deadline topology in
  List.iter
    (fun pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> fail "worker process %d failed" pid)
    children;
  print_rows ~header:"real processes (wall-clock):" rows;
  print_newline ();
  let sim = simulated_rows ~nodes ~trials in
  print_rows ~header:"simulated backend (virtual time, same workload):" sim;
  rm_rf dir;
  print_newline ();
  Printf.printf "ok: %d-process loopback workload completed\n" nodes

let () =
  let nodes = ref 3 and trials = ref 20 and budget = ref 50.0 in
  let chaos = ref false and seed = ref 1 and rounds = ref 2 in
  Arg.parse
    [
      ("--nodes", Arg.Set_int nodes, "number of daemon processes (default 3)");
      ("--trials", Arg.Set_int trials, "warm reads per worker (default 20)");
      ("--budget", Arg.Set_float budget, "seconds before giving up (default 50)");
      ("--chaos", Arg.Set chaos, "run the kill/restart/rejoin chaos harness");
      ("--seed", Arg.Set_int seed, "chaos schedule seed (default 1)");
      ("--rounds", Arg.Set_int rounds, "chaos kill/restart rounds (default 2)");
    ]
    (fun a -> fail "unexpected argument %s" a)
    "khazanad: run a Khazana fleet as real processes over unix sockets";
  if !chaos then run_chaos ~nodes:!nodes ~seed:!seed ~rounds:!rounds ~budget:!budget
  else run_smoke ~nodes:!nodes ~trials:!trials ~budget:!budget
