(* khazanad — Khazana as real processes.

   Forks one OS process per node, each running a full daemon over the
   Unix-domain-socket transport backend ({!Ktransport.Transport_unix}), and
   drives an E1-shaped workload against the fleet: node 0 creates and
   writes a region, every other node cold-reads it (lock+fetch across real
   sockets), re-reads it warm (local replica), then write-locks it
   (invalidation across real sockets). Wall-clock numbers print next to
   the same workload on the simulated backend, same daemon code — the
   whole point of the transport seam.

   Processes coordinate through files in a scratch directory (the region's
   base address, per-node results, a stop flag), written atomically via
   rename. *)

open Khazana
module Topology = Knet.Topology
module Sockets = Wire.Sockets

let ( / ) = Filename.concat

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("khazanad: " ^ s); exit 1) fmt

let ok = function
  | Ok v -> v
  | Error e -> fail "operation failed: %s" (Daemon.error_to_string e)

let write_file_atomic path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc contents;
  close_out oc;
  Sys.rename tmp path

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Pump the endpoint (so heartbeats and peer requests keep flowing) until
   a coordination file appears. *)
let wait_for_file ep path ~deadline =
  while (not (Sys.file_exists path)) && Unix.gettimeofday () < deadline do
    Sockets.pump ~max_wait:0.01 ep
  done;
  if not (Sys.file_exists path) then fail "timed out waiting for %s" path

let timed_ms f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, (Unix.gettimeofday () -. t0) *. 1000.0)

(* ------------------------------------------------------------------ *)
(* Per-process node logic                                              *)
(* ------------------------------------------------------------------ *)

let region_len = 4096
let payload = 64

let make_daemon ~dir ~id topology =
  Ktrace.Trace.set_namespace id;
  let ep = Sockets.create ~dir ~id topology in
  let transport = Sockets.pack ep in
  let daemon =
    Daemon.create ~peer_managers:[ 0 ] ~id ~bootstrap:0 ~cluster_manager:0
      transport
  in
  (ep, daemon)

(* Node 0: bootstrap, publish the region, serve until every worker has
   reported, then raise the stop flag. *)
let run_bootstrap ~dir ~nodes ~deadline topology =
  let ep, daemon = make_daemon ~dir ~id:0 topology in
  Sockets.run_fiber ep ~name:"bootstrap" (fun () -> Daemon.bootstrap_map daemon);
  let client = Client.connect daemon ~principal:0 in
  let region =
    Sockets.run_fiber ep ~name:"create-region" (fun () ->
        let r = ok (Client.create_region client region_len) in
        ok (Client.write_bytes client ~addr:r.Region.base (Bytes.make payload 'd'));
        r)
  in
  write_file_atomic (dir / "region.addr") (Kutil.U128.to_hex region.Region.base);
  let results = List.init (nodes - 1) (fun i -> dir / Printf.sprintf "result-%d" (i + 1)) in
  while
    (not (List.for_all Sys.file_exists results)) && Unix.gettimeofday () < deadline
  do
    Sockets.pump ~max_wait:0.01 ep
  done;
  if not (List.for_all Sys.file_exists results) then begin
    write_file_atomic (dir / "stop") "";
    fail "timed out waiting for worker results"
  end;
  (* Workers are done measuring but still pumping (they block on the stop
     flag), so the fleet is quiet and every node still serves RPCs: run
     the atomic-commit phase now. Worker 1 published a region homed on
     itself; each transaction spans that region and ours — a real
     two-participant 2PC over the sockets. *)
  wait_for_file ep (dir / "region1.addr") ~deadline;
  let r1base = Kutil.U128.of_hex (String.trim (read_file (dir / "region1.addr"))) in
  let txns = 10 in
  let txn_total = ref 0.0 in
  for n = 1 to txns do
    let fill = Bytes.make payload (Char.chr (Char.code 'a' + (n mod 16))) in
    let (), ms =
      timed_ms (fun () ->
          Sockets.run_fiber ep ~name:"txn" (fun () ->
              ok
                (Client.txn client (fun txn ->
                     match
                       Client.txn_write client txn ~addr:region.Region.base fill
                     with
                     | Error _ as e -> e
                     | Ok () -> Client.txn_write client txn ~addr:r1base fill))))
    in
    txn_total := !txn_total +. ms
  done;
  Printf.printf
    "2pc: %d two-participant atomic commits, wall-clock mean %.2f ms\n%!" txns
    (!txn_total /. float_of_int txns);
  write_file_atomic (dir / "stop") "";
  let rows =
    List.map
      (fun path ->
        match String.split_on_char ' ' (String.trim (read_file path)) with
        | [ node; cold; warm; write ] -> (node, cold, warm, write)
        | _ -> fail "malformed result file %s" path)
      results
  in
  Sockets.close ep;
  rows

(* Worker node: wait for the region, measure, report, wait for stop. *)
let run_worker ~dir ~id ~trials ~deadline topology =
  let ep, daemon = make_daemon ~dir ~id topology in
  wait_for_file ep (dir / "region.addr") ~deadline;
  let base = Kutil.U128.of_hex (String.trim (read_file (dir / "region.addr"))) in
  let client = Client.connect daemon ~principal:id in
  (* Worker 1 doubles as the second 2PC participant: it homes a region of
     its own and publishes the address for the bootstrap's txn phase. *)
  if id = 1 then begin
    let r1 =
      Sockets.run_fiber ep ~name:"create-region1" (fun () ->
          ok (Client.create_region client region_len))
    in
    write_file_atomic (dir / "region1.addr") (Kutil.U128.to_hex r1.Region.base)
  end;
  (* Workers run concurrently and all write the same page, so a read may
     see the initial fill or any single worker's write — but never a torn
     mix: CREW serialises writers against readers. *)
  let check b =
    let uniform =
      Bytes.length b = payload
      &&
      let c = Bytes.get b 0 in
      (c = 'd' || (c > 'a' && Char.code c <= Char.code 'a' + 16))
      && Bytes.for_all (Char.equal c) b
    in
    if not uniform then fail "node %d read torn bytes" id
  in
  let read_once () =
    let b =
      Sockets.run_fiber ep ~name:"read" (fun () ->
          ok (Client.read_bytes client ~addr:base payload))
    in
    check b;
    b
  in
  let _data, cold_ms = timed_ms read_once in
  let warm_total = ref 0.0 in
  for _ = 1 to trials do
    let _, ms = timed_ms read_once in
    warm_total := !warm_total +. ms
  done;
  let (), write_ms =
    timed_ms (fun () ->
        Sockets.run_fiber ep ~name:"write" (fun () ->
            ok (Client.write_bytes client ~addr:base (Bytes.make payload (Char.chr (Char.code 'a' + id))))))
  in
  write_file_atomic
    (dir / Printf.sprintf "result-%d" id)
    (Printf.sprintf "%d %.2f %.2f %.2f" id cold_ms
       (!warm_total /. float_of_int trials)
       write_ms);
  (* The parent raises the flag once every result is in — or at its own
     deadline; the cushion keeps a slow parent from stranding us. *)
  wait_for_file ep (dir / "stop") ~deadline:(deadline +. 10.0);
  Sockets.close ep;
  exit 0

(* ------------------------------------------------------------------ *)
(* The simulated twin: same workload, same daemon code, virtual clock.  *)
(* ------------------------------------------------------------------ *)

let simulated_rows ~nodes ~trials =
  let sys = System.create ~nodes_per_cluster:nodes ~clusters:1 () in
  let cw = System.client sys 0 () in
  let region =
    System.run_fiber sys (fun () ->
        let r = ok (Client.create_region cw region_len) in
        ok (Client.write_bytes cw ~addr:r.Region.base (Bytes.make payload 'd'));
        r)
  in
  let virt_ms f =
    let t0 = System.now sys in
    let v = System.run_fiber sys f in
    (v, Ksim.Time.to_ms_f (System.now sys - t0))
  in
  List.init (nodes - 1) (fun i ->
      let id = i + 1 in
      let c = System.client sys id () in
      let read_once () = ok (Client.read_bytes c ~addr:region.Region.base payload) in
      let _, cold = virt_ms read_once in
      let warm_total = ref 0.0 in
      for _ = 1 to trials do
        let _, ms = virt_ms read_once in
        warm_total := !warm_total +. ms
      done;
      let (), write_ms =
        virt_ms (fun () ->
            ok
              (Client.write_bytes c ~addr:region.Region.base
                 (Bytes.make payload (Char.chr (Char.code 'a' + id)))))
      in
      ( string_of_int id,
        Printf.sprintf "%.2f" cold,
        Printf.sprintf "%.2f" (!warm_total /. float_of_int trials),
        Printf.sprintf "%.2f" write_ms ))

(* ------------------------------------------------------------------ *)

let print_rows ~header rows =
  print_endline header;
  Printf.printf "  %-6s %14s %16s %12s\n" "node" "cold read (ms)" "warm mean (ms)" "write (ms)";
  List.iter
    (fun (node, cold, warm, write) ->
      Printf.printf "  %-6s %14s %16s %12s\n" node cold warm write)
    rows

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> try Sys.remove (dir / f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let () =
  let nodes = ref 3 and trials = ref 20 and budget = ref 50.0 in
  Arg.parse
    [
      ("--nodes", Arg.Set_int nodes, "number of daemon processes (default 3)");
      ("--trials", Arg.Set_int trials, "warm reads per worker (default 20)");
      ("--budget", Arg.Set_float budget, "seconds before giving up (default 50)");
    ]
    (fun a -> fail "unexpected argument %s" a)
    "khazanad: run a Khazana fleet as real processes over unix sockets";
  if !nodes < 2 then fail "--nodes must be at least 2";
  let dir =
    Filename.get_temp_dir_name ()
    / Printf.sprintf "khazanad-%d" (Unix.getpid ())
  in
  rm_rf dir;
  Unix.mkdir dir 0o700;
  let deadline = Unix.gettimeofday () +. !budget in
  let topology = Topology.symmetric ~nodes_per_cluster:!nodes ~clusters:1 in
  let children =
    List.init (!nodes - 1) (fun i ->
        let id = i + 1 in
        match Unix.fork () with
        | 0 -> run_worker ~dir ~id ~trials:!trials ~deadline topology
        | pid -> pid)
  in
  Printf.printf "khazanad: %d processes, unix-domain sockets in %s\n%!" !nodes dir;
  let rows = run_bootstrap ~dir ~nodes:!nodes ~deadline topology in
  List.iter
    (fun pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> fail "worker process %d failed" pid)
    children;
  print_rows ~header:"real processes (wall-clock):" rows;
  print_newline ();
  let sim = simulated_rows ~nodes:!nodes ~trials:!trials in
  print_rows ~header:"simulated backend (virtual time, same workload):" sim;
  rm_rf dir;
  print_newline ();
  Printf.printf "ok: %d-process loopback workload completed\n" !nodes
