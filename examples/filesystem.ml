(* A wide-area distributed filesystem (paper §4.1).

   One node formats the filesystem; instances on four other nodes — two in
   a remote cluster — mount the same superblock address and collaborate on
   a shared namespace. The filesystem code itself has no idea it is
   distributed: Khazana handles location, replication and consistency.

   Run with: dune exec examples/filesystem.exe *)

module System = Khazana.System
module Client = Khazana.Client
module Fs = Kfs.Fs

let ok = function
  | Ok v -> v
  | Error e -> failwith (Fs.error_to_string e)

let tree fs path =
  (* Render the namespace as seen by one instance. *)
  let rec walk indent path =
    List.iter
      (fun name ->
        let full = if path = "/" then "/" ^ name else path ^ "/" ^ name in
        let st = ok (Fs.stat fs full) in
        (match st.Fs.kind with
         | Fs.Directory ->
           Printf.printf "%s%s/\n" indent name;
           walk (indent ^ "  ") full
         | Fs.File -> Printf.printf "%s%s (%d bytes)\n" indent name st.Fs.bytes))
      (ok (Fs.readdir fs path))
  in
  walk "  " path

let () =
  let sys = System.create ~nodes_per_cluster:3 ~clusters:2 () in
  let sb =
    System.run_fiber sys (fun () ->
        ok (Fs.format (System.client sys 1 ()) ()))
  in
  Printf.printf "formatted; superblock at %s — that address is all a mount needs\n\n"
    (Kutil.Gaddr.to_string sb);

  (* Mount the same filesystem on four nodes (n4, n5 are across the WAN). *)
  let mounts =
    System.run_fiber sys (fun () ->
        List.map
          (fun n -> (n, ok (Fs.mount (System.client sys n ()) sb)))
          [ 1; 2; 4; 5 ])
  in
  let fs_of n = List.assoc n mounts in

  System.run_fiber sys (fun () ->
      ok (Fs.mkdir (fs_of 1) "/projects");
      ok (Fs.mkdir (fs_of 1) "/projects/khazana");
      ok (Fs.create (fs_of 1) "/projects/khazana/paper.tex");
      ok (Fs.write (fs_of 1) "/projects/khazana/paper.tex" ~off:0
            (Bytes.of_string "\\title{Khazana}")));

  (* Node 4 (other cluster) picks up where node 1 left off. *)
  System.run_fiber sys (fun () ->
      let fs = fs_of 4 in
      let sz = ok (Fs.size fs "/projects/khazana/paper.tex") in
      ok (Fs.write fs "/projects/khazana/paper.tex" ~off:sz
            (Bytes.of_string "\n\\begin{document}"));
      ok (Fs.create fs "/projects/khazana/eval.dat");
      ok (Fs.write fs "/projects/khazana/eval.dat" ~off:0 (Bytes.make 10_000 '#')));

  (* Concurrent appends from every mount to a shared log, interleaved by
     CREW write locks. *)
  System.run_fiber sys (fun () ->
      ok (Fs.create (fs_of 2) "/projects/log"));
  System.run_fiber sys (fun () ->
      let eng = System.engine sys in
      let fibers =
        List.map
          (fun (n, fs) ->
            Ksim.Fiber.async eng (fun () ->
                for i = 1 to 3 do
                  let line = Printf.sprintf "node%d-entry%d\n" n i in
                  ok (Fs.append fs "/projects/log" (Bytes.of_string line))
                done))
          mounts
      in
      Ksim.Fiber.join_all fibers);

  Printf.printf "namespace as seen from node 5 (never wrote anything):\n";
  System.run_fiber sys (fun () -> tree (fs_of 5) "/");

  System.run_fiber sys (fun () ->
      let log = ok (Fs.read (fs_of 5) "/projects/log" ~off:0 ~len:4096) in
      let lines = String.split_on_char '\n' (Bytes.to_string log) in
      Printf.printf "\nshared log has %d entries from 4 writers; first three:\n"
        (List.length lines - 1);
      List.iteri (fun i l -> if i < 3 then Printf.printf "  %s\n" l) lines);

  let stats = Khazana.Wire.Sim.Net.stats (System.net sys) in
  Printf.printf "\nsession took %s of simulated time, %d messages on the wire\n"
    (Format.asprintf "%a" Ksim.Time.pp (System.now sys)) stats.sent
