(* Quickstart: the paper's Figure 1 brought to life.

   Five Khazana nodes (two clusters joined by a WAN link). An application
   on node 3 stores a piece of shared state; Khazana replicates it on nodes
   3 and 5; an application on node 1 then accesses the same global address
   and Khazana locates a copy and brings it over — the application never
   names a server.

   Run with: dune exec examples/quickstart.exe *)

module System = Khazana.System
module Client = Khazana.Client
module Daemon = Khazana.Daemon
module Region = Khazana.Region
module Attr = Khazana.Attr

let ok = function
  | Ok v -> v
  | Error e -> failwith (Daemon.error_to_string e)

let () =
  (* Nodes 0-2 form cluster 0; nodes 3-5 cluster 1, across a WAN. *)
  let sys = System.create ~nodes_per_cluster:3 ~clusters:2 () in
  Printf.printf "Khazana up: %d nodes, 2 clusters (bootstrap + cluster managers elected)\n\n"
    (System.node_count sys);

  (* The application on node 3 allocates shared state: two replicas. *)
  let app3 = System.client sys 3 () in
  let region =
    System.run_fiber sys (fun () ->
        let attr = Attr.make ~owner:3 ~min_replicas:2 () in
        let r = ok (Client.create_region app3 ~attr 4096) in
        ok (Client.write_bytes app3 ~addr:r.Region.base
              (Bytes.of_string "the shared square object"));
        r)
  in
  Printf.printf "node 3 stored shared state at global address %s\n"
    (Kutil.Gaddr.to_string region.Region.base);

  (* Node 5 touches it once; now two physical replicas exist (the solid
     squares of Figure 1). *)
  let app5 = System.client sys 5 () in
  System.run_fiber sys (fun () ->
      ignore (ok (Client.read_bytes app5 ~addr:region.Region.base 24)));
  System.run_until_quiet sys;
  Printf.printf "\nreplica map after node 5's access:\n";
  List.iter
    (fun n ->
      Printf.printf "  node %d: %s\n" n
        (if Daemon.holds_page (System.daemon sys n) region.Region.base then
           "[#] holds a copy"
         else "[ ] no copy"))
    (List.init (System.node_count sys) Fun.id);

  (* Node 1 — different cluster, never saw this region — just reads the
     global address. Khazana finds it. *)
  let app1 = System.client sys 1 () in
  let t0 = System.now sys in
  let data =
    System.run_fiber sys (fun () ->
        ok (Client.read_bytes app1 ~addr:region.Region.base 24))
  in
  let cold = System.now sys - t0 in
  let t1 = System.now sys in
  ignore
    (System.run_fiber sys (fun () ->
         ok (Client.read_bytes app1 ~addr:region.Region.base 24)));
  let warm = System.now sys - t1 in
  Printf.printf "\nnode 1 read the same address: %S\n" (Bytes.to_string data);
  Format.printf "  first access (locate + fetch over WAN): %a@." Ksim.Time.pp cold;
  Format.printf "  second access (local replica):          %a@." Ksim.Time.pp warm;

  let stats = Khazana.Wire.Sim.Net.stats (System.net sys) in
  Printf.printf "\nwire traffic for the whole session: %d messages, %d bytes\n"
    stats.sent stats.bytes_sent;
  List.iter (fun (k, v) -> Printf.printf "  %-22s %4d\n" k v) stats.by_kind
