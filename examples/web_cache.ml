(* A web-cache-style consumer of weak consistency.

   The paper motivates relaxed protocols with "applications such as web
   caches ... [that] typically can tolerate data that is temporarily
   out-of-date (i.e., one or two versions old) as long as they get fast
   response". An origin node republishes a page; edge nodes in another
   cluster serve reads from their local replica under three protocols.
   The latency/staleness tradeoff is printed side by side.

   Run with: dune exec examples/web_cache.exe *)

module System = Khazana.System
module Client = Khazana.Client
module Region = Khazana.Region
module Attr = Khazana.Attr

let ok = function
  | Ok v -> v
  | Error e -> failwith (Khazana.Daemon.error_to_string e)

let run_protocol level =
  let sys = System.create ~nodes_per_cluster:3 ~clusters:2 () in
  let origin = System.client sys 1 () in
  let edges = List.map (fun n -> System.client sys n ()) [ 3; 4; 5 ] in
  let attr = Attr.make ~owner:1 ~level () in
  let region =
    System.run_fiber sys (fun () ->
        let r = ok (Client.create_region origin ~attr 4096) in
        ok (Client.write_bytes origin ~addr:r.Region.base (Bytes.of_string "v000"));
        (* Warm every edge cache. *)
        List.iter
          (fun e -> ignore (ok (Client.read_bytes e ~addr:r.Region.base 4)))
          edges;
        r)
  in
  let addr = region.Region.base in
  let read_latency = Kutil.Stats.summary () in
  let stale_now = ref 0 and stale_settled = ref 0 and per_kind = ref 0 in
  let current = ref "v000" in
  let sample counter =
    List.iter
      (fun e ->
        let t0 = System.now sys in
        let b = ok (Client.read_bytes e ~addr 4) in
        Kutil.Stats.add read_latency (Ksim.Time.to_ms_f (System.now sys - t0));
        incr per_kind;
        if Bytes.to_string b <> !current then incr counter)
      edges
  in
  System.run_fiber sys (fun () ->
      for version = 1 to 20 do
        (* Origin republishes. *)
        let v = Printf.sprintf "v%03d" version in
        ok (Client.write_bytes origin ~addr (Bytes.of_string v));
        current := v;
        (* Edges read immediately (worst case), then again 200ms later. *)
        sample stale_now;
        Ksim.Fiber.sleep (Ksim.Time.ms 200);
        sample stale_settled
      done);
  let reads_per_kind = !per_kind / 2 in
  let stats = Khazana.Wire.Sim.Net.stats (System.net sys) in
  ( Attr.level_to_string level,
    Kutil.Stats.mean read_latency,
    100.0 *. float_of_int !stale_now /. float_of_int reads_per_kind,
    100.0 *. float_of_int !stale_settled /. float_of_int reads_per_kind,
    stats.sent )

let () =
  Printf.printf
    "origin republishes a page 20x; 3 WAN edge caches read right after each update\n\n";
  let table = Kutil.Stats.table
      ~columns:
        [ "consistency"; "read mean (ms)"; "stale: immediate %";
          "stale: +200ms %"; "messages" ]
  in
  List.iter
    (fun level ->
      let name, mean, stale_now, stale_settled, msgs = run_protocol level in
      Kutil.Stats.row table
        [ name; Printf.sprintf "%.2f" mean; Printf.sprintf "%.1f" stale_now;
          Printf.sprintf "%.1f" stale_settled; string_of_int msgs ])
    [ Attr.Strict; Attr.Release; Attr.Eventual ];
  print_endline (Kutil.Stats.render table);
  print_endline
    "\nstrict (CREW) reads are never stale but pay WAN round-trips after every\n\
     update; release pushes updates on unlock (fast reads, small windows of\n\
     staleness); eventual serves purely locally and batches propagation."
