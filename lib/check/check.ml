(* Glue: project an assembled history into per-address register
   histories (linearizability) and a transaction set (serializability),
   run both checkers, and render verdicts with minimized
   counterexamples.

   Projection rules, per event status:

     plain read   Ok    -> required R (observed value)
                  Fail/Maybe -> dropped (observed nothing provable)
     plain write  Ok    -> required W
                  Fail  -> dropped
                  Maybe -> skippable W, return = infinity (a timed-out
                           write may land arbitrarily late)
     txn          Ok    -> per address: RW (external read -> final
                           write), or W, or R; all required, spanning
                           the txn's [invoke, return]. Reads that
                           observed the txn's own earlier buffered
                           write are internal and excluded.
                  Fail  -> external reads become required R ops bounded
                           by their Tread timestamp (they observed
                           committed state through a real lock); writes
                           dropped.
                  Maybe -> reads as for Fail; writes become skippable
                           W with return = infinity.

   The serializability graph gets committed txns, maybe txns (promoted
   inside Serial.check when their writes are observed), and every plain
   op as a singleton txn so cross-address cycles through plain ops are
   caught too. Failed txns are excluded: their reads are only
   individually (per-address) constrained. *)

type addr = Kutil.Gaddr.t

module Atbl = Kutil.Gaddr.Table

type report = {
  registers : (addr * Register.op list * Register.verdict) list;
      (** one entry per address, verdict plus the projected history *)
  serial : Serial.verdict;
  repeatable_read : string list;
      (** committed txns whose external reads of one address disagree *)
  mvcc : string list;
      (** MVCC-scoped violations: out-of-thin-air snapshot reads, or one
          pin observing two different values *)
  events : int;
  init : addr -> string;
}

(* Split a committed/maybe txn's sub-entries into external reads (first
   observation per address before any own write) and final writes (last
   value per address), flagging repeatable-read disagreements. *)
let split_txn ~reads ~writes =
  let first_write_at = Atbl.create 8 in
  List.iter
    (fun (a, _, at) ->
      match Atbl.find_opt first_write_at a with
      | Some t when t <= at -> ()
      | _ -> Atbl.replace first_write_at a at)
    writes;
  let external_reads = Atbl.create 8 in
  let disagreements = ref [] in
  List.iter
    (fun (a, v, at) ->
      let internal =
        match Atbl.find_opt first_write_at a with
        | Some wat -> wat <= at (* observed own buffered write *)
        | None -> false
      in
      if not internal then
        match Atbl.find_opt external_reads a with
        | None -> Atbl.replace external_reads a (v, at)
        | Some (v0, _) ->
            if not (String.equal v v0) then disagreements := a :: !disagreements)
    reads;
  let last_writes = Atbl.create 8 in
  List.iter (fun (a, v, _) -> Atbl.replace last_writes a v) writes;
  (external_reads, last_writes, !disagreements)

let analyze ?(init = fun _ -> "") ?budget ?(mvcc = fun _ -> false) events =
  let per_addr : (Register.op list ref) Atbl.t = Atbl.create 64 in
  let reg_push a op =
    match Atbl.find_opt per_addr a with
    | Some l -> l := op :: !l
    | None -> Atbl.replace per_addr a (ref [ op ])
  in
  let txns = ref [] in
  let rr_violations = ref [] in
  (* MVCC projection: addresses under the versioned protocol opt out of
     the register and serializability checks (last-writer-wins publishes
     are not linearizable by design) and are judged on their own terms
     instead: every observed value must have been installed by some write
     of the history (no out-of-thin-air reads), and all reads through one
     pin — one snapshot, or one transaction's lazily opened snapshot —
     must observe the same bytes. *)
  let mvcc_allowed : (string, unit) Hashtbl.t Atbl.t = Atbl.create 8 in
  let allow a v =
    match Atbl.find_opt mvcc_allowed a with
    | Some tbl -> Hashtbl.replace tbl v ()
    | None ->
        let tbl = Hashtbl.create 8 in
        Hashtbl.replace tbl v ();
        Atbl.replace mvcc_allowed a tbl
  in
  (* (pin group, label, addr, observed) — group [None] for unpinned
     (latest-value) reads, which are only thin-air-checked *)
  let mvcc_reads : (string option * string * addr * string) list ref =
    ref []
  in
  List.iter
    (fun (e : History.event) ->
      let lbl = History.label e in
      match (e.e_op, e.e_status) with
      | O_sread { addr; snap; value = Some v; _ }, Ok_ ->
          mvcc_reads :=
            (Some (Printf.sprintf "p%d/s%d" e.e_proc snap), lbl, addr, v)
            :: !mvcc_reads
      | O_sread _, _ -> ()
      | O_read { addr; value = Some v; _ }, Ok_ when mvcc addr ->
          mvcc_reads := (None, lbl, addr, v) :: !mvcc_reads
      | O_read { addr; value = Some v; _ }, Ok_ ->
          reg_push addr
            { Register.invoke = e.e_invoke; return = e.e_return; kind = R v;
              required = true; label = lbl };
          txns :=
            { Serial.label = lbl; invoke = e.e_invoke; return = e.e_return;
              reads = [ (addr, v) ]; writes = []; committed = true }
            :: !txns
      | O_read _, _ -> ()
      | O_write { addr; value }, (Ok_ | Maybe) when mvcc addr ->
          allow addr value
      | O_write { addr; value }, Ok_ ->
          reg_push addr
            { Register.invoke = e.e_invoke; return = e.e_return; kind = W value;
              required = true; label = lbl };
          txns :=
            { Serial.label = lbl; invoke = e.e_invoke; return = e.e_return;
              reads = []; writes = [ (addr, value) ]; committed = true }
            :: !txns
      | O_write _, Fail -> ()
      | O_write { addr; value }, Maybe ->
          reg_push addr
            { Register.invoke = e.e_invoke; return = max_int; kind = W value;
              required = false; label = lbl };
          txns :=
            { Serial.label = lbl; invoke = e.e_invoke; return = max_int;
              reads = []; writes = [ (addr, value) ]; committed = false }
            :: !txns
      | O_txn { reads; writes }, status ->
          let ext_reads_all, last_writes_all, disagree =
            split_txn ~reads ~writes
          in
          (* Peel the transaction's MVCC footprint off before the 2PL
             projection: versioned reads all went through the txn's one
             snapshot (one pin group), versioned writes feed the
             thin-air allowed set when they may have landed. *)
          let ext_reads = Atbl.create 8 and last_writes = Atbl.create 8 in
          Atbl.iter
            (fun a (v, at) ->
              if mvcc a then
                mvcc_reads :=
                  (Some (Printf.sprintf "p%d/t%d" e.e_proc e.e_id), lbl, a, v)
                  :: !mvcc_reads
              else Atbl.replace ext_reads a (v, at))
            ext_reads_all;
          Atbl.iter
            (fun a v ->
              if mvcc a then (if status <> Fail then allow a v)
              else Atbl.replace last_writes a v)
            last_writes_all;
          List.iter
            (fun a -> rr_violations := Printf.sprintf "%s at %s" lbl
                 (Kutil.Gaddr.to_string a) :: !rr_violations)
            disagree;
          (match status with
          | Ok_ ->
              (* committed: per-address atomic point inside [invoke, return] *)
              let addrs = Atbl.create 8 in
              Atbl.iter (fun a _ -> Atbl.replace addrs a ()) ext_reads;
              Atbl.iter (fun a _ -> Atbl.replace addrs a ()) last_writes;
              Atbl.iter
                (fun a () ->
                  let kind =
                    match (Atbl.find_opt ext_reads a, Atbl.find_opt last_writes a) with
                    | Some (r, _), Some w -> Register.RW (r, w)
                    | Some (r, _), None -> Register.R r
                    | None, Some w -> Register.W w
                    | None, None -> assert false
                  in
                  reg_push a
                    { Register.invoke = e.e_invoke; return = e.e_return; kind;
                      required = true; label = lbl })
                addrs;
              txns :=
                { Serial.label = lbl; invoke = e.e_invoke; return = e.e_return;
                  reads = Atbl.fold (fun a (v, _) l -> (a, v) :: l) ext_reads [];
                  writes = Atbl.fold (fun a v l -> (a, v) :: l) last_writes [];
                  committed = true }
                :: !txns
          | Fail | Maybe ->
              (* reads went through real locks: individually required,
                 done by their Tread stamp *)
              Atbl.iter
                (fun a (v, at) ->
                  reg_push a
                    { Register.invoke = e.e_invoke; return = at; kind = R v;
                      required = true; label = lbl })
                ext_reads;
              if status = Maybe then begin
                Atbl.iter
                  (fun a v ->
                    reg_push a
                      { Register.invoke = e.e_invoke; return = max_int;
                        kind = W v; required = false; label = lbl })
                  last_writes;
                txns :=
                  { Serial.label = lbl; invoke = e.e_invoke; return = max_int;
                    reads = Atbl.fold (fun a (v, _) l -> (a, v) :: l) ext_reads [];
                    writes = Atbl.fold (fun a v l -> (a, v) :: l) last_writes [];
                    committed = false }
                  :: !txns
              end))
    events;
  let registers =
    Atbl.fold
      (fun a ops acc ->
        let ops = List.rev !ops in
        (a, ops, Register.check ~init:(init a) ?budget ops) :: acc)
      per_addr []
    |> List.sort (fun (a, _, _) (b, _, _) -> Kutil.Gaddr.compare a b)
  in
  let mvcc_violations = ref [] in
  (* No out-of-thin-air reads: every observed value was installed by some
     write that may have landed, or is pre-write state (the initial image,
     or the zero fill a never-written page serves). *)
  let is_zero v = String.for_all (fun c -> c = '\000') v in
  let prefix_of v base =
    String.length v <= String.length base
    && String.equal (String.sub base 0 (String.length v)) v
  in
  List.iter
    (fun (_, lbl, a, v) ->
      let ok =
        is_zero v || prefix_of v (init a)
        ||
        match Atbl.find_opt mvcc_allowed a with
        | Some tbl -> Hashtbl.mem tbl v
        | None -> false
      in
      if not ok then
        mvcc_violations :=
          Printf.sprintf "out-of-thin-air read of %s in %s"
            (Kutil.Gaddr.to_string a) lbl
          :: !mvcc_violations)
    !mvcc_reads;
  (* Pin consistency: all reads of one address through one pin group (a
     snapshot, or a transaction's snapshot) observe identical bytes. *)
  let pins : (string, string * string) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (group, lbl, a, v) ->
      match group with
      | None -> ()
      | Some g -> (
          let key = g ^ "@" ^ Kutil.Gaddr.to_string a in
          match Hashtbl.find_opt pins key with
          | None -> Hashtbl.replace pins key (v, lbl)
          | Some (v0, lbl0) ->
              if not (String.equal v v0) then
                mvcc_violations :=
                  Printf.sprintf
                    "pin %s of %s observed two values (%s vs %s)" g
                    (Kutil.Gaddr.to_string a) lbl0 lbl
                  :: !mvcc_violations))
    (List.rev !mvcc_reads);
  {
    registers;
    serial = Serial.check (List.rev !txns);
    repeatable_read = List.rev !rr_violations;
    mvcc = List.rev !mvcc_violations;
    events = List.length events;
    init;
  }

let passed r =
  r.repeatable_read = [] && r.mvcc = []
  && (match r.serial with Serializable -> true | _ -> false)
  && List.for_all
       (fun (_, _, v) -> match v with Register.Linearizable -> true | _ -> false)
       r.registers

let inconclusive r =
  List.exists
    (fun (_, _, v) -> match v with Register.Inconclusive -> true | _ -> false)
    r.registers

let pp ppf r =
  if passed r then
    Fmt.pf ppf
      "history check: OK (%d events, %d addresses linearizable, serializable)"
      r.events (List.length r.registers)
  else begin
    Fmt.pf ppf "history check: FAILED (%d events)@." r.events;
    List.iter
      (fun (a, ops, v) ->
        match v with
        | Register.Linearizable -> ()
        | Register.Inconclusive ->
            Fmt.pf ppf "  address %s: INCONCLUSIVE (budget exhausted, %d ops)@."
              (Kutil.Gaddr.to_string a) (List.length ops)
        | Register.Violation ops ->
            let shrunk = Register.shrink ~init:(r.init a) ops in
            Fmt.pf ppf
              "  address %s: NOT LINEARIZABLE — minimized counterexample (%d of %d ops):@."
              (Kutil.Gaddr.to_string a) (List.length shrunk) (List.length ops);
            List.iter (fun o -> Fmt.pf ppf "    %a@." Register.pp_op o) shrunk)
      r.registers;
    (match r.serial with
    | Serial.Serializable -> ()
    | Serial.Bad_history msg -> Fmt.pf ppf "  serializability: BAD HISTORY — %s@." msg
    | Serial.Cycle (txs, whys) ->
        Fmt.pf ppf "  NOT SERIALIZABLE — cycle of %d transactions:@."
          (List.length txs);
        List.iter (fun t -> Fmt.pf ppf "    %a@." Serial.pp_txn t) txs;
        List.iter (fun w -> if w <> "" then Fmt.pf ppf "    (%s)@." w) whys);
    List.iter
      (fun s -> Fmt.pf ppf "  repeatable-read violation inside %s@." s)
      r.repeatable_read;
    List.iter (fun s -> Fmt.pf ppf "  mvcc violation: %s@." s) r.mvcc
  end

let summary r = Fmt.str "%a" pp r
