(** End-to-end history analysis: project an assembled {!History.event}
    list into per-address register histories and a transaction set, run
    the {!Register} (linearizability) and {!Serial} (strict
    serializability) checkers, and render failures as minimized
    counterexamples. See the .ml header for the exact projection rules
    per event status. *)

type addr = Kutil.Gaddr.t

type report = {
  registers : (addr * Register.op list * Register.verdict) list;
  serial : Serial.verdict;
  repeatable_read : string list;
      (** committed transactions whose external reads of one address
          disagreed — impossible under 2PL, reported directly *)
  mvcc : string list;
      (** violations at MVCC-scoped addresses: an observed value no write
          ever installed (out-of-thin-air), or one snapshot pin observing
          two different values of the same address *)
  events : int;
  init : addr -> string;
}

val analyze :
  ?init:(addr -> string) -> ?budget:int -> ?mvcc:(addr -> bool) ->
  History.event list -> report
(** [init] gives each address's value before any write (default [""];
    pass the zero pattern for zero-filled regions). [budget] caps each
    per-address search (default 2_000_000 states). [mvcc] marks addresses
    living in regions under the [versioned] protocol (default none): those
    opt out of the register and serializability projections — concurrent
    last-writer-wins publishes are not linearizable by design — and are
    instead checked for out-of-thin-air reads and per-pin value stability
    (a snapshot, or a read-only transaction's snapshot, must be judged
    against its pinned version, not against real-time order). *)

val passed : report -> bool
(** Every address linearizable, transaction set serializable, no
    repeatable-read violations. [Inconclusive] addresses count as
    failures — raise the budget or shorten the run. *)

val inconclusive : report -> bool
(** True if any address exhausted the search budget. *)

val pp : Format.formatter -> report -> unit
(** One line when passing; full minimized counterexamples otherwise. *)

val summary : report -> string
