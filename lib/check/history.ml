type addr = Kutil.Gaddr.t

type call =
  | Read of { addr : addr; len : int }
  | Write of { addr : addr; value : string }
  | Sread of { addr : addr; len : int; snap : int }
  | Txn

type status = Ok_ | Fail | Maybe

type entry =
  | Invoke of { proc : int; id : int; at : int; call : call }
  | Tread of { proc : int; id : int; at : int; addr : addr; value : string }
  | Twrite of { proc : int; id : int; at : int; addr : addr; value : string }
  | Return of {
      proc : int;
      id : int;
      at : int;
      status : status;
      value : string option;
    }

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)

type recorder = {
  r_now : unit -> int;
  r_proc : int;
  r_sink : entry -> unit;
  mutable r_next : int;
}

let recorder ~now ~proc sink = { r_now = now; r_proc = proc; r_sink = sink; r_next = 0 }
let proc r = r.r_proc

let invoke r call =
  let id = r.r_next in
  r.r_next <- id + 1;
  r.r_sink (Invoke { proc = r.r_proc; id; at = r.r_now (); call });
  id

let txn_read_entry r ~id addr value =
  r.r_sink (Tread { proc = r.r_proc; id; at = r.r_now (); addr; value })

let txn_write_entry r ~id addr value =
  r.r_sink (Twrite { proc = r.r_proc; id; at = r.r_now (); addr; value })

let finish r ~id ?value status =
  r.r_sink (Return { proc = r.r_proc; id; at = r.r_now (); status; value })

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)

module Ring = struct
  type t = {
    mutable buf : entry array;
    mutable head : int; (* next write slot *)
    mutable len : int;
    cap : int;
  }

  let create ?(capacity = 1_048_576) () =
    { buf = [||]; head = 0; len = 0; cap = max 1 capacity }

  let sink t e =
    if Array.length t.buf = 0 then t.buf <- Array.make t.cap e;
    t.buf.(t.head) <- e;
    t.head <- (t.head + 1) mod t.cap;
    if t.len < t.cap then t.len <- t.len + 1

  let entries t =
    let start = (t.head - t.len + t.cap * 2) mod t.cap in
    List.init t.len (fun i -> t.buf.((start + i) mod t.cap))

  let length t = t.len

  let clear t =
    t.head <- 0;
    t.len <- 0
end

(* jsonl: hand-rolled writer/parser for exactly the subset we emit.
   Byte strings are hex-encoded — payloads are arbitrary binary. *)

let hex_of_string s =
  let b = Buffer.create (String.length s * 2) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let string_of_hex h =
  let n = String.length h / 2 in
  String.init n (fun i -> Char.chr (int_of_string ("0x" ^ String.sub h (i * 2) 2)))

let status_to_string = function Ok_ -> "ok" | Fail -> "fail" | Maybe -> "maybe"

let status_of_string = function
  | "ok" -> Some Ok_
  | "fail" -> Some Fail
  | "maybe" -> Some Maybe
  | _ -> None

let addr_to_json = Kutil.U128.to_hex
let addr_of_json = Kutil.U128.of_hex

let entry_to_json e =
  let b = Buffer.create 96 in
  let field k v = Buffer.add_string b (Printf.sprintf "\"%s\":%s," k v) in
  let str k v = field k (Printf.sprintf "\"%s\"" v) in
  Buffer.add_char b '{';
  (match e with
  | Invoke { proc; id; at; call } ->
      str "t" "invoke";
      field "proc" (string_of_int proc);
      field "id" (string_of_int id);
      field "at" (string_of_int at);
      (match call with
      | Read { addr; len } ->
          str "call" "read";
          str "addr" (addr_to_json addr);
          field "len" (string_of_int len)
      | Write { addr; value } ->
          str "call" "write";
          str "addr" (addr_to_json addr);
          str "value" (hex_of_string value)
      | Sread { addr; len; snap } ->
          str "call" "sread";
          str "addr" (addr_to_json addr);
          field "len" (string_of_int len);
          field "snap" (string_of_int snap)
      | Txn -> str "call" "txn")
  | Tread { proc; id; at; addr; value } ->
      str "t" "tread";
      field "proc" (string_of_int proc);
      field "id" (string_of_int id);
      field "at" (string_of_int at);
      str "addr" (addr_to_json addr);
      str "value" (hex_of_string value)
  | Twrite { proc; id; at; addr; value } ->
      str "t" "twrite";
      field "proc" (string_of_int proc);
      field "id" (string_of_int id);
      field "at" (string_of_int at);
      str "addr" (addr_to_json addr);
      str "value" (hex_of_string value)
  | Return { proc; id; at; status; value } ->
      str "t" "return";
      field "proc" (string_of_int proc);
      field "id" (string_of_int id);
      field "at" (string_of_int at);
      str "status" (status_to_string status);
      Option.iter (fun v -> str "value" (hex_of_string v)) value);
  (* drop trailing comma *)
  let s = Buffer.contents b in
  let s = if s.[String.length s - 1] = ',' then String.sub s 0 (String.length s - 1) else s in
  s ^ "}"

let jsonl_sink oc e =
  output_string oc (entry_to_json e);
  output_char oc '\n';
  flush oc

(* Minimal parser for the flat {"k":v,...} objects above. Returns an
   assoc of raw (unquoted) value strings; bails on anything foreign. *)
let parse_flat line =
  let n = String.length line in
  if n < 2 || line.[0] <> '{' || line.[n - 1] <> '}' then None
  else
    let body = String.sub line 1 (n - 2) in
    let fields = ref [] in
    let i = ref 0 in
    let len = String.length body in
    let ok = ref true in
    (try
       while !i < len do
         (* key *)
         if body.[!i] <> '"' then raise Exit;
         let kend = String.index_from body (!i + 1) '"' in
         let key = String.sub body (!i + 1) (kend - !i - 1) in
         if kend + 1 >= len || body.[kend + 1] <> ':' then raise Exit;
         i := kend + 2;
         (* value: quoted string or bare token up to ',' *)
         let value =
           if !i < len && body.[!i] = '"' then begin
             let vend = String.index_from body (!i + 1) '"' in
             let v = String.sub body (!i + 1) (vend - !i - 1) in
             i := vend + 1;
             v
           end
           else begin
             let vend = try String.index_from body !i ',' with Not_found -> len in
             let v = String.sub body !i (vend - !i) in
             i := vend;
             v
           end
         in
         fields := (key, value) :: !fields;
         if !i < len then
           if body.[!i] = ',' then incr i else raise Exit
       done
     with _ -> ok := false);
    if !ok then Some !fields else None

let entry_of_json line =
  match parse_flat (String.trim line) with
  | None -> None
  | Some fields -> (
      let get k = List.assoc_opt k fields in
      let int k = Option.bind (get k) int_of_string_opt in
      try
        let req f k = match f k with Some v -> v | None -> raise Exit in
        let proc = req int "proc" and id = req int "id" and at = req int "at" in
        match req get "t" with
        | "invoke" -> (
            match req get "call" with
            | "read" ->
                Some
                  (Invoke
                     {
                       proc;
                       id;
                       at;
                       call =
                         Read { addr = addr_of_json (req get "addr"); len = req int "len" };
                     })
            | "write" ->
                Some
                  (Invoke
                     {
                       proc;
                       id;
                       at;
                       call =
                         Write
                           {
                             addr = addr_of_json (req get "addr");
                             value = string_of_hex (req get "value");
                           };
                     })
            | "sread" ->
                Some
                  (Invoke
                     {
                       proc;
                       id;
                       at;
                       call =
                         Sread
                           {
                             addr = addr_of_json (req get "addr");
                             len = req int "len";
                             snap = req int "snap";
                           };
                     })
            | "txn" -> Some (Invoke { proc; id; at; call = Txn })
            | _ -> None)
        | "tread" ->
            Some
              (Tread
                 {
                   proc;
                   id;
                   at;
                   addr = addr_of_json (req get "addr");
                   value = string_of_hex (req get "value");
                 })
        | "twrite" ->
            Some
              (Twrite
                 {
                   proc;
                   id;
                   at;
                   addr = addr_of_json (req get "addr");
                   value = string_of_hex (req get "value");
                 })
        | "return" ->
            let status = match status_of_string (req get "status") with
              | Some s -> s
              | None -> raise Exit
            in
            let value = Option.map string_of_hex (get "value") in
            Some (Return { proc; id; at; status; value })
        | _ -> None
      with _ -> None)

let read_jsonl path =
  let ic = open_in_bin path in
  let out = ref [] in
  (try
     while true do
       let line = input_line ic in
       match entry_of_json line with Some e -> out := e :: !out | None -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)

type op =
  | O_read of { addr : addr; len : int; value : string option }
  | O_write of { addr : addr; value : string }
  | O_sread of { addr : addr; len : int; snap : int; value : string option }
  | O_txn of {
      reads : (addr * string * int) list;
      writes : (addr * string * int) list;
    }

type event = {
  e_proc : int;
  e_id : int;
  e_invoke : int;
  e_return : int;
  e_op : op;
  e_status : status;
}

type pending = {
  p_invoke : int;
  p_call : call;
  mutable p_reads : (addr * string * int) list; (* reversed *)
  mutable p_writes : (addr * string * int) list; (* reversed *)
}

let assemble entries =
  let pend : (int * int, pending) Hashtbl.t = Hashtbl.create 256 in
  let done_ = ref [] in
  let close key p ~ret ~status ~value =
    let op =
      match p.p_call with
      | Read { addr; len } -> O_read { addr; len; value }
      | Write { addr; value } -> O_write { addr; value }
      | Sread { addr; len; snap } -> O_sread { addr; len; snap; value }
      | Txn -> O_txn { reads = List.rev p.p_reads; writes = List.rev p.p_writes }
    in
    done_ :=
      {
        e_proc = fst key;
        e_id = snd key;
        e_invoke = p.p_invoke;
        e_return = ret;
        e_op = op;
        e_status = status;
      }
      :: !done_
  in
  List.iter
    (fun e ->
      match e with
      | Invoke { proc; id; at; call } ->
          Hashtbl.replace pend (proc, id)
            { p_invoke = at; p_call = call; p_reads = []; p_writes = [] }
      | Tread { proc; id; at; addr; value } -> (
          match Hashtbl.find_opt pend (proc, id) with
          | Some p -> p.p_reads <- (addr, value, at) :: p.p_reads
          | None -> ())
      | Twrite { proc; id; at; addr; value } -> (
          match Hashtbl.find_opt pend (proc, id) with
          | Some p -> p.p_writes <- (addr, value, at) :: p.p_writes
          | None -> ())
      | Return { proc; id; at; status; value } -> (
          match Hashtbl.find_opt pend (proc, id) with
          | Some p ->
              Hashtbl.remove pend (proc, id);
              close (proc, id) p ~ret:at ~status ~value
          | None -> () (* orphan return: invoke fell off a ring *)))
    entries;
  (* unmatched invokes: the process died (or timed out silently) with the
     op in flight — ambiguous, unbounded return. *)
  Hashtbl.iter
    (fun key p -> close key p ~ret:max_int ~status:Maybe ~value:None)
    pend;
  List.sort
    (fun a b ->
      match compare a.e_invoke b.e_invoke with
      | 0 -> compare (a.e_proc, a.e_id) (b.e_proc, b.e_id)
      | c -> c)
    !done_

let label e = Printf.sprintf "p%d#%d" e.e_proc e.e_id

let pp_short_bytes ppf s =
  let shown = if String.length s <= 8 then s else String.sub s 0 8 in
  let printable = String.for_all (fun c -> c >= ' ' && c <= '~') shown in
  if printable && String.length s <= 8 then Fmt.pf ppf "%S" s
  else Fmt.pf ppf "0x%s%s" (hex_of_string shown) (if String.length s > 8 then "…" else "")

let pp_event ppf e =
  let status = status_to_string e.e_status in
  let ret = if e.e_return = max_int then "∞" else string_of_int e.e_return in
  match e.e_op with
  | O_read { addr; len; value } ->
      Fmt.pf ppf "%s [%d,%s] read  %s len=%d %s%a" (label e) e.e_invoke ret
        (addr_to_json addr) len status
        (fun ppf -> function
          | Some v -> Fmt.pf ppf " -> %a" pp_short_bytes v
          | None -> ())
        value
  | O_write { addr; value } ->
      Fmt.pf ppf "%s [%d,%s] write %s %s := %a" (label e) e.e_invoke ret
        (addr_to_json addr) status pp_short_bytes value
  | O_sread { addr; len; snap; value } ->
      Fmt.pf ppf "%s [%d,%s] sread %s len=%d snap=%d %s%a" (label e) e.e_invoke
        ret (addr_to_json addr) len snap status
        (fun ppf -> function
          | Some v -> Fmt.pf ppf " -> %a" pp_short_bytes v
          | None -> ())
        value
  | O_txn { reads; writes } ->
      Fmt.pf ppf "%s [%d,%s] txn   %s reads=[%a] writes=[%a]" (label e) e.e_invoke
        ret status
        (Fmt.list ~sep:Fmt.comma (fun ppf (a, v, _) ->
             Fmt.pf ppf "%s=%a" (addr_to_json a) pp_short_bytes v))
        reads
        (Fmt.list ~sep:Fmt.comma (fun ppf (a, v, _) ->
             Fmt.pf ppf "%s:=%a" (addr_to_json a) pp_short_bytes v))
        writes
