(** Operation-history recording for consistency checking.

    A {e history} is the client's-eye view of a run: for every
    [read_bytes] / [write_bytes] / [txn] call, when it was invoked, when
    (and whether) it returned, and what it observed or installed. The
    checkers in {!Register} and {!Serial} consume assembled histories and
    decide whether some linearization / serialization explains them.

    Recording is two-phase on purpose: the {e invoke} entry is emitted
    {e before} the operation runs and the {e return} entry after, so an
    operation cut down mid-flight (node crash, [SIGKILL], abandoned
    fiber) leaves an invoke with no matching return — which {!assemble}
    turns into an {e ambiguous} ("maybe applied") event, exactly the
    indeterminacy a checker must honour. Timeouts and [`Unreachable]
    results are likewise recorded as ambiguous: silence is not evidence
    of an abort.

    Sinks are pluggable: an in-memory {!Ring} for the simulator, or a
    flushed-per-line jsonl shard ({!jsonl_sink}) for real processes —
    shards from several processes merge by just concatenating their
    entries before {!assemble} (entries match by [(proc, id)]). *)

type addr = Kutil.Gaddr.t

(** What a client called, known at invoke time. A transaction's reads and
    writes are discovered as it runs and arrive as {!entry.Tread} /
    {!entry.Twrite} entries. *)
type call =
  | Read of { addr : addr; len : int }
  | Write of { addr : addr; value : string }
  | Sread of { addr : addr; len : int; snap : int }
      (** MVCC snapshot read (versioned regions): [snap] names the
          client-side snapshot the read was pinned to. Judged for
          snapshot consistency (same pin, same bytes; no out-of-thin-air
          values) rather than linearizability. *)
  | Txn

(** How a call ended. [Ok_]: took effect (reads: observed the recorded
    value). [Fail]: definitely did {e not} take effect. [Maybe]: unknown
    — a timeout, unreachable peer, crash mid-protocol, or a process that
    died before recording the return. *)
type status = Ok_ | Fail | Maybe

type entry =
  | Invoke of { proc : int; id : int; at : int; call : call }
  | Tread of { proc : int; id : int; at : int; addr : addr; value : string }
  | Twrite of { proc : int; id : int; at : int; addr : addr; value : string }
  | Return of {
      proc : int;
      id : int;
      at : int;
      status : status;
      value : string option;  (** observed bytes, for reads *)
    }

(** {1 Recording} *)

type recorder
(** One per client (or per sequential stream of operations). Not
    thread-safe; fiber-interleaved use on one engine is fine. *)

val recorder : now:(unit -> int) -> proc:int -> (entry -> unit) -> recorder
(** [recorder ~now ~proc sink] emits entries stamped by [now] (simulated
    ns or wall-clock ns — any monotonic scale shared by every recorder of
    the run) and labelled as process [proc] (unique per recorder). *)

val proc : recorder -> int

val invoke : recorder -> call -> int
(** Emit the invoke entry; returns the operation id to close with
    {!finish} (and to tag {!txn_read_entry} / {!txn_write_entry}). *)

val txn_read_entry : recorder -> id:int -> addr -> string -> unit
(** A successful [txn_read] inside operation [id] observed these bytes. *)

val txn_write_entry : recorder -> id:int -> addr -> string -> unit
(** A successful [txn_write] inside operation [id] buffered these bytes. *)

val finish : recorder -> id:int -> ?value:string -> status -> unit
(** Emit the return entry for operation [id]. *)

(** {1 Sinks} *)

module Ring : sig
  (** Bounded in-memory entry buffer (simulator harnesses). *)

  type t

  val create : ?capacity:int -> unit -> t
  (** Default capacity 1_048_576 entries; older entries are dropped. *)

  val sink : t -> entry -> unit
  val entries : t -> entry list
  (** Oldest first. *)

  val length : t -> int
  val clear : t -> unit
end

val jsonl_sink : out_channel -> entry -> unit
(** One JSON object per line, flushed per entry so a [SIGKILL] loses at
    most a torn final line (which {!read_jsonl} drops — the matching
    invoke then assembles as ambiguous). Strings travel hex-encoded:
    payloads are arbitrary bytes. *)

val entry_to_json : entry -> string
val entry_of_json : string -> entry option
(** [None] on a torn or foreign line. *)

val read_jsonl : string -> entry list
(** Parse a shard file, skipping torn/foreign lines. *)

(** {1 Assembled events} *)

type op =
  | O_read of { addr : addr; len : int; value : string option }
      (** [value] is [Some] iff the read returned [Ok_]. *)
  | O_write of { addr : addr; value : string }
  | O_sread of { addr : addr; len : int; snap : int; value : string option }
      (** Snapshot read; [value] as for {!O_read}. *)
  | O_txn of {
      reads : (addr * string * int) list;
          (** (addr, observed, at) — in execution order *)
      writes : (addr * string * int) list;
    }

type event = {
  e_proc : int;
  e_id : int;
  e_invoke : int;
  e_return : int;  (** [max_int] when the operation never returned *)
  e_op : op;
  e_status : status;  (** {!Maybe} for unmatched invokes *)
}

val assemble : entry list -> event list
(** Pair invokes with returns (by [(proc, id)]), fold transaction
    sub-entries into their {!O_txn}, turn unmatched invokes into
    ambiguous events, and sort by invoke time. Orphan returns (their
    invoke fell off a ring) are dropped. *)

val label : event -> string
(** ["p3#17"] — stable name for counterexample dumps. *)

val pp_event : Format.formatter -> event -> unit

val pp_short_bytes : Format.formatter -> string -> unit
(** Payload bytes for humans: short printable strings verbatim, anything
    else as a truncated hex prefix. *)

val hex_of_string : string -> string
val string_of_hex : string -> string
