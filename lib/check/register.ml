(* Wing–Gong linearizability search for single-register histories, with
   memoization on (linearized-set, register value). Per-address Khazana
   histories are short (tens to low hundreds of ops per run), so the
   exponential worst case stays comfortably inside the state budget. *)

type kind = R of string | W of string | RW of string * string

type op = {
  invoke : int;
  return : int;
  kind : kind;
  required : bool;
  label : string;
}

type verdict = Linearizable | Violation of op list | Inconclusive

let pp_kind ppf = function
  | R v -> Fmt.pf ppf "R %a" History.pp_short_bytes v
  | W v -> Fmt.pf ppf "W %a" History.pp_short_bytes v
  | RW (r, w) ->
      Fmt.pf ppf "RW %a->%a" History.pp_short_bytes r History.pp_short_bytes w

let pp_op ppf o =
  let ret = if o.return = max_int then "∞" else string_of_int o.return in
  Fmt.pf ppf "%s [%d,%s]%s %a" o.label o.invoke ret
    (if o.required then "" else " maybe")
    pp_kind o.kind

(* Search state: which ops are linearized (bitset over indices) plus the
   register value after them. Memoize visited (bitset, value) pairs —
   revisiting one can only re-explore the same subtree. *)

module Key = struct
  type t = Bytes.t * string

  let equal (b1, v1) (b2, v2) = Bytes.equal b1 b2 && String.equal v1 v2
  let hash (b, v) = Hashtbl.hash (Bytes.to_string b, v)
end

module Memo = Hashtbl.Make (Key)

exception Budget

let check ?init ?(budget = 2_000_000) ops =
  let ops = Array.of_list ops in
  let n = Array.length ops in
  if n = 0 then Linearizable
  else begin
    let init = Option.value init ~default:"" in
    let memo = Memo.create 4096 in
    let states = ref 0 in
    let bits = Bytes.make ((n + 7) / 8) '\000' in
    let get i = Char.code (Bytes.get bits (i / 8)) land (1 lsl (i mod 8)) <> 0 in
    let set i b =
      let byte = Char.code (Bytes.get bits (i / 8)) in
      let mask = 1 lsl (i mod 8) in
      Bytes.set bits (i / 8) (Char.chr (if b then byte lor mask else byte land lnot mask))
    in
    (* An op may linearize next only if its invoke precedes every
       still-pending op's return: otherwise some pending op strictly
       finished before this one began and must come first. *)
    let rec go value remaining =
      if remaining = 0 then true
      else begin
        incr states;
        if !states > budget then raise Budget;
        let key = (Bytes.copy bits, value) in
        if Memo.mem memo key then false
        else begin
          Memo.add memo key ();
          let minret = ref max_int in
          for i = 0 to n - 1 do
            if (not (get i)) && ops.(i).return < !minret then minret := ops.(i).return
          done;
          let ok = ref false in
          let i = ref 0 in
          while (not !ok) && !i < n do
            let o = ops.(!i) in
            if (not (get !i)) && o.invoke <= !minret then begin
              let fits, value' =
                match o.kind with
                | W v -> (true, v)
                | R v -> (String.equal v value, value)
                | RW (r, w) -> (String.equal r value, w)
              in
              if fits then begin
                set !i true;
                if go value' (remaining - 1) then ok := true;
                set !i false
              end
            end;
            incr i
          done;
          (* Non-required (maybe-applied) ops may also be dropped entirely:
             model that by linearizing them "last, with no effect" — i.e.
             if every remaining op is non-required, we are done. *)
          if not !ok then begin
            let all_skippable = ref true in
            for j = 0 to n - 1 do
              if (not (get j)) && ops.(j).required then all_skippable := false
            done;
            if !all_skippable then ok := true
          end;
          !ok
        end
      end
    in
    match go init n with
    | true -> Linearizable
    | false -> Violation (Array.to_list ops)
    | exception Budget -> Inconclusive
  end

(* Greedy shrink: drop ops one at a time while the history still fails.
   Constraint: never drop a write whose value a retained read observes —
   otherwise the shrunk history fails for the bogus reason "read of a
   value nobody wrote" instead of the original violation. *)

let written_values ops =
  List.concat_map
    (fun o -> match o.kind with W v | RW (_, v) -> [ v ] | R _ -> [])
    ops

let observed_values ops =
  List.concat_map
    (fun o -> match o.kind with R v | RW (v, _) -> [ v ] | W _ -> [])
    ops

let still_failing ?init ~budget ops =
  match check ?init ~budget ops with Violation _ -> true | _ -> false

let shrink ?init ?(budget = 200_000) ops =
  let drop_ok candidate rest =
    match candidate.kind with
    | R _ -> true
    | W v | RW (_, v) ->
        (* keep writes whose value some retained read still observes and
           no other retained write supplies *)
        let observed = observed_values rest in
        let supplied = written_values rest in
        not
          (List.exists (String.equal v) observed
          && not (List.exists (String.equal v) supplied))
  in
  let rec pass ops =
    let shrunk = ref false in
    let rec try_each acc = function
      | [] -> List.rev acc
      | o :: rest ->
          let without = List.rev_append acc rest in
          if drop_ok o without && still_failing ?init ~budget without then begin
            shrunk := true;
            try_each acc rest
          end
          else try_each (o :: acc) rest
    in
    let ops' = try_each [] ops in
    if !shrunk then pass ops' else ops'
  in
  pass ops
