(** Per-address linearizability checking for CREW register histories.

    Khazana's default consistency manager promises that each address
    range behaves like a linearizable register: concurrent-read /
    exclusive-write, every read observing the latest completed write.
    This module decides whether a recorded single-address history is
    explainable by {e some} total order of the operations consistent
    with real time (Wing–Gong search: depth-first over linearization
    orders, memoized on the (linearized-set, register-value) pair).

    Ambiguous operations — timeouts, [`Unreachable], processes killed
    mid-call — enter with [required = false] and [return = max_int]:
    the search may place them anywhere after their invoke {e or} drop
    them entirely, which is exactly "maybe applied". *)

type kind =
  | R of string  (** read observed these bytes *)
  | W of string  (** write installed these bytes *)
  | RW of string * string
      (** committed transaction touching this address: atomically
          observed the first value and installed the second. Under 2PL
          the read and write points coincide at commit. *)

type op = {
  invoke : int;
  return : int;  (** [max_int] when the op never returned *)
  kind : kind;
  required : bool;
      (** [false]: maybe-applied; the checker may skip it outright *)
  label : string;  (** stable name for counterexample dumps *)
}

type verdict =
  | Linearizable
  | Violation of op list
      (** the full failing history — pass it to {!shrink} for a
          minimal counterexample *)
  | Inconclusive  (** state budget exhausted before a decision *)

val check : ?init:string -> ?budget:int -> op list -> verdict
(** [check ~init ops] — [init] is the register's value before any
    write (default [""]; Khazana regions are created zero-filled, so
    harnesses pass the zero pattern). [budget] caps visited search
    states (default 2_000_000). *)

val shrink : ?init:string -> ?budget:int -> op list -> op list
(** Greedily remove ops while the history still fails, never dropping
    a write whose value a retained read observes (that would manufacture
    a different, bogus violation). The result is a locally-minimal
    counterexample; the full history's verdict remains authoritative.
    [budget] bounds each re-check (default 200_000). *)

val pp_op : Format.formatter -> op -> unit
