(* Serializability via observed-version conflict graph + cycle detection.

   Nodes are committed transactions (plus maybe-applied transactions
   whose writes are provably visible — see [promote]). Edges:

     wr: T1 -> T2 when T2 read a value T1 wrote (values are assumed
         unique per (addr, value) pair — harnesses stamp payloads).
     rt: T1 -> T2 when T1 returned before T2 was invoked (real-time
         order, making the check *strict* serializability). Built via a
         tick chain so the edge count stays O(n), not O(n^2).

   A cycle means no serial order explains the run; the cycle itself is
   the counterexample. We deliberately emit no rw (anti-dependency)
   edges — inferring them needs a version order we don't observe — so
   the check is sound (no false alarms) but not complete against every
   serializability violation; the per-address register checker covers
   the stale-read family that rw edges would catch. *)

type addr = Kutil.Gaddr.t

type txn = {
  label : string;
  invoke : int;
  return : int;
  reads : (addr * string) list;
  writes : (addr * string) list;
  committed : bool;  (** [false] = maybe-applied *)
}

type verdict =
  | Serializable
  | Cycle of txn list * string list
      (** the offending transactions and the edge descriptions closing
          the cycle *)
  | Bad_history of string
      (** the input breaks a checker precondition, e.g. two writers of
          the same (addr, value) pair *)

module AV = struct
  type t = addr * string

  let equal (a1, v1) (a2, v2) = Kutil.Gaddr.equal a1 a2 && String.equal v1 v2
  let hash (a, v) = Kutil.Gaddr.hash a lxor Hashtbl.hash v
end

module AVtbl = Hashtbl.Make (AV)

(* Maybe-applied txns whose written values are observed by a committed
   read must have applied: promote them, to fixpoint (a promoted txn's
   reads can prove further promotions). Unpromoted maybes drop out. *)
let promote txns =
  let writer = AVtbl.create 64 in
  List.iteri
    (fun i t -> List.iter (fun av -> AVtbl.replace writer av i) t.writes)
    txns;
  let arr = Array.of_list txns in
  let live = Array.map (fun t -> t.committed) arr in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i t ->
        if live.(i) then
          List.iter
            (fun av ->
              match AVtbl.find_opt writer av with
              | Some j when not live.(j) ->
                  live.(j) <- true;
                  changed := true
              | _ -> ())
            t.reads)
      arr
  done;
  Array.to_list
    (Array.of_seq
       (Seq.filter_map
          (fun (i, t) -> if live.(i) then Some t else None)
          (Array.to_seq (Array.mapi (fun i t -> (i, t)) arr))))

let check txns =
  let txns = promote txns in
  let arr = Array.of_list txns in
  let n = Array.length arr in
  if n = 0 then Serializable
  else begin
    (* unique-writer precondition *)
    let writer = AVtbl.create 64 in
    let bad = ref None in
    Array.iteri
      (fun i t ->
        List.iter
          (fun ((a, v) as av) ->
            match AVtbl.find_opt writer av with
            | Some j when j <> i ->
                if !bad = None then
                  bad :=
                    Some
                      (Printf.sprintf
                         "two writers of the same (addr,value): %s and %s at %s=%s"
                         arr.(j).label t.label (Kutil.U128.to_hex a)
                         (History.hex_of_string v))
            | _ -> AVtbl.replace writer av i)
          t.writes)
      arr;
    match !bad with
    | Some msg -> Bad_history msg
    | None ->
        let edges = Array.make n [] in
        let add_edge i j why = if i <> j then edges.(i) <- (j, why) :: edges.(i) in
        (* wr edges *)
        Array.iteri
          (fun i t ->
            List.iter
              (fun ((a, _) as av) ->
                match AVtbl.find_opt writer av with
                | Some j ->
                    add_edge j i
                      (Printf.sprintf "%s wrote %s, %s read it" arr.(j).label
                         (Kutil.Gaddr.to_string a) arr.(i).label)
                | None -> ())
              t.reads)
          arr;
        (* rt edges via tick chain: sort the 2n endpoints; a txn's return
           tick points to the next tick, ticks chain forward, and each
           invoke listens to the latest strictly-earlier tick. Gives
           A -> B whenever A.return < B.invoke with O(n) edges. *)
        let tick_of_ret = Hashtbl.create 64 in
        let rets =
          Array.to_list
            (Array.mapi (fun i t -> (t.return, i)) arr)
          |> List.filter (fun (r, _) -> r <> max_int)
          |> List.sort compare
        in
        let tick_nodes = ref [] in
        let n_ticks = ref 0 in
        List.iter
          (fun (r, _) ->
            if not (Hashtbl.mem tick_of_ret r) then begin
              Hashtbl.replace tick_of_ret r !n_ticks;
              tick_nodes := r :: !tick_nodes;
              incr n_ticks
            end)
          rets;
        let total = n + !n_ticks in
        let all_edges = Array.make total [] in
        Array.iteri (fun i l -> all_edges.(i) <- l) edges;
        let tick_times = Array.of_list (List.rev !tick_nodes) in
        (* chain ticks in ascending time order *)
        Array.iteri
          (fun k _ ->
            if k + 1 < !n_ticks then
              all_edges.(n + k) <- ((n + k + 1, "") :: all_edges.(n + k)))
          tick_times;
        (* txn return -> its tick *)
        List.iter
          (fun (r, i) ->
            let k = Hashtbl.find tick_of_ret r in
            all_edges.(i) <- ((n + k, "") :: all_edges.(i)))
          rets;
        (* latest tick strictly before invoke -> txn *)
        Array.iteri
          (fun i t ->
            (* binary search: largest tick time < t.invoke *)
            let lo = ref 0 and hi = ref (!n_ticks - 1) and best = ref (-1) in
            while !lo <= !hi do
              let mid = (!lo + !hi) / 2 in
              if tick_times.(mid) < t.invoke then begin
                best := mid;
                lo := mid + 1
              end
              else hi := mid - 1
            done;
            if !best >= 0 then
              all_edges.(n + !best) <-
                ( i,
                  Printf.sprintf "real-time order: finished before %s began"
                    t.label )
                :: all_edges.(n + !best))
          arr;
        (* Cycle detection: iterative DFS with colors (grey = on current
           path), cycle reconstructed through tree-edge parents. *)
        let color = Array.make total 0 (* 0 white 1 grey 2 black *) in
        let parent = Array.make total (-1) in
        let parent_why = Array.make total "" in
        let cycle = ref None in
        let stack = Stack.create () in
        for s = 0 to total - 1 do
          if color.(s) = 0 && !cycle = None then begin
            color.(s) <- 1;
            Stack.push (s, ref all_edges.(s)) stack;
            while (not (Stack.is_empty stack)) && !cycle = None do
              let u, rem = Stack.top stack in
              match !rem with
              | [] ->
                  color.(u) <- 2;
                  ignore (Stack.pop stack)
              | (v, why) :: rest ->
                  rem := rest;
                  if color.(v) = 0 then begin
                    parent.(v) <- u;
                    parent_why.(v) <- why;
                    color.(v) <- 1;
                    Stack.push (v, ref all_edges.(v)) stack
                  end
                  else if color.(v) = 1 then begin
                    (* v is an ancestor on the current path: walk back *)
                    let nodes = ref [ v ] and whys = ref [ why ] in
                    let x = ref u in
                    while !x <> v do
                      nodes := !x :: !nodes;
                      whys := parent_why.(!x) :: !whys;
                      x := parent.(!x)
                    done;
                    cycle := Some (!nodes, !whys)
                  end
            done;
            Stack.clear stack
          end
        done;
        (match !cycle with
        | None -> Serializable
        | Some (nodes, whys) ->
            let txs =
              List.filter_map (fun u -> if u < n then Some arr.(u) else None) nodes
            in
            let whys = List.filter (fun w -> w <> "") whys in
            Cycle (txs, whys))
  end

let pp_txn ppf t =
  let ret = if t.return = max_int then "∞" else string_of_int t.return in
  Fmt.pf ppf "%s [%d,%s]%s reads=[%a] writes=[%a]" t.label t.invoke ret
    (if t.committed then "" else " maybe")
    (Fmt.list ~sep:Fmt.comma (fun ppf (a, v) ->
         Fmt.pf ppf "%s=%a" (Kutil.Gaddr.to_string a) History.pp_short_bytes v))
    t.reads
    (Fmt.list ~sep:Fmt.comma (fun ppf (a, v) ->
         Fmt.pf ppf "%s:=%a" (Kutil.Gaddr.to_string a) History.pp_short_bytes v))
    t.writes
