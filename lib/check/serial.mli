(** Strict-serializability checking for multi-page transactions.

    Builds an observed-version conflict graph over committed
    transactions — wr edges where one transaction read what another
    wrote (payloads must be unique per (addr, value); harnesses stamp
    them), rt edges where one returned before another was invoked — and
    reports any cycle as the counterexample.

    Maybe-applied transactions are {e promoted} to committed when a
    committed transaction observes one of their written values (to
    fixpoint); unpromoted maybes are dropped, since nothing proves they
    took effect.

    The check is sound but not complete: anti-dependency (rw) edges are
    not inferred (that needs a version order the history does not
    expose), so some non-serializable interleavings pass here — the
    per-address register checker in {!Register} covers the stale-read /
    lost-update family those edges would catch. *)

type addr = Kutil.Gaddr.t

type txn = {
  label : string;
  invoke : int;
  return : int;  (** [max_int] when it never returned *)
  reads : (addr * string) list;  (** observed values, own writes excluded *)
  writes : (addr * string) list;  (** final value per address *)
  committed : bool;  (** [false] = maybe-applied *)
}

type verdict =
  | Serializable
  | Cycle of txn list * string list
      (** transactions on the cycle + human-readable edge reasons *)
  | Bad_history of string
      (** input violates a precondition (duplicate (addr,value) writer) *)

val check : txn list -> verdict

val pp_txn : Format.formatter -> txn -> unit
