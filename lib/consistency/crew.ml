(** CREW — Concurrent Read, Exclusive Write.

    The prototype Khazana's only protocol: a directory-based write-invalidate
    scheme in the style of Li & Hudak's fixed distributed manager. Each page
    has a *home* (manager) that serialises transactions, tracks the current
    *owner* (unique node allowed to write) and the *copyset* (nodes holding
    read copies). Reads fetch a copy from any holder; writes invalidate the
    copyset and move ownership.

    One machine instance plays both roles: the cache role on every node, the
    manager role only where [cfg.self = cfg.home]. Manager-to-self traffic
    goes over the ordinary message path (the network delivers to self), so
    the code never special-cases co-location.

    Unreliable channels. Unlike Ivy, the substrate may lose, duplicate (via
    manager re-sends) and reorder messages, which demands four defences,
    each of which plugs a hole found by the randomized property tests or
    the nemesis history checker:

    - {b retries before suspicion}: a silent peer is re-asked up to
      [max_attempts] times — it may merely be holding a lock across a slow
      remote operation, and premature fail-over would break coherence;
    - {b pessimistic bookkeeping}: the manager records a requester in the
      copyset (or as owner) when it *initiates* the grant, not when the ack
      arrives — a lost ack must never hide a granted copy from future
      invalidations;
    - {b transaction fences}: every manager transaction carries a sequence
      number stamped into its fetches, grants and invalidations; caches
      remember the highest fence that revoked their copy and refuse older
      grants, so a ghost grant from a finished transaction cannot resurrect
      a revoked copy;
    - {b evidence-gated writes}: a write transaction never completes while
      any copy remains unrevoked. Invalidation rounds and ownership
      transfers retry forever — suspicion (timeouts, failure-detector
      hints) is never grounds to move on, because a partitioned holder
      still serves its now-stale copy locally and a write that completed
      around it would make those reads non-linearizable. Only hard
      evidence that the copy is gone (an [Invalidate_ack], an
      [Evict_notify], an [Own_return] — which a crashed node supplies once
      it recovers with an empty cache) lets the write proceed or fail
      over. A write blocked by a partition surfaces to the client as a
      timeout, which is ambiguous and therefore checker-safe.

    Availability extensions (paper §3.5): the manager fails over to
    alternate copy holders for {e reads} (every valid copy is current, so
    any of them may serve), keeps a backup of the last data that passed
    through it, and after each write pushes read copies to
    [cfg.replica_targets] until [min_replicas] primary copies exist. The
    read-side backup grant is sound because the daemon write-through
    flushes strict writes to the home before acking the client, keeping
    the backup as fresh as every acknowledged plain write. *)

open Types
module NSet = Set.Make (Int)

type cache_state = Invalid | Shared | Owned_shared | Owned_excl

let cache_state_name = function
  | Invalid -> "invalid"
  | Shared -> "shared"
  | Owned_shared -> "owned_shared"
  | Owned_excl -> "owned_excl"

(* Manager-side transaction in flight. [tried] records data sources that
   already failed so fail-over never loops; [attempts] counts timeouts
   against the current peer. Read transactions fail over after
   [max_attempts]; invalidations and ownership transfers retry forever
   (the counter saturates) — see "evidence-gated writes" above. *)
type txn =
  | Idle
  | Read_flight of { dest : node_id; source : node_id; timer : timer_id;
                     tried : NSet.t; attempts : int; fence : fence }
  | Inval_phase of { dest : node_id; waiting : NSet.t; timer : timer_id;
                     attempts : int; fence : fence }
  | Own_flight of { dest : node_id; source : node_id; timer : timer_id;
                    tried : NSet.t; attempts : int; fence : fence }
  | Await_done of { dest : node_id; mode : mode; timer : timer_id;
                    attempts : int; regrant : msg option; fence : fence }

(* High on purpose: with fail-fast crash signals from the failure detector
   (the daemon synthesises an Unreachable event when a send targets a
   suspected peer), timeouts here almost always mean "slow", not "dead" —
   and false suspicion is a safety hazard. *)
let max_attempts = 60

type t = {
  cfg : config;
  (* ---- cache role ---- *)
  mutable cstate : cache_state;
  mutable data : bytes option;
  mutable ver : version;
  mutable floor : fence;  (* refuse grants fenced below this *)
  locks : Local_locks.t;
  waiters : (req_id * mode) Queue.t;
  mutable cache_req : mode option;  (* request to home currently in flight *)
  mutable pending_inval : (node_id * fence) option; (* deferred ack *)
  mutable pending_fetches : (node_id * msg) list;   (* deferred while locked *)
  (* ---- manager role (meaningful only at home) ---- *)
  mutable owner : node_id;
  mutable copyset : NSet.t;  (* nodes with read copies; excludes owner *)
  hqueue : (node_id * mode) Queue.t;
  mutable txn : txn;
  mutable fence : fence;  (* transaction sequence *)
  mutable backup : (bytes * version) option; (* last data seen by manager *)
  mutable next_timer : int;
}

let name = "crew"

let create cfg init =
  let cstate, data, ver =
    match init with
    | Start_unknown -> (Invalid, None, 0)
    | Start_owner bytes -> (Owned_excl, Some bytes, 1)
  in
  {
    cfg;
    cstate;
    data;
    ver;
    floor = 0;
    locks = Local_locks.create ();
    waiters = Queue.create ();
    cache_req = None;
    pending_inval = None;
    pending_fetches = [];
    owner = cfg.home;
    copyset = NSet.empty;
    hqueue = Queue.create ();
    txn = Idle;
    fence = 0;
    backup = (match init with Start_owner b -> Some (b, 1) | Start_unknown -> None);
    next_timer = 0;
  }

let state_name t = cache_state_name t.cstate
let has_valid_copy t = t.cstate <> Invalid

let is_owner t =
  match t.cstate with
  | Owned_shared | Owned_excl -> true
  | Invalid | Shared -> false

let locks_held t = Local_locks.held t.locks
let version t = t.ver
let backup_version t = match t.backup with Some (_, v) -> v | None -> 0
let is_home t = t.cfg.self = t.cfg.home

let holders t =
  if is_home t then NSet.elements (NSet.add t.owner t.copyset) else []

let busy t = is_home t && t.txn <> Idle

let fresh_timer t =
  t.next_timer <- t.next_timer + 1;
  t.next_timer

let fresh_fence t =
  t.fence <- t.fence + 1;
  t.fence

(* ------------------------------------------------------------------ *)
(* Cache role                                                          *)
(* ------------------------------------------------------------------ *)

let state_allows t = function
  | Read -> t.cstate <> Invalid
  | Write -> t.cstate = Owned_excl

(* Grant leading waiters that are compatible with both the local lock table
   and the protocol state; send one upgrade request to the manager on behalf
   of the first waiter that is not. While an invalidation is pending, grant
   nothing: new readers must not starve a remote writer. *)
let pump_local t acc =
  let acc = ref acc in
  let continue = ref (t.pending_inval = None) in
  while !continue && not (Queue.is_empty t.waiters) do
    let req, mode = Queue.peek t.waiters in
    if state_allows t mode && Local_locks.can t.locks mode then begin
      ignore (Queue.pop t.waiters);
      Local_locks.take t.locks mode;
      acc := Grant req :: !acc
    end
    else begin
      if (not (state_allows t mode)) && t.cache_req = None then begin
        t.cache_req <- Some mode;
        acc :=
          Send
            (t.cfg.home, match mode with Read -> Read_req | Write -> Write_req)
          :: !acc
      end;
      continue := false
    end
  done;
  !acc

let raise_floor t fence = if fence >= t.floor then t.floor <- fence + 1

let do_invalidate t (target, fence) acc =
  t.cstate <- Invalid;
  t.data <- None;
  t.pending_inval <- None;
  raise_floor t fence;
  Send (target, Invalidate_ack) :: Discard :: acc

(* Serve a (possibly deferred) Fetch / Fetch_own, echoing the manager's
   transaction fence into the grant. *)
let serve_fetch t (src, msg) acc =
  match (msg, t.data) with
  | (Fetch { fence; _ } | Fetch_own { fence; _ }), _ when fence < t.floor ->
    (* A fetch from below our floor: either a stale retransmit, or a
       manager that crashed and restarted its fence counter from zero.
       Serving it is useless — the destination would refuse the grant —
       so teach the sender our floor instead. *)
    Send (src, Fence_bump { floor = t.floor }) :: acc
  | Fetch { dest; fence }, Some data ->
    if t.cstate = Owned_excl then t.cstate <- Owned_shared;
    (* Serving a read copy (and the downgrade it implies) belongs to
       transaction [fence]: any write grant from an older transaction must
       not re-promote us afterwards. *)
    raise_floor t fence;
    Send (dest, Read_grant { data; version = t.ver; fence }) :: acc
  | Fetch_own { dest; fence }, Some data ->
    t.cstate <- Invalid;
    t.data <- None;
    (* The manager's backup must track the freshest image that passed
       through it. This hand-off is such a pass: without the refresh, an
       owner that dies before writing anything forces a fail-over onto a
       backup that may predate several settled writes — resurrecting
       ancient data instead of the image we just forwarded. *)
    if is_home t then t.backup <- Some (data, t.ver);
    (* Relinquishing ownership: anything granted to us by older
       transactions is dead from here on. The version bumps on every
       hand-off so freshness ordering tracks the ownership chain. *)
    raise_floor t fence;
    Send (dest, Own_grant { data; version = t.ver + 1; fence })
    :: Discard :: acc
  | (Fetch _ | Fetch_own _), None ->
    (* Our copy is gone (evicted under the manager's feet). *)
    Send (src, Evict_notify) :: acc
  | _ -> assert false

let flush_deferred t acc =
  if Local_locks.idle t.locks then begin
    let acc =
      match t.pending_inval with
      | Some pending -> do_invalidate t pending acc
      | None -> acc
    in
    let fetches = List.rev t.pending_fetches in
    t.pending_fetches <- [];
    List.fold_left (fun acc f -> serve_fetch t f acc) acc fetches
  end
  else acc

(* ------------------------------------------------------------------ *)
(* Manager role                                                        *)
(* ------------------------------------------------------------------ *)

let sharers_hint t = Sharers_hint (NSet.elements (NSet.add t.owner t.copyset))

let alternate_sources t ~tried =
  let cands = NSet.elements (NSet.diff t.copyset tried) in
  if t.data <> None && (not (NSet.mem t.cfg.self tried))
     && not (List.mem t.cfg.self cands)
  then cands @ [ t.cfg.self ]
  else cands

(* Pessimistic copyset bookkeeping (Li-Hudak style): record the reader when
   the fetch is initiated, not when its Done ack arrives — a lost ack must
   not hide a granted reader from future invalidations. A spurious member
   merely costs one extra Invalidate later. *)
let start_read_txn ?(attempts = 0) ?fence t dest ~source ~tried acc =
  if dest <> t.owner then t.copyset <- NSet.add dest t.copyset;
  let fence = match fence with Some f -> f | None -> fresh_fence t in
  let timer = fresh_timer t in
  t.txn <- Read_flight { dest; source; timer; tried; attempts; fence };
  (* The hint must reach the durable directory before the grant can land:
     a crash mid-transaction would otherwise rebuild from books that miss
     a node already holding a copy, leaving it uninvalidatable forever. *)
  Start_timer { id = timer; after = t.cfg.request_timeout }
  :: Send (source, Fetch { dest; fence })
  :: sharers_hint t
  :: acc

(* Pessimistic ownership bookkeeping: the grant may land even if its ack
   does not. Believing a dead transfer costs a fail-over round later; not
   believing a live one would mint two owners. *)
let start_own_transfer ?(attempts = 0) ?fence t dest ~source ~tried acc =
  (* Retire the displaced owner into the copyset: if the hand-off never
     reaches it (fail-over around a partition) it still holds a valid copy,
     and a holder the books forget is a stale copy no write can revoke. If
     the hand-off does land, it becomes a harmless phantom that the next
     invalidation round or the repair probe clears. *)
  if t.owner <> dest && t.owner <> t.cfg.self then
    t.copyset <- NSet.add t.owner t.copyset;
  t.owner <- dest;
  t.copyset <- NSet.remove dest t.copyset;
  let fence = match fence with Some f -> f | None -> fresh_fence t in
  let timer = fresh_timer t in
  t.txn <- Own_flight { dest; source; timer; tried; attempts; fence };
  Start_timer { id = timer; after = t.cfg.request_timeout }
  :: Send (source, Fetch_own { dest; fence })
  :: sharers_hint t
  :: acc

let grant_from_backup ?fence t dest ~mode ~data ~version acc =
  (match mode with
   | Read -> if dest <> t.owner then t.copyset <- NSet.add dest t.copyset
   | Write ->
     (* Same displaced-owner retirement as [start_own_transfer]. *)
     if t.owner <> dest && t.owner <> t.cfg.self then
       t.copyset <- NSet.add t.owner t.copyset;
     t.owner <- dest;
     t.copyset <- NSet.remove dest t.copyset);
  (* Write grants climb the version ladder on every attempt so a recipient
     that once held something newer eventually accepts the recovery. *)
  let version = match mode with Read -> version | Write -> version + 1 in
  if mode = Write then t.backup <- Some (data, version);
  let fence = match fence with Some f -> f | None -> fresh_fence t in
  let timer = fresh_timer t in
  let grant =
    match mode with
    | Read -> Read_grant { data; version; fence }
    | Write -> Own_grant { data; version; fence }
  in
  t.txn <-
    Await_done { dest; mode; timer; attempts = 0; regrant = Some grant; fence };
  Start_timer { id = timer; after = t.cfg.request_timeout }
  :: Send (dest, grant)
  :: sharers_hint t
  :: acc

(* Once the copyset is clean, move ownership (or upgrade in place). *)
let ownership_phase ?fence t dest acc =
  let fence = match fence with Some f -> f | None -> fresh_fence t in
  if t.owner = dest then begin
    let timer = fresh_timer t in
    let grant = Upgrade_grant { fence } in
    t.txn <-
      Await_done
        { dest; mode = Write; timer; attempts = 0; regrant = Some grant; fence };
    Start_timer { id = timer; after = t.cfg.request_timeout }
    :: Send (dest, grant)
    :: acc
  end
  else start_own_transfer ~fence t dest ~source:t.owner ~tried:NSet.empty acc

let start_write_txn t dest acc =
  let fence = fresh_fence t in
  let to_invalidate = NSet.remove dest (NSet.remove t.owner t.copyset) in
  if NSet.is_empty to_invalidate then ownership_phase ~fence t dest acc
  else begin
    let timer = fresh_timer t in
    t.txn <-
      Inval_phase { dest; waiting = to_invalidate; timer; attempts = 0; fence };
    NSet.fold
      (fun n acc -> Send (n, Invalidate { fence }) :: acc)
      to_invalidate
      (Start_timer { id = timer; after = t.cfg.request_timeout } :: acc)
  end

(* Maintain min_replicas primary copies (paper §3.5) by queueing internal
   reads on behalf of replica targets; they receive unsolicited read
   grants. Queued pushes count as prospective holders, or each completed
   push would re-queue more and the page would over-replicate. Nodes in
   [avoid] (suspected dead or partitioned) count as neither holders nor
   candidates, so repair re-replicates around them. *)
let enqueue_replication ?(avoid = []) t =
  if t.cfg.min_replicas > 1 then begin
    let avoid = NSet.of_list avoid in
    let holders = NSet.add t.owner t.copyset in
    let queued = Queue.fold (fun acc (n, _) -> NSet.add n acc) NSet.empty t.hqueue in
    let prospective =
      NSet.cardinal (NSet.diff (NSet.union holders queued) avoid)
    in
    let missing = t.cfg.min_replicas - prospective in
    if missing > 0 then begin
      let fresh =
        List.filter
          (fun n ->
            (not (NSet.mem n holders))
            && (not (NSet.mem n queued))
            && not (NSet.mem n avoid))
          t.cfg.replica_targets
      in
      List.iteri
        (fun i n -> if i < missing then Queue.push (n, Read) t.hqueue)
        fresh
    end
  end

let rec pump_home t acc =
  match t.txn with
  | Idle when not (Queue.is_empty t.hqueue) -> (
    let dest, mode = Queue.pop t.hqueue in
    match mode with
    | Read ->
      if dest = t.owner then
        (* The owner itself asking to read: its grant/ack was lost. Serve
           from backup so it unblocks; otherwise drop and let it retry. *)
        (match t.backup with
         | Some (data, version) ->
           grant_from_backup t dest ~mode:Read ~data ~version acc
         | None -> pump_home t acc)
      else
        (* A copyset member may be a phantom (e.g. a retired previous
           owner) asking for a fresh copy. Run the ordinary read
           transaction rather than short-circuiting from the backup: the
           fetch defers behind the owner's active write lock, which the
           backup path would race past, and [start_read_txn] re-adds the
           requester to the copyset so the books stay pessimistic. *)
        start_read_txn t dest ~source:t.owner ~tried:NSet.empty acc
    | Write -> start_write_txn t dest acc)
  | Idle | Read_flight _ | Inval_phase _ | Own_flight _ | Await_done _ -> acc

let finish_txn t acc =
  t.txn <- Idle;
  enqueue_replication t;
  pump_home t (sharers_hint t :: acc)

(* The data source for the current transaction failed: move to the next
   candidate, falling back on the manager's own copy, then its backup.
   Reads get here on mere suspicion (any valid copy is current, so an
   alternate or the write-through backup may serve); writes only with
   evidence — an Evict_notify, Own_return or fence restart proving the
   failed source no longer holds a copy a transfer could fork. *)
let fail_over t ~dest ~mode ~tried acc =
  match alternate_sources t ~tried with
  | source :: _ when source = t.cfg.self -> (
    match t.data with
    | Some data -> (
      match mode with
      | Read -> grant_from_backup t dest ~mode:Read ~data ~version:t.ver acc
      | Write ->
        (* Surrender the manager's own copy: availability over freshness
           when the real owner is unreachable. *)
        t.cstate <- Invalid;
        let version = t.ver in
        t.data <- None;
        grant_from_backup t dest ~mode:Write ~data ~version (Discard :: acc))
    | None -> (
      match t.backup with
      | Some (data, version) -> grant_from_backup t dest ~mode ~data ~version acc
      | None ->
        let acc = Send (dest, Nack) :: acc in
        t.txn <- Idle;
        pump_home t acc))
  | source :: _ -> (
    match mode with
    | Read -> start_read_txn t dest ~source ~tried acc
    | Write -> start_own_transfer t dest ~source ~tried acc)
  | [] -> (
    match t.backup with
    | Some (data, version) ->
      (* Every source is unreachable, so recover from the backup — but do
         NOT clear the copyset. Unreachable mostly means partitioned, and
         a partitioned holder keeps a protocol-valid (now stale) copy that
         only a later invalidation round can revoke; wiping the books here
         would exempt it forever. *)
      grant_from_backup t dest ~mode ~data ~version acc
    | None ->
      let acc = Send (dest, Nack) :: acc in
      t.txn <- Idle;
      pump_home t acc)

(* ------------------------------------------------------------------ *)
(* Message handling                                                    *)
(* ------------------------------------------------------------------ *)

(* A grant fenced below our floor is a ghost of a finished transaction:
   accepting it would resurrect a revoked copy. Refuse, and tell the
   manager we hold nothing so it can retry cleanly. *)
(* The cache role's "exclusive" claim must respect the collocated
   manager's books at the home: a write grant implies exclusivity only if
   the copyset really drained. Pessimistic bookkeeping (and sharers
   inherited across a reincarnation) can leave members in the copyset, and
   a home-local write must then still run a real invalidation round rather
   than take the Owned_excl shortcut past a possibly-live copy. *)
let claim_exclusive t =
  t.cstate <-
    (if t.cfg.self = t.cfg.home && not (NSet.is_empty t.copyset) then
       Owned_shared
     else Owned_excl)

let refuse_stale_grant t acc =
  t.cache_req <- None;
  (* The Fence_bump rescues a manager whose fence counter restarted after
     a crash: every grant it mints would otherwise be refused forever. *)
  pump_local t
    (Send (t.cfg.home, Fence_bump { floor = t.floor })
    :: Send (t.cfg.home, Evict_notify)
    :: acc)

let handle_cache_msg t src msg acc =
  match msg with
  | Read_grant { data; version; fence } ->
    if t.cstate = Invalid && fence < t.floor then refuse_stale_grant t acc
    else begin
      if t.cache_req = Some Read then t.cache_req <- None;
      let acc =
        if t.cstate = Invalid then begin
          t.cstate <- Shared;
          t.data <- Some data;
          t.ver <- version;
          Install { data; dirty = false } :: acc
        end
        else acc (* duplicate/unsolicited while we hold a copy: keep ours *)
      in
      pump_local t (Send (t.cfg.home, Done { mode = Read }) :: acc)
    end
  | Own_grant { data; version; fence } ->
    if t.cstate = Owned_excl then begin
      (* Duplicate grant (the manager re-sent after a lost ack): keep our
         possibly-newer data, just re-ack. *)
      if t.cache_req = Some Write then t.cache_req <- None;
      pump_local t (Send (t.cfg.home, Done { mode = Write }) :: acc)
    end
    else if fence < t.floor then
      (* A ghost of a finished transaction. If we are a bare cache it may
         be retried for us, so tell the manager we hold nothing; if we
         still hold a legitimate (shared/downgraded) copy, just drop it —
         we are not the grant's audience any more. *)
      (if t.cstate = Invalid then refuse_stale_grant t acc
       else Send (t.cfg.home, Fence_bump { floor = t.floor }) :: acc)
    else begin
      if t.cache_req = Some Write then t.cache_req <- None;
      claim_exclusive t;
      t.data <- Some data;
      t.ver <- max version t.ver;
      pump_local t
        (Send (t.cfg.home, Done { mode = Write })
         :: Install { data; dirty = false }
         :: acc)
    end
  | Upgrade_grant { fence } ->
    if t.cstate = Invalid && fence < t.floor then refuse_stale_grant t acc
    else if t.data <> None then begin
      if t.cache_req = Some Write then t.cache_req <- None;
      claim_exclusive t;
      pump_local t (Send (t.cfg.home, Done { mode = Write }) :: acc)
    end
    else
      (* Copy evicted between request and grant: decline the upgrade. *)
      Send (t.cfg.home, Evict_notify) :: acc
  | Invalidate { fence } ->
    if Local_locks.idle t.locks then
      pump_local t (do_invalidate t (src, fence) acc)
    else begin
      (* The CM "delays granting ... until the conflict is resolved": ack
         only after the local locks drain. *)
      t.pending_inval <- Some (src, fence);
      acc
    end
  | Fetch _ | Fetch_own _ ->
    (* A read copy may be served while local readers are active, but
       ownership must not move until every local lock is gone — the new
       writer would otherwise run concurrently with our readers. *)
    let must_defer =
      match msg with
      | Fetch _ -> t.locks.Local_locks.writer
      | _ -> not (Local_locks.idle t.locks)
    in
    if must_defer then begin
      t.pending_fetches <- (src, msg) :: t.pending_fetches;
      acc
    end
    else serve_fetch t (src, msg) acc
  | Nack -> (
    t.cache_req <- None;
    match Queue.take_opt t.waiters with
    | Some (req, _) ->
      pump_local t (Reject (req, Unavailable "no reachable copy") :: acc)
    | None -> acc)
  | Read_req | Write_req | Invalidate_ack | Done _ | Evict_notify
  | Own_return _ | Update _ | Update_ack | Pull_req | Diff _ | Fence_bump _ ->
    acc (* manager-side traffic *)

let absorb_returned_ownership t data version =
  t.owner <- t.cfg.home;
  t.copyset <- NSet.remove t.cfg.home t.copyset;
  t.backup <- Some (data, version);
  t.cstate <- (if NSet.is_empty t.copyset then Owned_excl else Owned_shared);
  t.data <- Some data;
  t.ver <- max version t.ver

let handle_home_msg t src msg acc =
  match msg with
  | Read_req ->
    Queue.push (src, Read) t.hqueue;
    pump_home t acc
  | Write_req ->
    Queue.push (src, Write) t.hqueue;
    pump_home t acc
  | Invalidate_ack -> (
    t.copyset <- NSet.remove src t.copyset;
    match t.txn with
    | Inval_phase { dest; waiting; timer; attempts; fence } ->
      let waiting = NSet.remove src waiting in
      if NSet.is_empty waiting then ownership_phase ~fence t dest acc
      else begin
        t.txn <- Inval_phase { dest; waiting; timer; attempts; fence };
        acc
      end
    | Idle | Read_flight _ | Own_flight _ | Await_done _ -> acc)
  | Done { mode = done_mode } -> (
    match t.txn with
    | (Read_flight { dest; _ } | Await_done { dest; mode = Read; _ })
      when dest = src && done_mode = Read ->
      if src <> t.owner then t.copyset <- NSet.add src t.copyset;
      finish_txn t acc
    | (Own_flight { dest; _ } | Await_done { dest; mode = Write; _ })
      when dest = src && done_mode = Write ->
      t.owner <- src;
      t.copyset <- NSet.remove src t.copyset;
      finish_txn t acc
    | Idle | Read_flight _ | Inval_phase _ | Own_flight _ | Await_done _ -> acc)
  | Evict_notify -> (
    t.copyset <- NSet.remove src t.copyset;
    match t.txn with
    | Inval_phase { dest; waiting; timer; attempts; fence } when NSet.mem src waiting ->
      let waiting = NSet.remove src waiting in
      if NSet.is_empty waiting then ownership_phase ~fence t dest acc
      else begin
        t.txn <- Inval_phase { dest; waiting; timer; attempts; fence };
        acc
      end
    | Read_flight { dest; source; tried; _ } when source = src ->
      fail_over t ~dest ~mode:Read ~tried:(NSet.add src tried) acc
    | Own_flight { dest; source; tried; _ } when source = src ->
      fail_over t ~dest ~mode:Write ~tried:(NSet.add src tried) acc
    | Await_done { dest; mode; _ } when dest = src ->
      (* The grantee refused a stale grant or lost its copy: retry its
         transaction from an alternate source. *)
      if mode = Write then t.owner <- t.cfg.home;
      fail_over t ~dest ~mode ~tried:NSet.empty acc
    | Idle | Read_flight _ | Inval_phase _ | Own_flight _ | Await_done _ -> acc)
  | Own_return { data; version } ->
    if src = t.owner then begin
      absorb_returned_ownership t data version;
      let acc = Install { data; dirty = true } :: acc in
      match t.txn with
      | Read_flight { dest; source; tried; _ } when source = src ->
        fail_over t ~dest ~mode:Read ~tried:(NSet.add src tried) acc
      | Own_flight { dest; source; tried; _ } when source = src ->
        fail_over t ~dest ~mode:Write ~tried:(NSet.add src tried) acc
      | Idle | Read_flight _ | Inval_phase _ | Own_flight _ | Await_done _ ->
        acc
    end
    else acc
  | Update { data; version } ->
    (* Foreign to CREW; keep the freshest data as backup rather than drop
       it. *)
    if version >= (match t.backup with Some (_, v) -> v | None -> 0) then
      t.backup <- Some (data, version);
    acc
  | Fence_bump { floor } ->
    (* A survivor of a previous incarnation of this manager refuses fences
       below [floor]: our counter restarted from zero after a crash and
       rebuild. Jump past the dead epoch, and restart any flight still in
       progress under a fresh fence — everything already in the air below
       the floor will be refused on arrival. *)
    if floor > t.fence then begin
      t.fence <- floor;
      match t.txn with
      | Read_flight { dest; source; tried; _ } ->
        start_read_txn t dest ~source ~tried acc
      | Own_flight { dest; source; tried; _ } ->
        start_own_transfer t dest ~source ~tried acc
      | Await_done { dest; mode; _ } ->
        fail_over t ~dest ~mode ~tried:NSet.empty acc
      | Idle | Inval_phase _ -> acc
    end
    else acc
  | Read_grant _ | Own_grant _ | Upgrade_grant _ | Invalidate _ | Fetch _
  | Fetch_own _ | Nack | Update_ack | Pull_req | Diff _ ->
    acc

let on_timeout t id acc =
  let current_timer =
    match t.txn with
    | Idle -> None
    | Read_flight { timer; _ } | Inval_phase { timer; _ }
    | Own_flight { timer; _ } | Await_done { timer; _ } ->
      Some timer
  in
  if current_timer <> Some id then acc (* stale timer *)
  else
    match t.txn with
    | Idle -> acc
    | Read_flight { dest; source; tried; attempts; fence; _ } ->
      if attempts < max_attempts then
        start_read_txn ~attempts:(attempts + 1) ~fence t dest ~source ~tried acc
      else fail_over t ~dest ~mode:Read ~tried:(NSet.add source tried) acc
    | Own_flight { dest; source; tried; attempts; fence; _ } ->
      (* Never move ownership around a merely-silent holder: unlike a read
         copy, a second writable lineage forks the page. Retry until the
         holder answers or supplies evidence (Evict_notify / Own_return —
         which a crashed node sends once it recovers empty) that its copy
         is gone; only those evidence paths fail over. *)
      start_own_transfer
        ~attempts:(min (attempts + 1) max_attempts)
        ~fence t dest ~source ~tried acc
    | Inval_phase { dest; waiting; attempts; fence; _ } ->
      (* Re-send forever: the sharer may be deferring its ack behind a held
         read lock, or partitioned — and a partitioned sharer still serves
         its (about to be stale) copy locally. Completing the write around
         it would make those reads non-linearizable, so the write waits:
         the blocked writer times out at the client (ambiguous, hence
         checker-safe) and the round converges once every remaining sharer
         acks, evicts, or recovers from a crash with an empty cache. *)
      let timer = fresh_timer t in
      t.txn <-
        Inval_phase
          { dest; waiting; timer;
            attempts = min (attempts + 1) max_attempts; fence };
      NSet.fold
        (fun n acc -> Send (n, Invalidate { fence }) :: acc)
        waiting
        (Start_timer { id = timer; after = t.cfg.request_timeout } :: acc)
    | Await_done { dest; mode; attempts; regrant; fence; _ } ->
      if attempts < max_attempts then begin
        (* The grant or its Done ack may have been lost: re-send rather
           than presume a crash. *)
        let timer = fresh_timer t in
        t.txn <-
          Await_done
            { dest; mode; timer; attempts = attempts + 1; regrant; fence };
        let acc =
          Start_timer { id = timer; after = t.cfg.request_timeout } :: acc
        in
        match regrant with
        | Some grant -> Send (dest, grant) :: acc
        | None -> acc
      end
      else begin
        (* Give up waiting for the ack. Ownership/copyset were recorded at
           grant time, so bookkeeping is already conservative; if the
           grantee really died, the next transaction's fail-over recovers
           from an alternate source or the backup. *)
        t.txn <- Idle;
        pump_home t (sharers_hint t :: acc)
      end

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let handle t event =
  let acc =
    match event with
    | Acquire { req; mode } ->
      Queue.push (req, mode) t.waiters;
      pump_local t []
    | Release { mode; data } ->
      Local_locks.drop t.locks mode;
      let acc =
        match (mode, data) with
        | Write, Some bytes ->
          t.data <- Some bytes;
          t.ver <- t.ver + 1;
          if is_home t then t.backup <- Some (bytes, t.ver);
          [ Install { data = bytes; dirty = true } ]
        | (Read | Write), _ -> []
      in
      (* A home-local write never passes through a manager transaction, so
         trigger min-replica maintenance here too. *)
      let acc =
        if is_home t && mode = Write && data <> None then begin
          enqueue_replication t;
          pump_home t acc
        end
        else acc
      in
      pump_local t (flush_deferred t acc)
    | Peer { src; msg } ->
      let acc = handle_cache_msg t src msg [] in
      if is_home t then handle_home_msg t src msg acc else acc
    | Evicted { data; dirty = _ } ->
      let was = t.cstate in
      t.cstate <- Invalid;
      t.data <- None;
      t.pending_inval <- None;
      if is_home t then begin
        (* Only the manager's cached copy died; remember it as backup. *)
        t.backup <- Some (data, t.ver);
        []
      end
      else begin
        match was with
        | Owned_shared | Owned_excl ->
          [ Send (t.cfg.home, Own_return { data; version = t.ver }) ]
        | Shared -> [ Send (t.cfg.home, Evict_notify) ]
        | Invalid -> []
      end
    | Abort { req } ->
      let remaining = Queue.create () in
      let was_head = ref true in
      let aborted_head = ref false in
      Queue.iter
        (fun (r, m) ->
          if r = req then begin
            if !was_head then aborted_head := true
          end
          else Queue.push (r, m) remaining;
          was_head := false)
        t.waiters;
      Queue.clear t.waiters;
      Queue.transfer remaining t.waiters;
      (* If the aborted intent was the one we requested an upgrade for,
         clear the in-flight marker so later intents re-request. *)
      if !aborted_head then t.cache_req <- None;
      pump_local t []
    | Timeout id -> if is_home t then on_timeout t id [] else []
    | Maintain { avoid } ->
      if is_home t then begin
        enqueue_replication ~avoid t;
        pump_home t []
      end
      else []
    | Unreachable { node } ->
      (* Fail-fast signal from the daemon's failure detector. Suspicion is
         only a hint: it short-circuits the retry ladder for *reads*,
         whose fail-over targets (other valid copies, or the write-through
         backup) are all current. Writes ignore it — an invalidation round
         or ownership transfer must keep waiting for the suspect, because
         if it is partitioned rather than dead it still holds (and serves)
         its copy, and a write completed around it would fork history. *)
      if not (is_home t) then []
      else (
        match t.txn with
        | Read_flight { dest; source; tried; _ } when source = node ->
          fail_over t ~dest ~mode:Read ~tried:(NSet.add node tried) []
        | Await_done { dest; _ } when dest = node ->
          (* The grantee itself is suspected. Stop waiting for its ack;
             ownership/copyset were recorded at grant time so the books
             stay conservative, and if it really died the next
             transaction's fail-over recovers from an alternate source. *)
          t.txn <- Idle;
          pump_home t [ sharers_hint t ]
        | Idle | Read_flight _ | Inval_phase _ | Own_flight _ | Await_done _
          ->
          [])
    | Reincarnate { version; sharers } ->
      if is_home t then begin
        t.ver <- max t.ver version;
        (match (t.backup, t.data) with
         | None, Some d -> t.backup <- Some (d, t.ver)
         | (Some _ | None), _ -> ());
        (* Adopt the previous incarnation's recorded sharers so the next
           write's invalidation round revokes their (possibly stale but
           protocol-valid) copies. Spurious members are safe: pessimistic
           copyset bookkeeping already tolerates them. *)
        List.iter
          (fun n -> if n <> t.cfg.self then t.copyset <- NSet.add n t.copyset)
          sharers;
        (* With inherited sharers the home's own copy is not exclusive:
           a local write must run a real invalidation round, not take the
           Owned_excl shortcut past the survivors. *)
        if (not (NSet.is_empty t.copyset)) && t.cstate = Owned_excl then
          t.cstate <- Owned_shared;
        pump_home t [ sharers_hint t ]
      end
      else []
  in
  List.rev acc

(* CREW keeps a single mutable image per page; there is no version history
   to read at and no publish path — writers go through ownership. *)
let read_at _ _ = None
let publish _ ~src:_ ~parent:_ ~expected:_ ~payload:_ =
  (Types.Publish_unsupported, [])
