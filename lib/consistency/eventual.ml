(** Eventual consistency — versioned lazy propagation.

    The paper proposes "even more relaxed models for applications such as
    web caches ... which typically can tolerate data that is temporarily
    out-of-date (i.e., one or two versions old) as long as they get fast
    response". This protocol grants every lock immediately against the local
    replica; writes bump a version and flow to the home asynchronously; the
    home batches fan-out on an anti-entropy timer. Conflicts resolve
    last-writer-wins on (version, node id). *)

open Types
module NSet = Set.Make (Int)

(* Versions are totally ordered with the writer baked into the low byte:
   [(counter << 8) | origin]. Comparing plain ints then implements
   last-writer-wins with a deterministic origin tiebreak, and the order
   survives relaying through the home. *)
let next_version ~current ~origin =
  (((current lsr 8) + 1) lsl 8) lor (origin land 0xFF)

type t = {
  cfg : config;
  (* cache role *)
  mutable data : bytes option;
  mutable ver : version;
  locks : Local_locks.t;
  waiters : (req_id * mode) Queue.t;
  mutable cache_req : mode option;
  (* home role *)
  mutable copyset : NSet.t;
  mutable fanout_armed : bool;
  mutable fanout_pending : bool;
  mutable next_timer : int;
}

let name = "eventual"

let create cfg init =
  let data, ver =
    match init with Start_unknown -> (None, 0) | Start_owner b -> (Some b, 1)
  in
  {
    cfg;
    data;
    ver;
    locks = Local_locks.create ();
    waiters = Queue.create ();
    cache_req = None;
    copyset = NSet.empty;
    fanout_armed = false;
    fanout_pending = false;
    next_timer = 0;
  }

let state_name t = if t.data = None then "invalid" else "replica"
let has_valid_copy t = t.data <> None
let is_owner t = ignore t; false
let locks_held t = Local_locks.held t.locks
let version t = t.ver
let backup_version _ = 0
let is_home t = t.cfg.self = t.cfg.home

let holders t =
  if is_home t && t.data <> None then
    NSet.elements (NSet.add t.cfg.self t.copyset)
  else []

let busy _ = false

let fresh_timer t =
  t.next_timer <- t.next_timer + 1;
  t.next_timer

let newer t ~version ~src:_ = version > t.ver

(* Local locks still serialise within the node; across nodes everything is
   optimistic. A node only blocks when it has no copy at all. *)
let pump_local t acc =
  let acc = ref acc in
  let continue = ref true in
  while !continue && not (Queue.is_empty t.waiters) do
    let req, mode = Queue.peek t.waiters in
    if t.data <> None && Local_locks.can t.locks mode then begin
      ignore (Queue.pop t.waiters);
      Local_locks.take t.locks mode;
      acc := Grant req :: !acc
    end
    else begin
      if t.data = None && t.cache_req = None then begin
        t.cache_req <- Some mode;
        acc := Send (t.cfg.home, Read_req) :: !acc
      end;
      continue := false
    end
  done;
  !acc

let arm_fanout t acc =
  t.fanout_pending <- true;
  if t.fanout_armed then acc
  else begin
    t.fanout_armed <- true;
    let id = fresh_timer t in
    Start_timer { id; after = t.cfg.propagate_every } :: acc
  end

(* Push to replica targets that are missing, creating min_replicas copies.
   Suspected nodes ([avoid]) count as neither replicas nor candidates. *)
let replication_targets ?(avoid = []) t =
  if t.cfg.min_replicas <= 1 then []
  else begin
    let avoid_set = NSet.of_list avoid in
    let live = NSet.diff (NSet.remove t.cfg.self t.copyset) avoid_set in
    let have = 1 + NSet.cardinal live in
    let missing = t.cfg.min_replicas - have in
    if missing <= 0 then []
    else
      List.filteri
        (fun i _ -> i < missing)
        (List.filter
           (fun n ->
             n <> t.cfg.self
             && (not (NSet.mem n t.copyset))
             && not (NSet.mem n avoid_set))
           t.cfg.replica_targets)
  end

let handle_home_msg t src msg acc =
  match msg with
  | Read_req -> (
    match t.data with
    | Some data ->
      t.copyset <- NSet.add src t.copyset;
      Sharers_hint (NSet.elements (NSet.add t.cfg.self t.copyset))
      :: Send (src, Read_grant { data; version = t.ver; fence = 0 })
      :: acc
    | None -> Send (src, Nack) :: acc)
  | Update { data; version } ->
    if newer t ~version ~src then begin
      t.data <- Some data;
      t.ver <- version;
      arm_fanout t (Install { data; dirty = false } :: acc)
    end
    else acc
  | Pull_req -> (
    match t.data with
    | Some data -> Send (src, Update { data; version = t.ver }) :: acc
    | None -> acc)
  | Evict_notify ->
    t.copyset <- NSet.remove src t.copyset;
    acc
  | Read_grant _ | Own_grant _ | Upgrade_grant _ | Invalidate _ | Invalidate_ack
  | Fetch _ | Fetch_own _ | Done _ | Nack | Own_return _ | Update_ack
  | Write_req | Diff _ | Fence_bump _ ->
    acc

let handle_cache_msg t src msg acc =
  match msg with
  | Read_grant { data; version; _ } ->
    t.cache_req <- None;
    if newer t ~version ~src || t.data = None then begin
      t.data <- Some data;
      t.ver <- version;
      pump_local t (Install { data; dirty = false } :: acc)
    end
    else pump_local t acc
  | Update { data; version } ->
    if newer t ~version ~src then begin
      t.data <- Some data;
      t.ver <- version;
      pump_local t (Install { data; dirty = false } :: acc)
    end
    else acc
  | Nack -> (
    t.cache_req <- None;
    match Queue.take_opt t.waiters with
    | Some (req, _) ->
      pump_local t (Reject (req, Unavailable "home has no data") :: acc)
    | None -> acc)
  | Read_req | Write_req | Own_grant _ | Upgrade_grant _ | Invalidate _
  | Invalidate_ack | Fetch _ | Fetch_own _ | Done _ | Evict_notify
  | Own_return _ | Update_ack | Pull_req | Diff _ | Fence_bump _ ->
    acc

let handle t event =
  let acc =
    match event with
    | Acquire { req; mode } ->
      Queue.push (req, mode) t.waiters;
      pump_local t []
    | Release { mode; data } -> (
      Local_locks.drop t.locks mode;
      match (mode, data) with
      | Write, Some bytes ->
        t.ver <- next_version ~current:t.ver ~origin:t.cfg.self;
        t.data <- Some bytes;
        let acc = [ Install { data = bytes; dirty = false } ] in
        let acc =
          if is_home t then arm_fanout t acc
          else
            Send (t.cfg.home, Update { data = bytes; version = t.ver }) :: acc
        in
        pump_local t acc
      | (Read | Write), _ -> pump_local t [])
    | Peer { src; msg } ->
      (* At the home, home-role messages must not be pre-absorbed by the
         cache role (it would adopt an Update and leave nothing "newer" for
         the fan-out logic to react to). *)
      if is_home t then
        (match msg with
         | Update _ | Read_req | Pull_req | Evict_notify ->
           handle_home_msg t src msg []
         | Read_grant _ | Own_grant _ | Upgrade_grant _ | Invalidate _
         | Invalidate_ack | Fetch _ | Fetch_own _ | Done _ | Nack
         | Own_return _ | Update_ack | Write_req | Diff _ | Fence_bump _ ->
           handle_cache_msg t src msg [])
      else handle_cache_msg t src msg []
    | Evicted _ ->
      if is_home t then []
      else begin
        t.data <- None;
        [ Send (t.cfg.home, Evict_notify) ]
      end
    | Abort { req } ->
      let remaining = Queue.create () in
      let head = Queue.peek_opt t.waiters in
      Queue.iter
        (fun (r, m) -> if r <> req then Queue.push (r, m) remaining)
        t.waiters;
      Queue.clear t.waiters;
      Queue.transfer remaining t.waiters;
      (match head with
       | Some (r, _) when r = req -> t.cache_req <- None
       | Some _ | None -> ());
      pump_local t []
    | Timeout _ ->
      if is_home t && t.fanout_armed then begin
        t.fanout_armed <- false;
        if t.fanout_pending then begin
          t.fanout_pending <- false;
          match t.data with
          | None -> []
          | Some data ->
            let extra = replication_targets t in
            List.iter (fun n -> t.copyset <- NSet.add n t.copyset) extra;
            let targets = NSet.elements (NSet.remove t.cfg.self t.copyset) in
            List.rev_map
              (fun n -> Send (n, Update { data; version = t.ver }))
              targets
        end
        else []
      end
      else []
    | Maintain { avoid } -> (
      if not (is_home t) then []
      else
        match t.data with
        | None -> []
        | Some data ->
          let extra = replication_targets ~avoid t in
          List.iter (fun n -> t.copyset <- NSet.add n t.copyset) extra;
          List.rev_map
            (fun n -> Send (n, Update { data; version = t.ver }))
            extra)
    | Unreachable _ ->
      (* Anti-entropy pushes to a dead replica just drop; nothing waits on
         acks here, and a partitioned replica keeps its copyset slot. *)
      []
    | Reincarnate { version; sharers } ->
      if is_home t then begin
        if version > t.ver then t.ver <- version;
        List.iter
          (fun n -> if n <> t.cfg.self then t.copyset <- NSet.add n t.copyset)
          sharers;
        []
      end
      else []
  in
  List.rev acc
