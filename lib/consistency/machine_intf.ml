(** Signature every consistency protocol implements.

    "Plugging in new protocols or consistency managers is only a matter of
    registering them with Khazana, provided they export the required
    functionality" — this is that required functionality. Register
    implementations with {!Registry.register}. *)

module type MACHINE = sig
  type t

  val name : string
  (** Protocol identifier stored in region attributes. *)

  val create : Types.config -> Types.init -> t

  val handle : t -> Types.event -> Types.action list
  (** Feed one event, collect the machine's reactions. Deterministic. *)

  (** {1 Introspection (tests, diagnostics, daemon fast paths)} *)

  val state_name : t -> string

  val has_valid_copy : t -> bool
  (** Would a local read observe protocol-valid data? *)

  val is_owner : t -> bool

  val locks_held : t -> int * bool
  (** (readers, writer) currently granted locally. *)

  val version : t -> Types.version
  (** Version of the local copy (0 when none). *)

  val backup_version : t -> Types.version
  (** Home-side: version of the manager's recovery backup (0 when the
      protocol keeps none). The newest write the home can vouch for —
      anything older arriving out of band (a retried flush, a late
      update) is obsolete and must not overwrite durable state. *)

  val holders : t -> Types.node_id list
  (** Home-side view of the nodes believed to hold a copy (including the
      owner and the home itself when it holds data). [[]] off-home —
      only the home tracks the copyset. *)

  val busy : t -> bool
  (** Home-side: is a transaction or replication phase in flight that will
      itself reshape the copyset? Repair backs off while this is true. *)
end

type packed = Packed : (module MACHINE with type t = 'a) * 'a -> packed

(** One observed machine step: what came in, what state it moved between,
    what went out. Fed to the span hook of {!handle_packed} so the daemon
    can land CM state transitions in an operation trace without the
    machines themselves knowing about tracing (they stay pure). *)
type transition = {
  t_before : string;  (** state name before the event *)
  t_after : string;   (** state name after *)
  t_event : Types.event;
  t_actions : Types.action list;
}

let handle_packed ?hook (Packed ((module M), m)) event =
  match hook with
  | None -> M.handle m event
  | Some f ->
    let before = M.state_name m in
    let actions = M.handle m event in
    f { t_before = before; t_after = M.state_name m; t_event = event;
        t_actions = actions };
    actions
let packed_state_name (Packed ((module M), m)) = M.state_name m
let packed_has_valid_copy (Packed ((module M), m)) = M.has_valid_copy m
let packed_is_owner (Packed ((module M), m)) = M.is_owner m
let packed_locks_held (Packed ((module M), m)) = M.locks_held m
let packed_version (Packed ((module M), m)) = M.version m
let packed_backup_version (Packed ((module M), m)) = M.backup_version m
let packed_holders (Packed ((module M), m)) = M.holders m
let packed_busy (Packed ((module M), m)) = M.busy m
let packed_name (Packed ((module M), _)) = M.name
