(** Signature every consistency protocol implements.

    "Plugging in new protocols or consistency managers is only a matter of
    registering them with Khazana, provided they export the required
    functionality" — this is that required functionality. Register
    implementations with {!Registry.register}. *)

module type MACHINE = sig
  type t

  val name : string
  (** Protocol identifier stored in region attributes. *)

  val create : Types.config -> Types.init -> t
  (** Bring a per-page machine to life on one node. *)

  val handle : t -> Types.event -> Types.action list
  (** Feed one event, collect the machine's reactions. Deterministic. *)

  (** {1 Introspection (tests, diagnostics, daemon fast paths)} *)

  val state_name : t -> string
  (** Human-readable protocol state, for traces and test assertions. *)

  val has_valid_copy : t -> bool
  (** Would a local read observe protocol-valid data? *)

  val is_owner : t -> bool
  (** Does this node hold exclusive write ownership (CREW-family)? *)

  val locks_held : t -> int * bool
  (** (readers, writer) currently granted locally. *)

  val version : t -> Types.version
  (** Version of the local copy (0 when none). *)

  val backup_version : t -> Types.version
  (** Home-side: version of the manager's recovery backup (0 when the
      protocol keeps none). The newest write the home can vouch for —
      anything older arriving out of band (a retried flush, a late
      update) is obsolete and must not overwrite durable state. *)

  val holders : t -> Types.node_id list
  (** Home-side view of the nodes believed to hold a copy (including the
      owner and the home itself when it holds data). [[]] off-home —
      only the home tracks the copyset. *)

  val busy : t -> bool
  (** Home-side: is a transaction or replication phase in flight that will
      itself reshape the copyset? Repair backs off while this is true. *)

  (** {1 Multi-version interface (versioned CM; others stub it out)} *)

  val read_at : t -> Types.version option -> (bytes * Types.version) option
  (** [read_at t (Some v)] returns the exact immutable image of version [v]
      if this machine still retains it (home version chain, or a cache whose
      copy happens to sit at [v]); [read_at t None] returns the latest
      version this machine knows. [None] result = not retained here — the
      caller escalates to the home or reports the snapshot expired.
      Protocols without version history always return [None]. *)

  val publish :
    t ->
    src:Types.node_id ->
    parent:Types.version ->
    expected:Types.version option ->
    payload:Types.publish_payload ->
    Types.publish_result * Types.action list
  (** Home-side MVCC write: mint the next immutable version of this page
      from [payload] ([Runs] are applied to the retained image of
      [parent]; [Whole] replaces it). [expected] is the optional CAS row:
      when set and not equal to the current latest version the publish is
      refused with [Cas_mismatch]. [src] is the publishing node; it joins
      the copyset so the fan-out keeps it fresh. Non-versioned protocols
      (and versioned caches, which never mint) return
      [(Publish_unsupported, [])]. *)
end

type packed = Packed : (module MACHINE with type t = 'a) * 'a -> packed
(** A machine instance bundled with its implementation, so the daemon can
    hold machines of different protocols in one table. *)

(** One observed machine step: what came in, what state it moved between,
    what went out. Fed to the span hook of {!handle_packed} so the daemon
    can land CM state transitions in an operation trace without the
    machines themselves knowing about tracing (they stay pure). *)
type transition = {
  t_before : string;  (** state name before the event *)
  t_after : string;   (** state name after *)
  t_event : Types.event;
  t_actions : Types.action list;
}

val handle_packed :
  ?hook:(transition -> unit) -> packed -> Types.event -> Types.action list
(** {!MACHINE.handle} through the existential, with an optional transition
    hook for tracing. *)

val packed_state_name : packed -> string
val packed_has_valid_copy : packed -> bool
val packed_is_owner : packed -> bool
val packed_locks_held : packed -> int * bool
val packed_version : packed -> Types.version
val packed_backup_version : packed -> Types.version
val packed_holders : packed -> Types.node_id list
val packed_busy : packed -> bool

val packed_name : packed -> string
(** Protocol name of the packed machine's implementation. *)

val packed_read_at :
  packed -> Types.version option -> (bytes * Types.version) option
(** {!MACHINE.read_at} through the existential. *)

val packed_publish :
  packed ->
  src:Types.node_id ->
  parent:Types.version ->
  expected:Types.version option ->
  payload:Types.publish_payload ->
  Types.publish_result * Types.action list
(** {!MACHINE.publish} through the existential. *)
