(** Protocol registry.

    "Plugging in new protocols or consistency managers is only a matter of
    registering them with Khazana": region attributes carry a protocol name;
    the daemon instantiates machines through this table. The five built-in
    protocols (crew, release, eventual, wshared, versioned) are
    pre-registered. *)

type entry = (module Machine_intf.MACHINE)

let table : (string, entry) Hashtbl.t = Hashtbl.create 8

let register (module M : Machine_intf.MACHINE) =
  if Hashtbl.mem table M.name then
    invalid_arg (Printf.sprintf "Registry.register: %S already registered" M.name);
  Hashtbl.replace table M.name (module M : Machine_intf.MACHINE)

let find name : entry option = Hashtbl.find_opt table name

let names () = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) table [])

let instantiate name cfg init =
  match find name with
  | None -> None
  | Some (module M) ->
    Some (Machine_intf.Packed ((module M), M.create cfg init))

let () =
  register (module Crew : Machine_intf.MACHINE);
  register (module Release : Machine_intf.MACHINE);
  register (module Eventual : Machine_intf.MACHINE);
  register (module Write_shared : Machine_intf.MACHINE);
  register (module Versioned : Machine_intf.MACHINE)
