(** Protocol registry.

    "Plugging in new protocols or consistency managers is only a matter of
    registering them with Khazana": region attributes carry a protocol name;
    the daemon instantiates machines through this table. The five built-in
    protocols ([crew], [release], [eventual], [wshared], [versioned]) are
    pre-registered at load time. *)

type entry = (module Machine_intf.MACHINE)
(** A registered protocol implementation. *)

val register : entry -> unit
(** Make a protocol available to {!instantiate} under its [name].
    @raise Invalid_argument if the name is already taken. *)

val find : string -> entry option
(** Look a protocol up by name; [None] if unregistered (region attribute
    validation uses this to reject unknown protocol names early). *)

val names : unit -> string list
(** All registered protocol names, sorted. *)

val instantiate :
  string -> Types.config -> Types.init -> Machine_intf.packed option
(** Create a machine of the named protocol for one page on one node;
    [None] if the protocol is unregistered. *)
