(** Release consistency — eager write-update.

    Khazana uses this protocol for its own address-map tree nodes: replicas
    may serve slightly stale reads, while writes are serialised by a write
    token and propagated to every replica when the writer releases its lock
    (Gharachorloo et al. style, eager flavour as in Munin).

    Roles: the *home* holds the authoritative copy, grants the write token
    FIFO and fans updates out to the copyset. Replicas serve local reads
    from whatever version they hold; a node with no copy fetches one from
    home on first use. *)

open Types
module NSet = Set.Make (Int)

type home_phase =
  | H_idle
  | H_granted of { writer : node_id; timer : timer_id }
      (** token out; waiting for the writer's update (or its demise) *)
  | H_updating of { waiting : NSet.t; timer : timer_id }
      (** fan-out in progress; token logically free but serialised *)

type t = {
  cfg : config;
  (* cache role *)
  mutable data : bytes option;
  mutable ver : version;
  mutable has_token : bool;
  locks : Local_locks.t;
  waiters : (req_id * mode) Queue.t;
  mutable cache_req : mode option;
  (* home role *)
  mutable copyset : NSet.t;  (* replica sites, excluding home *)
  wqueue : node_id Queue.t;  (* writers waiting for the token *)
  mutable phase : home_phase;
  mutable next_timer : int;
}

let name = "release"

let create cfg init =
  let data, ver =
    match init with Start_unknown -> (None, 0) | Start_owner b -> (Some b, 1)
  in
  {
    cfg;
    data;
    ver;
    has_token = false;
    locks = Local_locks.create ();
    waiters = Queue.create ();
    cache_req = None;
    copyset = NSet.empty;
    wqueue = Queue.create ();
    phase = H_idle;
    next_timer = 0;
  }

let state_name t =
  match (t.data, t.has_token) with
  | None, _ -> "invalid"
  | Some _, true -> "replica+token"
  | Some _, false -> "replica"

let has_valid_copy t = t.data <> None
let is_owner t = t.has_token
let locks_held t = Local_locks.held t.locks
let version t = t.ver
let backup_version _ = 0
let is_home t = t.cfg.self = t.cfg.home

let holders t =
  if is_home t && t.data <> None then
    NSet.elements (NSet.add t.cfg.self t.copyset)
  else []

let busy t = is_home t && t.phase <> H_idle

let fresh_timer t =
  t.next_timer <- t.next_timer + 1;
  t.next_timer

(* A write token grant waits for the writer's release; give it room. *)
let token_timeout t = 20 * t.cfg.request_timeout

let state_allows t = function
  | Read -> t.data <> None
  | Write -> t.has_token && t.data <> None

let pump_local t acc =
  let acc = ref acc in
  let continue = ref true in
  while !continue && not (Queue.is_empty t.waiters) do
    let req, mode = Queue.peek t.waiters in
    if state_allows t mode && Local_locks.can t.locks mode then begin
      ignore (Queue.pop t.waiters);
      Local_locks.take t.locks mode;
      acc := Grant req :: !acc
    end
    else begin
      if (not (state_allows t mode)) && t.cache_req = None then begin
        t.cache_req <- Some mode;
        acc :=
          Send
            (t.cfg.home, match mode with Read -> Read_req | Write -> Write_req)
          :: !acc
      end;
      continue := false
    end
  done;
  !acc

(* ---- home role ---- *)

let replica_fanout_targets t = NSet.elements (NSet.remove t.cfg.self t.copyset)

(* Ensure min_replicas by counting home's authoritative copy plus the
   copyset; missing replicas are created by pushing the current data.
   [avoid] names suspected nodes: they neither count as live replicas nor
   qualify as push targets. *)
let replication_pushes ?(avoid = []) t acc =
  if t.cfg.min_replicas > 1 then begin
    let avoid_set = NSet.of_list avoid in
    let live =
      NSet.diff (NSet.remove t.cfg.self t.copyset) avoid_set
    in
    let have = 1 + NSet.cardinal live in
    let missing = t.cfg.min_replicas - have in
    if missing > 0 then begin
      match t.data with
      | None -> acc
      | Some data ->
        let fresh =
          List.filter
            (fun n ->
              n <> t.cfg.self
              && (not (NSet.mem n t.copyset))
              && not (NSet.mem n avoid_set))
            t.cfg.replica_targets
        in
        List.fold_left
          (fun (i, acc) n ->
            if i < missing then begin
              t.copyset <- NSet.add n t.copyset;
              (i + 1, Send (n, Update { data; version = t.ver }) :: acc)
            end
            else (i + 1, acc))
          (0, acc) fresh
        |> snd
    end
    else acc
  end
  else acc

let rec grant_next_writer t acc =
  match t.phase with
  | H_idle when not (Queue.is_empty t.wqueue) -> (
    let writer = Queue.pop t.wqueue in
    match t.data with
    | None ->
      (* Nothing allocated yet; cannot hand out a token without data. *)
      grant_next_writer t (Send (writer, Nack) :: acc)
    | Some data ->
      let timer = fresh_timer t in
      t.phase <- H_granted { writer; timer };
      Start_timer { id = timer; after = token_timeout t }
      :: Send (writer, Own_grant { data; version = t.ver; fence = 0 })
      :: acc)
  | H_idle | H_granted _ | H_updating _ -> acc

let begin_fanout t ~from acc =
  let targets = List.filter (fun n -> n <> from) (replica_fanout_targets t) in
  match t.data with
  | None -> grant_next_writer t acc
  | Some data ->
    if targets = [] then grant_next_writer t (replication_pushes t acc)
    else begin
      let timer = fresh_timer t in
      t.phase <- H_updating { waiting = NSet.of_list targets; timer };
      List.fold_left
        (fun acc n -> Send (n, Update { data; version = t.ver }) :: acc)
        (Start_timer { id = timer; after = t.cfg.request_timeout } :: acc)
        targets
    end

let handle_home_msg t src msg acc =
  match msg with
  | Read_req -> (
    match t.data with
    | Some data ->
      t.copyset <- NSet.add src t.copyset;
      Sharers_hint (NSet.elements (NSet.add t.cfg.self t.copyset))
      :: Send (src, Read_grant { data; version = t.ver; fence = 0 })
      :: acc
    | None -> Send (src, Nack) :: acc)
  | Write_req ->
    Queue.push src t.wqueue;
    t.copyset <- NSet.add src t.copyset;
    grant_next_writer t acc
  | Update { data; version } -> (
    match t.phase with
    | H_granted { writer; _ } when writer = src ->
      t.data <- Some data;
      t.ver <- version;
      t.phase <- H_idle;
      begin_fanout t ~from:src (Install { data; dirty = false } :: acc)
    | H_idle | H_granted _ | H_updating _ ->
      (* Late or duplicate update: adopt if newer, no fan-out storm. *)
      if version > t.ver then begin
        t.data <- Some data;
        t.ver <- version;
        Install { data; dirty = false } :: acc
      end
      else acc)
  | Update_ack -> (
    match t.phase with
    | H_updating { waiting; timer } ->
      let waiting = NSet.remove src waiting in
      if NSet.is_empty waiting then begin
        t.phase <- H_idle;
        grant_next_writer t (replication_pushes t acc)
      end
      else begin
        t.phase <- H_updating { waiting; timer };
        acc
      end
    | H_idle | H_granted _ -> acc)
  | Evict_notify ->
    t.copyset <- NSet.remove src t.copyset;
    (match t.phase with
     | H_updating { waiting; timer } when NSet.mem src waiting ->
       let waiting = NSet.remove src waiting in
       if NSet.is_empty waiting then begin
         t.phase <- H_idle;
         grant_next_writer t (replication_pushes t acc)
       end
       else begin
         t.phase <- H_updating { waiting; timer };
         acc
       end
     | H_idle | H_granted _ | H_updating _ -> acc)
  | Pull_req -> (
    match t.data with
    | Some data -> Send (src, Update { data; version = t.ver }) :: acc
    | None -> acc)
  | Read_grant _ | Own_grant _ | Upgrade_grant _ | Invalidate _ | Invalidate_ack
  | Fetch _ | Fetch_own _ | Done _ | Nack | Own_return _ | Diff _
  | Fence_bump _ ->
    acc

let on_timeout t id acc =
  match t.phase with
  | H_granted { writer = _; timer } when timer = id ->
    (* Writer died with the token; reclaim it. Its un-released writes are
       lost, as they would be in the paper's design. *)
    t.phase <- H_idle;
    grant_next_writer t acc
  | H_updating { waiting; timer } when timer = id ->
    (* Unresponsive replicas are presumed crashed: drop them. *)
    t.copyset <- NSet.diff t.copyset waiting;
    t.phase <- H_idle;
    grant_next_writer t (replication_pushes t acc)
  | H_idle | H_granted _ | H_updating _ -> acc

(* ---- cache role ---- *)

let handle_cache_msg t src msg acc =
  match msg with
  | Read_grant { data; version; _ } ->
    if t.cache_req = Some Read then t.cache_req <- None;
    if version >= t.ver || t.data = None then begin
      t.data <- Some data;
      t.ver <- version
    end;
    pump_local t (Install { data; dirty = false } :: acc)
  | Own_grant { data; version; _ } ->
    if t.cache_req = Some Write then t.cache_req <- None;
    t.has_token <- true;
    if version >= t.ver || t.data = None then begin
      t.data <- Some data;
      t.ver <- version
    end;
    pump_local t (Install { data; dirty = false } :: acc)
  | Update { data; version } ->
    let newer = version > t.ver || (version = t.ver && src > t.cfg.self) in
    let acc = Send (src, Update_ack) :: acc in
    if newer && not t.has_token then begin
      t.data <- Some data;
      t.ver <- version;
      pump_local t (Install { data; dirty = false } :: acc)
    end
    else acc
  | Nack -> (
    t.cache_req <- None;
    match Queue.take_opt t.waiters with
    | Some (req, _) ->
      pump_local t (Reject (req, Unavailable "home has no data") :: acc)
    | None -> acc)
  | Read_req | Write_req | Upgrade_grant _ | Invalidate _ | Invalidate_ack
  | Fetch _ | Fetch_own _ | Done _ | Evict_notify | Own_return _
  | Update_ack | Pull_req | Diff _ | Fence_bump _ ->
    acc

let handle t event =
  let acc =
    match event with
    | Acquire { req; mode } ->
      Queue.push (req, mode) t.waiters;
      pump_local t []
    | Release { mode; data } -> (
      Local_locks.drop t.locks mode;
      match mode with
      | Read -> pump_local t []
      | Write ->
        let acc =
          match data with
          | Some bytes ->
            t.ver <- t.ver + 1;
            t.data <- Some bytes;
            [ Install { data = bytes; dirty = false } ]
          | None -> []
        in
        (* The release returns the token along with the update. *)
        if t.has_token && not t.locks.Local_locks.writer then begin
          t.has_token <- false;
          let bytes = Option.value data ~default:(Option.value t.data ~default:Bytes.empty) in
          pump_local t (Send (t.cfg.home, Update { data = bytes; version = t.ver }) :: acc)
        end
        else pump_local t acc)
    | Peer { src; msg } ->
      (* Update/Update_ack belong to the home role at the home node; the
         cache role must not pre-absorb (or spuriously ack) them. *)
      if is_home t then
        (match msg with
         | Read_req | Write_req | Update _ | Update_ack | Evict_notify
         | Pull_req ->
           handle_home_msg t src msg []
         | Read_grant _ | Own_grant _ | Upgrade_grant _ | Invalidate _
         | Invalidate_ack | Fetch _ | Fetch_own _ | Done _ | Nack
         | Own_return _ | Diff _ | Fence_bump _ ->
           handle_cache_msg t src msg [])
      else handle_cache_msg t src msg []
    | Evicted { data = _; dirty = _ } ->
      if is_home t then
        (* The home's machine copy is authoritative and survives local
           page-store victimisation; only remote replicas disappear. *)
        []
      else begin
        t.data <- None;
        t.has_token <- false;
        [ Send (t.cfg.home, Evict_notify) ]
      end
    | Abort { req } ->
      let remaining = Queue.create () in
      let head = Queue.peek_opt t.waiters in
      Queue.iter
        (fun (r, m) -> if r <> req then Queue.push (r, m) remaining)
        t.waiters;
      Queue.clear t.waiters;
      Queue.transfer remaining t.waiters;
      (match head with
       | Some (r, _) when r = req -> t.cache_req <- None
       | Some _ | None -> ());
      pump_local t []
    | Timeout id -> if is_home t then on_timeout t id [] else []
    | Maintain { avoid } ->
      if is_home t && t.phase = H_idle then replication_pushes ~avoid t []
      else []
    | Unreachable { node } ->
      (* Suspected peer: stop waiting for its update ack, but keep it in
         the copyset — a partitioned replica still holds data and should
         receive future fan-outs once it heals. *)
      if is_home t then (
        match t.phase with
        | H_updating { waiting; timer } when NSet.mem node waiting ->
          let waiting = NSet.remove node waiting in
          if NSet.is_empty waiting then begin
            t.phase <- H_idle;
            grant_next_writer t (replication_pushes t [])
          end
          else begin
            t.phase <- H_updating { waiting; timer };
            []
          end
        | H_idle | H_granted _ | H_updating _ -> [])
      else []
    | Reincarnate { version; sharers } ->
      if is_home t then begin
        if version > t.ver then t.ver <- version;
        List.iter
          (fun n -> if n <> t.cfg.self then t.copyset <- NSet.add n t.copyset)
          sharers;
        []
      end
      else []
  in
  List.rev acc

(* Release consistency has no version history; writes propagate at release
   time through the lock protocol, not through MVCC publishes. *)
let read_at _ _ = None
let publish _ ~src:_ ~parent:_ ~expected:_ ~payload:_ =
  (Types.Publish_unsupported, [])
