(** Vocabulary shared by all consistency-manager (CM) machines.

    A machine is the per-page, per-node protocol endpoint. It is pure with
    respect to I/O: the daemon feeds it {!event}s and interprets the
    {!action}s it emits (sending messages, granting client lock requests,
    installing page data, arming timers). This mirrors the paper's
    Brun-Cottan-style factoring: generic consistency management in the
    machine, application conflict detection above, transport below. *)

type node_id = int
type req_id = int
type version = int
type timer_id = int

type mode = Read | Write

let mode_to_string = function Read -> "read" | Write -> "write"
let pp_mode ppf m = Format.pp_print_string ppf (mode_to_string m)

(** Wire messages exchanged between CM peers for one page. The same message
    alphabet serves all protocols; each protocol uses a subset. *)
type fence = int
(** A manager-side transaction sequence number. Grants and invalidations
    carry the fence of the transaction that produced them; caches track the
    highest fence that has invalidated or dispossessed them and refuse any
    grant below it. This is what keeps duplicated/reordered grants from
    resurrecting copies that a later transaction already revoked — without
    it, CREW is only safe on reliable FIFO channels. Protocols that do not
    revoke copies (release, eventual, write-shared) pass 0. *)

type msg =
  | Read_req                                   (* requester -> home *)
  | Write_req                                  (* requester -> home *)
  | Fetch of { dest : node_id; fence : fence } (* home -> copy holder *)
  | Fetch_own of { dest : node_id; fence : fence } (* home -> owner *)
  | Read_grant of { data : bytes; version : version; fence : fence }
      (* holder -> requester *)
  | Own_grant of { data : bytes; version : version; fence : fence }
      (* owner -> requester *)
  | Upgrade_grant of { fence : fence }         (* home -> owner-requester *)
  | Invalidate of { fence : fence }            (* home -> sharer *)
  | Invalidate_ack                             (* sharer -> home *)
  | Done of { mode : mode }                    (* requester -> home *)
  | Nack                                       (* home -> requester *)
  | Evict_notify                               (* sharer -> home *)
  | Own_return of { data : bytes; version : version } (* owner -> home *)
  | Update of { data : bytes; version : version }     (* writer/home -> replicas *)
  | Update_ack                                 (* replica -> home *)
  | Pull_req                                   (* replica -> home (anti-entropy) *)
  | Diff of { patches : (int * bytes) list; version : version }
      (* write-shared: byte ranges changed during one lock interval,
         merged at the home and fanned out (Brun-Cottan-style
         application-specific conflict granularity) *)
  | Fence_bump of { floor : fence }
      (* cache -> home: "your fences are below my floor". Sent instead of
         serving or acking when a message arrives fenced below the cache's
         floor. A manager that crashed and rebuilt restarts its fence
         counter at zero, so every survivor of the old epoch would silently
         refuse it forever; this reply teaches the reborn manager the old
         epoch so it can resume above it. *)

let msg_kind = function
  | Read_req -> "cm.read_req"
  | Write_req -> "cm.write_req"
  | Fetch _ -> "cm.fetch"
  | Fetch_own _ -> "cm.fetch_own"
  | Read_grant _ -> "cm.read_grant"
  | Own_grant _ -> "cm.own_grant"
  | Upgrade_grant _ -> "cm.upgrade_grant"
  | Invalidate _ -> "cm.invalidate"
  | Invalidate_ack -> "cm.invalidate_ack"
  | Done _ -> "cm.done"
  | Nack -> "cm.nack"
  | Evict_notify -> "cm.evict_notify"
  | Own_return _ -> "cm.own_return"
  | Update _ -> "cm.update"
  | Update_ack -> "cm.update_ack"
  | Pull_req -> "cm.pull_req"
  | Diff _ -> "cm.diff"
  | Fence_bump _ -> "cm.fence_bump"

let msg_size = function
  | Read_grant { data; _ } | Own_grant { data; _ }
  | Own_return { data; _ } | Update { data; _ } ->
    32 + Bytes.length data
  | Diff { patches; _ } ->
    List.fold_left (fun acc (_, b) -> acc + 12 + Bytes.length b) 32 patches
  | Read_req | Write_req | Fetch _ | Fetch_own _ | Upgrade_grant _
  | Invalidate _ | Invalidate_ack | Done _ | Nack | Evict_notify | Update_ack
  | Pull_req | Fence_bump _ ->
    32

(* Byte codecs for [msg], used when CM traffic crosses a real transport.
   Tags are wire format: renumbering breaks cross-version interop. *)

module Codec = Kutil.Codec

let encode_mode enc = function Read -> Codec.u8 enc 0 | Write -> Codec.u8 enc 1

let decode_mode dec =
  match Codec.read_u8 dec with
  | 0 -> Read
  | 1 -> Write
  | n -> raise (Codec.Decode_error (Printf.sprintf "Ctypes.mode: tag %d" n))

let encode_msg enc msg =
  match msg with
  | Read_req -> Codec.u8 enc 0
  | Write_req -> Codec.u8 enc 1
  | Fetch { dest; fence } ->
    Codec.u8 enc 2;
    Codec.u32 enc dest;
    Codec.int enc fence
  | Fetch_own { dest; fence } ->
    Codec.u8 enc 3;
    Codec.u32 enc dest;
    Codec.int enc fence
  | Read_grant { data; version; fence } ->
    Codec.u8 enc 4;
    Codec.bytes enc data;
    Codec.int enc version;
    Codec.int enc fence
  | Own_grant { data; version; fence } ->
    Codec.u8 enc 5;
    Codec.bytes enc data;
    Codec.int enc version;
    Codec.int enc fence
  | Upgrade_grant { fence } ->
    Codec.u8 enc 6;
    Codec.int enc fence
  | Invalidate { fence } ->
    Codec.u8 enc 7;
    Codec.int enc fence
  | Invalidate_ack -> Codec.u8 enc 8
  | Done { mode } ->
    Codec.u8 enc 9;
    encode_mode enc mode
  | Nack -> Codec.u8 enc 10
  | Evict_notify -> Codec.u8 enc 11
  | Own_return { data; version } ->
    Codec.u8 enc 12;
    Codec.bytes enc data;
    Codec.int enc version
  | Update { data; version } ->
    Codec.u8 enc 13;
    Codec.bytes enc data;
    Codec.int enc version
  | Update_ack -> Codec.u8 enc 14
  | Pull_req -> Codec.u8 enc 15
  | Diff { patches; version } ->
    Codec.u8 enc 16;
    Codec.list enc
      (fun (off, b) ->
        Codec.int enc off;
        Codec.bytes enc b)
      patches;
    Codec.int enc version
  | Fence_bump { floor } ->
    Codec.u8 enc 17;
    Codec.int enc floor

let decode_msg dec =
  match Codec.read_u8 dec with
  | 0 -> Read_req
  | 1 -> Write_req
  | 2 ->
    let dest = Codec.read_u32 dec in
    Fetch { dest; fence = Codec.read_int dec }
  | 3 ->
    let dest = Codec.read_u32 dec in
    Fetch_own { dest; fence = Codec.read_int dec }
  | 4 ->
    let data = Codec.read_bytes dec in
    let version = Codec.read_int dec in
    Read_grant { data; version; fence = Codec.read_int dec }
  | 5 ->
    let data = Codec.read_bytes dec in
    let version = Codec.read_int dec in
    Own_grant { data; version; fence = Codec.read_int dec }
  | 6 -> Upgrade_grant { fence = Codec.read_int dec }
  | 7 -> Invalidate { fence = Codec.read_int dec }
  | 8 -> Invalidate_ack
  | 9 -> Done { mode = decode_mode dec }
  | 10 -> Nack
  | 11 -> Evict_notify
  | 12 ->
    let data = Codec.read_bytes dec in
    Own_return { data; version = Codec.read_int dec }
  | 13 ->
    let data = Codec.read_bytes dec in
    Update { data; version = Codec.read_int dec }
  | 14 -> Update_ack
  | 15 -> Pull_req
  | 16 ->
    let patches =
      Codec.read_list dec (fun () ->
          let off = Codec.read_int dec in
          (off, Codec.read_bytes dec))
    in
    Diff { patches; version = Codec.read_int dec }
  | 17 -> Fence_bump { floor = Codec.read_int dec }
  | n -> raise (Codec.Decode_error (Printf.sprintf "Ctypes.msg: tag %d" n))

(** Payload of an MVCC publish: either a whole page image or a sparse set
    of [(offset, bytes)] runs to apply on top of a parent version. Runs are
    what {!Kstorage.Page_store} dirty-range tracking produces; the daemon
    falls back to [Whole] when the dirty density makes runs a net loss. *)
type publish_payload =
  | Whole of bytes
  | Runs of (int * bytes) list

(** Outcome of publishing a page version at its home (versioned CM only). *)
type publish_result =
  | Published of version
      (** A new immutable version was minted; readers pinned below it are
          unaffected, the fan-out to replicas is queued. *)
  | Cas_mismatch of { latest : version }
      (** The caller passed [expected_version] and lost the race;
          [latest] is the version that beat it. *)
  | Parent_gone of { latest : version }
      (** [Runs] arrived against a parent version the bounded chain has
          already garbage-collected; resend as [Whole]. *)
  | Publish_unsupported
      (** This machine is not a versioned home (wrong protocol, or the
          request landed off-home). *)

let publish_payload_size = function
  | Whole b -> 32 + Bytes.length b
  | Runs runs ->
    List.fold_left (fun acc (_, b) -> acc + 12 + Bytes.length b) 32 runs

let encode_publish_payload enc = function
  | Whole b ->
    Codec.u8 enc 0;
    Codec.bytes enc b
  | Runs runs ->
    Codec.u8 enc 1;
    Codec.list enc
      (fun (off, b) ->
        Codec.int enc off;
        Codec.bytes enc b)
      runs

let decode_publish_payload dec =
  match Codec.read_u8 dec with
  | 0 -> Whole (Codec.read_bytes dec)
  | 1 ->
    Runs
      (Codec.read_list dec (fun () ->
           let off = Codec.read_int dec in
           (off, Codec.read_bytes dec)))
  | n ->
    raise (Codec.Decode_error (Printf.sprintf "Ctypes.publish_payload: tag %d" n))

let encode_publish_result enc = function
  | Published v ->
    Codec.u8 enc 0;
    Codec.int enc v
  | Cas_mismatch { latest } ->
    Codec.u8 enc 1;
    Codec.int enc latest
  | Parent_gone { latest } ->
    Codec.u8 enc 2;
    Codec.int enc latest
  | Publish_unsupported -> Codec.u8 enc 3

let decode_publish_result dec =
  match Codec.read_u8 dec with
  | 0 -> Published (Codec.read_int dec)
  | 1 -> Cas_mismatch { latest = Codec.read_int dec }
  | 2 -> Parent_gone { latest = Codec.read_int dec }
  | 3 -> Publish_unsupported
  | n ->
    raise (Codec.Decode_error (Printf.sprintf "Ctypes.publish_result: tag %d" n))

type event =
  | Acquire of { req : req_id; mode : mode }
      (** A client lock intent arrived at this node. *)
  | Release of { mode : mode; data : bytes option }
      (** The client dropped its lock; [data] carries the page content when
          the release may need to propagate writes. *)
  | Peer of { src : node_id; msg : msg }
      (** A CM message from node [src]. Machines cache the bytes of pages
          they hold, so no local-store snapshot travels with the event. *)
  | Evicted of { data : bytes; dirty : bool }
      (** Local storage victimised our copy. *)
  | Abort of { req : req_id }
      (** The daemon gave up on a queued lock intent (client timeout); the
          machine must forget it and allow later intents to re-request. *)
  | Timeout of timer_id
  | Maintain of { avoid : node_id list }
      (** Repair tick from the home daemon's anti-entropy fiber: top the
          replica set back up to [min_replicas] if it fell below, treating
          the [avoid] nodes (currently suspected dead/partitioned) as
          neither holders nor candidates. No-op off-home and while a
          transaction is already reshaping the copyset. *)
  | Unreachable of { node : node_id }
      (** The daemon just tried to send this machine's traffic to [node]
          while the failure detector suspects it — the moral equivalent of a
          connection refused. Machines use it to stop waiting on [node]
          (fail over in-flight work, count its invalidation round as
          un-ackable) {e without} evicting it from the books: unlike
          {!Evict_notify} it is not evidence the copy is gone — a
          partitioned holder still has valid, stale data that a later
          write must revoke. *)
  | Reincarnate of { version : version; sharers : node_id list }
      (** The home daemon rebuilt this machine after a crash and is feeding
          it what the persistent page directory remembers: the version of
          the data it recovered and the nodes that held copies in the
          previous incarnation. Protocols that track a copyset adopt the
          sharers (over-approximation is safe — invalidation handles
          non-holders) so stale survivor copies get revoked by the next
          write instead of lingering forever. No-op off-home. *)

let event_kind = function
  | Acquire { mode; _ } -> "acquire." ^ mode_to_string mode
  | Release { mode; _ } -> "release." ^ mode_to_string mode
  | Peer { msg; _ } -> msg_kind msg
  | Evicted _ -> "evicted"
  | Abort _ -> "abort"
  | Timeout _ -> "timer"
  | Maintain _ -> "maintain"
  | Unreachable _ -> "unreachable"
  | Reincarnate _ -> "reincarnate"

type reject_reason = Unavailable of string

type action =
  | Send of node_id * msg
  | Grant of req_id
      (** The client's lock intent is granted; data (if it travelled) was
          installed by a preceding [Install]. *)
  | Reject of req_id * reject_reason
  | Install of { data : bytes; dirty : bool }
      (** Store this page content locally. *)
  | Discard  (** Drop the local copy (invalidation). *)
  | Start_timer of { id : timer_id; after : Ksim.Time.t }
  | Sharers_hint of node_id list
      (** Home's current view of nodes holding copies; the daemon mirrors it
          into its page directory. *)

let pp_action ppf = function
  | Send (n, m) -> Format.fprintf ppf "send(%d,%s)" n (msg_kind m)
  | Grant r -> Format.fprintf ppf "grant(%d)" r
  | Reject (r, Unavailable why) -> Format.fprintf ppf "reject(%d,%s)" r why
  | Install _ -> Format.fprintf ppf "install"
  | Discard -> Format.fprintf ppf "discard"
  | Start_timer { id; after } ->
    Format.fprintf ppf "timer(%d,%a)" id Ksim.Time.pp after
  | Sharers_hint ns ->
    Format.fprintf ppf "sharers[%s]"
      (String.concat "," (List.map string_of_int ns))

(** How a machine comes to life on a node. *)
type init =
  | Start_unknown          (** ordinary node: no copy, no role *)
  | Start_owner of bytes   (** the home at allocation time: sole owner *)

(** Static per-page configuration derived from region attributes. *)
type config = {
  self : node_id;
  home : node_id;
  min_replicas : int;
  replica_targets : node_id list;
      (** preferred nodes for extra primary replicas, excluding home *)
  request_timeout : Ksim.Time.t;
      (** home-side per-hop timeout before it retries/fails over *)
  propagate_every : Ksim.Time.t;
      (** eventual consistency: anti-entropy period *)
  version_chain_depth : int;
      (** versioned CM: how many immutable page versions the home retains
          per page. Older versions fall past the GC watermark: snapshot
          reads pinned below it fail with "snapshot version expired" and
          diffs against them force a whole-image resend. *)
}

let default_config ~self ~home =
  {
    self;
    home;
    min_replicas = 1;
    replica_targets = [];
    request_timeout = Ksim.Time.ms 200;
    propagate_every = Ksim.Time.ms 100;
    version_chain_depth = 8;
  }
