(** Vocabulary shared by all consistency-manager (CM) machines.

    A machine is the per-page, per-node protocol endpoint. It is pure with
    respect to I/O: the daemon feeds it {!event}s and interprets the
    {!action}s it emits (sending messages, granting client lock requests,
    installing page data, arming timers). This mirrors the paper's
    Brun-Cottan-style factoring: generic consistency management in the
    machine, application conflict detection above, transport below. *)

type node_id = int
(** Daemon identity; dense small ints in both backends. *)

type req_id = int
(** Correlates a client lock intent with its eventual grant/reject. *)

type version = int
(** Page version. Most protocols treat it as a freshness counter; the
    versioned CM mints them as immutable-snapshot identities. *)

type timer_id = int
(** Correlates a {!Start_timer} action with the later {!Timeout} event. *)

type mode = Read | Write
(** Lock mode of a client intent. *)

val mode_to_string : mode -> string
val pp_mode : Format.formatter -> mode -> unit

type fence = int
(** A manager-side transaction sequence number. Grants and invalidations
    carry the fence of the transaction that produced them; caches track the
    highest fence that has invalidated or dispossessed them and refuse any
    grant below it. This is what keeps duplicated/reordered grants from
    resurrecting copies that a later transaction already revoked — without
    it, CREW is only safe on reliable FIFO channels. Protocols that do not
    revoke copies (release, eventual, write-shared, versioned) pass 0. *)

(** Wire messages exchanged between CM peers for one page. The same message
    alphabet serves all protocols; each protocol uses a subset. *)
type msg =
  | Read_req                                   (** requester -> home *)
  | Write_req                                  (** requester -> home *)
  | Fetch of { dest : node_id; fence : fence }
      (** home -> copy holder: serve a read copy to [dest] *)
  | Fetch_own of { dest : node_id; fence : fence }
      (** home -> owner: hand ownership to [dest] *)
  | Read_grant of { data : bytes; version : version; fence : fence }
      (** holder -> requester *)
  | Own_grant of { data : bytes; version : version; fence : fence }
      (** owner -> requester *)
  | Upgrade_grant of { fence : fence }
      (** home -> owner-requester: upgrade in place, no data travels *)
  | Invalidate of { fence : fence }            (** home -> sharer *)
  | Invalidate_ack                             (** sharer -> home *)
  | Done of { mode : mode }                    (** requester -> home *)
  | Nack                                       (** home -> requester *)
  | Evict_notify                               (** sharer -> home *)
  | Own_return of { data : bytes; version : version }
      (** owner -> home: ownership comes back with the bytes *)
  | Update of { data : bytes; version : version }
      (** writer/home -> replicas: whole-image propagation *)
  | Update_ack                                 (** replica -> home *)
  | Pull_req                                   (** replica -> home (anti-entropy) *)
  | Diff of { patches : (int * bytes) list; version : version }
      (** write-shared: byte ranges changed during one lock interval,
          merged at the home and fanned out (Brun-Cottan-style
          application-specific conflict granularity) *)
  | Fence_bump of { floor : fence }
      (** cache -> home: "your fences are below my floor". Sent instead of
          serving or acking when a message arrives fenced below the cache's
          floor. A manager that crashed and rebuilt restarts its fence
          counter at zero, so every survivor of the old epoch would silently
          refuse it forever; this reply teaches the reborn manager the old
          epoch so it can resume above it. *)

val msg_kind : msg -> string
(** Stable dotted label for traces and metrics, e.g. ["cm.read_grant"]. *)

val msg_size : msg -> int
(** Modelled wire size in bytes: a 32-byte envelope plus payload bytes.
    The simulator charges link latency with it; benches report it. *)

val encode_mode : Kutil.Codec.encoder -> mode -> unit
val decode_mode : Kutil.Codec.decoder -> mode

val encode_msg : Kutil.Codec.encoder -> msg -> unit
(** Byte codec for {!msg}, used when CM traffic crosses a real transport.
    Tags are wire format: renumbering breaks cross-version interop. *)

val decode_msg : Kutil.Codec.decoder -> msg
(** Inverse of {!encode_msg}.
    @raise Kutil.Codec.Decode_error on an unknown tag. *)

(** Payload of an MVCC publish: either a whole page image or a sparse set
    of [(offset, bytes)] runs to apply on top of a parent version. Runs are
    what {!Kstorage.Page_store} dirty-range tracking produces; the daemon
    falls back to [Whole] when the dirty density makes runs a net loss. *)
type publish_payload =
  | Whole of bytes
  | Runs of (int * bytes) list

(** Outcome of publishing a page version at its home (versioned CM only). *)
type publish_result =
  | Published of version
      (** A new immutable version was minted; readers pinned below it are
          unaffected, the fan-out to replicas is queued. *)
  | Cas_mismatch of { latest : version }
      (** The caller passed [expected_version] and lost the race;
          [latest] is the version that beat it. *)
  | Parent_gone of { latest : version }
      (** [Runs] arrived against a parent version the bounded chain has
          already garbage-collected; resend as [Whole]. *)
  | Publish_unsupported
      (** This machine is not a versioned home (wrong protocol, or the
          request landed off-home). *)

val publish_payload_size : publish_payload -> int
(** Modelled wire size of a publish payload, same envelope accounting as
    {!msg_size}: how many bytes a [Page_diff] RPC puts on the wire. *)

val encode_publish_payload : Kutil.Codec.encoder -> publish_payload -> unit
val decode_publish_payload : Kutil.Codec.decoder -> publish_payload
val encode_publish_result : Kutil.Codec.encoder -> publish_result -> unit
val decode_publish_result : Kutil.Codec.decoder -> publish_result

(** What the daemon feeds a machine. *)
type event =
  | Acquire of { req : req_id; mode : mode }
      (** A client lock intent arrived at this node. *)
  | Release of { mode : mode; data : bytes option }
      (** The client dropped its lock; [data] carries the page content when
          the release may need to propagate writes. *)
  | Peer of { src : node_id; msg : msg }
      (** A CM message from node [src]. Machines cache the bytes of pages
          they hold, so no local-store snapshot travels with the event. *)
  | Evicted of { data : bytes; dirty : bool }
      (** Local storage victimised our copy. *)
  | Abort of { req : req_id }
      (** The daemon gave up on a queued lock intent (client timeout); the
          machine must forget it and allow later intents to re-request. *)
  | Timeout of timer_id
      (** A timer armed by a previous {!Start_timer} fired. *)
  | Maintain of { avoid : node_id list }
      (** Repair tick from the home daemon's anti-entropy fiber: top the
          replica set back up to [min_replicas] if it fell below, treating
          the [avoid] nodes (currently suspected dead/partitioned) as
          neither holders nor candidates. No-op off-home and while a
          transaction is already reshaping the copyset. *)
  | Unreachable of { node : node_id }
      (** The daemon just tried to send this machine's traffic to [node]
          while the failure detector suspects it — the moral equivalent of a
          connection refused. Machines use it to stop waiting on [node]
          (fail over in-flight work, count its invalidation round as
          un-ackable) {e without} evicting it from the books: unlike
          {!msg.Evict_notify} it is not evidence the copy is gone — a
          partitioned holder still has valid, stale data that a later
          write must revoke. *)
  | Reincarnate of { version : version; sharers : node_id list }
      (** The home daemon rebuilt this machine after a crash and is feeding
          it what the persistent page directory remembers: the version of
          the data it recovered and the nodes that held copies in the
          previous incarnation. Protocols that track a copyset adopt the
          sharers (over-approximation is safe — invalidation handles
          non-holders) so stale survivor copies get revoked by the next
          write instead of lingering forever. No-op off-home. *)

val event_kind : event -> string
(** Stable dotted label for traces, e.g. ["acquire.write"]. *)

type reject_reason = Unavailable of string
(** Why a lock intent was refused rather than queued. *)

(** What a machine asks the daemon to do in response to an event. *)
type action =
  | Send of node_id * msg
      (** Put a CM message on the wire (coalescer-eligible). *)
  | Grant of req_id
      (** The client's lock intent is granted; data (if it travelled) was
          installed by a preceding [Install]. *)
  | Reject of req_id * reject_reason
      (** The client's lock intent fails now rather than waiting. *)
  | Install of { data : bytes; dirty : bool }
      (** Store this page content locally. *)
  | Discard  (** Drop the local copy (invalidation). *)
  | Start_timer of { id : timer_id; after : Ksim.Time.t }
      (** Ask for a {!Timeout} event [after] from now. *)
  | Sharers_hint of node_id list
      (** Home's current view of nodes holding copies; the daemon mirrors it
          into its page directory. *)

val pp_action : Format.formatter -> action -> unit

(** How a machine comes to life on a node. *)
type init =
  | Start_unknown          (** ordinary node: no copy, no role *)
  | Start_owner of bytes   (** the home at allocation time: sole owner *)

(** Static per-page configuration derived from region attributes. *)
type config = {
  self : node_id;
  home : node_id;
  min_replicas : int;
  replica_targets : node_id list;
      (** preferred nodes for extra primary replicas, excluding home *)
  request_timeout : Ksim.Time.t;
      (** home-side per-hop timeout before it retries/fails over *)
  propagate_every : Ksim.Time.t;
      (** eventual consistency: anti-entropy period *)
  version_chain_depth : int;
      (** versioned CM: how many immutable page versions the home retains
          per page. Older versions fall past the GC watermark: snapshot
          reads pinned below it fail with "snapshot version expired" and
          diffs against them force a whole-image resend. *)
}

val default_config : self:node_id -> home:node_id -> config
(** One replica, 200 ms request timeout, 100 ms propagation period, an
    8-deep version chain. Regions override through their attributes. *)
