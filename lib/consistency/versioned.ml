(** MVCC — immutable versioned pages, concurrent writers, snapshot reads.

    BlobSeer-style versioning dropped into the Brun-Cottan CM seam: the
    home mints a monotonically increasing version id per page and retains a
    bounded chain of immutable images behind the latest one. Writers never
    take ownership and never invalidate anybody — they publish a new
    version at the home (last-writer-wins by home arrival order, optional
    CAS on [expected]) and replicas converge through a timer-batched
    Update fan-out, exactly like the eventual CM's anti-entropy. Readers
    are served from whatever version their snapshot pinned; a reader
    pinned at [v] is untouched by the publish of [v+1].

    Division of labour with the daemon: the machine is the authority on
    versions (minting, chain retention, fan-out); the daemon owns diff
    extraction (dirty-range tracking in the page store), the [Page_diff]
    RPC that carries a publish to a remote home, and snapshot pinning.
    The machine also has a self-contained fallback publish path — a
    [Release] carrying page bytes turns into a whole-image publish — so
    the protocol is complete under the pure-machine test harness with no
    daemon above it. *)

open Types
module NSet = Set.Make (Int)

(** One retained immutable version at the home. Newest first in the chain;
    the oldest retained entry is the GC watermark. *)
type entry = { e_ver : version; e_data : bytes }

type t = {
  cfg : config;
  (* cache role *)
  mutable data : bytes option;  (** local copy of the newest version seen *)
  mutable ver : version;
  locks : Local_locks.t;
  waiters : (req_id * mode) Queue.t;
  mutable cache_req : bool;     (** Read_req to home in flight *)
  (* home role *)
  mutable chain : entry list;   (** newest first; head = latest settled *)
  mutable copyset : NSet.t;
  mutable fanout_armed : bool;
  mutable fanout_pending : bool;
  mutable next_timer : int;
}

let name = "versioned"

let create cfg init =
  let data, ver, chain =
    match init with
    | Start_unknown -> (None, 0, [])
    | Start_owner b -> (Some b, 1, [ { e_ver = 1; e_data = b } ])
  in
  {
    cfg;
    data;
    ver;
    locks = Local_locks.create ();
    waiters = Queue.create ();
    cache_req = false;
    chain;
    copyset = NSet.empty;
    fanout_armed = false;
    fanout_pending = false;
    next_timer = 0;
  }

let is_home t = t.cfg.self = t.cfg.home

let state_name t =
  if is_home t then "home" else if t.data = None then "invalid" else "replica"

let has_valid_copy t = t.data <> None
let is_owner t = ignore t; false
let locks_held t = Local_locks.held t.locks
let version t = t.ver
let backup_version t = if is_home t then t.ver else 0

let holders t =
  if is_home t && t.data <> None then
    NSet.elements (NSet.add t.cfg.self t.copyset)
  else []

let busy _ = false

(* Extra introspection for directed tests; not part of MACHINE. *)

let chain_depth t = List.length t.chain
(** Number of immutable versions currently retained at the home. *)

let watermark t =
  match List.rev t.chain with [] -> 0 | oldest :: _ -> oldest.e_ver
(** Oldest retained version; snapshot pins below this have expired. *)

let fresh_timer t =
  t.next_timer <- t.next_timer + 1;
  t.next_timer

let pump_local t acc =
  let acc = ref acc in
  let continue = ref true in
  while !continue && not (Queue.is_empty t.waiters) do
    let req, mode = Queue.peek t.waiters in
    if t.data <> None && Local_locks.can t.locks mode then begin
      ignore (Queue.pop t.waiters);
      Local_locks.take t.locks mode;
      acc := Grant req :: !acc
    end
    else begin
      if t.data = None && not t.cache_req then begin
        t.cache_req <- true;
        acc := Send (t.cfg.home, Read_req) :: !acc
      end;
      continue := false
    end
  done;
  !acc

let arm_fanout t acc =
  t.fanout_pending <- true;
  if t.fanout_armed then acc
  else begin
    t.fanout_armed <- true;
    let id = fresh_timer t in
    Start_timer { id; after = t.cfg.propagate_every } :: acc
  end

let replication_targets ?(avoid = []) t =
  if t.cfg.min_replicas <= 1 then []
  else begin
    let avoid_set = NSet.of_list avoid in
    let live = NSet.diff (NSet.remove t.cfg.self t.copyset) avoid_set in
    let have = 1 + NSet.cardinal live in
    let missing = t.cfg.min_replicas - have in
    if missing <= 0 then []
    else
      List.filteri
        (fun i _ -> i < missing)
        (List.filter
           (fun n ->
             n <> t.cfg.self
             && (not (NSet.mem n t.copyset))
             && not (NSet.mem n avoid_set))
           t.cfg.replica_targets)
  end

let truncate_chain t =
  let depth = max 1 t.cfg.version_chain_depth in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | e :: rest -> e :: take (n - 1) rest
  in
  t.chain <- take depth t.chain

(* Mint the next immutable version at the home. Reversed-acc convention:
   callers pass and receive an acc that [List.rev] later restores. *)
let mint t ~src img acc =
  let v = t.ver + 1 in
  t.chain <- { e_ver = v; e_data = img } :: t.chain;
  truncate_chain t;
  t.data <- Some img;
  t.ver <- v;
  if src <> t.cfg.self then t.copyset <- NSet.add src t.copyset;
  arm_fanout t (Install { data = img; dirty = true } :: acc)

let retained t v =
  List.find_opt (fun e -> e.e_ver = v) t.chain
  |> Option.map (fun e -> e.e_data)

let read_at t at =
  match at with
  | None -> (
    match t.data with Some d -> Some (d, t.ver) | None -> None)
  | Some v ->
    if is_home t then retained t v |> Option.map (fun d -> (d, v))
    else (
      match t.data with
      | Some d when t.ver = v -> Some (d, v)
      | Some _ | None -> None)

let apply_runs ~base runs =
  let img = Bytes.copy base in
  let len = Bytes.length img in
  List.iter
    (fun (off, b) ->
      let blen = Bytes.length b in
      if off >= 0 && blen >= 0 && off + blen <= len then
        Bytes.blit b 0 img off blen)
    runs;
  img

let publish t ~src ~parent ~expected ~payload =
  if not (is_home t) then (Publish_unsupported, [])
  else
    match t.data with
    | None -> (Publish_unsupported, [])
    | Some _ -> (
      match expected with
      | Some e when e <> t.ver -> (Cas_mismatch { latest = t.ver }, [])
      | Some _ | None -> (
        match payload with
        | Whole img ->
          let acc = mint t ~src (Bytes.copy img) [] in
          (Published t.ver, List.rev acc)
        | Runs runs -> (
          match retained t parent with
          | None -> (Parent_gone { latest = t.ver }, [])
          | Some base ->
            let img = apply_runs ~base runs in
            let acc = mint t ~src img [] in
            (Published t.ver, List.rev acc))))

let handle_home_msg t src msg acc =
  match msg with
  | Read_req -> (
    match t.data with
    | Some data ->
      t.copyset <- NSet.add src t.copyset;
      Sharers_hint (NSet.elements (NSet.add t.cfg.self t.copyset))
      :: Send (src, Read_grant { data; version = t.ver; fence = 0 })
      :: acc
    | None -> Send (src, Nack) :: acc)
  | Update { data; version = _ } ->
    (* A cache released a write it could not diff (machine-only path):
       publish it whole. The home mints — arrival order is the
       last-writer-wins order; the version the cache stamped is only its
       own parent and does not gate acceptance. *)
    mint t ~src (Bytes.copy data) acc
  | Pull_req -> (
    match t.data with
    | Some data -> Send (src, Update { data; version = t.ver }) :: acc
    | None -> acc)
  | Evict_notify ->
    t.copyset <- NSet.remove src t.copyset;
    acc
  | Read_grant _ | Own_grant _ | Upgrade_grant _ | Invalidate _ | Invalidate_ack
  | Fetch _ | Fetch_own _ | Done _ | Nack | Own_return _ | Update_ack
  | Write_req | Diff _ | Fence_bump _ ->
    acc

let handle_cache_msg t src msg acc =
  ignore src;
  match msg with
  | Read_grant { data; version; _ } ->
    t.cache_req <- false;
    if version > t.ver || t.data = None then begin
      t.data <- Some data;
      t.ver <- version;
      pump_local t (Install { data; dirty = false } :: acc)
    end
    else pump_local t acc
  | Update { data; version } ->
    (* Never absorb a fan-out while a local writer holds the page: the
       writer's in-progress bytes (and the dirty runs the daemon will
       extract from them) must not be clobbered mid-flight. The skipped
       update is recovered by the next fan-out round or Pull_req. *)
    let _, writer = Local_locks.held t.locks in
    if version > t.ver && not writer then begin
      t.data <- Some data;
      t.ver <- version;
      pump_local t (Install { data; dirty = false } :: acc)
    end
    else acc
  | Nack -> (
    t.cache_req <- false;
    match Queue.take_opt t.waiters with
    | Some (req, _) ->
      pump_local t (Reject (req, Unavailable "home has no data") :: acc)
    | None -> acc)
  | Read_req | Write_req | Own_grant _ | Upgrade_grant _ | Invalidate _
  | Invalidate_ack | Fetch _ | Fetch_own _ | Done _ | Evict_notify
  | Own_return _ | Update_ack | Pull_req | Diff _ | Fence_bump _ ->
    acc

let handle t event =
  let acc =
    match event with
    | Acquire { req; mode } ->
      Queue.push (req, mode) t.waiters;
      pump_local t []
    | Release { mode; data } -> (
      Local_locks.drop t.locks mode;
      match (mode, data) with
      | Write, Some bytes ->
        (* Machine-only publish path: whole image to the home. The daemon
           path releases with [data = None] and publishes runs itself. *)
        t.data <- Some bytes;
        let acc =
          if is_home t then mint t ~src:t.cfg.self (Bytes.copy bytes) []
          else
            [ Send (t.cfg.home, Update { data = bytes; version = t.ver }) ]
        in
        pump_local t acc
      | (Read | Write), _ -> pump_local t [])
    | Peer { src; msg } ->
      if is_home t then
        (match msg with
         | Update _ | Read_req | Pull_req | Evict_notify ->
           handle_home_msg t src msg []
         | Read_grant _ | Own_grant _ | Upgrade_grant _ | Invalidate _
         | Invalidate_ack | Fetch _ | Fetch_own _ | Done _ | Nack
         | Own_return _ | Update_ack | Write_req | Diff _ | Fence_bump _ ->
           handle_cache_msg t src msg [])
      else handle_cache_msg t src msg []
    | Evicted _ ->
      if is_home t then []
      else begin
        t.data <- None;
        [ Send (t.cfg.home, Evict_notify) ]
      end
    | Abort { req } ->
      let remaining = Queue.create () in
      let head = Queue.peek_opt t.waiters in
      Queue.iter
        (fun (r, m) -> if r <> req then Queue.push (r, m) remaining)
        t.waiters;
      Queue.clear t.waiters;
      Queue.transfer remaining t.waiters;
      (match head with
       | Some (r, _) when r = req -> t.cache_req <- false
       | Some _ | None -> ());
      pump_local t []
    | Timeout _ ->
      if is_home t && t.fanout_armed then begin
        t.fanout_armed <- false;
        if t.fanout_pending then begin
          t.fanout_pending <- false;
          match t.data with
          | None -> []
          | Some data ->
            let extra = replication_targets t in
            List.iter (fun n -> t.copyset <- NSet.add n t.copyset) extra;
            let targets = NSet.elements (NSet.remove t.cfg.self t.copyset) in
            List.rev_map
              (fun n -> Send (n, Update { data; version = t.ver }))
              targets
        end
        else []
      end
      else []
    | Maintain { avoid } -> (
      if not (is_home t) then []
      else
        match t.data with
        | None -> []
        | Some data ->
          let extra = replication_targets ~avoid t in
          List.iter (fun n -> t.copyset <- NSet.add n t.copyset) extra;
          List.rev_map
            (fun n -> Send (n, Update { data; version = t.ver }))
            extra)
    | Unreachable _ ->
      (* Fan-outs to a suspect just drop; nothing here waits on acks, and
         a partitioned replica keeps its copyset slot. *)
      []
    | Reincarnate { version; sharers } ->
      if is_home t then begin
        (* History did not survive the crash: restart the chain at the
           best version the survivors vouch for. Snapshot pins into the
           lost chain now read as expired, which is the safe failure. *)
        if version > t.ver then begin
          t.ver <- version;
          match t.data with
          | Some d -> t.chain <- [ { e_ver = version; e_data = d } ]
          | None -> ()
        end;
        List.iter
          (fun n -> if n <> t.cfg.self then t.copyset <- NSet.add n t.copyset)
          sharers;
        []
      end
      else []
  in
  List.rev acc
