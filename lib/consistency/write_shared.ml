(** Write-shared — multiple concurrent writers with diff merging.

    The paper's answer to false sharing on fine-grained objects (§4.2):
    "Khazana's CM interface adopts the approach of Brun-Cottan and
    Makpangou to enable better application-specific conflict detection".
    Here the conflict granularity is the byte range: when a write lock is
    granted the machine snapshots a *twin* of the page; on release it diffs
    the twin against the new contents and ships only the changed ranges to
    the home, which merges them into its authoritative copy (last-arrival
    wins within an overlapping byte) and fans the patch out to the other
    replicas. Writers on disjoint parts of a page — e.g. different pooled
    objects — never invalidate each other, so there is no ownership
    ping-pong.

    Like eventual consistency, locks grant locally against whatever replica
    is present (fetch on first touch); unlike eventual, writes propagate
    eagerly as diffs, and a periodic full-page sync from the home heals any
    lost patches. Lock modes keep their node-local meaning (one local
    writer at a time), but write locks are not globally exclusive — that is
    the point. *)

open Types
module NSet = Set.Make (Int)

let next_version ~current ~origin =
  (((current lsr 8) + 1) lsl 8) lor (origin land 0xFF)

type t = {
  cfg : config;
  (* cache role *)
  mutable data : bytes option;
  mutable twin : bytes option;  (* snapshot at write-lock grant *)
  mutable ver : version;
  locks : Local_locks.t;
  waiters : (req_id * mode) Queue.t;
  mutable cache_req : mode option;
  (* home role *)
  mutable copyset : NSet.t;
  mutable sync_armed : bool;
  mutable sync_pending : bool;
  mutable next_timer : int;
}

let name = "wshared"

let create cfg init =
  let data, ver =
    match init with Start_unknown -> (None, 0) | Start_owner b -> (Some b, 1)
  in
  {
    cfg;
    data;
    twin = None;
    ver;
    locks = Local_locks.create ();
    waiters = Queue.create ();
    cache_req = None;
    copyset = NSet.empty;
    sync_armed = false;
    sync_pending = false;
    next_timer = 0;
  }

let state_name t = if t.data = None then "invalid" else "replica"
let has_valid_copy t = t.data <> None
let is_owner t = ignore t; false
let locks_held t = Local_locks.held t.locks
let version t = t.ver
let backup_version _ = 0
let is_home t = t.cfg.self = t.cfg.home

let holders t =
  if is_home t && t.data <> None then
    NSet.elements (NSet.add t.cfg.self t.copyset)
  else []

let busy _ = false

let fresh_timer t =
  t.next_timer <- t.next_timer + 1;
  t.next_timer

(* ---- diffing and patching ---- *)

(* Contiguous byte ranges where [new_] differs from [old]. If lengths
   differ (they should not for page data), the whole buffer is one patch. *)
let diff ~old ~new_ =
  if Bytes.length old <> Bytes.length new_ then [ (0, Bytes.copy new_) ]
  else begin
    let n = Bytes.length new_ in
    let patches = ref [] in
    let i = ref 0 in
    while !i < n do
      if Bytes.get old !i <> Bytes.get new_ !i then begin
        let start = !i in
        while !i < n && Bytes.get old !i <> Bytes.get new_ !i do
          incr i
        done;
        patches := (start, Bytes.sub new_ start (!i - start)) :: !patches
      end
      else incr i
    done;
    List.rev !patches
  end

let apply_patches data patches =
  let data = Bytes.copy data in
  List.iter
    (fun (off, bytes) ->
      let len = min (Bytes.length bytes) (max 0 (Bytes.length data - off)) in
      if off >= 0 && len > 0 then Bytes.blit bytes 0 data off len)
    patches;
  data

(* ---- local lock service (like eventual: optimistic) ---- *)

let pump_local t acc =
  let acc = ref acc in
  let continue = ref true in
  while !continue && not (Queue.is_empty t.waiters) do
    let req, mode = Queue.peek t.waiters in
    if t.data <> None && Local_locks.can t.locks mode then begin
      ignore (Queue.pop t.waiters);
      Local_locks.take t.locks mode;
      (* Snapshot the twin at write-grant so the release can diff. *)
      if mode = Write then
        t.twin <- Option.map Bytes.copy t.data;
      acc := Grant req :: !acc
    end
    else begin
      if t.data = None && t.cache_req = None then begin
        t.cache_req <- Some mode;
        acc := Send (t.cfg.home, Read_req) :: !acc
      end;
      continue := false
    end
  done;
  !acc

(* Apply a remote patch to the local replica — and to the twin, so a
   concurrent local writer's eventual diff contains only its own bytes. *)
let absorb_patch t patches version =
  (match t.data with
   | Some data -> t.data <- Some (apply_patches data patches)
   | None -> ());
  (match t.twin with
   | Some twin -> t.twin <- Some (apply_patches twin patches)
   | None -> ());
  if version > t.ver then t.ver <- version

(* ---- home role ---- *)

let arm_sync t acc =
  t.sync_pending <- true;
  if t.sync_armed then acc
  else begin
    t.sync_armed <- true;
    let id = fresh_timer t in
    (* Full-page anti-entropy heals lost patches; a few propagation periods
       apart so diffs dominate the steady state. *)
    Start_timer { id; after = 4 * t.cfg.propagate_every } :: acc
  end

(* Suspected nodes ([avoid]) count as neither replicas nor candidates. *)
let replication_targets ?(avoid = []) t =
  if t.cfg.min_replicas <= 1 then []
  else begin
    let avoid_set = NSet.of_list avoid in
    let live = NSet.diff (NSet.remove t.cfg.self t.copyset) avoid_set in
    let have = 1 + NSet.cardinal live in
    let missing = t.cfg.min_replicas - have in
    if missing <= 0 then []
    else
      List.filteri
        (fun i _ -> i < missing)
        (List.filter
           (fun n ->
             n <> t.cfg.self
             && (not (NSet.mem n t.copyset))
             && not (NSet.mem n avoid_set))
           t.cfg.replica_targets)
  end

let handle_home_msg t src msg acc =
  match msg with
  | Read_req -> (
    match t.data with
    | Some data ->
      t.copyset <- NSet.add src t.copyset;
      Sharers_hint (NSet.elements (NSet.add t.cfg.self t.copyset))
      :: Send (src, Read_grant { data; version = t.ver; fence = 0 })
      :: acc
    | None -> Send (src, Nack) :: acc)
  | Diff { patches; version } ->
    absorb_patch t patches version;
    let acc =
      match t.data with
      | Some data -> Install { data; dirty = false } :: acc
      | None -> acc
    in
    (* Eager fan-out of the patch to every other replica; schedule a full
       sync as the safety net. *)
    let targets = NSet.elements (NSet.remove src (NSet.remove t.cfg.self t.copyset)) in
    let acc =
      List.fold_left
        (fun acc n -> Send (n, Diff { patches; version = t.ver }) :: acc)
        acc targets
    in
    arm_sync t acc
  | Update { data; version } ->
    (* Full-state push from a replica (not used in the normal path). *)
    if version > t.ver then begin
      t.data <- Some data;
      t.ver <- version;
      arm_sync t (Install { data; dirty = false } :: acc)
    end
    else acc
  | Pull_req -> (
    match t.data with
    | Some data -> Send (src, Update { data; version = t.ver }) :: acc
    | None -> acc)
  | Evict_notify ->
    t.copyset <- NSet.remove src t.copyset;
    acc
  | Read_grant _ | Own_grant _ | Upgrade_grant _ | Invalidate _ | Invalidate_ack
  | Fetch _ | Fetch_own _ | Done _ | Nack | Own_return _ | Update_ack
  | Write_req | Fence_bump _ ->
    acc

let handle_cache_msg t src msg acc =
  ignore src;
  match msg with
  | Read_grant { data; version; _ } ->
    t.cache_req <- None;
    if t.data = None || version > t.ver then begin
      t.data <- Some data;
      t.ver <- version;
      pump_local t (Install { data; dirty = false } :: acc)
    end
    else pump_local t acc
  | Diff { patches; version } ->
    absorb_patch t patches version;
    (match t.data with
     | Some data -> pump_local t (Install { data; dirty = false } :: acc)
     | None -> acc)
  | Update { data; version } ->
    (* Periodic full sync. Skip while a local writer is active: its diff
       will carry its bytes, and the next sync carries everyone else's. *)
    if (not t.locks.Local_locks.writer) && version >= t.ver then begin
      t.data <- Some data;
      t.ver <- version;
      pump_local t (Install { data; dirty = false } :: acc)
    end
    else acc
  | Nack -> (
    t.cache_req <- None;
    match Queue.take_opt t.waiters with
    | Some (req, _) ->
      pump_local t (Reject (req, Unavailable "home has no data") :: acc)
    | None -> acc)
  | Read_req | Write_req | Own_grant _ | Upgrade_grant _ | Invalidate _
  | Invalidate_ack | Fetch _ | Fetch_own _ | Done _ | Evict_notify
  | Own_return _ | Update_ack | Pull_req | Fence_bump _ ->
    acc

let handle t event =
  let acc =
    match event with
    | Acquire { req; mode } ->
      Queue.push (req, mode) t.waiters;
      pump_local t []
    | Release { mode; data } -> (
      Local_locks.drop t.locks mode;
      match (mode, data) with
      | Write, Some bytes ->
        let patches =
          match t.twin with
          | Some twin -> diff ~old:twin ~new_:bytes
          | None -> [ (0, Bytes.copy bytes) ]
        in
        t.twin <- None;
        t.data <- Some bytes;
        t.ver <- next_version ~current:t.ver ~origin:t.cfg.self;
        let acc = [ Install { data = bytes; dirty = false } ] in
        if patches = [] then pump_local t acc
        else if is_home t then begin
          (* Merge locally and fan out directly. *)
          let targets = NSet.elements (NSet.remove t.cfg.self t.copyset) in
          let acc =
            List.fold_left
              (fun acc n -> Send (n, Diff { patches; version = t.ver }) :: acc)
              acc targets
          in
          pump_local t (arm_sync t acc)
        end
        else
          pump_local t
            (Send (t.cfg.home, Diff { patches; version = t.ver }) :: acc)
      | Write, None ->
        t.twin <- None;
        pump_local t []
      | Read, _ -> pump_local t [])
    | Peer { src; msg } ->
      if is_home t then
        (match msg with
         | Diff _ | Update _ | Read_req | Pull_req | Evict_notify ->
           handle_home_msg t src msg []
         | Read_grant _ | Own_grant _ | Upgrade_grant _ | Invalidate _
         | Invalidate_ack | Fetch _ | Fetch_own _ | Done _ | Nack
         | Own_return _ | Update_ack | Write_req | Fence_bump _ ->
           handle_cache_msg t src msg [])
      else handle_cache_msg t src msg []
    | Evicted _ ->
      if is_home t then []
      else begin
        t.data <- None;
        t.twin <- None;
        [ Send (t.cfg.home, Evict_notify) ]
      end
    | Abort { req } ->
      let remaining = Queue.create () in
      let head = Queue.peek_opt t.waiters in
      Queue.iter
        (fun (r, m) -> if r <> req then Queue.push (r, m) remaining)
        t.waiters;
      Queue.clear t.waiters;
      Queue.transfer remaining t.waiters;
      (match head with
       | Some (r, _) when r = req -> t.cache_req <- None
       | Some _ | None -> ());
      pump_local t []
    | Timeout _ ->
      if is_home t && t.sync_armed then begin
        t.sync_armed <- false;
        if t.sync_pending then begin
          t.sync_pending <- false;
          match t.data with
          | None -> []
          | Some data ->
            let extra = replication_targets t in
            List.iter (fun n -> t.copyset <- NSet.add n t.copyset) extra;
            List.rev_map
              (fun n -> Send (n, Update { data; version = t.ver }))
              (NSet.elements (NSet.remove t.cfg.self t.copyset))
        end
        else []
      end
      else []
    | Maintain { avoid } -> (
      if not (is_home t) then []
      else
        match t.data with
        | None -> []
        | Some data ->
          let extra = replication_targets ~avoid t in
          List.iter (fun n -> t.copyset <- NSet.add n t.copyset) extra;
          List.rev_map
            (fun n -> Send (n, Update { data; version = t.ver }))
            extra)
    | Unreachable _ ->
      (* Diff fan-outs to a dead replica just drop; a partitioned replica
         keeps its copyset slot and catches up via later merges. *)
      []
    | Reincarnate { version; sharers } ->
      if is_home t then begin
        if version > t.ver then t.ver <- version;
        List.iter
          (fun n -> if n <> t.cfg.self then t.copyset <- NSet.add n t.copyset)
          sharers;
        []
      end
      else []
  in
  List.rev acc

(* Write-shared merges diffs into a single latest image; there is no
   retained version chain to serve snapshot reads from. *)
let read_at _ _ = None
let publish _ ~src:_ ~parent:_ ~expected:_ ~payload:_ =
  (Types.Publish_unsupported, [])
