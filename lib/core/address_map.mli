(** The distributed address map.

    "Khazana maintains a globally distributed data structure called the
    address map ... implemented as a distributed tree where each subtree
    describes a range of global address space in finer detail. Each tree
    node is of fixed size and contains a set of entries describing disjoint
    global memory regions, each of which contains either a non-exhaustive
    list of home nodes for a reserved region or points to the root node of a
    subtree describing the region in finer detail. The address map itself
    resides in Khazana" — tree nodes are ordinary pages of the well-known
    region at address 0 and are replicated under release consistency, so
    lookups tolerate staleness.

    This module is pure tree logic over an abstract page-IO so it can be
    unit-tested without a daemon; {!Daemon} supplies the IO backed by its
    own lock/read/write operations. *)

module Gaddr = Kutil.Gaddr

type reserved = {
  base : Gaddr.t;
  len : int;
  page_size : int;
  homes : Knet.Topology.node_id list;  (** non-exhaustive home-node hint *)
}

type entry =
  | Reserved of reserved
  | Subtree of { base : Gaddr.t; span_log2 : int; page : int }

(** One fixed-size tree node, stored in map page [page]. *)
module Node : sig
  type t = {
    base : Gaddr.t;
    span_log2 : int;
    mutable next_free : int;  (** tree-page allocator; root only *)
    mutable entries : entry list;  (** sorted by base *)
  }

  val max_entries : int
  (** Entries a node holds before {!insert} must split it. *)

  val empty_root : unit -> t
  (** A root covering the whole address space with no entries. *)

  val encode : t -> bytes
  (** Fixed 4 KiB image. *)

  val decode : bytes -> t
  (** Raises {!Kutil.Codec.Decode_error} on garbage. *)
end

(** Page-level IO the daemon provides. Reads take read locks page by page;
    [mutate] holds the root page's write lock for the whole mutation (the
    map's global mutation token), writes other pages under their own write
    locks, and rewrites the root afterwards. *)
type io = {
  read_page : int -> Node.t;
  mutate : (root:Node.t -> read:(int -> Node.t) -> write:(int -> Node.t -> unit) -> unit) -> unit;
}

type lookup_result = { entry : reserved option; depth : int }
(** [depth] counts tree nodes visited (1 = answered from the root). *)

val lookup : io -> Gaddr.t -> lookup_result
(** Find the reserved region containing the address, if any. *)

val insert : io -> reserved -> (unit, string) result
(** Record a reservation. Fails when the range overlaps an existing entry
    or the covering tree node cannot be split further. *)

val remove : io -> Gaddr.t -> bool
(** Remove the reservation whose base is exactly the address; [false] when
    absent. *)

val update_homes : io -> Gaddr.t -> Knet.Topology.node_id list -> bool
(** Refresh the home-node hint of an existing reservation. *)

val fold_reserved : io -> ('a -> reserved -> 'a) -> 'a -> 'a
(** Walk the whole tree (diagnostics and experiments). *)
