(** Region attributes.

    Each region carries the client-specified management policy the paper
    lists: desired consistency level, consistency protocol, access control
    information, and minimum number of replicas. *)

(** How strong the guarantees must be; the protocol name picks the
    implementation, the level documents intent and lets the daemon check
    that the protocol is strong enough. *)
type consistency_level = Strict | Release | Eventual

val level_to_string : consistency_level -> string
(** "strict" / "release" / "eventual". *)

val level_of_string : string -> consistency_level option
(** Inverse of {!level_to_string}; [None] on unknown names. *)

val default_protocol_for : consistency_level -> string
(** crew / release / eventual. *)

(** Simple principal-based access control: the creator may always access;
    everyone else gets [world]. *)
type access = No_access | Read_only | Read_write

type t = {
  level : consistency_level;
  protocol : string;       (** a {!Kconsistency.Registry} name *)
  owner : int;             (** creating principal (client/node id) *)
  world : access;          (** rights for every other principal *)
  min_replicas : int;      (** primary copies maintained for availability *)
  page_size : int;
}

val make :
  ?level:consistency_level ->
  ?protocol:string ->
  ?world:access ->
  ?min_replicas:int ->
  ?page_size:int ->
  owner:int ->
  unit ->
  t
(** Defaults: [Strict]/crew, world [Read_write], 1 replica, 4 KiB pages.
    Raises [Invalid_argument] for a bad page size, unknown protocol, or
    non-positive replica count. *)

val allows : t -> principal:int -> Kconsistency.Types.mode -> bool
(** May [principal] take a lock in this mode? The owner always may;
    everyone else is checked against [world]. *)

val encode : Kutil.Codec.encoder -> t -> unit
(** Append the wire form (attributes travel inside region descriptors). *)

val decode : Kutil.Codec.decoder -> t
(** Inverse of {!encode}. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-line rendering for logs and tests. *)
