module Trace = Ktrace.Trace
module Op_ctx = Ktrace.Op_ctx
module History = Kcheck.History

type t = {
  daemon : Daemon.t;
  principal : int;
  mutable hist : History.recorder option;
  (* open transactions' history op ids, keyed by Daemon.txn_uid *)
  hist_txns : (int, int) Hashtbl.t;
}

let connect daemon ~principal =
  { daemon; principal; hist = None; hist_txns = Hashtbl.create 8 }

let set_history t r = t.hist <- r

(* Outcome classification for the history: an error that may have left
   the operation applied anyway (silence, a node mid-crash, an opaque
   rpc failure) is [Maybe]; an error raised before anything could land
   is a definite [Fail]. [Maybe] is always sound — it only weakens what
   the checker may assume. *)
let classify_error = function
  | `Timeout | `Unreachable | `Unavailable _ | `Rpc _ -> History.Maybe
  | `Conflict _ | `Access_denied | `Not_allocated | `Bad_range -> History.Fail
let daemon t = t.daemon
let principal t = t.principal

(* Every client operation runs under an operation context. When the caller
   supplies one we join it (nested operations share one trace); otherwise we
   mint a fresh root span named after the operation — unless tracing is off,
   in which case the context is a free two-word record and nothing else
   happens. *)
let with_op t name ctx f =
  match ctx with
  | Some ctx -> f ctx
  | None ->
    if not (Trace.enabled ()) then f (Op_ctx.make t.principal)
    else begin
      let engine = Daemon.engine t.daemon in
      let span = Trace.root ~engine ~node:(Daemon.id t.daemon) name in
      Fun.protect
        ~finally:(fun () -> Trace.finish ~engine span)
        (fun () -> f (Op_ctx.make ~span t.principal))
    end

let reserve t ?attr ?ctx len =
  with_op t "client.reserve" ctx (fun ctx ->
      Daemon.reserve t.daemon ?attr ~ctx len)

let unreserve t ?ctx base =
  with_op t "client.unreserve" ctx (fun ctx ->
      Daemon.unreserve t.daemon ~ctx base)

let allocate t ?ctx base =
  with_op t "client.allocate" ctx (fun ctx ->
      Daemon.allocate t.daemon ~ctx base)

let free t ?ctx base =
  with_op t "client.free" ctx (fun ctx -> Daemon.free t.daemon ~ctx base)

let lock t ?ctx ~addr ~len mode =
  with_op t "client.lock" ctx (fun ctx ->
      Daemon.lock t.daemon ~ctx ~addr ~len mode)

let unlock t ctx = Daemon.unlock t.daemon ctx
let read t ctx ~addr ~len = Daemon.read t.daemon ctx ~addr ~len
let write t ctx ~addr data = Daemon.write t.daemon ctx ~addr data

let get_attr t ?ctx addr =
  with_op t "client.get_attr" ctx (fun ctx ->
      Daemon.get_attr t.daemon ~ctx addr)

let set_attr t ?ctx base attr =
  with_op t "client.set_attr" ctx (fun ctx ->
      Daemon.set_attr t.daemon ~ctx base attr)

let create_region t ?attr ?ctx len =
  with_op t "client.create_region" ctx (fun ctx ->
      match Daemon.reserve t.daemon ?attr ~ctx len with
      | Error _ as e -> e
      | Ok region -> (
        match Daemon.allocate t.daemon ~ctx region.Region.base with
        | Ok () -> Ok (Region.allocated region)
        | Error e -> Error e))

let with_lock_in t ctx ~addr ~len mode f =
  match Daemon.lock t.daemon ~ctx ~addr ~len mode with
  | Error e -> Error e
  | Ok lctx ->
    Fun.protect ~finally:(fun () -> unlock t lctx) (fun () -> f lctx)

let with_lock t ?ctx ~addr ~len mode f =
  with_op t "client.with_lock" ctx (fun ctx ->
      with_lock_in t ctx ~addr ~len mode f)

(* Widen the daemon's closed error variant into the caller's row so [txn]
   bodies can fail with richer error types (kfs adds its own constructors). *)
let widen_error : Daemon.error -> [> Daemon.error ] = function
  | `Timeout -> `Timeout
  | `Unreachable -> `Unreachable
  | `Unavailable s -> `Unavailable s
  | `Access_denied -> `Access_denied
  | `Not_allocated -> `Not_allocated
  | `Bad_range -> `Bad_range
  | `Conflict s -> `Conflict s
  | `Rpc s -> `Rpc s

let txn t ?ctx f =
  with_op t "client.txn" ctx (fun ctx ->
      let txn = Daemon.txn_begin t.daemon ~ctx in
      let uid = Daemon.txn_uid txn in
      (match t.hist with
      | Some r -> Hashtbl.replace t.hist_txns uid (History.invoke r History.Txn)
      | None -> ());
      let record status =
        (match t.hist with
        | Some r -> (
          match Hashtbl.find_opt t.hist_txns uid with
          | Some id -> History.finish r ~id status
          | None -> ())
        | None -> ());
        Hashtbl.remove t.hist_txns uid
      in
      let result =
        try f txn
        with e ->
          Daemon.txn_abort t.daemon txn;
          record History.Fail;
          raise e
      in
      match result with
      | Ok v -> (
        match Daemon.txn_commit t.daemon txn with
        | Ok () ->
          record History.Ok_;
          Ok v
        | Error e ->
          (* commit errors other than a definite conflict leave the
             decision with the coordinator machinery: the transaction
             may still land (recovery rebroadcast), so it is ambiguous *)
          record (classify_error e);
          Error (widen_error e))
      | Error _ as e ->
        Daemon.txn_abort t.daemon txn;
        record History.Fail;
        e)

let txn_hist_id t txn =
  match t.hist with
  | None -> None
  | Some r -> (
    match Hashtbl.find_opt t.hist_txns (Daemon.txn_uid txn) with
    | Some id -> Some (r, id)
    | None -> None)

let txn_read t txn ~addr ~len =
  match Daemon.txn_read t.daemon txn ~addr ~len with
  | Ok bytes as ok ->
    (match txn_hist_id t txn with
    | Some (r, id) -> History.txn_read_entry r ~id addr (Bytes.to_string bytes)
    | None -> ());
    ok
  | Error e -> Error (widen_error e)

let txn_write t txn ~addr data =
  match Daemon.txn_write t.daemon txn ~addr data with
  | Ok _ as ok ->
    (match txn_hist_id t txn with
    | Some (r, id) -> History.txn_write_entry r ~id addr (Bytes.to_string data)
    | None -> ());
    ok
  | Error e -> Error (widen_error e)

let read_bytes t ?ctx ~addr len =
  with_op t "client.read_bytes" ctx (fun ctx ->
      let hid =
        Option.map
          (fun r -> (r, History.invoke r (History.Read { addr; len })))
          t.hist
      in
      let res =
        with_lock_in t ctx ~addr ~len Kconsistency.Types.Read (fun lctx ->
            read t lctx ~addr ~len)
      in
      (match hid with
      | Some (r, id) -> (
        match res with
        | Ok bytes -> History.finish r ~id ~value:(Bytes.to_string bytes) History.Ok_
        | Error e -> History.finish r ~id (classify_error e))
      | None -> ());
      res)

(* --- MVCC snapshots (versioned regions) --- *)

let snapshot t = Daemon.snapshot_begin t.daemon
let release_snapshot t snap = Daemon.snapshot_release t.daemon snap

let snapshot_read t ?ctx ~snap ~addr len =
  with_op t "client.snapshot_read" ctx (fun ctx ->
      let hid =
        Option.map
          (fun r -> (r, History.invoke r (History.Sread { addr; len; snap })))
          t.hist
      in
      let res = Daemon.snapshot_read t.daemon ~ctx ~snap ~addr ~len in
      (match hid with
      | Some (r, id) -> (
        match res with
        | Ok bytes ->
          History.finish r ~id ~value:(Bytes.to_string bytes) History.Ok_
        | Error e -> History.finish r ~id (classify_error e))
      | None -> ());
      res)

let page_version t ?ctx addr =
  with_op t "client.page_version" ctx (fun ctx ->
      Daemon.page_version t.daemon ~ctx ~addr)

let write_cas t ?ctx ~addr ~expected data =
  with_op t "client.write_cas" ctx (fun ctx ->
      let hid =
        Option.map
          (fun r ->
            ( r,
              History.invoke r
                (History.Write { addr; value = Bytes.to_string data }) ))
          t.hist
      in
      let res = Daemon.write_cas t.daemon ~ctx ~addr ~expected data in
      (match hid with
      | Some (r, id) -> (
        match res with
        | Ok () -> History.finish r ~id History.Ok_
        | Error e -> History.finish r ~id (classify_error e))
      | None -> ());
      res)

let write_bytes t ?ctx ~addr data =
  with_op t "client.write_bytes" ctx (fun ctx ->
      let hid =
        Option.map
          (fun r ->
            ( r,
              History.invoke r
                (History.Write { addr; value = Bytes.to_string data }) ))
          t.hist
      in
      let res = Daemon.write_sync t.daemon ~ctx ~addr data in
      (match hid with
      | Some (r, id) -> (
        match res with
        | Ok () -> History.finish r ~id History.Ok_
        | Error e -> History.finish r ~id (classify_error e))
      | None -> ());
      res)
