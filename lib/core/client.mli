(** Client library.

    "Typically an application process (client) interacts with Khazana
    through library routines" — this module is those routines: a thin,
    principal-carrying veneer over the local daemon, plus convenience
    helpers for whole-region access. All operations are fiber-blocking.

    Every operation takes an optional {!Ktrace.Op_ctx.t}. Omitted, the
    client mints a fresh context — and, when a trace sink is installed, a
    root span named after the operation ([client.lock],
    [client.write_bytes], ...) under which every daemon step, remote hop
    and CM transition of that operation nests. Pass an explicit [ctx] to
    group several calls under one caller-owned span, or to attach a
    deadline. With no sink installed the context machinery costs nothing. *)

type t

val connect : Daemon.t -> principal:int -> t
(** An application handle bound to its node-local daemon; every operation
    it issues runs as [principal] for access control. *)

val daemon : t -> Daemon.t
(** The daemon this client talks to. *)

val principal : t -> int
(** The principal operations run as. *)

val set_history : t -> Kcheck.History.recorder option -> unit
(** Install (or remove) a consistency-checking history recorder. While
    set, every {!read_bytes}, {!write_bytes} and {!txn} emits
    invoke/return entries — timeouts and unreachable peers recorded as
    ambiguous ("maybe applied") — and transactional reads/writes emit
    per-address sub-entries, for {!Kcheck.Check.analyze} after the run.
    Costs nothing when unset. *)

(** {1 The paper's operations} *)

val reserve :
  t -> ?attr:Attr.t -> ?ctx:Ktrace.Op_ctx.t -> int ->
  (Region.t, Daemon.error) result
(** [reserve t len] — the length is the final positional argument. *)

val unreserve : t -> ?ctx:Ktrace.Op_ctx.t -> Kutil.Gaddr.t -> unit
(** Give a reserved region's address space back. Release-class: returns
    immediately and retries in the background until it lands. *)

val allocate : t -> ?ctx:Ktrace.Op_ctx.t -> Kutil.Gaddr.t -> (unit, Daemon.error) result
(** Attach backing storage to a reserved region (by its base address). *)

val free : t -> ?ctx:Ktrace.Op_ctx.t -> Kutil.Gaddr.t -> unit
(** Release a region's backing storage. Release-class, like {!unreserve}. *)

val lock :
  t -> ?ctx:Ktrace.Op_ctx.t -> addr:Kutil.Gaddr.t -> len:int ->
  Kconsistency.Types.mode -> (Daemon.lock_ctx, Daemon.error) result
(** Acquire the byte range in [Read] or [Write] mode; pages are acquired
    in pipelined waves and the grant is all-or-nothing (see
    {!Daemon.lock}). The returned context gates {!read}/{!write}. *)

val unlock : t -> Daemon.lock_ctx -> unit
(** Release every page of the context. Release-class: returns
    immediately; update propagation retries in the background. *)

val read :
  t -> Daemon.lock_ctx -> addr:Kutil.Gaddr.t -> len:int ->
  (bytes, Daemon.error) result
(** Copy bytes out of the locked range (any lock mode suffices). *)

val write :
  t -> Daemon.lock_ctx -> addr:Kutil.Gaddr.t -> bytes ->
  (unit, Daemon.error) result
(** Copy bytes into the locked range (requires a [Write] context). *)

val get_attr : t -> ?ctx:Ktrace.Op_ctx.t -> Kutil.Gaddr.t -> (Attr.t, Daemon.error) result
(** Attributes of the region containing the address. *)

val set_attr : t -> ?ctx:Ktrace.Op_ctx.t -> Kutil.Gaddr.t -> Attr.t -> (unit, Daemon.error) result
(** Replace the attributes of the region based at the address (owner
    only; propagates to cached descriptors lazily). *)

(** {1 Convenience} *)

val create_region :
  t -> ?attr:Attr.t -> ?ctx:Ktrace.Op_ctx.t -> int ->
  (Region.t, Daemon.error) result
(** reserve + allocate; the length is the final positional argument. *)

val with_lock :
  t -> ?ctx:Ktrace.Op_ctx.t -> addr:Kutil.Gaddr.t -> len:int ->
  Kconsistency.Types.mode ->
  (Daemon.lock_ctx -> ('a, Daemon.error) result) ->
  ('a, Daemon.error) result
(** Lock, run, always unlock. *)

(** {1 Atomic transactions}

    Multi-region all-or-nothing updates via the daemon's two-phase commit
    (see {!Daemon.txn_commit}). The error row is open so callers layering
    their own error constructors (kfs) can fail out of the body without
    wrapping. *)

val txn :
  t -> ?ctx:Ktrace.Op_ctx.t ->
  (Daemon.txn -> ('a, ([> Daemon.error ] as 'e)) result) ->
  ('a, 'e) result
(** [txn t f] begins a transaction, runs [f], and commits if [f] returns
    [Ok] — the commit is atomic across every region touched, whatever
    their homes. [Error] from [f] (or an exception) aborts: no write in
    the body is ever visible. [Ok] from [txn] means the commit decision
    is durably logged. *)

val txn_read :
  t -> Daemon.txn -> addr:Kutil.Gaddr.t -> len:int ->
  (bytes, [> Daemon.error ]) result
(** Transactional read. Ranges in regions under strict protocols are
    locked in shared [Read] mode (upgraded with re-validation if later
    written; held to commit). Ranges in [versioned] regions the
    transaction has not written are served lock-free from the
    transaction's MVCC snapshot, so read-only transactions never
    serialize against writers there. Either way the read observes the
    transaction's own buffered writes. *)

val txn_write :
  t -> Daemon.txn -> addr:Kutil.Gaddr.t -> bytes ->
  (unit, [> Daemon.error ]) result
(** Buffer a write; visible nowhere until the transaction commits. *)

val read_bytes :
  t -> ?ctx:Ktrace.Op_ctx.t -> addr:Kutil.Gaddr.t -> int ->
  (bytes, Daemon.error) result
(** [read_bytes t ~addr len]: lock(read) + read + unlock. *)

val write_bytes :
  t -> ?ctx:Ktrace.Op_ctx.t -> addr:Kutil.Gaddr.t -> bytes ->
  (unit, Daemon.error) result
(** lock(write) + write + unlock. *)

(** {1 MVCC snapshots (versioned regions)}

    Consistent lock-free reads over regions under the [versioned]
    consistency manager (see {!Daemon.snapshot_begin}): the first read of
    each page pins it at the latest settled version, later reads through
    the same snapshot serve exactly the pinned versions, and writers are
    never blocked or invalidated by readers. Long-lived snapshots can
    expire — [`Unavailable] once a pinned version falls off the home's
    bounded chain — in which case release and begin afresh. *)

val snapshot : t -> (int, Daemon.error) result
(** Open a snapshot on the local daemon ("latest settled" per page, pinned
    lazily at first touch). *)

val snapshot_read :
  t -> ?ctx:Ktrace.Op_ctx.t -> snap:int -> addr:Kutil.Gaddr.t -> int ->
  (bytes, Daemon.error) result
(** [snapshot_read t ~snap ~addr len]: read at the snapshot's pinned
    versions — no locks, no invalidations, never blocks a writer. *)

val release_snapshot : t -> int -> unit
(** Drop the snapshot's pins. Release-class; unknown ids are no-ops. *)

val page_version :
  t -> ?ctx:Ktrace.Op_ctx.t -> Kutil.Gaddr.t ->
  (Kconsistency.Types.version, Daemon.error) result
(** Current home version of the versioned-region page containing the
    address — the token to pass to {!write_cas}. *)

val write_cas :
  t -> ?ctx:Ktrace.Op_ctx.t -> addr:Kutil.Gaddr.t ->
  expected:Kconsistency.Types.version -> bytes ->
  (unit, Daemon.error) result
(** Optimistic versioned write: publishes only if the page is still at
    version [expected]; [`Conflict] if another writer got there first.
    See {!Daemon.write_cas}. *)
