(** Client library.

    "Typically an application process (client) interacts with Khazana
    through library routines" — this module is those routines: a thin,
    principal-carrying veneer over the local daemon, plus convenience
    helpers for whole-region access. All operations are fiber-blocking.

    Every operation takes an optional {!Ktrace.Op_ctx.t}. Omitted, the
    client mints a fresh context — and, when a trace sink is installed, a
    root span named after the operation ([client.lock],
    [client.write_bytes], ...) under which every daemon step, remote hop
    and CM transition of that operation nests. Pass an explicit [ctx] to
    group several calls under one caller-owned span, or to attach a
    deadline. With no sink installed the context machinery costs nothing. *)

type t

val connect : Daemon.t -> principal:int -> t
val daemon : t -> Daemon.t
val principal : t -> int

(** {1 The paper's operations} *)

val reserve :
  t -> ?attr:Attr.t -> ?ctx:Ktrace.Op_ctx.t -> int ->
  (Region.t, Daemon.error) result
(** [reserve t len] — the length is the final positional argument. *)

val unreserve : t -> ?ctx:Ktrace.Op_ctx.t -> Kutil.Gaddr.t -> unit
val allocate : t -> ?ctx:Ktrace.Op_ctx.t -> Kutil.Gaddr.t -> (unit, Daemon.error) result
val free : t -> ?ctx:Ktrace.Op_ctx.t -> Kutil.Gaddr.t -> unit

val lock :
  t -> ?ctx:Ktrace.Op_ctx.t -> addr:Kutil.Gaddr.t -> len:int ->
  Kconsistency.Types.mode -> (Daemon.lock_ctx, Daemon.error) result

val unlock : t -> Daemon.lock_ctx -> unit

val read :
  t -> Daemon.lock_ctx -> addr:Kutil.Gaddr.t -> len:int ->
  (bytes, Daemon.error) result

val write :
  t -> Daemon.lock_ctx -> addr:Kutil.Gaddr.t -> bytes ->
  (unit, Daemon.error) result

val get_attr : t -> ?ctx:Ktrace.Op_ctx.t -> Kutil.Gaddr.t -> (Attr.t, Daemon.error) result
val set_attr : t -> ?ctx:Ktrace.Op_ctx.t -> Kutil.Gaddr.t -> Attr.t -> (unit, Daemon.error) result

(** {1 Convenience} *)

val create_region :
  t -> ?attr:Attr.t -> ?ctx:Ktrace.Op_ctx.t -> int ->
  (Region.t, Daemon.error) result
(** reserve + allocate; the length is the final positional argument. *)

val with_lock :
  t -> ?ctx:Ktrace.Op_ctx.t -> addr:Kutil.Gaddr.t -> len:int ->
  Kconsistency.Types.mode ->
  (Daemon.lock_ctx -> ('a, Daemon.error) result) ->
  ('a, Daemon.error) result
(** Lock, run, always unlock. *)

val read_bytes :
  t -> ?ctx:Ktrace.Op_ctx.t -> addr:Kutil.Gaddr.t -> int ->
  (bytes, Daemon.error) result
(** [read_bytes t ~addr len]: lock(read) + read + unlock. *)

val write_bytes :
  t -> ?ctx:Ktrace.Op_ctx.t -> addr:Kutil.Gaddr.t -> bytes ->
  (unit, Daemon.error) result
(** lock(write) + write + unlock. *)
