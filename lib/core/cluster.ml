module Gaddr = Kutil.Gaddr

type hint = { desc : Region.t; mutable holders : Knet.Topology.node_id list }

type t = {
  cluster_id : int;
  mutable next_chunk_index : int;
  hints : hint Gaddr.Table.t;  (* by region base *)
  free_pool : (Knet.Topology.node_id, int) Hashtbl.t;
  last_seen : (Knet.Topology.node_id, Ksim.Time.t) Hashtbl.t;
}

let create ~cluster_id =
  {
    cluster_id;
    next_chunk_index = 0;
    hints = Gaddr.Table.create 64;
    free_pool = Hashtbl.create 16;
    last_seen = Hashtbl.create 16;
  }

let heartbeat t ~node ~now = Hashtbl.replace t.last_seen node now

let suspects t ~now ~timeout =
  Hashtbl.fold
    (fun node seen acc -> if now - seen > timeout then node :: acc else acc)
    t.last_seen []
  |> List.sort compare

let next_chunk t =
  let base = Layout.chunk_addr ~cluster:t.cluster_id ~index:t.next_chunk_index in
  t.next_chunk_index <- t.next_chunk_index + 1;
  (base, Layout.chunk_size)

let forget_node t node =
  Hashtbl.remove t.free_pool node;
  let empty =
    Gaddr.Table.fold
      (fun base hint acc ->
        hint.holders <- List.filter (fun n -> n <> node) hint.holders;
        if hint.holders = [] then base :: acc else acc)
      t.hints []
  in
  List.iter (Gaddr.Table.remove t.hints) empty

let record_report ?now t ~node ~regions ~free_bytes =
  (match now with Some now -> heartbeat t ~node ~now | None -> ());
  Hashtbl.replace t.free_pool node free_bytes;
  (* Drop the node's stale claims, then re-add the fresh ones. *)
  Gaddr.Table.iter
    (fun _ hint -> hint.holders <- List.filter (fun n -> n <> node) hint.holders)
    t.hints;
  List.iter
    (fun (base, desc) ->
      match Gaddr.Table.find_opt t.hints base with
      | Some hint ->
        if not (List.mem node hint.holders) then
          hint.holders <- node :: hint.holders
      | None -> Gaddr.Table.replace t.hints base { desc; holders = [ node ] })
    regions;
  let empty =
    Gaddr.Table.fold
      (fun base hint acc -> if hint.holders = [] then base :: acc else acc)
      t.hints []
  in
  List.iter (Gaddr.Table.remove t.hints) empty

let lookup t addr =
  let found =
    Gaddr.Table.fold
      (fun _ hint best ->
        match best with
        | Some _ -> best
        | None -> if Region.contains hint.desc addr then Some hint else None)
      t.hints None
  in
  match found with
  | Some hint -> (Some hint.desc, hint.holders)
  | None -> (None, [])

let free_bytes_hint t =
  Hashtbl.fold (fun n b acc -> (n, b) :: acc) t.free_pool []
  |> List.sort compare

let chunks_granted t = t.next_chunk_index
