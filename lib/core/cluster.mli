(** Cluster-manager role state.

    "Each cluster has one or more designated cluster managers, nodes
    responsible for being aware of other cluster locations, caching hint
    information about regions stored in the local cluster, and representing
    the local cluster during inter-cluster communication." The manager also
    parcels unreserved address space into 1 GiB chunks for member nodes and
    tracks hints about their free pools. *)

type t

val create : cluster_id:int -> t
(** Manager state for one cluster; the id selects the cluster's slice of
    the global address space. *)

val next_chunk : t -> Kutil.Gaddr.t * int
(** Hand out the next unreserved chunk of this cluster's address slice. *)

val record_report :
  ?now:Ksim.Time.t ->
  t ->
  node:Knet.Topology.node_id ->
  regions:(Kutil.Gaddr.t * Region.t) list ->
  free_bytes:int ->
  unit
(** Refresh hints from a member's periodic report: which regions it caches
    or homes, and how much unreserved pool it still holds. When [now] is
    given the report also counts as a heartbeat. *)

(** {1 Failure detection}

    Reports double as heartbeats: a member whose last report (or other
    direct evidence of life) is older than the suspicion timeout is
    suspected — crashed and partitioned nodes look identical here, which
    is the point. *)

val heartbeat : t -> node:Knet.Topology.node_id -> now:Ksim.Time.t -> unit
(** Direct evidence that [node] was alive at [now]. *)

val suspects : t -> now:Ksim.Time.t -> timeout:Ksim.Time.t -> Knet.Topology.node_id list
(** Members whose last heartbeat is more than [timeout] ago, sorted.
    Nodes never heard from are not listed — seed them with {!heartbeat}
    when the manager starts so silence eventually shows up. *)

val lookup :
  t -> Kutil.Gaddr.t -> (Region.t option * Knet.Topology.node_id list)
(** Hint answer for "is the region containing this address cached in this
    cluster, and by whom?". *)

val forget_node : t -> Knet.Topology.node_id -> unit
(** Drop all hints about a (crashed) member. *)

val free_bytes_hint : t -> (Knet.Topology.node_id * int) list
(** Last reported unreserved pool size per member. *)

val chunks_granted : t -> int
(** How many chunks {!next_chunk} has handed out. *)
