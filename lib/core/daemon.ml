module Gaddr = Kutil.Gaddr
module U128 = Kutil.U128
module Ctypes = Kconsistency.Types
module Machine = Kconsistency.Machine_intf
module Topology = Knet.Topology
module Store = Kstorage.Page_store
module Wal = Kstorage.Wal
module Codec = Kutil.Codec
module Txid = Kutil.Txid
module Trace = Ktrace.Trace
module Op_ctx = Ktrace.Op_ctx
module Metrics = Ktrace.Metrics

type config = {
  rdir_capacity : int;
  ram_pages : int;
  disk_pages : int;
  lock_timeout : Ksim.Time.t;
  lock_retries : int;
  rpc_timeout : Ksim.Time.t;
  request_timeout : Ksim.Time.t;
  report_every : Ksim.Time.t;
  background_retry_every : Ksim.Time.t;
  retry_backoff_cap : Ksim.Time.t;
  suspect_after : Ksim.Time.t;
  repair_every : Ksim.Time.t;
  wal_checkpoint_every : int;
  acquire_window : int;
  txn_resolve_after : Ksim.Time.t;
  version_chain_depth : int;
  diff_density_max : float;
}

let default_config =
  {
    rdir_capacity = 128;
    ram_pages = 256;
    disk_pages = 65_536;
    lock_timeout = Ksim.Time.sec 2;
    lock_retries = 3;
    rpc_timeout = Ksim.Time.ms 500;
    request_timeout = Ksim.Time.ms 200;
    report_every = Ksim.Time.ms 500;
    background_retry_every = Ksim.Time.ms 250;
    retry_backoff_cap = Ksim.Time.sec 2;
    (* Three missed reports before a member is suspected. *)
    suspect_after = Ksim.Time.ms 1500;
    repair_every = Ksim.Time.ms 500;
    wal_checkpoint_every = 512;
    (* Pages per concurrent acquisition wave in a multi-page lock; 1
       recovers the old fully-sequential behaviour. *)
    acquire_window = 16;
    (* How long a participant sits on a prepared-but-undecided transaction
       before it starts asking the coordinator what happened. Long enough
       that a healthy 2PC round never triggers it. *)
    txn_resolve_after = Ksim.Time.sec 3;
    (* Versioned CM: immutable versions retained per page at the home. *)
    version_chain_depth = 8;
    (* Versioned CM: publish dirty runs only while they cover at most this
       fraction of the page; denser writes ship the whole image (runs would
       cost more than they save once per-run framing is paid). *)
    diff_density_max = 0.5;
  }

type error = Error.t

let error_to_string = Error.to_string

type lookup_stats = {
  homed_hits : int;
  rdir_hits : int;
  cluster_hits : int;
  map_walks : int;
  map_walk_depth_total : int;
  cluster_walks : int;  (* resolved by walking peer cluster managers *)
  failures : int;
}

type slot = { region : Region.t; packed : Machine.packed }

type lock_ctx = {
  ctx_id : int;
  ctx_op : Op_ctx.t;  (* the client operation this lock belongs to *)
  ctx_region : Region.t;
  ctx_addr : Gaddr.t;
  ctx_len : int;
  ctx_mode : Ctypes.mode;
  ctx_pages : Gaddr.t list;
  ctx_written : unit Gaddr.Table.t;
  ctx_parents : Ctypes.version Gaddr.Table.t;
      (* versioned regions, Write mode: the home version each page was at
         when the lock was granted — the parent a diff publish applies
         against *)
  mutable ctx_expected : Ctypes.version option;
      (* versioned CAS ({!write_cas}): publish only if the home is still at
         exactly this version *)
  mutable ctx_publish : (unit, error) result;
      (* outcome of the versioned publish unlock performs; [write_sync] and
         [write_cas] surface it to the caller *)
  mutable ctx_live : bool;
}

(* Participant-side record of a prepared (voted-yes, undecided) global
   transaction: the page images to apply on commit, and bookkeeping for the
   presumed-abort resolver. *)
type prepared = {
  p_pages : (Gaddr.t * bytes) list;
  mutable p_since : Ksim.Time.t;    (* when prepared / last status attempt *)
  mutable p_querying : bool;        (* a status query fiber is in flight *)
}

(* A committed 2PC page image the home has installed in its store but not
   yet reconciled with the consistency machine. When the coordinator is
   alive its write-lock release propagates the very same image through the
   CM (the matching [Install] clears the pin); when the coordinator died
   holding the locks, the pin goes overdue and the maintenance loop
   re-writes the image through a local write lock — riding the CM's own
   dead-owner fail-over — so reads stop serving the machine's stale
   pre-transaction copy. *)
type pin = {
  pin_img : bytes;
  mutable pin_since : Ksim.Time.t;
  mutable pin_busy : bool;          (* a repair fiber is in flight *)
}

type t = {
  id : Topology.node_id;
  cfg : config;
  transport : Wire.Transport.t;
  engine : Ksim.Engine.t;
  topology : Topology.t;
  bootstrap : Topology.node_id;
  cluster_manager : Topology.node_id;
  peer_managers : Topology.node_id list;  (* other clusters' managers *)
  store : Store.t;
  wal : Wal.t;
  rdir : Region_directory.t;
  pdir : Page_directory.t;
  homed : Region.t Gaddr.Table.t;
  machines : slot Gaddr.Table.t;
  pending : (int, (unit, error) result Ksim.Promise.t) Hashtbl.t;
  mutable next_req : int;
  mutable next_ctx : int;
  mutable pool : (Gaddr.t * int) list;
  mutable up : bool;
  mutable epoch : int;  (* bumped on crash: fences stale timers/fibers *)
  cm_state : Cluster.t option;
  rng : Kutil.Rng.t;  (* seeded from the engine: jitter stays deterministic *)
  (* Failure detector: the local view of who is currently unresponsive.
     Fed by cluster-manager hints (heartbeat ageing) and by our own RPC
     timeouts; cleared by any direct sign of life. *)
  suspected : (Topology.node_id, unit) Hashtbl.t;
  strikes : (Topology.node_id, int) Hashtbl.t;  (* consecutive rpc timeouts *)
  mutable last_hint : Topology.node_id list;  (* manager: last broadcast *)
  metrics : Metrics.t;
  mutable stats : lookup_stats;
  (* --- distributed atomic commit (2PC over the WAL) --- *)
  mutable next_txn_seq : int;  (* per-epoch coordinator sequence numbers *)
  txn_prepared : prepared Txid.Table.t;  (* participant: voted, undecided *)
  txn_decided : bool Txid.Table.t;  (* decisions seen (duplicate = no-op) *)
  txn_decisions : Topology.node_id list Txid.Table.t;
      (* coordinator: committed decisions with participants still owed the
         decision message; forgotten once every ack is in *)
  txn_active : unit Txid.Table.t;
      (* coordinator: transactions inside their voting window. In-memory
         only, deliberately: after a crash nothing here survives, so a
         status query for a pre-crash transaction answers "aborted" —
         which is sound, because the epoch fence keeps the dead commit
         fiber from ever logging its decision. *)
  txn_pins : pin Gaddr.Table.t;  (* home: committed images awaiting CM sync *)
  mutable txn_last : Txid.t option;  (* last id minted here (tests) *)
  mutable txn_hook : (string -> unit) option;  (* nemesis crash points *)
  (* --- MVCC snapshots (versioned regions) --- *)
  mutable next_snap : int;
  snapshots : (int, Ctypes.version Gaddr.Table.t) Hashtbl.t;
      (* snapshot id -> per-page pinned version. Pins are taken lazily at
         first touch ("latest settled" per page); in-memory only, a crash
         expires every open snapshot. *)
}

let id t = t.id
let engine t = t.engine
let is_up t = t.up
let region_directory t = t.rdir
let page_directory t = t.pdir
let store t = t.store
let wal t = t.wal

let set_disk_faults t faults =
  Store.set_faults t.store faults;
  Wal.set_faults t.wal faults
let cluster_state t = t.cm_state
let lookup_stats t = t.stats
let metrics t = t.metrics

let reset_lookup_stats t =
  t.stats <-
    { homed_hits = 0; rdir_hits = 0; cluster_hits = 0; map_walks = 0;
      map_walk_depth_total = 0; cluster_walks = 0; failures = 0 }

let homed_regions t = Gaddr.Table.fold (fun _ r acc -> r :: acc) t.homed []
let pool_bytes t = List.fold_left (fun acc (_, len) -> acc + len) 0 t.pool

let machine_state t page =
  Option.map (fun s -> Machine.packed_state_name s.packed) (Gaddr.Table.find_opt t.machines page)

(* 2PC introspection and fault-injection seam (tests / nemesis). *)
let set_txn_hook t hook = t.txn_hook <- hook
let last_txid t = t.txn_last
let txn_prepared_count t = Txid.Table.length t.txn_prepared
let txn_undelivered_decisions t = Txid.Table.length t.txn_decisions

let txn_step t step = match t.txn_hook with Some f -> f step | None -> ()
let alive t epoch = t.up && t.epoch = epoch

(* Regions under the MVCC protocol take the publish path on release
   instead of the data-carrying Release / CREW write-through. *)
let versioned_region (region : Region.t) =
  region.Region.attr.Attr.protocol = Kconsistency.Versioned.name

let holds_page t page =
  match Gaddr.Table.find_opt t.machines page with
  | Some s -> Machine.packed_has_valid_copy s.packed
  | None -> false

(* ------------------------------------------------------------------ *)
(* Failure detector                                                    *)
(* ------------------------------------------------------------------ *)

let suspects t =
  Hashtbl.fold (fun n () acc -> n :: acc) t.suspected [] |> List.sort compare

let is_suspect t n = Hashtbl.mem t.suspected n

let suspect t n =
  if n <> t.id && not (Hashtbl.mem t.suspected n) then begin
    Hashtbl.replace t.suspected n ();
    Metrics.incr t.metrics "fd.suspect"
  end

(* Any direct sign of life trumps hints and strikes. *)
let clear_suspect t n =
  Hashtbl.remove t.strikes n;
  if Hashtbl.mem t.suspected n then begin
    Hashtbl.remove t.suspected n;
    Metrics.incr t.metrics "fd.clear"
  end

(* One RPC timeout is weak evidence (the peer may be slow, the reply may
   have been lost); two in a row with nothing heard in between is enough
   to suspect. *)
let strike t n =
  let k = 1 + Option.value (Hashtbl.find_opt t.strikes n) ~default:0 in
  Hashtbl.replace t.strikes n k;
  if k >= 2 then suspect t n

(* Order location candidates so suspected nodes are asked last, never
   skipped: suspicion is a hint, and liveness must survive a wrong one. *)
let prioritise_live t nodes =
  let live, dubious = List.partition (fun n -> not (is_suspect t n)) nodes in
  live @ dubious

(* ------------------------------------------------------------------ *)
(* Tracing helpers                                                     *)
(* ------------------------------------------------------------------ *)

(* Open a span under an operation context. All span creation funnels
   through here so the disabled path is one branch and no attribute list
   is built. Background contexts (null span) stay span-free: only work
   rooted in a traced client operation lands in the trace tree, so one
   operation reads as exactly one connected trace. *)
let span_of t ctx name attrs =
  if Trace.enabled () && not (Trace.is_null (Op_ctx.span ctx)) then
    Trace.child ~engine:t.engine ~node:t.id ~attrs:(attrs ())
      ~parent:(Op_ctx.span ctx) name
  else Trace.null

let finish_span ?(attrs = fun () -> []) t span =
  if not (Trace.is_null span) then
    Trace.finish ~engine:t.engine ~attrs:(attrs ()) span

let finish_status t span status =
  finish_span ~attrs:(fun () -> [ ("status", status) ]) t span

(* Effective per-attempt timeout honouring the context deadline. *)
let budgeted_timeout t ctx default =
  match Op_ctx.remaining ctx ~now:(Ksim.Engine.now t.engine) with
  | Some left -> min left default
  | None -> default

(* ------------------------------------------------------------------ *)
(* Machines and CM action interpretation                               *)
(* ------------------------------------------------------------------ *)

let zero_page region =
  Bytes.make region.Region.attr.Attr.page_size '\000'

let replica_targets t (region : Region.t) =
  let home_cluster = Topology.cluster_of t.topology region.home in
  let members =
    List.filter (fun n -> n <> region.home)
      (Topology.cluster_members t.topology home_cluster)
  in
  (* Rotate by region identity so replicas spread over the cluster instead
     of piling onto the lowest-numbered nodes. *)
  match members with
  | [] -> []
  | _ :: _ ->
    let k = Gaddr.hash region.base mod List.length members in
    let rec rotate i = function
      | [] -> []
      | x :: rest as l -> if i = 0 then l else rotate (i - 1) (rest @ [ x ])
    in
    rotate k members

let machine_config t (region : Region.t) =
  {
    Ctypes.self = t.id;
    home = region.home;
    min_replicas = region.attr.Attr.min_replicas;
    replica_targets = replica_targets t region;
    request_timeout = t.cfg.request_timeout;
    propagate_every = Ksim.Time.ms 100;
    version_chain_depth = t.cfg.version_chain_depth;
  }

(* ------------------------------------------------------------------ *)
(* Write-ahead intent log notes                                        *)
(* ------------------------------------------------------------------ *)

(* Persistent metadata flows through the WAL as tagged notes; recovery
   re-applies them in log order ([apply_note] below). Page data takes the
   transactional [Wal.log_page] path from the Install action instead. *)

let encode_region region =
  let e = Codec.encoder () in
  Region.encode e region;
  Codec.to_bytes e

let note_homed_put t region =
  Wal.control t.wal "homed.put" (encode_region region)

let note_homed_del t base =
  let e = Codec.encoder () in
  Codec.u128 e base;
  Wal.control t.wal "homed.del" (Codec.to_bytes e)

(* Directory entries for locally-homed pages are the persistent part of the
   page directory. Creation is hint-grade (losing the note merely delays
   the eager post-recovery rebuild until first touch), so it rides unsynced;
   sharer-list updates are synced — an under-approximated sharer set leaves
   stale copies that nothing can revoke. *)
let pdir_ensure_logged t ~page ~region_base ~homed_here =
  let fresh = Page_directory.find t.pdir page = None in
  let entry = Page_directory.ensure t.pdir ~page ~region_base ~homed_here in
  if homed_here && fresh then begin
    let e = Codec.encoder () in
    Codec.u128 e page;
    Codec.u128 e region_base;
    Wal.control t.wal ~sync:false "pdir.ensure" (Codec.to_bytes e)
  end;
  entry

let note_pdir_sharers t ~page ~region_base sharers =
  let e = Codec.encoder () in
  Codec.u128 e page;
  Codec.u128 e region_base;
  Codec.list e (fun n -> Codec.int e n) sharers;
  Wal.control t.wal "pdir.sharers" (Codec.to_bytes e)

let rec machine_for t (region : Region.t) page =
  match Gaddr.Table.find_opt t.machines page with
  | Some slot -> slot
  | None ->
    let init =
      if region.home = t.id && region.state = Region.Allocated then begin
        (* The home materialises pages lazily: disk content if it survives,
           zeroes for never-written pages. *)
        let data =
          match Store.read_immediate t.store page with
          | Some bytes -> bytes
          | None ->
            let z = zero_page region in
            Store.write_immediate t.store page z ~dirty:false;
            z
        in
        Ctypes.Start_owner data
      end
      else Ctypes.Start_unknown
    in
    let packed =
      match
        Kconsistency.Registry.instantiate region.attr.Attr.protocol
          (machine_config t region) init
      with
      | Some p -> p
      | None ->
        (* Attr.make validated the protocol name; reaching here means the
           registry changed underneath us. *)
        failwith ("unknown consistency protocol " ^ region.attr.Attr.protocol)
    in
    let slot = { region; packed } in
    let prior_sharers =
      match (init, Page_directory.find t.pdir page) with
      | Ctypes.Start_owner _, Some entry ->
        List.filter (fun n -> n <> t.id) entry.Page_directory.sharers
      | (Ctypes.Start_owner _ | Ctypes.Start_unknown), _ -> []
    in
    Gaddr.Table.replace t.machines page slot;
    ignore
      (pdir_ensure_logged t ~page ~region_base:region.base
         ~homed_here:(region.home = t.id));
    (* A home machine materialising over an existing directory record is a
       reincarnation: the previous one died with nodes still holding
       copies. Seed the new machine with them — whichever path rebuilds
       first (client op, incoming CM message, or the repair loop) — or
       those copies become stale yet revocable by nothing. *)
    if prior_sharers <> [] then
      feed t ~span:Trace.null slot page
        (Ctypes.Reincarnate { version = 0; sharers = prior_sharers });
    slot

(* [span] is the trace position of whatever caused this machine step; it
   rides on every CM message we send out, so a lock request's protocol
   conversation (requester -> home -> owner -> requester) forms one
   causally-linked chain across nodes. *)
and apply_actions t ~span slot page actions =
  List.iter
    (fun action ->
      match action with
      | Ctypes.Send (dst, body) ->
        (* CM traffic is coalescable: all pages a machine cascade touches
           at one instant toward the same peer (a multi-page invalidation
           fan-out, a window of grants) share one batch envelope. *)
        Wire.Transport.notify t.transport ~src:t.id ~dst ~span:(Trace.id span)
          ~coalesce:true
          (Wire.Cm_msg { page; region_base = slot.region.Region.base; body });
        (* Fail fast on suspected peers (the moral equivalent of a
           connection refused): tell the machine the peer is unreachable,
           so managers fail over immediately instead of burning their
           whole retry budget. The suspicion list is fed by missed
           heartbeats, so crashed and partitioned nodes look the same
           here — no liveness oracle. Deliberately NOT a synthetic
           Evict_notify: suspicion is not evidence the peer's copy is
           gone, and the machine must keep it in its books so a later
           write still revokes a partitioned holder's stale copy. *)
        if dst <> t.id && is_suspect t dst then begin
          let epoch = t.epoch in
          ignore
            (Ksim.Engine.schedule t.engine ~after:(Ksim.Time.us 50) (fun () ->
                 if t.up && t.epoch = epoch then
                   match Gaddr.Table.find_opt t.machines page with
                   | Some slot ->
                     feed t ~span:Trace.null slot page
                       (Ctypes.Unreachable { node = dst })
                   | None -> ()))
        end
      | Ctypes.Grant req -> (
        match Hashtbl.find_opt t.pending req with
        | Some promise ->
          Hashtbl.remove t.pending req;
          ignore (Ksim.Promise.try_resolve promise (Ok ()))
        | None -> ())
      | Ctypes.Reject (req, Ctypes.Unavailable why) -> (
        match Hashtbl.find_opt t.pending req with
        | Some promise ->
          Hashtbl.remove t.pending req;
          ignore (Ksim.Promise.try_resolve promise (Error (`Unavailable why)))
        | None -> ())
      | Ctypes.Install { data; dirty } ->
        (* The machine just synced this exact image with the store — if it
           is a pinned committed 2PC image, the CM has caught up (the
           coordinator's write-lock release propagated it) and the pin's
           repair pass is no longer needed. An install of *different*
           bytes keeps the pin: that is the stale pre-transaction copy
           resurfacing through dead-owner fail-over, exactly what the pin
           exists to overwrite. *)
        (match Gaddr.Table.find_opt t.txn_pins page with
         | Some pin when Bytes.equal pin.pin_img data ->
           Gaddr.Table.remove t.txn_pins page
         | Some _ | None -> ());
        if Trace.enabled () then
          Trace.event ~engine:t.engine ~node:t.id ~span "store.install"
            ~attrs:
              [ ("page", Gaddr.to_string page);
                ("dirty", string_of_bool dirty) ];
        (* The home is the page's disk-backed authority. Write-ahead: the
           committed image reaches the intent log (synced by commit)
           before the store, so a crash that eats the lazy, unsynced disk
           flush still recovers the bytes by replay. Remote caches stay
           RAM-only and unlogged. *)
        if dirty && slot.region.Region.home = t.id then begin
          let tx = Wal.begin_tx t.wal in
          Wal.log_page t.wal tx page data;
          Wal.commit t.wal tx;
          Store.write_immediate t.store page data ~dirty;
          Store.flush_immediate t.store page
        end
        else Store.write_immediate t.store page data ~dirty
      | Ctypes.Discard -> Store.drop t.store page
      | Ctypes.Start_timer { id; after } ->
        let epoch = t.epoch in
        ignore
          (Ksim.Engine.schedule t.engine ~after (fun () ->
               if t.up && t.epoch = epoch then
                 match Gaddr.Table.find_opt t.machines page with
                 | Some slot ->
                   feed t ~span:Trace.null slot page (Ctypes.Timeout id)
                 | None -> ()))
      | Ctypes.Sharers_hint sharers ->
        let homed_here = slot.region.Region.home = t.id in
        ignore
          (pdir_ensure_logged t ~page ~region_base:slot.region.Region.base
             ~homed_here);
        Page_directory.set_sharers t.pdir page sharers;
        if homed_here then
          note_pdir_sharers t ~page ~region_base:slot.region.Region.base
            sharers)
    actions

and feed t ~span slot page event =
  let hook =
    if Trace.enabled () then
      Some
        (fun (tr : Machine.transition) ->
          Trace.event ~engine:t.engine ~node:t.id ~span "cm.transition"
            ~attrs:
              [ ("page", Gaddr.to_string page);
                ("protocol", Machine.packed_name slot.packed);
                ("event", Ctypes.event_kind tr.Machine.t_event);
                ("from", tr.Machine.t_before);
                ("to", tr.Machine.t_after) ])
    else None
  in
  apply_actions t ~span slot page (Machine.handle_packed ?hook slot.packed event)

(* Local storage victimised a page: tell its machine. *)
let on_evict t page data ~dirty =
  match Gaddr.Table.find_opt t.machines page with
  | Some slot -> feed t ~span:Trace.null slot page (Ctypes.Evicted { data; dirty })
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Region location (§3.2)                                              *)
(* ------------------------------------------------------------------ *)

let homed_containing t addr =
  Gaddr.Table.fold
    (fun _ r acc ->
      match acc with Some _ -> acc | None -> if Region.contains r addr then Some r else None)
    t.homed None

(* Every remote hop is a span under the caller's context, and the span id
   travels in the RPC envelope so the peer's dispatch nests under it. *)
let rpc t ctx ?policy ~dst req =
  let span =
    span_of t ctx ("rpc." ^ Wire.request_kind req) (fun () ->
        [ ("dst", string_of_int dst) ])
  in
  (* Unless the caller picked one (2PC traffic uses [Policy.idempotent]),
     the per-attempt timeout comes from a jittered policy: the base equals
     the old fixed rpc_timeout, jittered (from this daemon's own rng, so
     simulation schedules are unchanged) so simultaneous retriers and
     their upstream retry loops decorrelate. *)
  let policy =
    match policy with
    | Some p -> p
    | None ->
      Wire.Policy.jittered ~rng:t.rng ~base:t.cfg.rpc_timeout
        ~cap:t.cfg.retry_backoff_cap ()
  in
  let r =
    Wire.Transport.call t.transport ~src:t.id ~dst ~policy ~span:(Trace.id span)
      req
  in
  (match r with
   | Ok _ ->
     clear_suspect t dst;
     finish_span t span
   | Error `Timeout ->
     strike t dst;
     Metrics.incr t.metrics "rpc.timeout";
     finish_status t span "timeout"
   | Error `Unreachable ->
     strike t dst;
     Metrics.incr t.metrics "rpc.unreachable";
     finish_status t span "unreachable");
  r

(* The map region descriptor is well-known bootstrap state. *)
let map_region t = Layout.map_region ~bootstrap_node:t.bootstrap

(* -- low-level single-page lock used by both clients and the map IO -- *)

let acquire_page t ctx (region : Region.t) page mode ~timeout =
  let span =
    span_of t ctx "cm.acquire" (fun () ->
        [ ("page", Gaddr.to_string page);
          ("mode", Ctypes.mode_to_string mode) ])
  in
  let slot = machine_for t region page in
  let req = t.next_req in
  t.next_req <- t.next_req + 1;
  let promise = Ksim.Promise.create () in
  Hashtbl.replace t.pending req promise;
  feed t ~span slot page (Ctypes.Acquire { req; mode });
  match Ksim.Fiber.await_timeout t.engine promise ~timeout with
  | Some result ->
    Hashtbl.remove t.pending req;
    (match result with
     | Ok () ->
       Metrics.incr t.metrics "page.grant";
       finish_status t span "grant"
     | Error e ->
       Metrics.incr t.metrics "page.reject";
       finish_status t span (error_to_string e));
    result
  | None ->
    Hashtbl.remove t.pending req;
    (match Gaddr.Table.find_opt t.machines page with
     | Some slot -> feed t ~span slot page (Ctypes.Abort { req })
     | None -> ());
    Metrics.incr t.metrics "page.timeout";
    finish_status t span "timeout";
    Error `Timeout

let release_page t ctx (region : Region.t) page mode ~data =
  match Gaddr.Table.find_opt t.machines page with
  | Some slot ->
    feed t ~span:(Op_ctx.span ctx) slot page (Ctypes.Release { mode; data })
  | None ->
    ignore region;
    () (* crash wiped the machine; nothing to release *)

(* Release every page of a (possibly partial) multi-page lock in one pass.
   Shared by unlock and the acquisition rollback paths so their per-page
   bookkeeping cannot drift: [unpin] drops the storage pins unlock took,
   [written] propagates dirty images for pages the context wrote. Rollback
   of a never-granted context passes neither — the pages were never pinned
   and carry no data. *)
let release_pages t ctx (region : Region.t) mode ?(unpin = false) ?written
    pages =
  List.iter
    (fun page ->
      if unpin then Store.unpin t.store page;
      (* Versioned regions release without data: propagation happens via
         the publish path (unlock), not inside the machine's Release. *)
      let data =
        match written with
        | Some tbl
          when mode = Ctypes.Write
               && Gaddr.Table.mem tbl page
               && not (versioned_region region) ->
          Store.read_immediate t.store page
        | _ -> None
      in
      release_page t ctx region page mode ~data)
    pages

(* -- address map IO over our own lock/read/write primitives -- *)

(* Raised when map pages cannot be locked or fetched (home unreachable);
   caught at the operation boundary and reflected as [`Unavailable]. *)
exception Map_unavailable of string

let map_page_read t ctx i =
  let region = map_region t in
  let page = Layout.map_page_addr i in
  match acquire_page t ctx region page Ctypes.Read ~timeout:t.cfg.lock_timeout with
  | Error e ->
    raise (Map_unavailable ("map read: " ^ error_to_string e))
  | Ok () ->
    let bytes = Store.read_immediate t.store page in
    release_page t ctx region page Ctypes.Read ~data:None;
    (match bytes with
     | Some b -> Address_map.Node.decode b
     | None -> raise (Map_unavailable "map page vanished under read lock"))

let map_page_write_locked t i node =
  (* Caller holds the write lock on page i. *)
  let page = Layout.map_page_addr i in
  Store.write_immediate t.store page (Address_map.Node.encode node) ~dirty:true

let map_io t ctx : Address_map.io =
  let read_page i = map_page_read t ctx i in
  let mutate f =
    let region = map_region t in
    let root_page = Layout.map_page_addr 0 in
    match acquire_page t ctx region root_page Ctypes.Write ~timeout:t.cfg.lock_timeout with
    | Error e -> raise (Map_unavailable ("map mutation: " ^ error_to_string e))
    | Ok () ->
      let root =
        match Store.read_immediate t.store root_page with
        | Some b -> Address_map.Node.decode b
        | None -> raise (Map_unavailable "map root missing")
      in
      let write i node =
        if i = 0 then map_page_write_locked t 0 node
        else begin
          let page = Layout.map_page_addr i in
          match acquire_page t ctx region page Ctypes.Write ~timeout:t.cfg.lock_timeout with
          | Error e -> raise (Map_unavailable ("map write: " ^ error_to_string e))
          | Ok () ->
            map_page_write_locked t i node;
            let data = Store.read_immediate t.store page in
            release_page t ctx region page Ctypes.Write ~data
        end
      in
      let read i = if i = 0 then root else read_page i in
      Fun.protect
        ~finally:(fun () ->
          (* Always rewrite + release the root so its write propagates. *)
          let data = Store.read_immediate t.store root_page in
          release_page t ctx region root_page Ctypes.Write ~data)
        (fun () ->
          f ~root ~read ~write;
          map_page_write_locked t 0 root)
  in
  { Address_map.read_page; mutate }

let bootstrap_map t =
  if t.id <> t.bootstrap then invalid_arg "Daemon.bootstrap_map: wrong node";
  let region = map_region t in
  Gaddr.Table.replace t.homed region.Region.base region;
  note_homed_put t region;
  let root = Address_map.Node.empty_root () in
  Store.write_immediate t.store (Layout.map_page_addr 0)
    (Address_map.Node.encode root) ~dirty:false;
  (* Record the map region itself in the map, so tree walks can resolve
     metadata addresses uniformly. *)
  let io = map_io t Op_ctx.background in
  match
    Address_map.insert io
      {
        Address_map.base = region.Region.base;
        len = region.Region.len;
        page_size = Layout.map_page_size;
        homes = [ t.bootstrap ];
      }
  with
  | Ok () -> ()
  | Error e -> failwith ("bootstrap_map: " ^ e)

(* Fetch a descriptor from one of the candidate holder nodes; suspected
   holders are asked last so a healthy candidate answers first. *)
let fetch_descriptor t ctx ~addr candidates =
  let rec try_nodes = function
    | [] -> None
    | node :: rest ->
      if node = t.id then try_nodes rest
      else begin
        match rpc t ctx ~dst:node (Wire.Get_descriptor { addr }) with
        | Ok (Wire.R_descriptor (Some desc)) -> Some desc
        | Ok (Wire.R_descriptor None) | Ok _ | Error (`Timeout | `Unreachable) -> try_nodes rest
      end
  in
  try_nodes (prioritise_live t candidates)

let rec locate_region_once ?(walk = false) t ctx addr =
  if Region.contains (map_region t) addr then Ok (map_region t)
  else
    match homed_containing t addr with
    | Some r ->
      t.stats <- { t.stats with homed_hits = t.stats.homed_hits + 1 };
      Metrics.incr t.metrics "locate.homed_hit";
      Ok r
    | None -> (
      match Region_directory.find t.rdir addr with
      | Some r ->
        t.stats <- { t.stats with rdir_hits = t.stats.rdir_hits + 1 };
        Metrics.incr t.metrics "locate.rdir_hit";
        Ok r
      | None -> (
        (* Ask the cluster manager before touching the tree (§3.5). *)
        let from_cluster =
          if t.cluster_manager = t.id then
            match t.cm_state with
            | Some cm -> (
              match Cluster.lookup cm addr with
              | Some desc, _ -> Some desc
              | None, _ -> None)
            | None -> None
          else
            match rpc t ctx ~dst:t.cluster_manager (Wire.Cluster_lookup { addr }) with
            | Ok (Wire.R_lookup { desc = Some desc; _ }) -> Some desc
            | Ok (Wire.R_lookup { desc = None; holders = _ }) -> None
            | Ok _ | Error (`Timeout | `Unreachable) -> None
        in
        match from_cluster with
        | Some desc ->
          t.stats <- { t.stats with cluster_hits = t.stats.cluster_hits + 1 };
          Metrics.incr t.metrics "locate.cluster_hit";
          Region_directory.put t.rdir desc;
          Ok desc
        | None -> (
          (* Full address-map tree walk. *)
          match Address_map.lookup (map_io t ctx) addr with
          | exception Map_unavailable why -> cluster_walk t ctx addr why
          | result ->
          t.stats <-
            { t.stats with
              map_walks = t.stats.map_walks + 1;
              map_walk_depth_total = t.stats.map_walk_depth_total + result.Address_map.depth;
            };
          Metrics.incr t.metrics "locate.map_walk";
          match result.Address_map.entry with
          | Some entry -> (
            match fetch_descriptor t ctx ~addr entry.Address_map.homes with
            | Some desc ->
              Region_directory.put t.rdir desc;
              Ok desc
            | None -> cluster_walk t ctx addr "region home unreachable")
          | None ->
            (* An absent entry usually means a release-consistent map
               update is still in flight; the caller's retry loop handles
               that. Walk the clusters only on the final attempt. *)
            if walk then cluster_walk t ctx addr "address not reserved"
            else begin
              t.stats <- { t.stats with failures = t.stats.failures + 1 };
              Metrics.incr t.metrics "locate.failure";
              Error (`Unavailable "address not reserved")
            end)))

(* "If the set of nodes specified in a given region's address map entry is
   stale, the region can still be located using a cluster-walk algorithm"
   (§3.1): when the tree fails us — stale homes, or the map itself
   unavailable — ask the other clusters' managers whether anyone nearby
   caches the region. *)
and cluster_walk t ctx addr fallback_error =
  let rec walk = function
    | [] ->
      t.stats <- { t.stats with failures = t.stats.failures + 1 };
      Metrics.incr t.metrics "locate.failure";
      Error (`Unavailable fallback_error)
    | manager :: rest -> (
      match rpc t ctx ~dst:manager (Wire.Cluster_walk { addr }) with
      | Ok (Wire.R_lookup { desc = Some desc; _ }) ->
        t.stats <- { t.stats with cluster_walks = t.stats.cluster_walks + 1 };
        Metrics.incr t.metrics "locate.cluster_walk";
        Region_directory.put t.rdir desc;
        Ok desc
      | Ok (Wire.R_lookup { desc = None; holders }) -> (
        (* No descriptor hint, but maybe holder nodes we can query. *)
        match fetch_descriptor t ctx ~addr holders with
        | Some desc ->
          t.stats <- { t.stats with cluster_walks = t.stats.cluster_walks + 1 };
          Metrics.incr t.metrics "locate.cluster_walk";
          Region_directory.put t.rdir desc;
          Ok desc
        | None -> walk rest)
      | Ok _ | Error (`Timeout | `Unreachable) -> walk rest)
  in
  walk (prioritise_live t t.peer_managers)

(* "Khazana operations are repeatedly tried ... until they succeed or
   timeout" (§3.5). A miss may just mean a release-consistent map update is
   still in flight, so back off briefly and retry before reflecting the
   error. *)
let locate_region_in t ctx addr =
  let t0 = Ksim.Engine.now t.engine in
  let span =
    span_of t ctx "daemon.locate" (fun () -> [ ("addr", Gaddr.to_string addr) ])
  in
  let ctx = Op_ctx.with_span ctx span in
  let backoff =
    Kutil.Backoff.make ~rng:t.rng ~base:(Ksim.Time.ms 25)
      ~cap:t.cfg.retry_backoff_cap ()
  in
  let rec go attempt =
    match locate_region_once ~walk:(attempt >= 3) t ctx addr with
    | Ok _ as ok -> ok
    | Error _ as e when attempt >= 4 -> e
    | Error _ ->
      Ksim.Fiber.sleep (Kutil.Backoff.next backoff);
      go (attempt + 1)
  in
  let result = go 0 in
  Metrics.observe t.metrics "locate.ms"
    (Ksim.Time.to_ms_f (Ksim.Engine.now t.engine - t0));
  (match result with
   | Ok _ -> finish_status t span "ok"
   | Error e -> finish_status t span (error_to_string e));
  result

let locate_region t ?(ctx = Op_ctx.background) addr = locate_region_in t ctx addr

(* ------------------------------------------------------------------ *)
(* Client operations                                                   *)
(* ------------------------------------------------------------------ *)

let round_up len page_size = (len + page_size - 1) / page_size * page_size

let take_from_pool t len =
  let rec go acc = function
    | [] -> None
    | (base, span) :: rest ->
      if span >= len then begin
        let remainder =
          if span > len then [ (Gaddr.add_int base len, span - len) ] else []
        in
        t.pool <- List.rev_append acc (remainder @ rest);
        Some base
      end
      else go ((base, span) :: acc) rest
  in
  go [] t.pool

(* Fold a freshly granted chunk into the pool, coalescing with an adjacent
   span so that reservations larger than one chunk can be satisfied from
   consecutive grants. *)
let add_chunk_to_pool t base len =
  let rec merge acc = function
    | [] -> List.rev ((base, len) :: acc)
    | (b, l) :: rest when Gaddr.equal (Gaddr.add_int b l) base ->
      List.rev_append acc ((b, l + len) :: rest)
    | span :: rest -> merge (span :: acc) rest
  in
  t.pool <- merge [] t.pool

let request_chunk t ctx =
  if t.cluster_manager = t.id then
    match t.cm_state with
    | Some cm ->
      let base, len = Cluster.next_chunk cm in
      add_chunk_to_pool t base len;
      true
    | None -> false
  else
    match rpc t ctx ~dst:t.cluster_manager Wire.Chunk_request with
    | Ok (Wire.R_chunk { base; len }) ->
      add_chunk_to_pool t base len;
      true
    | Ok _ | Error (`Timeout | `Unreachable) -> false

(* Client-facing entry points refuse while the daemon is down or still in
   its recovery replay window: granting from half-rebuilt state could hand
   out pages the replay is about to overwrite. *)
let down_guard t = if t.up then None else Some (`Unavailable "node down")

let reserve t ?attr ~ctx len =
  match down_guard t with
  | Some e -> Error e
  | None ->
  let span =
    span_of t ctx "daemon.reserve" (fun () ->
        [ ("len", string_of_int len) ])
  in
  let ctx = Op_ctx.with_span ctx span in
  let attr =
    match attr with
    | Some a -> a
    | None -> Attr.make ~owner:(Op_ctx.principal ctx) ()
  in
  let page_size = attr.Attr.page_size in
  let len = round_up (max len 1) page_size in
  let rec obtain attempts =
    match take_from_pool t len with
    | Some base -> Some base
    | None ->
      if attempts > 0 && request_chunk t ctx then obtain (attempts - 1)
      else None
  in
  (* A reservation larger than the chunk size needs several chunks; chunks
     are contiguous per cluster so consecutive grants coalesce. *)
  let needed_chunks = (len / Layout.chunk_size) + 2 in
  let result =
    match obtain needed_chunks with
    | None -> Error (`Unavailable "no address space available")
    | Some base -> (
      let region = Region.make ~base ~len ~attr ~home:t.id in
      match
        Address_map.insert (map_io t ctx)
          { Address_map.base; len; page_size; homes = [ t.id ] }
      with
      | Error e -> Error (`Conflict e)
      | Ok () ->
        Gaddr.Table.replace t.homed base region;
        note_homed_put t region;
        Region_directory.put t.rdir region;
        Ok region)
  in
  (match result with
   | Ok _ -> finish_status t span "ok"
   | Error e -> finish_status t span (error_to_string e));
  result

(* Release-class operations retry in the background until they succeed
   (paper §3.5): errors while releasing resources are never reflected.
   Re-attempts back off exponentially (jittered, capped) instead of
   hammering an unreachable home at a fixed period. *)
let background_retry t ~name f =
  let epoch = t.epoch in
  let backoff =
    Kutil.Backoff.make ~rng:t.rng ~base:t.cfg.background_retry_every
      ~cap:t.cfg.retry_backoff_cap ()
  in
  let rec attempt () =
    if t.up && t.epoch = epoch then
      if not (f ()) then
        Ksim.Fiber.spawn_after t.engine ~after:(Kutil.Backoff.next backoff)
          ~name (fun () -> attempt ())
  in
  Ksim.Fiber.spawn t.engine ~name (fun () -> attempt ())

let allocate_local t (region : Region.t) =
  let allocated = Region.allocated region in
  Gaddr.Table.replace t.homed region.Region.base allocated;
  note_homed_put t allocated;
  Region_directory.put t.rdir allocated

let allocate t ~ctx base =
  match down_guard t with
  | Some e -> Error e
  | None ->
  let span =
    span_of t ctx "daemon.allocate" (fun () ->
        [ ("base", Gaddr.to_string base) ])
  in
  let ctx = Op_ctx.with_span ctx span in
  let result =
    match locate_region_in t ctx base with
    | Error e -> Error e
    | Ok region ->
      if not (Gaddr.equal region.Region.base base) then Error `Bad_range
      else if region.Region.state = Region.Allocated then Ok ()
      else if region.Region.home = t.id then begin
        allocate_local t region;
        Ok ()
      end
      else begin
        match rpc t ctx ~dst:region.Region.home (Wire.Alloc_region { desc = region }) with
        | Ok Wire.R_unit ->
          let allocated = Region.allocated region in
          Region_directory.put t.rdir allocated;
          Ok ()
        | Ok (Wire.R_error e) -> Error (`Unavailable e)
        | Ok _ -> Error (`Rpc "unexpected response to alloc_region")
        | Error (`Timeout as e) | Error (`Unreachable as e) -> Error e
      end
  in
  (match result with
   | Ok () -> finish_status t span "ok"
   | Error e -> finish_status t span (error_to_string e));
  result

let free_local t base =
  match Gaddr.Table.find_opt t.homed base with
  | None -> true
  | Some region ->
    (* The whole free is one logged intent: without the transaction, a
       crash between page drops would resurrect half the region's pages at
       replay and not the rest. *)
    let reserved = { region with Region.state = Region.Reserved } in
    let pages = Region.pages region in
    let tx = Wal.begin_tx t.wal in
    List.iter
      (fun page ->
        let e = Codec.encoder () in
        Codec.u128 e page;
        Wal.log_note t.wal tx "page.free" (Codec.to_bytes e))
      pages;
    Wal.log_note t.wal tx "homed.put" (encode_region reserved);
    Wal.commit t.wal tx;
    List.iter
      (fun page ->
        Gaddr.Table.remove t.machines page;
        Store.drop t.store page;
        Page_directory.remove t.pdir page)
      pages;
    Gaddr.Table.replace t.homed base reserved;
    Region_directory.put t.rdir reserved;
    true

let free t ~ctx base =
  if not t.up then ()
  else
  match locate_region_in t ctx base with
  | Error _ -> ()
  | Ok region ->
    Region_directory.remove t.rdir region.Region.base;
    if region.Region.home = t.id then ignore (free_local t base)
    else
      background_retry t ~name:"free" (fun () ->
          match
            rpc t Op_ctx.background ~dst:region.Region.home
              (Wire.Free_region { base })
          with
          | Ok Wire.R_unit -> true
          | Ok _ | Error (`Timeout | `Unreachable) -> false)

let unreserve_local t ctx base =
  ignore (free_local t base);
  Gaddr.Table.remove t.homed base;
  note_homed_del t base;
  Region_directory.remove t.rdir base;
  match Address_map.remove (map_io t ctx) base with
  | true | false -> true

let unreserve t ~ctx base =
  if not t.up then ()
  else
  match locate_region_in t ctx base with
  | Error _ -> ()
  | Ok region ->
    Region_directory.remove t.rdir base;
    if region.Region.home = t.id then
      background_retry t ~name:"unreserve" (fun () ->
          unreserve_local t Op_ctx.background base)
    else
      background_retry t ~name:"unreserve" (fun () ->
          match
            rpc t Op_ctx.background ~dst:region.Region.home
              (Wire.Unreserve_region { base })
          with
          | Ok Wire.R_unit -> true
          | Ok _ | Error (`Timeout | `Unreachable) -> false)

(* Region directories may serve stale attributes; before acting on a
   denial (or an unallocated state), refetch the descriptor from its home
   so recent set_attr/allocate calls are honoured. *)
let refresh_descriptor t ctx (region : Region.t) =
  if region.Region.home = t.id then
    Gaddr.Table.find_opt t.homed region.Region.base
  else
    match
      rpc t ctx ~dst:region.Region.home
        (Wire.Get_descriptor { addr = region.Region.base })
    with
    | Ok (Wire.R_descriptor (Some fresh)) ->
      Region_directory.put t.rdir fresh;
      Some fresh
    | Ok _ | Error (`Timeout | `Unreachable) -> None

(* Is [page] covered by a prepared-but-undecided transaction at this
   participant? Two-phase locking holds every lock through the decision,
   but a participant that crashed after voting lost its in-memory lock
   state — only the prepared record survives, so it must keep fencing the
   page until resolution. Without the fence a rebuilt home serves (and
   lets writers clobber) the pre-transaction image after the coordinator
   already acknowledged the commit. *)
let in_doubt t page =
  Txid.Table.length t.txn_prepared > 0
  && Txid.Table.fold
       (fun _ entry acc ->
         acc || List.exists (fun (p, _) -> p = page) entry.p_pages)
       t.txn_prepared false

(* Versioned publish: push one lock context's written pages to the region
   home as immutable new versions. Sparse dirty runs ship as [Runs] when
   they cover at most [diff_density_max] of the page and a parent version
   to apply them against is known; otherwise the whole image goes. A home
   whose chain no longer retains the parent answers [Parent_gone] and the
   publish falls back to the whole image — wider, never wrong. Publishes
   that cannot reach the home keep retrying in the background and surface
   as the ambiguous [`Timeout]. A CAS publish ([ctx_expected] set) never
   background-retries — an ambiguous CAS retried later could apply against
   a version counter that has since moved — and surfaces a mismatch as
   [`Conflict] after repairing the local cache to the home's latest, so
   reads here never serve the rejected bytes. *)
let publish_written t ctx lctx =
  let region = lctx.ctx_region in
  let page_size = region.Region.attr.Attr.page_size in
  let expected = lctx.ctx_expected in
  let span = Op_ctx.span ctx in
  let jobs =
    List.filter_map
      (fun page ->
        if not (Gaddr.Table.mem lctx.ctx_written page) then None
        else
          match Store.read_immediate t.store page with
          | None -> None (* evicted under the lock; nothing left to publish *)
          | Some img ->
            let img = Bytes.copy img in
            let parent =
              Option.value
                (Gaddr.Table.find_opt lctx.ctx_parents page)
                ~default:0
            in
            let ranges = Store.dirty_ranges t.store page in
            Store.clear_ranges t.store page;
            let covered = List.fold_left (fun a (_, l) -> a + l) 0 ranges in
            let payload =
              if
                ranges <> [] && parent > 0
                && float_of_int covered
                   <= t.cfg.diff_density_max *. float_of_int page_size
              then
                Ctypes.Runs
                  (List.map (fun (o, l) -> (o, Bytes.sub img o l)) ranges)
              else Ctypes.Whole img
            in
            Some (page, img, parent, payload))
      lctx.ctx_pages
  in
  let publish_one page payload parent =
    if region.Region.home = t.id then begin
      (* Home-local write: mint directly through the machine. *)
      let slot = machine_for t region page in
      let result, actions =
        Machine.packed_publish slot.packed ~src:t.id ~parent ~expected ~payload
      in
      apply_actions t ~span slot page actions;
      Ok result
    end
    else
      match
        rpc t ctx ~dst:region.Region.home
          (Wire.Page_diff
             { page; region_base = region.Region.base; parent; expected;
               payload })
      with
      | Ok (Wire.R_publish result) -> Ok result
      | Ok (Wire.R_error e) -> Error (`Unavailable e)
      | Ok _ -> Error (`Rpc "unexpected response to page_diff")
      | Error ((`Timeout | `Unreachable) as e) -> Error e
  in
  (* Pull the local cache up to a freshly fetched or minted image so local
     reads serve it without a refetch. The absorb is version-gated inside
     the machine: if a concurrent writer already fanned out something
     newer, the newer image stays (last writer won). *)
  let absorb page data version =
    match Gaddr.Table.find_opt t.machines page with
    | Some slot ->
      feed t ~span slot page
        (Ctypes.Peer
           { src = region.Region.home;
             msg = Ctypes.Update { data; version } })
    | None -> ()
  in
  let repair_after_cas_loss page =
    if region.Region.home = t.id then (
      match Gaddr.Table.find_opt t.machines page with
      | Some slot -> (
        match Machine.packed_read_at slot.packed None with
        | Some (data, _) -> Store.write_immediate t.store page data ~dirty:false
        | None -> ())
      | None -> ())
    else
      match
        rpc t ctx ~dst:region.Region.home
          (Wire.Page_version { page; region_base = region.Region.base; at = None })
      with
      | Ok (Wire.R_page (Some (data, version))) ->
        (* The version-gated absorb is a no-op when the cache already sits
           at the home's latest — exactly the common refusal case, where
           only the store holds the rejected bytes. Restore it directly. *)
        Store.write_immediate t.store page data ~dirty:false;
        absorb page data version
      | Ok _ | Error _ -> ()
  in
  let background_republish page img =
    (* Plain LWW publish only: arrival order is the ordering contract, so
       a late retry is simply a late write. *)
    background_retry t ~name:"page-publish" (fun () ->
        match
          rpc t Op_ctx.background ~dst:region.Region.home
            (Wire.Page_diff
               { page; region_base = region.Region.base; parent = 0;
                 expected = None; payload = Ctypes.Whole img })
        with
        | Ok (Wire.R_publish _) -> true
        | Ok _ | Error _ -> false)
  in
  let publish_job (page, img, parent, payload) =
    let result =
      match publish_one page payload parent with
      | Ok (Ctypes.Parent_gone _) ->
        (* The chain GC outran the diff: reapply as a whole image. *)
        publish_one page (Ctypes.Whole img) parent
      | r -> r
    in
    match result with
    | Ok (Ctypes.Published v) ->
      if region.Region.home <> t.id then absorb page img v;
      Ok ()
    | Ok (Ctypes.Cas_mismatch { latest }) ->
      repair_after_cas_loss page;
      Error
        (`Conflict (Printf.sprintf "version mismatch: home at %d" latest))
    | Ok (Ctypes.Parent_gone _) ->
      Error (`Unavailable "publish refused: parent version gone")
    | Ok Ctypes.Publish_unsupported ->
      Error (`Unavailable "protocol refused publish")
    | Error ((`Timeout | `Unreachable) as e) ->
      if expected = None then background_republish page img;
      Metrics.incr t.metrics "publish.retry";
      Error e
    | Error e -> Error e
  in
  List.fold_left
    (fun acc job ->
      match publish_job job with
      | Ok () -> acc
      | Error _ as e -> ( match acc with Ok () -> e | Error _ -> acc))
    (Ok ()) jobs

let lock t ~ctx ~addr ~len mode =
  match down_guard t with
  | Some e -> Error e
  | None ->
  let t0 = Ksim.Engine.now t.engine in
  let op = ctx in
  let span =
    span_of t ctx "daemon.lock" (fun () ->
        [ ("addr", Gaddr.to_string addr);
          ("len", string_of_int len);
          ("mode", Ctypes.mode_to_string mode) ])
  in
  let ctx = Op_ctx.with_span ctx span in
  let principal = Op_ctx.principal ctx in
  let reflect result =
    (match result with
     | Ok _ ->
       Metrics.incr t.metrics "lock.grant";
       Metrics.observe t.metrics "lock.ms"
         (Ksim.Time.to_ms_f (Ksim.Engine.now t.engine - t0));
       finish_status t span "ok"
     | Error `Timeout ->
       Metrics.incr t.metrics "lock.timeout";
       finish_status t span "timeout"
     | Error e ->
       Metrics.incr t.metrics "lock.reject";
       finish_status t span (error_to_string e));
    result
  in
  reflect
  @@
  match locate_region_in t ctx addr with
  | Error e -> Error e
  | Ok region ->
    let region =
      if
        region.Region.state <> Region.Allocated
        || not (Attr.allows region.Region.attr ~principal mode)
      then Option.value (refresh_descriptor t ctx region) ~default:region
      else region
    in
    if not (Region.contains_range region addr ~len) then Error `Bad_range
    else if region.Region.state <> Region.Allocated then Error `Not_allocated
    else if not (Attr.allows region.Region.attr ~principal mode) then
      Error `Access_denied
    else if Op_ctx.expired ctx ~now:(Ksim.Engine.now t.engine) then
      Error `Timeout
    else begin
      (* Computed once; granted contexts carry it as [ctx_pages] so unlock
         and read/write never recompute the page list. *)
      let pages =
        Gaddr.pages_in addr ~len ~page_size:region.Region.attr.Attr.page_size
      in
      if List.exists (fun p -> in_doubt t p) pages then
        Error (`Conflict "transaction in doubt")
      else begin
      (* One backoff across the whole multi-page acquire: every failed
         attempt anywhere in the range widens the pause before the next. *)
      let backoff =
        Kutil.Backoff.make ~rng:t.rng ~base:(Ksim.Time.ms 50)
          ~cap:t.cfg.retry_backoff_cap ()
      in
      let acquire_one page =
        let rec attempt n =
          let timeout = budgeted_timeout t ctx t.cfg.lock_timeout in
          if timeout <= 0 then Error `Timeout
          else
            match acquire_page t ctx region page mode ~timeout with
            | Ok () -> Ok ()
            | Error _ when n > 1 ->
              Ksim.Fiber.sleep (Kutil.Backoff.next backoff);
              attempt (n - 1)
            | Error e -> Error e
        in
        attempt t.cfg.lock_retries
      in
      (* Pipelined acquisition: issue up to [acquire_window] page acquires
         concurrently (each in its own fiber, all sharing the backoff and
         the context deadline), so an N-page lock costs O(N / window)
         round-trip waves instead of N sequential round trips. Rollback
         stays all-or-nothing: any failure releases every page this call
         acquired — prior waves and the failing wave's partial grants. *)
      let window = max 1 t.cfg.acquire_window in
      let rec take n acc = function
        | rest when n = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | p :: rest -> take (n - 1) (p :: acc) rest
      in
      let rec acquire_all acquired remaining =
        match remaining with
        | [] -> Ok (List.rev acquired)
        | _ ->
          let wave, rest = take window [] remaining in
          let results =
            wave
            |> List.map (fun page ->
                   ( page,
                     Ksim.Fiber.async t.engine ~name:"daemon.lock.acquire"
                       (fun () -> acquire_one page) ))
            |> List.map (fun (page, p) -> (page, Ksim.Fiber.await p))
          in
          let granted =
            List.filter_map
              (fun (page, r) -> match r with Ok () -> Some page | Error _ -> None)
              results
          in
          (match
             List.find_map
               (fun (_, r) -> match r with Error e -> Some e | Ok () -> None)
               results
           with
           | Some e ->
             (* Roll back already-acquired pages, including the failing
                wave's partial grants. *)
             release_pages t ctx region mode (List.rev_append acquired granted);
             Error e
           | None -> acquire_all (List.rev_append granted acquired) rest)
      in
      match acquire_all [] pages with
      | Error e -> Error e
      | Ok pages ->
        List.iter (Store.pin t.store) pages;
        (* Versioned write intents remember the home version each page was
           granted at: that version is the parent a publish diffs against,
           and — because versioned grants exclude nobody — the way the home
           tells "applied onto what I have" from "applied onto history". *)
        let parents = Gaddr.Table.create 8 in
        if mode = Ctypes.Write && versioned_region region then
          List.iter
            (fun page ->
              match Gaddr.Table.find_opt t.machines page with
              | Some slot ->
                Gaddr.Table.replace parents page
                  (Machine.packed_version slot.packed)
              | None -> ())
            pages;
        let lctx =
          {
            ctx_id = t.next_ctx;
            ctx_op = op;
            ctx_region = region;
            ctx_addr = addr;
            ctx_len = len;
            ctx_mode = mode;
            ctx_pages = pages;
            ctx_written = Gaddr.Table.create 8;
            ctx_parents = parents;
            ctx_expected = None;
            ctx_publish = Ok ();
            ctx_live = true;
          }
        in
        t.next_ctx <- t.next_ctx + 1;
        Ok lctx
      end
    end

let unlock t ctx =
  if ctx.ctx_live then begin
    ctx.ctx_live <- false;
    let span =
      span_of t ctx.ctx_op "daemon.unlock" (fun () ->
          [ ("addr", Gaddr.to_string ctx.ctx_addr) ])
    in
    let op = Op_ctx.with_span ctx.ctx_op span in
    release_pages t op ctx.ctx_region ctx.ctx_mode ~unpin:true
      ~written:ctx.ctx_written ctx.ctx_pages;
    (* Versioned regions propagate written pages by publishing new
       versions at the home (the Release above carried no data). The
       outcome parks on the context for write_sync/write_cas to report;
       plain unlock stays infallible toward the caller, matching CREW. *)
    if
      ctx.ctx_mode = Ctypes.Write
      && versioned_region ctx.ctx_region
      && Gaddr.Table.length ctx.ctx_written > 0
    then ctx.ctx_publish <- publish_written t op ctx;
    finish_span t span
  end

let ctx_covers ctx addr ~len =
  ctx.ctx_live && len >= 0
  && Gaddr.compare ctx.ctx_addr addr <= 0
  && Gaddr.compare (Gaddr.add_int addr len) (Gaddr.add_int ctx.ctx_addr ctx.ctx_len) <= 0

let read t ctx ~addr ~len =
  if not (ctx_covers ctx addr ~len) then Error `Bad_range
  else begin
    let span =
      span_of t ctx.ctx_op "daemon.read" (fun () ->
          [ ("addr", Gaddr.to_string addr); ("len", string_of_int len) ])
    in
    let page_size = ctx.ctx_region.Region.attr.Attr.page_size in
    let out = Bytes.create len in
    let rec copy addr remaining written =
      if remaining = 0 then Ok ()
      else begin
        let page = Gaddr.page_floor addr ~page_size in
        let off = Gaddr.page_offset addr ~page_size in
        let n = min remaining (page_size - off) in
        if Trace.enabled () then
          Trace.event ~engine:t.engine ~node:t.id ~span "store.read"
            ~attrs:[ ("page", Gaddr.to_string page) ];
        match Store.read t.store page with
        | Some bytes ->
          Bytes.blit bytes off out written n;
          copy (Gaddr.add_int addr n) (remaining - n) (written + n)
        | None -> Error (`Unavailable "page missing from local store")
      end
    in
    let result =
      match copy addr len 0 with Ok () -> Ok out | Error e -> Error e
    in
    (match result with
     | Ok _ -> finish_status t span "ok"
     | Error e -> finish_status t span (error_to_string e));
    result
  end

let write t ctx ~addr data =
  let len = Bytes.length data in
  if ctx.ctx_mode <> Ctypes.Write then Error `Access_denied
  else if not (ctx_covers ctx addr ~len) then Error `Bad_range
  else begin
    let span =
      span_of t ctx.ctx_op "daemon.write" (fun () ->
          [ ("addr", Gaddr.to_string addr); ("len", string_of_int len) ])
    in
    let page_size = ctx.ctx_region.Region.attr.Attr.page_size in
    let rec copy addr remaining consumed =
      if remaining = 0 then Ok ()
      else begin
        let page = Gaddr.page_floor addr ~page_size in
        let off = Gaddr.page_offset addr ~page_size in
        let n = min remaining (page_size - off) in
        if Trace.enabled () then
          Trace.event ~engine:t.engine ~node:t.id ~span "store.write"
            ~attrs:[ ("page", Gaddr.to_string page) ];
        match Store.read t.store page with
        | Some bytes ->
          Bytes.blit data consumed bytes off n;
          Store.write t.store page bytes ~dirty:true;
          Gaddr.Table.replace ctx.ctx_written page ();
          (* Versioned regions track which byte spans actually changed so
             the publish can ship sparse runs instead of the whole page. *)
          if versioned_region ctx.ctx_region then
            Store.note_range t.store page ~off ~len:n;
          copy (Gaddr.add_int addr n) (remaining - n) (consumed + n)
        | None -> Error (`Unavailable "page missing from local store")
      end
    in
    let result = copy addr len 0 in
    (match result with
     | Ok () -> finish_status t span "ok"
     | Error e -> finish_status t span (error_to_string e));
    result
  end

(* Strict plain-write entry point: lock, write, unlock, then push the
   dirty image through to the region home before reporting success. The
   CREW ack-at-unlock leaves the only fresh copy in the writer's RAM; under
   strict consistency that breaks two promises an acknowledged write makes
   — it must survive the writer crashing, and it must be what the home's
   backup serves when read fail-over routes around that crashed writer.
   The write-through keeps both: the home WALs the image and refreshes its
   manager backup before we ack. A flush that cannot reach the home keeps
   retrying in the background and surfaces as the ambiguous [`Timeout] —
   the write may or may not be visible to others yet. *)
(* The write-through itself, shared by plain writes and transaction
   commits: snapshot each page's current image and protocol version and
   push them to the region home. The snapshot runs after the lock release
   bumped the machine version; a page already evicted needs no flush (the
   eviction shipped its bytes home as [Own_return]). Pages that cannot
   reach the home keep flushing in the background; the return value says
   whether everything landed synchronously. *)
let flush_through t ~ctx (region : Region.t) pages =
  let images =
    List.filter_map
      (fun page ->
        match Store.read_immediate t.store page with
        | Some img ->
          let version =
            match Gaddr.Table.find_opt t.machines page with
            | Some slot -> Machine.packed_version slot.packed
            | None -> 0
          in
          Some (page, Bytes.copy img, version)
        | None -> None)
      pages
  in
  let flush (page, img, version) =
    match
      rpc t ctx ~policy:Wire.Policy.idempotent ~dst:region.Region.home
        (Wire.Page_flush
           { page; region_base = region.Region.base; data = img; version })
    with
    | Ok Wire.R_unit -> true
    | Ok _ | Error (`Timeout | `Unreachable) -> false
  in
  match List.filter (fun i -> not (flush i)) images with
  | [] -> true
  | failed ->
    List.iter
      (fun i -> background_retry t ~name:"page-flush" (fun () -> flush i))
      failed;
    false

(* Does an acknowledged write to this region owe the home a synchronous
   write-through? Only strict (CREW) regions homed elsewhere: the home's
   own writes already pass through its WAL and backup. *)
let needs_flush t (region : Region.t) =
  region.Region.home <> t.id
  && region.Region.attr.Attr.protocol = Kconsistency.Crew.name

let write_sync t ~ctx ~addr data =
  match lock t ~ctx ~addr ~len:(Bytes.length data) Ctypes.Write with
  | Error e -> Error e
  | Ok lctx ->
    let result = write t lctx ~addr data in
    let region = lctx.ctx_region in
    let written =
      Gaddr.Table.fold (fun page () acc -> page :: acc) lctx.ctx_written []
    in
    unlock t lctx;
    (match result with
     | Error _ as e -> e
     | Ok () -> (
       match lctx.ctx_publish with
       | Error _ as e -> e (* versioned publish did not settle *)
       | Ok () ->
         if (not (needs_flush t region)) || flush_through t ~ctx region written
         then Ok ()
         else Error `Timeout))

(* Optimistic per-page CAS for versioned regions: publish the write only if
   the home is still at exactly [expected] (obtained from {!page_version}
   or a prior write). [`Conflict] on mismatch — nothing is published and
   the local cache is repaired to the home's latest. Every page the write
   touches shares the one expected version, so the intended use is records
   within a single page. *)
let write_cas t ~ctx ~addr ~expected data =
  match lock t ~ctx ~addr ~len:(Bytes.length data) Ctypes.Write with
  | Error e -> Error e
  | Ok lctx ->
    if not (versioned_region lctx.ctx_region) then begin
      unlock t lctx;
      Error (`Unavailable "write_cas needs the versioned protocol")
    end
    else begin
      let result = write t lctx ~addr data in
      lctx.ctx_expected <- Some expected;
      unlock t lctx;
      match result with Error _ as e -> e | Ok () -> lctx.ctx_publish
    end

(* The home's current version of the page containing [addr] — the token a
   {!write_cas} caller passes back as [expected]. *)
let page_version t ~ctx ~addr =
  match down_guard t with
  | Some e -> Error e
  | None -> (
    match locate_region_in t ctx addr with
    | Error e -> Error e
    | Ok region ->
      if not (versioned_region region) then
        Error (`Unavailable "page_version needs the versioned protocol")
      else
        let page =
          Gaddr.page_floor addr ~page_size:region.Region.attr.Attr.page_size
        in
        if region.Region.home = t.id then begin
          let slot = machine_for t region page in
          match Machine.packed_read_at slot.packed None with
          | Some (_, v) -> Ok v
          | None -> Ok 0
        end
        else
          match
            rpc t ctx ~dst:region.Region.home
              (Wire.Page_version
                 { page; region_base = region.Region.base; at = None })
          with
          | Ok (Wire.R_page (Some (_, v))) -> Ok v
          | Ok (Wire.R_page None) -> Ok 0
          | Ok (Wire.R_error e) -> Error (`Unavailable e)
          | Ok _ -> Error (`Rpc "unexpected response to page_version")
          | Error ((`Timeout | `Unreachable) as e) -> Error e)

(* ------------------------------------------------------------------ *)
(* MVCC snapshots (versioned regions)                                  *)
(* ------------------------------------------------------------------ *)

(* A snapshot is a per-page version pin table: empty at begin, filled
   lazily — the first read of each page pins it at the latest settled
   version that read observed, and every later read of that page through
   the same snapshot serves exactly the pinned version. Reads never
   acquire locks and never trigger invalidations; writers never wait for
   them. The price is expiry: a pin whose version falls off the home's
   bounded chain answers [`Unavailable], and the reader begins a fresh
   snapshot. *)
let snapshot_begin t =
  match down_guard t with
  | Some e -> Error e
  | None ->
    let id = t.next_snap in
    t.next_snap <- t.next_snap + 1;
    Hashtbl.replace t.snapshots id (Gaddr.Table.create 8);
    Metrics.incr t.metrics "snap.begin";
    Ok id

let snapshot_release t snap = Hashtbl.remove t.snapshots snap

(* Fetch [page] at exactly [at] (or latest settled when [None]): the local
   machine first — the home's chain, or a cache copy sitting at the pinned
   version — then the home over the wire. [Ok None] means the version is
   no longer retained anywhere. *)
let snapshot_fetch t ctx (region : Region.t) page at =
  let local =
    match Gaddr.Table.find_opt t.machines page with
    | Some slot -> Machine.packed_read_at slot.packed at
    | None when region.Region.home = t.id ->
      let slot = machine_for t region page in
      Machine.packed_read_at slot.packed at
    | None -> None
  in
  match local with
  | Some _ as r -> Ok r
  | None ->
    if region.Region.home = t.id then Ok None
    else (
      match
        rpc t ctx ~dst:region.Region.home
          (Wire.Page_version { page; region_base = region.Region.base; at })
      with
      | Ok (Wire.R_page r) -> Ok r
      | Ok (Wire.R_error e) -> Error (`Unavailable e)
      | Ok _ -> Error (`Rpc "unexpected response to page_version")
      | Error ((`Timeout | `Unreachable) as e) -> Error e)

let snapshot_read t ~ctx ~snap ~addr ~len =
  match down_guard t with
  | Some e -> Error e
  | None -> (
    match Hashtbl.find_opt t.snapshots snap with
    | None -> Error (`Unavailable "unknown snapshot")
    | Some pins -> (
      match locate_region_in t ctx addr with
      | Error e -> Error e
      | Ok region ->
        if not (versioned_region region) then
          Error (`Unavailable "snapshot reads need the versioned protocol")
        else if not (Region.contains_range region addr ~len) then
          Error `Bad_range
        else begin
          let span =
            span_of t ctx "daemon.snapshot_read" (fun () ->
                [ ("addr", Gaddr.to_string addr);
                  ("len", string_of_int len);
                  ("snap", string_of_int snap) ])
          in
          let ctx = Op_ctx.with_span ctx span in
          let page_size = region.Region.attr.Attr.page_size in
          let out = Bytes.create len in
          let rec copy addr remaining written =
            if remaining = 0 then Ok ()
            else begin
              let page = Gaddr.page_floor addr ~page_size in
              let off = Gaddr.page_offset addr ~page_size in
              let n = min remaining (page_size - off) in
              let fetched =
                match Gaddr.Table.find_opt pins page with
                | Some v -> (
                  match snapshot_fetch t ctx region page (Some v) with
                  | Ok (Some (bytes, _)) -> Ok bytes
                  | Ok None ->
                    Error (`Unavailable "snapshot version expired (chain GC)")
                  | Error e -> Error e)
                | None -> (
                  match snapshot_fetch t ctx region page None with
                  | Ok (Some (bytes, v)) ->
                    Gaddr.Table.replace pins page v;
                    Ok bytes
                  | Ok None -> Error (`Unavailable "page missing at home")
                  | Error e -> Error e)
              in
              match fetched with
              | Error e -> Error e
              | Ok bytes ->
                Bytes.blit bytes off out written n;
                copy (Gaddr.add_int addr n) (remaining - n) (written + n)
            end
          in
          let result =
            match copy addr len 0 with Ok () -> Ok out | Error e -> Error e
          in
          (match result with
           | Ok _ -> finish_status t span "ok"
           | Error e -> finish_status t span (error_to_string e));
          result
        end))

let get_attr t ~ctx addr =
  match down_guard t with
  | Some e -> Error e
  | None ->
  match locate_region_in t ctx addr with
  | Ok region -> Ok region.Region.attr
  | Error e -> Error e

let set_attr t ~ctx base (attr : Attr.t) =
  match down_guard t with
  | Some e -> Error e
  | None ->
  let span =
    span_of t ctx "daemon.set_attr" (fun () ->
        [ ("base", Gaddr.to_string base) ])
  in
  let ctx = Op_ctx.with_span ctx span in
  let principal = Op_ctx.principal ctx in
  let result =
    match locate_region_in t ctx base with
    | Error e -> Error e
    | Ok region ->
      if not (Gaddr.equal region.Region.base base) then Error `Bad_range
      else if principal <> region.Region.attr.Attr.owner then Error `Access_denied
      else begin
        (* Only policy fields may change after creation. *)
        let updated =
          { region.Region.attr with
            Attr.world = attr.Attr.world;
            min_replicas = attr.Attr.min_replicas;
          }
        in
        if region.Region.home = t.id then begin
          let region' = { region with Region.attr = updated } in
          Gaddr.Table.replace t.homed base region';
          note_homed_put t region';
          Region_directory.put t.rdir region';
          Ok ()
        end
        else
          match rpc t ctx ~dst:region.Region.home (Wire.Set_attr { base; attr = updated }) with
          | Ok Wire.R_unit ->
            Region_directory.put t.rdir { region with Region.attr = updated };
            Ok ()
          | Ok (Wire.R_error e) -> Error (`Unavailable e)
          | Ok _ -> Error (`Rpc "unexpected response to set_attr")
          | Error (`Timeout as e) | Error (`Unreachable as e) -> Error e
      end
  in
  (match result with
   | Ok () -> finish_status t span "ok"
   | Error e -> finish_status t span (error_to_string e));
  result

(* ------------------------------------------------------------------ *)
(* Distributed atomic commit: 2PC over the WAL (§4)                    *)
(* ------------------------------------------------------------------ *)

(* The protocol in one paragraph. A transaction buffers writes under
   write-intent (2PL) locks taken through the ordinary pipelined {!lock}
   path. At commit the coordinator computes the new page images, groups
   them by region home, and drives two-phase commit: each participant home
   forces the images plus a [Prepare] record through its WAL (its yes
   vote), then the coordinator forces a [Decide commit] record through its
   own WAL — the commit point — and broadcasts the decision. Presumed
   abort: aborts are never logged at the coordinator, so a participant
   stuck with a prepared-undecided transaction (after any crash) asks the
   coordinator and treats "no record of it" as abort. The decision record
   carries the participant list; it is kept (across checkpoints and
   crashes, via the snapshot) until every participant has acked, then
   forgotten with a [txn.forget] control note. Stale actors are fenced by
   the epoch machinery: a coordinator that crashed mid-vote can never log
   a decision afterwards, which is what makes "no record = abort" safe. *)

let txn_event t ~span gtx name attrs =
  if Trace.enabled () then
    Trace.event ~engine:t.engine ~node:t.id ~span name
      ~attrs:(("txid", Txid.to_string gtx) :: attrs)

(* Participant phase one: force the images and the prepare record, answer
   the vote. Idempotent — a retried prepare for a transaction already
   prepared (or even decided) re-votes yes without re-logging. *)
let participant_prepare t ~span gtx pages =
  if Txid.Table.mem t.txn_decided gtx || Txid.Table.mem t.txn_prepared gtx
  then true
  else begin
    let tx = Wal.begin_tx t.wal in
    List.iter (fun (page, img) -> Wal.log_page t.wal tx page img) pages;
    Wal.prepare t.wal tx gtx;
    Txid.Table.replace t.txn_prepared gtx
      { p_pages = pages; p_since = Ksim.Engine.now t.engine;
        p_querying = false };
    Metrics.incr t.metrics "txn.prepare";
    txn_event t ~span gtx "txn.prepare"
      [ ("pages", string_of_int (List.length pages)) ];
    true
  end

(* Participant phase two: log the decision and, on commit, install the
   prepared images in the local store. Duplicate decisions — and decisions
   for unknown (long-forgotten) transactions — are no-ops. *)
let participant_decide t ~span gtx commit =
  match Txid.Table.find_opt t.txn_prepared gtx with
  | None ->
    if Txid.Table.mem t.txn_decided gtx then
      Metrics.incr t.metrics "txn.decide.dup"
  | Some entry ->
    (* Commit decisions sync (the ack below promises durability); abort
       decisions may ride unsynced — losing one merely re-runs the
       presumed-abort resolution. *)
    Wal.decide t.wal ~sync:commit gtx ~commit ~participants:[];
    if commit then
      List.iter
        (fun (page, img) ->
          (match homed_containing t page with
           | Some region ->
             ignore
               (pdir_ensure_logged t ~page ~region_base:region.Region.base
                  ~homed_here:true)
           | None -> ());
          Store.write_immediate t.store page img ~dirty:false;
          Store.flush_immediate t.store page;
          (* The store now holds the committed image, but a live machine
             for this page still caches (and would keep serving) the
             pre-transaction bytes. Pin the image until the CM catches up
             — see [pin]. *)
          Gaddr.Table.replace t.txn_pins page
            { pin_img = Bytes.copy img;
              pin_since = Ksim.Engine.now t.engine;
              pin_busy = false })
        entry.p_pages;
    Txid.Table.remove t.txn_prepared gtx;
    Txid.Table.replace t.txn_decided gtx commit;
    Metrics.incr t.metrics
      (if commit then "txn.decide.commit" else "txn.decide.abort");
    txn_event t ~span gtx "txn.decide" [ ("commit", string_of_bool commit) ]

(* Coordinator's answer to an in-doubt participant. Order matters: a
   committed transaction must never read as aborted, and one still inside
   its voting window must stall the asker rather than resolve it. *)
let txn_status t gtx =
  if
    Txid.Table.find_opt t.txn_decided gtx = Some true
    || Txid.Table.mem t.txn_decisions gtx
  then Wire.Tx_committed
  else if Txid.Table.mem t.txn_active gtx then Wire.Tx_in_progress
  else Wire.Tx_aborted

(* A participant acked the commit decision: once the last ack is in, the
   decision is garbage — forget it (logged, so replay forgets too). *)
let txn_ack_decide t gtx dst =
  match Txid.Table.find_opt t.txn_decisions gtx with
  | None -> ()
  | Some parts ->
    let rest = List.filter (fun n -> n <> dst) parts in
    if rest = [] then begin
      Txid.Table.remove t.txn_decisions gtx;
      let e = Codec.encoder () in
      Txid.encode e gtx;
      Wal.control t.wal ~sync:false "txn.forget" (Codec.to_bytes e)
    end
    else Txid.Table.replace t.txn_decisions gtx rest

(* ---- the client-side transaction handle ---- *)

type txn = {
  txn_op : Op_ctx.t;
  txn_uid : int;
  mutable txn_locks : lock_ctx list;
  mutable txn_writes : (Gaddr.t * bytes) list;  (* newest first *)
  mutable txn_reads : (Gaddr.t * bytes) list;
      (* stored bytes observed through Read-mode contexts, pre-overlay —
         re-checked if the covering lock is upgraded *)
  mutable txn_snap : int option;
      (* lazily opened MVCC snapshot: reads of versioned regions the
         transaction has not written go through it, lock-free *)
  mutable txn_live : bool;
}

let next_txn_uid = ref 0

let txn_begin t ~ctx =
  ignore t;
  let uid = !next_txn_uid in
  incr next_txn_uid;
  {
    txn_op = ctx;
    txn_uid = uid;
    txn_locks = [];
    txn_writes = [];
    txn_reads = [];
    txn_snap = None;
    txn_live = true;
  }

let txn_uid txn = txn.txn_uid

let txn_release_locks t txn =
  let locks = txn.txn_locks in
  txn.txn_locks <- [];
  List.iter (fun c -> unlock t c) locks;
  (* Called at every transaction exit (commit, abort, kill), so the MVCC
     snapshot dies exactly when the transaction does. *)
  match txn.txn_snap with
  | Some s ->
    snapshot_release t s;
    txn.txn_snap <- None
  | None -> ()

(* The transaction lost lock coverage it had relied on (failed upgrade):
   its observations are no longer protected, so it cannot be allowed to
   commit. Buffered writes are dropped; nothing was staged. *)
let txn_kill t txn =
  txn.txn_live <- false;
  txn.txn_writes <- [];
  txn.txn_reads <- [];
  Metrics.incr t.metrics "txn.abort";
  txn_release_locks t txn

(* After re-acquiring released read ranges in Write mode, re-read every
   recorded observation the new contexts cover: a writer that slipped
   into the release window must turn the upgrade into an abort, not a
   lost update. *)
let txn_validate_reads t txn new_ctxs =
  let rec go = function
    | [] -> Ok ()
    | (addr, seen) :: rest -> (
      let len = Bytes.length seen in
      match List.find_opt (fun c -> ctx_covers c addr ~len) new_ctxs with
      | None -> go rest
      | Some c -> (
        match read t c ~addr ~len with
        | Error e -> Error e
        | Ok now ->
          if Bytes.equal now seen then go rest
          else Error (`Conflict "read range changed during lock upgrade")))
  in
  go txn.txn_reads

(* Strict two-phase locking with shared read locks: a range first touched
   by [txn_read] is locked in [Read] mode (read-mostly transactions no
   longer serialize against each other), a written range in [Write] mode,
   and all locks are held to the end. Writing a range held only in Read
   mode upgrades it by release-reacquire-validate: an in-place upgrade
   would self-deadlock (the local lock table grants Write only at zero
   readers, and we are one of the readers), so the Read contexts are
   released, re-acquired in Write mode, and the observations they covered
   re-validated — any change aborts with [`Conflict]. *)
let txn_lock t txn ~addr ~len ~mode =
  let covering_write () =
    List.find_opt
      (fun c -> c.ctx_mode = Ctypes.Write && ctx_covers c addr ~len)
      txn.txn_locks
  in
  match covering_write () with
  | Some c -> Ok c
  | None -> (
    match mode with
    | Ctypes.Read -> (
      match
        List.find_opt (fun c -> ctx_covers c addr ~len) txn.txn_locks
      with
      | Some c -> Ok c
      | None -> (
        match lock t ~ctx:txn.txn_op ~addr ~len Ctypes.Read with
        | Ok c ->
          txn.txn_locks <- c :: txn.txn_locks;
          Ok c
        | Error e -> Error e))
    | Ctypes.Write -> (
      let wend = Gaddr.add_int addr len in
      let overlaps c =
        c.ctx_live
        && Gaddr.compare c.ctx_addr wend < 0
        && Gaddr.compare addr (Gaddr.add_int c.ctx_addr c.ctx_len) < 0
      in
      let to_upgrade, keep =
        List.partition
          (fun c -> c.ctx_mode = Ctypes.Read && overlaps c)
          txn.txn_locks
      in
      txn.txn_locks <- keep;
      List.iter (fun c -> unlock t c) to_upgrade;
      let rec reacquire acc = function
        | [] -> Ok acc
        | c :: rest -> (
          match
            lock t ~ctx:txn.txn_op ~addr:c.ctx_addr ~len:c.ctx_len Ctypes.Write
          with
          | Ok c' ->
            txn.txn_locks <- c' :: txn.txn_locks;
            reacquire (c' :: acc) rest
          | Error e -> Error e)
      in
      match reacquire [] to_upgrade with
      | Error e ->
        txn_kill t txn;
        Error e
      | Ok new_ctxs -> (
        match txn_validate_reads t txn new_ctxs with
        | Error e ->
          txn_kill t txn;
          Error e
        | Ok () -> (
          match covering_write () with
          | Some c -> Ok c
          | None -> (
            match lock t ~ctx:txn.txn_op ~addr ~len Ctypes.Write with
            | Ok c ->
              txn.txn_locks <- c :: txn.txn_locks;
              Ok c
            | Error e ->
              if to_upgrade <> [] then txn_kill t txn;
              Error e)))))

let txn_dead_guard txn =
  if txn.txn_live then None else Some (`Conflict "transaction finished")

(* Overlay one buffered write onto a read result where the ranges
   intersect. *)
let overlay_write ~addr ~len out (waddr, data) =
  let wlen = Bytes.length data in
  let lo = if Gaddr.compare addr waddr > 0 then addr else waddr in
  let rend = Gaddr.add_int addr len in
  let wend = Gaddr.add_int waddr wlen in
  let hi = if Gaddr.compare rend wend < 0 then rend else wend in
  if Gaddr.compare lo hi < 0 then
    Bytes.blit data (Gaddr.diff lo waddr) out (Gaddr.diff lo addr)
      (Gaddr.diff hi lo)

let txn_read t txn ~addr ~len =
  match txn_dead_guard txn with
  | Some e -> Error e
  | None -> (
    match down_guard t with
    | Some e -> Error e
    | None ->
      (* MVCC fast path: a read of a versioned region the transaction has
         not written is served from the transaction's snapshot — no lock,
         no serialization against writers, not recorded for upgrade
         re-validation (the pin, not a lock, is what keeps it stable).
         Ranges the transaction wrote (buffered or under a Write intent)
         stay on the locking path for read-your-writes. *)
      let wend = Gaddr.add_int addr len in
      let writes_overlap =
        List.exists
          (fun c ->
            c.ctx_live
            && c.ctx_mode = Ctypes.Write
            && Gaddr.compare c.ctx_addr wend < 0
            && Gaddr.compare addr (Gaddr.add_int c.ctx_addr c.ctx_len) < 0)
          txn.txn_locks
        || List.exists
             (fun (waddr, data) ->
               let wlen = Bytes.length data in
               Gaddr.compare waddr wend < 0
               && Gaddr.compare addr (Gaddr.add_int waddr wlen) < 0)
             txn.txn_writes
      in
      let mvcc =
        (not writes_overlap)
        &&
        match locate_region_in t txn.txn_op addr with
        | Ok region -> versioned_region region
        | Error _ -> false
      in
      if mvcc then (
        let snap =
          match txn.txn_snap with
          | Some s -> Ok s
          | None -> (
            match snapshot_begin t with
            | Ok s ->
              txn.txn_snap <- Some s;
              Ok s
            | Error e -> Error e)
        in
        match snap with
        | Error e -> Error e
        | Ok snap -> snapshot_read t ~ctx:txn.txn_op ~snap ~addr ~len)
      else (
      match txn_lock t txn ~addr ~len ~mode:Ctypes.Read with
      | Error e -> Error e
      | Ok c -> (
        match read t c ~addr ~len with
        | Error e -> Error e
        | Ok out ->
          if c.ctx_mode = Ctypes.Read then
            txn.txn_reads <- (addr, Bytes.copy out) :: txn.txn_reads;
          (* Read-your-writes: buffered writes overlay the stored bytes,
             oldest first so later writes win. *)
          List.iter (overlay_write ~addr ~len out) (List.rev txn.txn_writes);
          Ok out)))

let txn_write t txn ~addr data =
  match txn_dead_guard txn with
  | Some e -> Error e
  | None -> (
    match down_guard t with
    | Some e -> Error e
    | None -> (
      match txn_lock t txn ~addr ~len:(Bytes.length data) ~mode:Ctypes.Write with
      | Error e -> Error e
      | Ok _ ->
        txn.txn_writes <- (addr, Bytes.copy data) :: txn.txn_writes;
        Ok ()))

let txn_abort t txn =
  if txn.txn_live then begin
    txn.txn_live <- false;
    txn.txn_writes <- [];
    txn.txn_reads <- [];
    Metrics.incr t.metrics "txn.abort";
    (* No writes were staged through the lock contexts, so releasing
       propagates nothing: the store still holds the pre-transaction
       images everywhere. *)
    txn_release_locks t txn
  end

(* Compute the committed page images from the locked stored bytes plus the
   write buffer — without touching the store, so an abort at any later
   point leaves clean state. Returns images in first-touch order. *)
let txn_images t txn =
  let images : (Region.t * bytes) Gaddr.Table.t = Gaddr.Table.create 8 in
  let order = ref [] in
  let stage (addr, data) =
    let len = Bytes.length data in
    match
      List.find_opt
        (fun c -> c.ctx_mode = Ctypes.Write && ctx_covers c addr ~len)
        txn.txn_locks
    with
    | None -> Error (`Conflict "write range lost its lock")
    | Some c ->
      let region = c.ctx_region in
      let page_size = region.Region.attr.Attr.page_size in
      let rec per_page = function
        | [] -> Ok ()
        | page :: rest -> (
          let base =
            match Gaddr.Table.find_opt images page with
            | Some (_, b) -> Some b
            | None -> (
              match Store.read t.store page with
              | Some b ->
                let b = Bytes.copy b in
                Gaddr.Table.replace images page (region, b);
                order := page :: !order;
                Some b
              | None -> None)
          in
          match base with
          | None -> Error (`Unavailable "page missing from local store")
          | Some b ->
            let pend = Gaddr.add_int page page_size in
            let lo = if Gaddr.compare addr page > 0 then addr else page in
            let wend = Gaddr.add_int addr len in
            let hi = if Gaddr.compare wend pend < 0 then wend else pend in
            Bytes.blit data (Gaddr.diff lo addr) b (Gaddr.diff lo page)
              (Gaddr.diff hi lo);
            per_page rest)
      in
      per_page (Gaddr.pages_in addr ~len ~page_size)
  in
  let rec stage_all = function
    | [] -> Ok ()
    | w :: rest -> (
      match stage w with Ok () -> stage_all rest | Error e -> Error e)
  in
  match stage_all (List.rev txn.txn_writes) with
  | Error e -> Error e
  | Ok () ->
    Ok
      (List.rev_map
         (fun page ->
           let region, img = Gaddr.Table.find images page in
           (page, region, img))
         !order)

let txn_commit t txn =
  match txn_dead_guard txn with
  | Some e -> Error e
  | None ->
    txn.txn_live <- false;
    match down_guard t with
    | Some e ->
      txn_release_locks t txn;
      Error e
    | None when txn.txn_writes = [] ->
      txn_release_locks t txn;
      Ok ()
    | None ->
      let epoch = t.epoch in
      let span = span_of t txn.txn_op "daemon.txn_commit" (fun () -> []) in
      let ctx = Op_ctx.with_span txn.txn_op span in
      let sp = Op_ctx.span ctx in
      let gtx = Txid.make ~coord:t.id ~epoch:t.epoch ~seq:t.next_txn_seq in
      t.next_txn_seq <- t.next_txn_seq + 1;
      t.txn_last <- Some gtx;
      let crashed () =
        txn_release_locks t txn;
        finish_status t span "crashed";
        Error (`Unavailable "node crashed")
      in
      let aborted remote why =
        (* Presumed abort: nothing is logged at the coordinator. Tell the
           participants that may have prepared, best-effort — the ones a
           lost message misses will resolve through the status query. *)
        Txid.Table.remove t.txn_active gtx;
        if Txid.Table.mem t.txn_prepared gtx then
          participant_decide t ~span:sp gtx false;
        List.iter
          (fun dst ->
            Ksim.Fiber.spawn t.engine ~name:"txn-abort-notify" (fun () ->
                if alive t epoch then
                  ignore
                    (rpc t Op_ctx.background ~policy:Wire.Policy.idempotent
                       ~dst (Wire.Tx_decide { gtx; commit = false }))))
          remote;
        Metrics.incr t.metrics "txn.abort";
        txn_event t ~span:sp gtx "txn.decide" [ ("commit", "false") ];
        txn_release_locks t txn;
        finish_status t span "aborted";
        Error (`Conflict why)
      in
      (match txn_images t txn with
       | Error e ->
         txn_release_locks t txn;
         finish_status t span (error_to_string e);
         Error e
       | Ok images ->
         (* Group by region home; every distinct home is a participant. *)
         let by_home = Hashtbl.create 4 in
         List.iter
           (fun (page, region, img) ->
             let home = region.Region.home in
             let prev =
               Option.value (Hashtbl.find_opt by_home home) ~default:[]
             in
             Hashtbl.replace by_home home ((page, img) :: prev))
           images;
         let participants =
           Hashtbl.fold (fun n _ acc -> n :: acc) by_home []
           |> List.sort compare
         in
         let remote = List.filter (fun n -> n <> t.id) participants in
         let pages_of n = List.rev (Hashtbl.find by_home n) in
         Txid.Table.replace t.txn_active gtx ();
         txn_event t ~span:sp gtx "txn.begin"
           [ ("participants",
              String.concat "," (List.map string_of_int participants)) ];
         txn_step t "coord.before_prepare";
         if not (alive t epoch) then crashed ()
         else begin
           (* Phase one: the local leg forces its prepare directly; remote
              legs go out in parallel under the aggressive-retry policy. *)
           let local_ok =
             if Hashtbl.mem by_home t.id then
               participant_prepare t ~span:sp gtx (pages_of t.id)
             else true
           in
           let votes =
             remote
             |> List.map (fun dst ->
                    ( dst,
                      Ksim.Fiber.async t.engine ~name:"txn-prepare"
                        (fun () ->
                          match
                            rpc t ctx ~policy:Wire.Policy.idempotent ~dst
                              (Wire.Tx_prepare { gtx; pages = pages_of dst })
                          with
                          | Ok (Wire.R_tx_vote v) -> v
                          | Ok _ | Error (`Timeout | `Unreachable) -> false) ))
             |> List.map (fun (dst, p) ->
                    let v = Ksim.Fiber.await p in
                    txn_step t "coord.prepare_ack";
                    (dst, v))
           in
           if not (alive t epoch) then crashed ()
           else if not (local_ok && List.for_all snd votes) then
             aborted remote
               "transaction aborted: participant unreachable or voted no"
           else begin
             txn_step t "coord.all_acked";
             if not (alive t epoch) then crashed ()
             else begin
               (* The commit point: the decision record is forced into the
                  coordinator's own WAL, with the participant list so a
                  recovered coordinator resumes the broadcast. *)
               Wal.decide t.wal gtx ~commit:true ~participants:remote;
               Txid.Table.replace t.txn_decided gtx true;
               Txid.Table.remove t.txn_active gtx;
               if remote <> [] then
                 Txid.Table.replace t.txn_decisions gtx remote;
               Metrics.incr t.metrics "txn.commit";
               txn_event t ~span:sp gtx "txn.decide" [ ("commit", "true") ];
               txn_step t "coord.decision_logged";
               if alive t epoch then begin
                 (* Apply locally. The prepared local leg installs its
                    images; then the buffered writes are staged through the
                    held lock contexts so the release below propagates the
                    new images through the consistency machinery exactly
                    like ordinary writes. *)
                 if Txid.Table.mem t.txn_prepared gtx then
                   participant_decide t ~span:sp gtx true;
                 List.iter
                   (fun (addr, data) ->
                     match
                       List.find_opt
                         (fun c ->
                           c.ctx_mode = Ctypes.Write
                           && ctx_covers c addr ~len:(Bytes.length data))
                         txn.txn_locks
                     with
                     | Some c -> ignore (write t c ~addr data)
                     | None -> ())
                   (List.rev txn.txn_writes);
                 (* Phase two, fast path: one synchronous push per remote
                    participant. Whatever stays unacked is re-pushed by the
                    repair loop until it drains. *)
                 List.iter
                   (fun dst ->
                     txn_step t "coord.decide_send";
                     if alive t epoch then
                       match
                         rpc t ctx ~policy:Wire.Policy.idempotent ~dst
                           (Wire.Tx_decide { gtx; commit = true })
                       with
                       | Ok Wire.R_unit -> txn_ack_decide t gtx dst
                       | Ok _ | Error (`Timeout | `Unreachable) -> ())
                   remote;
                 txn_release_locks t txn;
                 (* Write the committed images through to their homes,
                    exactly as [write_sync] does for plain writes: the
                    flush refreshes each home's WAL and manager backup
                    and — carrying byte-identical images — clears the
                    participants' txn pins, so the pin-repair pass never
                    has to resurrect an image a later write superseded.
                    The commit point has passed, so flush failures only
                    arm background retries; the result stays [Ok]. *)
                 List.iter
                   (fun (page, region, _img) ->
                     if needs_flush t region then
                       ignore (flush_through t ~ctx region [ page ]))
                   images
               end;
               finish_status t span "committed";
               (* The decision is durable: the transaction is committed
                  even if this node crashed mid-broadcast — recovery and
                  the resolver finish the delivery. *)
               Ok ()
             end
           end
         end)

(* Periodic 2PC maintenance, run from the repair loop.

   Coordinator half: re-push committed decisions that some participant has
   not acked (it was down or partitioned during the broadcast).

   Participant half: prepared-but-undecided transactions older than
   [txn_resolve_after] query the coordinator. "Committed" applies,
   "aborted" (including "never heard of it" — presumed abort) drops, "in
   progress" waits for the next pass. *)
let txn_maintenance t epoch =
  let now = Ksim.Engine.now t.engine in
  let pending =
    Txid.Table.fold (fun g parts acc -> (g, parts) :: acc) t.txn_decisions []
  in
  List.iter
    (fun (gtx, parts) ->
      List.iter
        (fun dst ->
          Ksim.Fiber.spawn t.engine ~name:"txn-rebroadcast" (fun () ->
              if alive t epoch then
                match
                  rpc t Op_ctx.background ~policy:Wire.Policy.idempotent ~dst
                    (Wire.Tx_decide { gtx; commit = true })
                with
                | Ok Wire.R_unit ->
                  if alive t epoch then txn_ack_decide t gtx dst
                | Ok _ | Error (`Timeout | `Unreachable) -> ()))
        parts)
    pending;
  let stale =
    Txid.Table.fold
      (fun g e acc ->
        if (not e.p_querying) && now - e.p_since >= t.cfg.txn_resolve_after
        then (g, e) :: acc
        else acc)
      t.txn_prepared []
  in
  List.iter
    (fun (gtx, entry) ->
      entry.p_querying <- true;
      Ksim.Fiber.spawn t.engine ~name:"txn-resolve" (fun () ->
          let answer =
            if gtx.Txid.coord = t.id then Some (txn_status t gtx)
            else
              match
                rpc t Op_ctx.background ~policy:Wire.Policy.idempotent
                  ~dst:gtx.Txid.coord (Wire.Tx_status { gtx })
              with
              | Ok (Wire.R_tx_status st) -> Some st
              | Ok _ | Error (`Timeout | `Unreachable) -> None
          in
          if alive t epoch then
            match Txid.Table.find_opt t.txn_prepared gtx with
            | Some e when e == entry -> (
              entry.p_querying <- false;
              entry.p_since <- Ksim.Engine.now t.engine;
              match answer with
              | Some Wire.Tx_committed ->
                Metrics.incr t.metrics "txn.resolve";
                txn_event t ~span:Trace.null gtx "txn.resolve"
                  [ ("commit", "true") ];
                participant_decide t ~span:Trace.null gtx true
              | Some Wire.Tx_aborted ->
                Metrics.incr t.metrics "txn.resolve";
                txn_event t ~span:Trace.null gtx "txn.resolve"
                  [ ("commit", "false") ];
                participant_decide t ~span:Trace.null gtx false
              | Some Wire.Tx_in_progress | None -> ())
            | Some _ | None -> ()))
    stale;
  (* Overdue pins: the coordinator never released its write locks (it died
     holding them), so the consistency machine still serves the
     pre-transaction image. Re-write the committed image through a local
     write lock — the acquisition itself runs the CM's dead-owner
     fail-over, and the release propagates the image and revokes every
     stale survivor copy. The pin identity check after the (blocking)
     acquisition guards the race where the coordinator's own release
     cleared the pin while we waited. *)
  let overdue =
    Gaddr.Table.fold
      (fun page pin acc ->
        if (not pin.pin_busy) && now - pin.pin_since >= t.cfg.txn_resolve_after
        then (page, pin) :: acc
        else acc)
      t.txn_pins []
  in
  List.iter
    (fun (page, pin) ->
      pin.pin_busy <- true;
      Ksim.Fiber.spawn t.engine ~name:"txn-pin-repair" (fun () ->
          let pin_current () =
            match Gaddr.Table.find_opt t.txn_pins page with
            | Some p -> p == pin
            | None -> false
          in
          match homed_containing t page with
          | None ->
            (* Region freed out from under the pin: nothing left to sync. *)
            if alive t epoch && pin_current () then
              Gaddr.Table.remove t.txn_pins page
          | Some region -> (
            let len = region.Region.attr.Attr.page_size in
            match lock t ~ctx:Op_ctx.background ~addr:page ~len Ctypes.Write with
            | Ok c ->
              if alive t epoch then begin
                if pin_current () then begin
                  ignore (write t c ~addr:page pin.pin_img);
                  Gaddr.Table.remove t.txn_pins page;
                  Metrics.incr t.metrics "txn.pin.repair"
                end;
                unlock t c
              end
            | Error _ ->
              (* Back off: the next maintenance tick retries. *)
              if alive t epoch && pin_current () then begin
                pin.pin_busy <- false;
                pin.pin_since <- Ksim.Engine.now t.engine
              end)))
    overdue

(* ------------------------------------------------------------------ *)
(* Server side                                                         *)
(* ------------------------------------------------------------------ *)

let serve_cm_msg t ctx ~src ~page ~region_base body =
  (* In-doubt fence, protocol side: remote lock traffic for a page with a
     prepared-undecided transaction gets silence, not a stale grant. The
     peer's retry ladder absorbs the timeout and the page opens up as
     soon as the decision lands. *)
  if in_doubt t page then ()
  else
  match Gaddr.Table.find_opt t.machines page with
  | Some slot -> feed t ~span:(Op_ctx.span ctx) slot page (Ctypes.Peer { src; msg = body })
  | None ->
    (* First contact for this page: resolve its region (usually a region
       directory hit) in a fiber, then feed. *)
    Ksim.Fiber.spawn t.engine ~name:"cm-resolve" (fun () ->
        let region =
          if Region.contains (map_region t) page then Some (map_region t)
          else
            match homed_containing t page with
            | Some r -> Some r
            | None -> (
              match locate_region_in t ctx region_base with
              | Ok r when Region.contains r page -> Some r
              | Ok _ | Error _ -> None)
        in
        match region with
        | Some region when t.up ->
          let slot = machine_for t region page in
          feed t ~span:(Op_ctx.span ctx) slot page (Ctypes.Peer { src; msg = body })
        | Some _ | None -> ())

(* Adopt a manager's suspicion list for [cluster]: wholesale replace for
   that cluster's members (suspect the listed, clear the rest). Local
   direct evidence still wins afterwards — any message from a wrongly
   suspected node clears it. A manager hearing about a foreign cluster
   relays the hint to its own members; members never forward, so the
   dissemination is exactly two hops and cannot loop. *)
let apply_suspect_hint t ~src ~cluster sus =
  List.iter
    (fun n ->
      if n <> t.id && n <> src then
        if List.mem n sus then suspect t n else clear_suspect t n)
    (Topology.cluster_members t.topology cluster);
  let my_cluster = Topology.cluster_of t.topology t.id in
  if t.cm_state <> None && cluster <> my_cluster then
    List.iter
      (fun m ->
        if m <> t.id then
          Wire.Transport.notify t.transport ~src:t.id ~dst:m
            (Wire.Suspect_hint { cluster; suspects = sus }))
      (Topology.cluster_members t.topology my_cluster)

let serve t ~src ~span request ~reply =
  if t.up then begin
    (* Any traffic from [src] is direct evidence it is alive. *)
    if src <> t.id then begin
      clear_suspect t src;
      match t.cm_state with
      | Some cm
        when Topology.cluster_of t.topology src
             = Topology.cluster_of t.topology t.id ->
        Cluster.heartbeat cm ~node:src ~now:(Ksim.Engine.now t.engine)
      | Some _ | None -> ()
    end;
    (* The caller's span id arrived in the envelope: everything this
       dispatch does nests under the remote operation. Untraced traffic
       (span 0) opens no span, so background chatter never pollutes the
       record stream with disconnected roots. *)
    let sspan =
      if Trace.enabled () && span <> 0 then
        Trace.child ~engine:t.engine ~node:t.id
          ~parent:(Trace.of_id span)
          ~attrs:[ ("src", string_of_int src) ]
          ("daemon.serve." ^ Wire.request_kind request)
      else Trace.null
    in
    let ctx = Op_ctx.make ~span:sspan (-1) in
    Fun.protect ~finally:(fun () -> finish_span t sspan) @@ fun () ->
    match request with
    | Wire.Cm_msg { page; region_base; body } ->
      serve_cm_msg t ctx ~src ~page ~region_base body
    | Wire.Get_descriptor { addr } ->
      let answer =
        match homed_containing t addr with
        | Some r -> Some r
        | None -> Region_directory.find t.rdir addr
      in
      reply (Wire.R_descriptor answer)
    | Wire.Alloc_region { desc } ->
      if desc.Region.home <> t.id then reply (Wire.R_error "not my region")
      else begin
        (match Gaddr.Table.find_opt t.homed desc.Region.base with
         | Some r -> allocate_local t r
         | None ->
           (* Home lost the descriptor (recovered from crash): adopt it. *)
           allocate_local t desc);
        reply Wire.R_unit
      end
    | Wire.Free_region { base } ->
      if free_local t base then reply Wire.R_unit
      else reply (Wire.R_error "free failed")
    | Wire.Unreserve_region { base } ->
      Ksim.Fiber.spawn t.engine ~name:"unreserve-serve" (fun () ->
          ignore (unreserve_local t ctx base);
          reply Wire.R_unit)
    | Wire.Set_attr { base; attr } -> (
      match Gaddr.Table.find_opt t.homed base with
      | Some region ->
        let region' = { region with Region.attr = attr } in
        Gaddr.Table.replace t.homed base region';
        note_homed_put t region';
        Region_directory.put t.rdir region';
        reply Wire.R_unit
      | None -> reply (Wire.R_error "unknown region"))
    | Wire.Chunk_request -> (
      match t.cm_state with
      | Some cm ->
        let base, len = Cluster.next_chunk cm in
        reply (Wire.R_chunk { base; len })
      | None -> reply (Wire.R_error "not a cluster manager"))
    | Wire.Cluster_lookup { addr } | Wire.Cluster_walk { addr } -> (
      match t.cm_state with
      | Some cm ->
        let desc, holders = Cluster.lookup cm addr in
        reply (Wire.R_lookup { desc; holders })
      | None -> reply (Wire.R_error "not a cluster manager"))
    | Wire.Cluster_report { node_regions; free_bytes } -> (
      match t.cm_state with
      | Some cm ->
        Cluster.record_report ~now:(Ksim.Engine.now t.engine) cm ~node:src
          ~regions:node_regions ~free_bytes
      | None -> ())
    | Wire.Suspect_hint { cluster; suspects } ->
      apply_suspect_hint t ~src ~cluster suspects
    | Wire.Page_pull { page } -> (
      match Gaddr.Table.find_opt t.machines page with
      | Some slot when Machine.packed_has_valid_copy slot.packed -> (
        match Store.read_immediate t.store page with
        | Some data ->
          reply (Wire.R_page (Some (data, Machine.packed_version slot.packed)))
        | None -> reply (Wire.R_page None))
      | Some _ | None -> reply (Wire.R_page None))
    | Wire.Page_probe { page } ->
      reply
        (Wire.R_held
           (match Gaddr.Table.find_opt t.machines page with
           | Some slot -> Machine.packed_has_valid_copy slot.packed
           | None -> false))
    | Wire.Page_flush { page; region_base; data; version } -> (
      match Gaddr.Table.find_opt t.homed region_base with
      | Some region when Region.contains region page ->
        let slot = machine_for t region page in
        if version < Machine.packed_backup_version slot.packed then
          (* An obsolete image: a background retry finally delivering a
             flush some newer write has already overtaken. Applying it
             would plant stale bytes in the WAL (replayed last on
             recovery) and the store. Ack it — the writer's obligation
             was discharged by whatever superseded it. *)
          reply Wire.R_unit
        else begin
        (* Write-ahead first: the ack promises the image survives a home
           crash. Then let the machine absorb it — CREW's Update keeps the
           freshest version as the manager backup, so read fail-over
           around a crashed owner serves nothing older than this write.
           The store copy stays machine-governed: only write it when the
           machine holds no valid copy of its own. *)
        let tx = Wal.begin_tx t.wal in
        Wal.log_page t.wal tx page data;
        Wal.commit t.wal tx;
        (* A flush carrying exactly a pinned committed image discharges
           the pin — but only when the home machine holds no copy of its
           own, so the store write below leaves store = pinned image and
           readers fetch from the (fresh) owner. While the home still
           caches bytes of its own they may be the stale pre-transaction
           copy the pin exists to overwrite: keep it and let the repair
           pass force the committed image through the CM. *)
        let has_copy = Machine.packed_has_valid_copy slot.packed in
        (match Gaddr.Table.find_opt t.txn_pins page with
         | Some pin when (not has_copy) && Bytes.equal pin.pin_img data ->
           Gaddr.Table.remove t.txn_pins page
         | Some _ | None -> ());
        feed t ~span:sspan slot page
          (Ctypes.Peer { src; msg = Ctypes.Update { data; version } });
        if not has_copy then begin
          Store.write_immediate t.store page data ~dirty:false;
          Store.flush_immediate t.store page
        end;
        reply Wire.R_unit
        end
      | Some _ | None -> reply (Wire.R_error "not my region"))
    | Wire.Page_diff { page; region_base; parent; expected; payload } -> (
      (* Versioned publish at the home: let the machine mint (or refuse) a
         new version and ship the outcome back. The minted image reaches
         the store and the WAL through the Install action the machine
         returns, exactly like a local write. *)
      match Gaddr.Table.find_opt t.homed region_base with
      | Some region when Region.contains region page ->
        let slot = machine_for t region page in
        let result, actions =
          Machine.packed_publish slot.packed ~src ~parent ~expected ~payload
        in
        apply_actions t ~span:sspan slot page actions;
        reply (Wire.R_publish result)
      | Some _ | None -> reply (Wire.R_error "not my region"))
    | Wire.Page_version { page; region_base; at } -> (
      (* Snapshot-pin resolution: serve a retained version from the home's
         chain ([at = Some v]), or the latest settled image ([at = None]).
         A [R_page None] for a pinned version means the chain GC already
         reclaimed it — the reader's snapshot has expired for this page. *)
      match Gaddr.Table.find_opt t.homed region_base with
      | Some region when Region.contains region page ->
        let slot = machine_for t region page in
        reply (Wire.R_page (Machine.packed_read_at slot.packed at))
      | Some _ | None -> reply (Wire.R_error "not my region"))
    | Wire.Tx_prepare { gtx; pages } ->
      txn_step t "part.prepare_recv";
      (* The crash hook may have taken the node down mid-handler; a dead
         participant sends no vote and the coordinator times out. *)
      if t.up then begin
        let vote = participant_prepare t ~span:sspan gtx pages in
        txn_step t "part.prepared";
        if t.up then reply (Wire.R_tx_vote vote)
      end
    | Wire.Tx_decide { gtx; commit } ->
      txn_step t "part.decide_recv";
      if t.up then begin
        participant_decide t ~span:sspan gtx commit;
        txn_step t "part.decided";
        if t.up then reply Wire.R_unit
      end
    | Wire.Tx_status { gtx } -> reply (Wire.R_tx_status (txn_status t gtx))
    | Wire.Ping -> reply Wire.R_unit
  end

(* Manager tick of the failure detector: age member heartbeats into a
   suspicion list, adopt it locally, and disseminate it. Broadcasts go out
   when the list changes and keep refreshing every tick while anyone is
   suspected (so nodes that were partitioned or recovering when a change
   broadcast fired still converge); a quiet healthy cluster sends
   nothing. *)
let detect_and_disseminate t cm =
  let now = Ksim.Engine.now t.engine in
  let sus = Cluster.suspects cm ~now ~timeout:t.cfg.suspect_after in
  let my_cluster = Topology.cluster_of t.topology t.id in
  let members =
    List.filter (fun n -> n <> t.id)
      (Topology.cluster_members t.topology my_cluster)
  in
  List.iter
    (fun n -> if List.mem n sus then suspect t n else clear_suspect t n)
    members;
  if sus <> t.last_hint || sus <> [] then begin
    t.last_hint <- sus;
    List.iter
      (fun dst ->
        Wire.Transport.notify t.transport ~src:t.id ~dst
          (Wire.Suspect_hint { cluster = my_cluster; suspects = sus }))
      (members @ t.peer_managers)
  end

(* Periodic hint refresh to the cluster manager (§3.1); the same loop is
   the heartbeat (member side) and the detector tick (manager side). *)
let start_reporting t =
  let epoch = t.epoch in
  (* A (re)starting manager wipes the slate: every member gets a full
     suspicion window of grace before silence counts against it. *)
  (match t.cm_state with
   | Some cm ->
     let now = Ksim.Engine.now t.engine in
     List.iter
       (fun n -> if n <> t.id then Cluster.heartbeat cm ~node:n ~now)
       (Topology.cluster_members t.topology
          (Topology.cluster_of t.topology t.id))
   | None -> ());
  let rec loop () =
    if t.up && t.epoch = epoch then begin
      (match t.cm_state with
       | Some cm -> detect_and_disseminate t cm
       | None ->
         let node_regions =
           Gaddr.Table.fold (fun base r acc -> (base, r) :: acc) t.homed []
         in
         let node_regions =
           List.fold_left
             (fun acc r -> (r.Region.base, r) :: acc)
             node_regions
             (Region_directory.entries t.rdir)
         in
         Wire.Transport.notify t.transport ~src:t.id ~dst:t.cluster_manager
           (Wire.Cluster_report { node_regions; free_bytes = pool_bytes t }));
      Ksim.Fiber.sleep t.cfg.report_every;
      loop ()
    end
  in
  Ksim.Fiber.spawn t.engine ~name:"cluster-report" loop

(* ------------------------------------------------------------------ *)
(* Replica repair (anti-entropy)                                       *)
(* ------------------------------------------------------------------ *)

(* One pass of the home-side repair loop.

   First, re-materialise home machines for pages whose data survived a
   crash on the persistent tier: the page directory remembers what was
   homed here, so recovered pages go back into service without waiting
   for a client to touch them (and without zero-filling pages whose data
   is genuinely gone — those still rebuild lazily on first touch).

   Second, enforce the replica floor: for every home-side machine whose
   live (unsuspected) holder count fell below min_replicas, evict the
   suspected holders from the protocol's books and ask the machine to
   re-replicate around them. Machines mid-transaction are skipped — their
   own retry/fail-over logic is already reshaping the copyset, and repair
   would race it. *)
let repair_pass t =
  let pass_epoch = t.epoch in
  let orphans =
    Page_directory.fold
      (fun page entry acc ->
        if entry.Page_directory.homed_here
           && not (Gaddr.Table.mem t.machines page)
        then (page, entry.Page_directory.region_base) :: acc
        else acc)
      t.pdir []
  in
  List.iter
    (fun (page, base) ->
      match Gaddr.Table.find_opt t.homed base with
      | Some region when region.Region.state = Region.Allocated -> (
        (* Our disk image may predate writes that died with our RAM, but a
           protocol-valid copy on a live sharer can never be stale — the
           write-invalidate protocols revoke copies before accepting newer
           data. Pull from the sharers the persistent page directory
           remembers, and only fall back to disk when nobody answers. *)
        let sharers =
          match Page_directory.find t.pdir page with
          | None -> []
          | Some entry ->
            List.filter (fun n -> n <> t.id) entry.Page_directory.sharers
        in
        let pulled =
          List.fold_left
            (fun best n ->
              if is_suspect t n then best
              else
                match
                  rpc t Op_ctx.background ~dst:n (Wire.Page_pull { page })
                with
                | Ok (Wire.R_page (Some (data, ver))) -> (
                  match best with
                  | Some (_, bver) when bver >= ver -> best
                  | _ -> Some (data, ver))
                | Ok _ | Error _ -> best)
            None sharers
        in
        (* The pull RPCs block this fiber: re-check that no crash happened
           meanwhile and that no client raced us into materialising the
           machine. *)
        if t.up && t.epoch = pass_epoch
           && not (Gaddr.Table.mem t.machines page)
        then begin
          let reincarnate version =
            match Gaddr.Table.find_opt t.machines page with
            | Some slot ->
              feed t ~span:Trace.null slot page
                (Ctypes.Reincarnate { version; sharers })
            | None -> ()
          in
          match (pulled, Store.read_immediate t.store page) with
          | Some (data, ver), _ ->
            Metrics.incr t.metrics "repair.pull";
            Store.write_immediate t.store page data ~dirty:false;
            Metrics.incr t.metrics "repair.rebuild";
            ignore (machine_for t region page);
            reincarnate ver
          | None, Some _ ->
            Metrics.incr t.metrics "repair.rebuild";
            ignore (machine_for t region page);
            reincarnate 0
          | None, None -> ()
        end)
      | Some _ | None -> ())
    orphans;
  let sus = suspects t in
  let slots = Gaddr.Table.fold (fun page s acc -> (page, s) :: acc) t.machines [] in
  List.iter
    (fun (page, slot) ->
      let region = slot.region in
      if region.Region.home = t.id
         && region.Region.state = Region.Allocated
         && region.Region.attr.Attr.min_replicas > 1
         && not (Machine.packed_busy slot.packed)
      then begin
        (* Suspicion is not evidence of data loss: a partitioned holder
           still has its copy and must stay in the books so later writes
           invalidate it. Suspects are merely discounted from the floor;
           only a confirmed "no copy" answer below evicts. *)
        let holders = Machine.packed_holders slot.packed in
        let live = List.filter (fun n -> not (is_suspect t n)) holders in
        (* A recorded holder may be a phantom: it crashed (losing its RAM
           copy) and recovered before this manager rebuilt its books, so
           it looks alive while holding nothing. Counting it toward the
           floor would block repair forever — verify remote live holders
           and evict the ones that answer "no copy". Unreachable ones are
           merely discounted: they may still hold data that a later
           invalidation round must revoke. *)
        let live =
          List.filter
            (fun n ->
              n = t.id
              ||
              match rpc t Op_ctx.background ~dst:n (Wire.Page_probe { page }) with
              | Ok (Wire.R_held true) -> true
              | Ok _ ->
                if t.up && t.epoch = pass_epoch then begin
                  match Gaddr.Table.find_opt t.machines page with
                  | Some slot ->
                    feed t ~span:Trace.null slot page
                      (Ctypes.Peer { src = n; msg = Ctypes.Evict_notify })
                  | None -> ()
                end;
                false
              | Error _ -> false)
            live
        in
        if List.length live < region.Region.attr.Attr.min_replicas then begin
          Metrics.incr t.metrics "repair.maintain";
          match Gaddr.Table.find_opt t.machines page with
          | Some slot ->
            feed t ~span:Trace.null slot page (Ctypes.Maintain { avoid = sus })
          | None -> ()
        end
      end)
    slots

(* ------------------------------------------------------------------ *)
(* WAL checkpointing and recovery replay                               *)
(* ------------------------------------------------------------------ *)

(* Truncate the intent log once it has grown past the configured bound.
   Ordering matters: the disk tier is hardened first, so that by the time
   the truncating checkpoint record is the only thing left, everything the
   dropped records described really is durable. The snapshot carries the
   homed-region table and the persistent page-directory entries. *)
let wal_checkpoint t =
  (* A homed page whose committed image is still dirty in RAM would have
     its only recoverable copy die with the truncated log records: push
     every such page to disk before asserting durability. *)
  Page_directory.fold
    (fun page entry () ->
      if
        entry.Page_directory.homed_here
        && Store.where t.store page = Some Store.Ram
        && Store.is_dirty t.store page
      then Store.flush_immediate t.store page)
    t.pdir ();
  Store.sync t.store;
  let e = Codec.encoder () in
  let regions = Gaddr.Table.fold (fun _ r acc -> r :: acc) t.homed [] in
  let regions =
    List.sort (fun a b -> Gaddr.compare a.Region.base b.Region.base) regions
  in
  Codec.list e (fun r -> Region.encode e r) regions;
  Page_directory.encode_persistent t.pdir e;
  (* Undelivered commit decisions must survive the truncation of their
     [Decide] records: the snapshot is the coordinator's durable copy. *)
  let decisions =
    Txid.Table.fold (fun g parts acc -> (g, parts) :: acc) t.txn_decisions []
    |> List.sort (fun (a, _) (b, _) -> Txid.compare a b)
  in
  Codec.list e
    (fun (g, parts) ->
      Txid.encode e g;
      Codec.list e (fun n -> Codec.u32 e n) parts)
    decisions;
  (* Simulated runs keep the disk tier in process memory, so the snapshot
     needs no page data — replayed state rebuilds against the surviving
     Store. A file-backed WAL is the *only* durable thing a real process
     has: checkpoint truncation would orphan every committed page image
     already pushed to the (volatile) disk tier, so the snapshot carries
     the homed committed images too. The list is always present to keep
     the format uniform; it is empty unless file-backed. *)
  let images =
    if Wal.file_backed t.wal then
      Page_directory.fold
        (fun page entry acc ->
          if entry.Page_directory.homed_here then
            match Store.read_immediate t.store page with
            | Some data -> (page, data) :: acc
            | None -> acc
          else acc)
        t.pdir []
      |> List.sort (fun (a, _) (b, _) -> Gaddr.compare a b)
    else []
  in
  Codec.list e
    (fun (page, data) ->
      Codec.u128 e page;
      Codec.bytes e data)
    images;
  Wal.checkpoint t.wal (Codec.to_bytes e);
  Metrics.incr t.metrics "wal.checkpoint"

let restore_snapshot t snap =
  let d = Codec.decoder snap in
  let regions = Codec.read_list d (fun () -> Region.decode d) in
  List.iter
    (fun r ->
      Gaddr.Table.replace t.homed r.Region.base r;
      Region_directory.put t.rdir r)
    regions;
  Page_directory.decode_persistent t.pdir d;
  let decisions =
    Codec.read_list d (fun () ->
        let g = Txid.decode d in
        let parts = Codec.read_list d (fun () -> Codec.read_u32 d) in
        (g, parts))
  in
  List.iter
    (fun (g, parts) ->
      Txid.Table.replace t.txn_decided g true;
      if parts <> [] then Txid.Table.replace t.txn_decisions g parts)
    decisions;
  let images =
    Codec.read_list d (fun () ->
        let page = Codec.read_u128 d in
        let data = Codec.read_bytes d in
        (page, data))
  in
  List.iter
    (fun (page, data) ->
      Store.write_immediate t.store page data ~dirty:false;
      Store.flush_immediate t.store page)
    images

(* Re-apply one logged metadata note. Notes are plain "set" payloads, so
   applying a replayed prefix twice is the same as once. Unknown tags are
   skipped: a log written by a newer daemon must not wedge recovery. *)
let apply_note t tag data =
  let d = Codec.decoder data in
  match tag with
  | "homed.put" ->
    let r = Region.decode d in
    Gaddr.Table.replace t.homed r.Region.base r;
    Region_directory.put t.rdir r
  | "homed.del" ->
    let base = Codec.read_u128 d in
    Gaddr.Table.remove t.homed base;
    Region_directory.remove t.rdir base
  | "pdir.ensure" ->
    let page = Codec.read_u128 d in
    let region_base = Codec.read_u128 d in
    ignore (Page_directory.ensure t.pdir ~page ~region_base ~homed_here:true)
  | "pdir.sharers" ->
    let page = Codec.read_u128 d in
    let region_base = Codec.read_u128 d in
    let sharers = Codec.read_list d (fun () -> Codec.read_int d) in
    ignore (Page_directory.ensure t.pdir ~page ~region_base ~homed_here:true);
    Page_directory.set_sharers t.pdir page sharers
  | "page.free" ->
    let page = Codec.read_u128 d in
    Store.drop t.store page;
    Page_directory.remove t.pdir page
  | "txn.forget" -> Txid.Table.remove t.txn_decisions (Txid.decode d)
  | _ -> ()

(* The recovery phase proper: scrub torn disk images, then reconstruct
   state from the last checkpoint snapshot plus the committed log suffix.
   Replayed page images land clean in RAM and are written through to disk.
   Recovery ends with a truncating {!wal_checkpoint}: it hardens the disk
   tier and — crucially — drops the crash's torn frontier record from the
   log. Replay stops at the first checksum failure, so leaving a torn
   record in place would silently discard every transaction committed
   after recovery at the next crash; checkpointing restores a fully
   readable log before the node acknowledges anything new. *)
let wal_replay t =
  let scrubbed = Store.scrub t.store in
  if scrubbed > 0 then
    Metrics.observe t.metrics "recovery.scrubbed" (float_of_int scrubbed);
  let r = Wal.replay t.wal in
  (match r.Wal.snapshot with
   | Some snap -> restore_snapshot t snap
   | None -> ());
  (* Surviving decision records re-arm the decided table before the op
     stream runs, so that an op-stream [txn.forget] note (logged after its
     decision) can still clear the broadcast list it refers to. *)
  List.iter
    (fun (gtx, commit, parts) ->
      Txid.Table.replace t.txn_decided gtx commit;
      if commit && gtx.Kutil.Txid.coord = t.id && parts <> [] then
        Txid.Table.replace t.txn_decisions gtx parts)
    r.Wal.decisions;
  List.iter
    (fun op ->
      match op with
      | Wal.Page (page, data) ->
        Store.write_immediate t.store page data ~dirty:false;
        Store.flush_immediate t.store page
      | Wal.Note (tag, data) -> apply_note t tag data)
    r.Wal.ops;
  (* Prepared-but-undecided transactions come back in limbo: images held
     out of the store, re-registered for the resolver to settle through a
     coordinator status query (presumed abort if it knows nothing). The
     recovery-ending checkpoint below carries their records forward. *)
  List.iter
    (fun (gtx, payloads) ->
      let pages =
        List.filter_map
          (function Wal.Page (p, img) -> Some (p, img) | Wal.Note _ -> None)
          payloads
      in
      Txid.Table.replace t.txn_prepared gtx
        { p_pages = pages; p_since = Ksim.Engine.now t.engine;
          p_querying = false })
    r.Wal.in_doubt;
  wal_checkpoint t;
  Metrics.observe t.metrics "recovery.replayed" (float_of_int r.Wal.replayed);
  if r.Wal.discarded > 0 then
    Metrics.observe t.metrics "recovery.discarded"
      (float_of_int r.Wal.discarded)

let start_repair t =
  let epoch = t.epoch in
  let rec loop () =
    Ksim.Fiber.sleep t.cfg.repair_every;
    if t.up && t.epoch = epoch then begin
      repair_pass t;
      txn_maintenance t epoch;
      if t.up && t.epoch = epoch && Wal.needs_checkpoint t.wal then
        wal_checkpoint t;
      loop ()
    end
  in
  Ksim.Fiber.spawn t.engine ~name:"replica-repair" loop

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let crash t =
  t.up <- false;
  t.epoch <- t.epoch + 1;
  (* On a simulated transport the node also drops off the network; on a
     real one there is nothing to inject — a crashed process is its own
     network failure. *)
  (match Wire.Transport.faults t.transport with
   | Some f -> f.Ktransport.Transport.Faults.crash t.id
   | None -> ());
  Store.crash t.store;
  Wal.crash t.wal;
  Gaddr.Table.reset t.machines;
  (* Nothing in memory survives by magic anymore: the homed-region table,
     the page directory and the region-descriptor cache all die here and
     come back through WAL replay (or, for hints, through traffic). The
     address pool leaks — exactly as unflushed reservations would. *)
  Page_directory.crash t.pdir;
  Gaddr.Table.reset t.homed;
  (* 2PC state dies too and comes back through replay: prepared entries
     from surviving [Prepare] records, decisions from the snapshot and
     surviving [Decide] records. The voting-window table stays empty on
     purpose — the epoch fence guarantees the pre-crash commit fiber can
     never log a decision now, so answering "aborted" for its id is sound
     (presumed abort). *)
  Txid.Table.reset t.txn_prepared;
  Txid.Table.reset t.txn_decided;
  Txid.Table.reset t.txn_decisions;
  Txid.Table.reset t.txn_active;
  (* Pins protect live machines from serving pre-transaction images; after
     a crash the machines are gone and replay rebuilds the store with the
     committed images, so materialisation reads the right bytes anyway. *)
  Gaddr.Table.reset t.txn_pins;
  List.iter
    (fun r -> Region_directory.remove t.rdir r.Region.base)
    (Region_directory.entries t.rdir);
  t.pool <- [];
  (* In-flight client operations die with the node. *)
  Hashtbl.iter
    (fun _ p -> ignore (Ksim.Promise.try_resolve p (Error (`Unavailable "node crashed"))))
    t.pending;
  Hashtbl.reset t.pending;
  (* Suspicion state is soft: a rebooted node re-learns it. *)
  Hashtbl.reset t.suspected;
  Hashtbl.reset t.strikes;
  t.last_hint <- [];
  (* Open snapshots die with the node: their pins referenced version
     chains that no longer exist. Readers observe [`Unavailable]. *)
  Hashtbl.reset t.snapshots

let recover t =
  t.epoch <- t.epoch + 1;
  let epoch = t.epoch in
  (match Wire.Transport.faults t.transport with
   | Some f -> f.Ktransport.Transport.Faults.recover t.id
   | None -> ());
  (* Recovery is a real phase with a real duration: the node is back on
     the network but refuses service ([t.up] still false) until the WAL
     replay completes. The replay charges simulated time proportional to
     the log length — this is the availability gap E8c measures — then
     reconstructs metadata and committed page images, and only then opens
     the doors and hands off to the repair loop, which eagerly rebuilds
     home machines for the recovered pages. *)
  Ksim.Fiber.spawn t.engine ~name:"wal-recovery" (fun () ->
      Ksim.Fiber.sleep (Wal.replay_cost t.wal);
      if t.epoch = epoch && not t.up then begin
        wal_replay t;
        t.up <- true;
        start_reporting t;
        start_repair t
      end)

let create ?(config = default_config) ?(peer_managers = []) ?wal_file ~id
    ~bootstrap ~cluster_manager transport =
  let engine = Wire.Transport.engine transport in
  let topology = Wire.Transport.topology transport in
  let store =
    Store.create engine
      (Store.config ~ram_pages:config.ram_pages ~disk_pages:config.disk_pages ())
  in
  Store.set_node store id;
  let wal =
    Wal.create
      ~config:
        {
          Wal.default_config with
          Wal.checkpoint_every = config.wal_checkpoint_every;
        }
      ~rng:(Kutil.Rng.split (Ksim.Engine.rng engine))
      ()
  in
  (match wal_file with Some path -> Wal.attach_file wal path | None -> ());
  let cm_state =
    if cluster_manager = id then
      Some (Cluster.create ~cluster_id:(Topology.cluster_of topology id))
    else None
  in
  let t =
    {
      id;
      cfg = config;
      transport;
      engine;
      topology;
      bootstrap;
      cluster_manager;
      peer_managers = List.filter (fun n -> n <> cluster_manager) peer_managers;
      store;
      wal;
      rdir = Region_directory.create ~capacity:config.rdir_capacity;
      pdir = Page_directory.create ();
      homed = Gaddr.Table.create 32;
      machines = Gaddr.Table.create 256;
      pending = Hashtbl.create 32;
      next_req = 0;
      next_ctx = 0;
      pool = [];
      up = true;
      epoch = 0;
      cm_state;
      rng = Kutil.Rng.split (Ksim.Engine.rng engine);
      suspected = Hashtbl.create 8;
      strikes = Hashtbl.create 8;
      last_hint = [];
      metrics = Metrics.create ();
      stats =
        { homed_hits = 0; rdir_hits = 0; cluster_hits = 0; map_walks = 0;
          map_walk_depth_total = 0; cluster_walks = 0; failures = 0 };
      next_txn_seq = 0;
      txn_prepared = Txid.Table.create 8;
      txn_decided = Txid.Table.create 16;
      txn_decisions = Txid.Table.create 8;
      txn_active = Txid.Table.create 4;
      txn_pins = Gaddr.Table.create 8;
      txn_last = None;
      txn_hook = None;
      next_snap = 1;
      snapshots = Hashtbl.create 8;
    }
  in
  Store.set_evict_hook store (fun page data ~dirty -> on_evict t page data ~dirty);
  (* An injected crash point inside a disk I/O takes the whole daemon down,
     exactly as nemesis's external crashes do. *)
  Store.set_crash_hook store (fun () -> if t.up then crash t);
  Wire.Transport.set_server transport id (fun ~src ~span req ~reply ->
      serve t ~src ~span req ~reply);
  (* A file-backed node replays its log before taking traffic: committed
     state (and in-doubt prepares) from the previous incarnation must be
     visible to the first request, exactly as simulated recovery orders
     replay before [t.up]. An empty or fresh file replays to nothing and
     just writes the initial checkpoint. *)
  if wal_file <> None then wal_replay t;
  start_reporting t;
  start_repair t;
  t

(* Graceful shutdown for a real process: push dirty homed pages, write the
   truncating checkpoint (durable in the file-backed WAL), and refuse
   further service. The caller closes the transport and exits; the next
   incarnation replays to exactly this state. *)
let shutdown t =
  if t.up then begin
    wal_checkpoint t;
    t.up <- false;
    t.epoch <- t.epoch + 1
  end
