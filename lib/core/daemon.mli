(** A Khazana daemon: the per-node peer process.

    "The Khazana service is implemented by a dynamically changing set of
    cooperating daemon processes ... there is no notion of a server in a
    Khazana system — all Khazana nodes are peers." A daemon owns this node's
    local storage, region directory, page directory and consistency-manager
    machines, serves remote peers over the wire protocol, and exports the
    client operations (reserve / allocate / lock / read / write / attributes
    and their release counterparts).

    All client-facing operations are fiber-blocking: call them from
    {!Ksim.Fiber.spawn}ed code. *)

type t

type config = {
  rdir_capacity : int;          (** region directory entries (default 128) *)
  ram_pages : int;              (** RAM frames (default 256) *)
  disk_pages : int;             (** disk frames (default 65536) *)
  lock_timeout : Ksim.Time.t;   (** per lock attempt (default 2 s) *)
  lock_retries : int;           (** attempts before reflecting failure (3) *)
  rpc_timeout : Ksim.Time.t;    (** control-plane calls (default 500 ms) *)
  request_timeout : Ksim.Time.t;(** CM-internal per-hop timeout (200 ms) *)
  report_every : Ksim.Time.t;   (** cluster-hint refresh period (500 ms);
                                    the report doubles as the heartbeat *)
  background_retry_every : Ksim.Time.t;
      (** release-op retry backoff base (250 ms) *)
  retry_backoff_cap : Ksim.Time.t;
      (** ceiling for all exponential retry backoffs (default 2 s) *)
  suspect_after : Ksim.Time.t;
      (** heartbeat silence before a manager suspects a member (1.5 s =
          three missed reports) *)
  repair_every : Ksim.Time.t;
      (** period of the home-side replica-repair pass (500 ms) *)
  wal_checkpoint_every : int;
      (** intent-log records before the repair loop takes a truncating
          checkpoint (default 512) *)
  acquire_window : int;
      (** pages acquired concurrently per wave of a multi-page {!lock}
          (default 16; clamped to ≥ 1, where 1 is fully sequential) *)
  txn_resolve_after : Ksim.Time.t;
      (** how long a participant holds a prepared-but-undecided transaction
          before asking the coordinator for the verdict (default 3 s) *)
  version_chain_depth : int;
      (** versioned CM: immutable versions retained per page at the home
          (default 8); snapshot pins below the retained window expire *)
  diff_density_max : float;
      (** versioned CM: publish dirty runs only while they cover at most
          this fraction of the page (default 0.5); denser writes fall back
          to shipping the whole image *)
}

val default_config : config
(** The defaults quoted per field above. *)

type error = Error.t
(** Unified operation error type; see {!Error} for the constructors and the
    string round-trip. RPC-level failures surface as [`Rpc _]. *)

val error_to_string : error -> string
(** Alias of {!Error.to_string}; total over every constructor. *)

(** {1 Lifecycle} *)

val create :
  ?config:config ->
  ?peer_managers:Knet.Topology.node_id list ->
  ?wal_file:string ->
  id:Knet.Topology.node_id ->
  bootstrap:Knet.Topology.node_id ->
  cluster_manager:Knet.Topology.node_id ->
  Wire.Transport.t ->
  t
(** Wire the daemon into the transport (installs its server handler) and
    start its periodic reporting fiber. [bootstrap] is the well-known home
    of the address map; [cluster_manager] is this node's manager (possibly
    itself, in which case the manager role is activated). Call
    {!bootstrap_map} once on the bootstrap node before any operation.

    [wal_file] backs the intent log with a real file
    ({!Kstorage.Wal.attach_file}): an existing log is replayed — committed
    state reinstalled, in-doubt prepares re-registered for resolution —
    before the daemon takes its first request, so a killed process
    restarted on the same file resumes where durability left it.
    Checkpoint snapshots then also carry homed committed page images,
    because a real process's disk tier dies with it. *)

val shutdown : t -> unit
(** Graceful exit for a real process (SIGTERM): flush dirty homed pages,
    write a truncating WAL checkpoint, stop serving. With [wal_file] the
    next incarnation replays to exactly this state. *)

val bootstrap_map : t -> unit
(** Initialise the address map root page. Must run on the bootstrap node. *)

val id : t -> Knet.Topology.node_id
(** This daemon's node id. *)

val engine : t -> Ksim.Engine.t
(** The simulation engine the daemon runs on. *)

val is_up : t -> bool
(** [false] while crashed or still replaying recovery. *)

val crash : t -> unit
(** Lose all in-memory state: RAM tier, CM machines, in-flight operations,
    the homed-region table, the page directory and the descriptor cache.
    The disk tier survives minus whatever the fault model takes (unsynced
    writes roll back, the crash frontier may tear); the intent log survives
    to its last sync. The node also leaves the network. *)

val recover : t -> unit
(** Rejoin the network and start the recovery phase: the daemon stays
    {!is_up}[ = false] while a fiber charges the simulated replay cost,
    scrubs torn disk images, and reconstructs metadata and committed page
    images from the WAL (checkpoint snapshot + committed log suffix). Only
    then does it serve again; the repair loop takes over to eagerly rebuild
    home machines and restore replica floors. *)

val set_disk_faults : t -> Kstorage.Disk_fault.config -> unit
(** Install the disk fault model on this node's page store and intent log
    (default {!Kstorage.Disk_fault.none}). *)

val wal : t -> Kstorage.Wal.t
(** This node's write-ahead intent log (introspection: size, stats). *)

(** {1 Failure detection}

    Each daemon keeps a suspicion list: cluster managers age member
    heartbeats (the periodic reports) into it and disseminate it; every
    node also suspects peers after consecutive RPC timeouts. Any direct
    traffic from a suspected node clears it. Crashed and partitioned
    nodes are indistinguishable here — both just go silent. *)

val suspects : t -> Knet.Topology.node_id list
(** Nodes this daemon currently believes are dead or unreachable, sorted. *)

val is_suspect : t -> Knet.Topology.node_id -> bool
(** Is the node on this daemon's suspicion list right now? *)

(** {1 Client operations (the paper's API, §2)} *)

type lock_ctx
(** Returned by {!lock}; required by {!read} and {!write}. *)

val reserve :
  t -> ?attr:Attr.t -> ctx:Ktrace.Op_ctx.t -> int -> (Region.t, error) result
(** [reserve t ~ctx len] reserves a contiguous range of global address
    space as a new region homed at this node. [len] (the final positional
    argument) is rounded up to a page multiple. The default [attr] owner is
    the context principal. *)

val unreserve : t -> ctx:Ktrace.Op_ctx.t -> Kutil.Gaddr.t -> unit
(** Release-class: returns immediately; remote legs retry in the
    background until they succeed (paper §3.5). *)

val allocate : t -> ctx:Ktrace.Op_ctx.t -> Kutil.Gaddr.t -> (unit, error) result
(** Allocate backing storage for a reserved region (by base address). *)

val free : t -> ctx:Ktrace.Op_ctx.t -> Kutil.Gaddr.t -> unit
(** Release-class counterpart of {!allocate}. *)

val lock :
  t -> ctx:Ktrace.Op_ctx.t -> addr:Kutil.Gaddr.t -> len:int ->
  Kconsistency.Types.mode -> (lock_ctx, error) result
(** Lock [addr, addr+len) in the given mode. The principal is taken from
    [ctx]; a context deadline caps the per-page acquisition timeout. The
    consistency protocol of the enclosing region decides what the intent
    costs. Pages are acquired in pipelined waves of
    [config.acquire_window] concurrent requests sharing one backoff and
    deadline, so a large range costs O(pages / window) round-trip waves;
    failure anywhere rolls back every page this call acquired
    (all-or-nothing, no pins or grants leak). *)

val unlock : t -> lock_ctx -> unit
(** Release-class: never fails toward the client. Dirty pages written under
    this context propagate according to the region's protocol. *)

val read :
  t -> lock_ctx -> addr:Kutil.Gaddr.t -> len:int -> (bytes, error) result
(** Copy out part of the locked range (charges local-storage latency). *)

val write :
  t -> lock_ctx -> addr:Kutil.Gaddr.t -> bytes -> (unit, error) result
(** Update part of the locked range; requires a write-mode context. *)

val write_sync :
  t -> ctx:Ktrace.Op_ctx.t -> addr:Kutil.Gaddr.t -> bytes -> (unit, error)
  result
(** Whole plain write — lock, write, unlock — plus, for strict (CREW)
    regions homed elsewhere, a synchronous write-through of the dirty
    pages to the region home before success is reported. The flush is
    what lets an acknowledged write survive the writer crashing, and
    what keeps the home's backup (the source for read fail-over around a
    crashed owner) as fresh as every acknowledged write. If the home
    cannot be reached the image keeps flushing in the background and the
    call returns the ambiguous [`Timeout]. *)

val write_cas :
  t -> ctx:Ktrace.Op_ctx.t -> addr:Kutil.Gaddr.t ->
  expected:Kconsistency.Types.version -> bytes -> (unit, error) result
(** Versioned-region optimistic write: publish only if the page's home is
    still at exactly [expected] (obtained from {!page_version} or an
    earlier successful write). [`Conflict] on mismatch — nothing is
    published, and the local cache is repaired to the home's latest, so
    subsequent local reads do not serve the rejected bytes. Every page the
    write spans shares the one expected version; the intended use is a
    record within a single page. [`Unavailable] on regions under any other
    protocol. *)

val page_version :
  t -> ctx:Ktrace.Op_ctx.t -> addr:Kutil.Gaddr.t ->
  (Kconsistency.Types.version, error) result
(** The home's current version of the versioned-region page containing
    [addr] — the token a {!write_cas} caller passes back as [expected]. *)

(** {1 MVCC snapshots (versioned regions)}

    A snapshot is a per-page version pin: the first read of each page pins
    it at the latest settled version that read observed, and every later
    read of that page through the same snapshot serves exactly the pinned
    version. Snapshot reads take no locks and trigger no invalidations;
    writers never wait for them. Pins reference the home's bounded version
    chain, so a long-lived snapshot can expire: once the pinned version
    falls off the chain, reads answer [`Unavailable] and the reader should
    begin a fresh snapshot. Snapshots are node-local, in-memory state — a
    crash expires all of them. *)

val snapshot_begin : t -> (int, error) result
(** Open a snapshot; the returned id names it in {!snapshot_read} and
    {!snapshot_release}. Cheap — no pages are touched until read. *)

val snapshot_read :
  t -> ctx:Ktrace.Op_ctx.t -> snap:int -> addr:Kutil.Gaddr.t -> len:int ->
  (bytes, error) result
(** Read [addr, addr+len) at the snapshot's pinned versions (pinning any
    page touched for the first time). Only regions under the [versioned]
    protocol serve snapshot reads. *)

val snapshot_release : t -> int -> unit
(** Forget the snapshot's pins. Release-class; unknown ids are no-ops. *)

val get_attr : t -> ctx:Ktrace.Op_ctx.t -> Kutil.Gaddr.t -> (Attr.t, error) result
(** Attributes of the region containing the address. *)

val set_attr :
  t -> ctx:Ktrace.Op_ctx.t -> Kutil.Gaddr.t -> Attr.t -> (unit, error) result
(** Update [world] access and [min_replicas] at the region's home. Other
    fields (protocol, page size) are immutable after creation. *)

(** {1 Distributed atomic transactions (2PC over the WAL)}

    A transaction buffers writes under locks taken through the ordinary
    {!lock} path (strict 2PL: every range touched is locked at first
    touch and held to the end — read ranges in shared [Read] mode,
    written ranges in [Write] mode). {!txn_commit} computes the new
    page images, groups them by region home, and runs two-phase commit:
    each participant home forces the images plus a prepare record through
    its WAL, then the coordinator forces the commit decision through its
    own WAL — the commit point — and broadcasts it. Presumed abort: the
    coordinator logs only commits, and a participant left in doubt by a
    crash asks the coordinator, treating "no record" as abort. Stale
    coordinators and participants are fenced by the crash epoch. *)

type txn
(** A client-side transaction handle; single-fiber, not reusable after
    {!txn_commit} or {!txn_abort}. *)

val txn_begin : t -> ctx:Ktrace.Op_ctx.t -> txn

val txn_uid : txn -> int
(** A process-unique identity for the handle (stable across its life;
    used by history recorders to correlate reads and writes). *)

val txn_read :
  t -> txn -> addr:Kutil.Gaddr.t -> len:int -> (bytes, error) result
(** Read within the transaction, observing its own buffered writes
    (read-your-writes). Takes a shared [Read] lock on the range at first
    touch; a later {!txn_write} overlapping it upgrades the lock by
    release-reacquire-validate — if another transaction changed the
    bytes inside the upgrade window, this transaction aborts with
    [`Conflict] instead of losing the update. *)

val txn_write :
  t -> txn -> addr:Kutil.Gaddr.t -> bytes -> (unit, error) result
(** Buffer a write. Nothing is visible to any node — including this one,
    outside the transaction — until commit. *)

val txn_commit : t -> txn -> (unit, error) result
(** Run two-phase commit over the buffered writes. [Ok ()] means the
    decision record is durable at the coordinator: the transaction is
    committed even if delivery to some participant is still in flight
    (the repair loop finishes it). [Error] means no write is, or ever
    will be, visible ([`Conflict] for a vote/timeout abort,
    [`Unavailable] if this node crashed mid-protocol). An empty
    transaction commits trivially. *)

val txn_abort : t -> txn -> unit
(** Drop the buffered writes and release the locks. Nothing was staged,
    so nothing propagates. *)

(** {2 2PC introspection (tests and experiments)} *)

val set_txn_hook : t -> (string -> unit) option -> unit
(** Install a protocol-step hook. The coordinator fires
    [coord.before_prepare], [coord.prepare_ack], [coord.all_acked],
    [coord.decision_logged] and [coord.decide_send] (once per remote
    participant); a participant fires [part.prepare_recv],
    [part.prepared], [part.decide_recv] and [part.decided]. The nemesis
    crashes the node {e inside} the hook to probe every protocol step. *)

val last_txid : t -> Kutil.Txid.t option
(** The most recent transaction id this node coordinated. *)

val txn_prepared_count : t -> int
(** Prepared-but-undecided transactions currently held (in-doubt limbo). *)

val txn_undelivered_decisions : t -> int
(** Commit decisions this coordinator still owes some participant. *)

(** {1 Introspection} *)

val locate_region :
  t -> ?ctx:Ktrace.Op_ctx.t -> Kutil.Gaddr.t -> (Region.t, error) result
(** The §3.2 location path: homed table, region directory, cluster manager,
    address-map tree walk. Exposed for experiments; [ctx] defaults to
    {!Ktrace.Op_ctx.background}. *)

val region_directory : t -> Region_directory.t
(** The per-node descriptor cache (tests and experiments poke at it). *)

val page_directory : t -> Page_directory.t
(** The per-node page directory. *)

val store : t -> Kstorage.Page_store.t
(** The two-tier local page store. *)

val homed_regions : t -> Region.t list
(** Allocated regions whose home is this node. *)

val machine_state : t -> Kutil.Gaddr.t -> string option
(** Protocol state name of the machine for a page, if instantiated. *)

val holds_page : t -> Kutil.Gaddr.t -> bool
(** Does this node currently hold a protocol-valid copy of the page? *)

type lookup_stats = {
  homed_hits : int;
  rdir_hits : int;
  cluster_hits : int;
  map_walks : int;
  map_walk_depth_total : int;
  cluster_walks : int;
      (** resolved by walking peer cluster managers (§3.1's fallback for
          stale or unavailable address-map data) *)
  failures : int;
}

val lookup_stats : t -> lookup_stats
(** How region-location requests resolved, by path (§3.2 order). *)

val reset_lookup_stats : t -> unit
(** Zero every {!lookup_stats} counter. *)

val metrics : t -> Ktrace.Metrics.t
(** This daemon's named counters and summaries (lock grants/rejects/
    timeouts, locate path hits, RPC timeouts, latency summaries). *)

val pool_bytes : t -> int
(** Locally reserved-but-unused address space. *)

val cluster_state : t -> Cluster.t option
(** The manager-role state when this node is a cluster manager. *)
