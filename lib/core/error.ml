type t =
  [ `Timeout
  | `Unreachable
  | `Unavailable of string
  | `Access_denied
  | `Not_allocated
  | `Bad_range
  | `Conflict of string
  | `Rpc of string ]

let to_string : t -> string = function
  | `Timeout -> "timeout"
  | `Unreachable -> "unreachable"
  | `Unavailable s -> "unavailable: " ^ s
  | `Access_denied -> "access denied"
  | `Not_allocated -> "region not allocated"
  | `Bad_range -> "bad range"
  | `Conflict s -> "conflict: " ^ s
  | `Rpc s -> "rpc: " ^ s

let strip_prefix ~prefix s =
  let lp = String.length prefix in
  if String.length s >= lp && String.sub s 0 lp = prefix then
    Some (String.sub s lp (String.length s - lp))
  else None

let of_string s : t option =
  match s with
  | "timeout" -> Some `Timeout
  | "unreachable" -> Some `Unreachable
  | "access denied" -> Some `Access_denied
  | "region not allocated" -> Some `Not_allocated
  | "bad range" -> Some `Bad_range
  | _ -> (
    match strip_prefix ~prefix:"unavailable: " s with
    | Some rest -> Some (`Unavailable rest)
    | None -> (
      match strip_prefix ~prefix:"conflict: " s with
      | Some rest -> Some (`Conflict rest)
      | None ->
        Option.map (fun rest -> `Rpc rest) (strip_prefix ~prefix:"rpc: " s)))

let pp ppf e = Format.pp_print_string ppf (to_string e)
