(** The one Khazana operation-error type.

    Every failure a client can observe — daemon-local denials, consistency
    timeouts, and RPC-level transport failures — is a constructor here, so
    call sites match on a single polymorphic-variant type regardless of
    which layer failed. {!Daemon.error} is an alias of this type. *)

type t =
  [ `Timeout  (** a lock or remote call exhausted its time budget *)
  | `Unreachable
    (** the peer is definitively not there right now: on a real transport a
        refused/reset connection, on the simulated one a send filtered by
        injected faults. Unlike [`Timeout] (silence), this is positive
        evidence — retry loops may fail over immediately. *)
  | `Unavailable of string  (** resource unreachable / protocol gave up *)
  | `Access_denied
  | `Not_allocated
  | `Bad_range
  | `Conflict of string
  | `Rpc of string  (** transport-level failure: malformed or unexpected
                        response from a peer *) ]

val to_string : t -> string
(** Total over every constructor. *)

val of_string : string -> t option
(** Inverse of {!to_string}: [of_string (to_string e) = Some e]. *)

val pp : Format.formatter -> t -> unit
(** Formats {!to_string}'s rendering. *)
