module Gaddr = Kutil.Gaddr
module Codec = Kutil.Codec

type entry = {
  region_base : Gaddr.t;
  homed_here : bool;
  mutable sharers : Knet.Topology.node_id list;
}

type t = entry Gaddr.Table.t

let create () = Gaddr.Table.create 256

let ensure t ~page ~region_base ~homed_here =
  match Gaddr.Table.find_opt t page with
  | Some e -> e
  | None ->
    let e = { region_base; homed_here; sharers = [] } in
    Gaddr.Table.replace t page e;
    e

let find t page = Gaddr.Table.find_opt t page

let set_sharers t page sharers =
  match Gaddr.Table.find_opt t page with
  | Some e -> e.sharers <- sharers
  | None -> ()

let remove t page = Gaddr.Table.remove t page

let crash t = Gaddr.Table.reset t

let length t = Gaddr.Table.length t
let fold f t acc = Gaddr.Table.fold f t acc

(* Authoritative (homed-here) entries are the directory's persistent state;
   hint entries for remote pages are rebuilt from traffic. Sorted by page so
   the snapshot bytes are a pure function of the directory's contents. *)
let encode_persistent t e =
  let homed =
    Gaddr.Table.fold
      (fun page entry acc ->
        if entry.homed_here then (page, entry) :: acc else acc)
      t []
  in
  let homed = List.sort (fun (a, _) (b, _) -> Gaddr.compare a b) homed in
  Codec.list e
    (fun (page, entry) ->
      Codec.u128 e page;
      Codec.u128 e entry.region_base;
      Codec.list e (fun n -> Codec.int e n) entry.sharers)
    homed

let decode_persistent t d =
  let entries =
    Codec.read_list d (fun () ->
        let page = Codec.read_u128 d in
        let region_base = Codec.read_u128 d in
        let sharers = Codec.read_list d (fun () -> Codec.read_int d) in
        (page, region_base, sharers))
  in
  List.iter
    (fun (page, region_base, sharers) ->
      let e = ensure t ~page ~region_base ~homed_here:true in
      e.sharers <- sharers)
    entries
