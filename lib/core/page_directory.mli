(** Per-node page directory.

    "The local storage subsystem on each node maintains a page directory,
    indexed by global addresses, that contains information about individual
    pages of global regions including the list of nodes sharing this page."
    Entries for locally-homed pages are authoritative (they mirror the
    consistency manager's sharer knowledge); entries for remote pages are
    hints. Nothing here survives a crash by itself — the in-memory table is
    wiped, and recovery rebuilds the authoritative part from the WAL
    checkpoint snapshot ({!encode_persistent} / {!decode_persistent}) plus
    the replayed log suffix. *)

type entry = {
  region_base : Kutil.Gaddr.t;
  homed_here : bool;
  mutable sharers : Knet.Topology.node_id list;  (** possibly-stale hint *)
}

type t

val create : unit -> t
(** An empty directory. *)

val ensure : t -> page:Kutil.Gaddr.t -> region_base:Kutil.Gaddr.t -> homed_here:bool -> entry
(** The page's entry, created (with no sharers) if absent. *)

val find : t -> Kutil.Gaddr.t -> entry option
(** The page's entry, if one exists. *)

val set_sharers : t -> Kutil.Gaddr.t -> Knet.Topology.node_id list -> unit
(** Overwrite the recorded sharer list (no-op on unknown pages). *)

val remove : t -> Kutil.Gaddr.t -> unit
(** Forget the page entirely. *)

val crash : t -> unit
(** Wipe everything: the directory lives in memory. Homed entries come back
    through WAL replay, hints through traffic and anti-entropy repair. *)

val length : t -> int
(** Number of entries. *)

val fold : (Kutil.Gaddr.t -> entry -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over every entry (iteration order unspecified). *)

val encode_persistent : t -> Kutil.Codec.encoder -> unit
(** Append the authoritative (homed-here) entries, sorted by page, for a
    WAL checkpoint snapshot. *)

val decode_persistent : t -> Kutil.Codec.decoder -> unit
(** Re-create the entries written by {!encode_persistent} (merging into
    whatever the log suffix already restored). *)
