(** Region descriptors.

    "Khazana maintains a global region descriptor associated with each
    region that stores various region attributes such as its security
    attributes, page size, and desired consistency protocol. In addition,
    each region has a home node that maintains a copy of the region's
    descriptor and keeps track of all the nodes maintaining copies of the
    region's data." *)

type state = Reserved | Allocated
(** Reserved address space cannot be accessed until storage is allocated. *)

type t = {
  base : Kutil.Gaddr.t;       (** first address; page-aligned *)
  len : int;                  (** bytes; multiple of [attr.page_size] *)
  attr : Attr.t;
  home : Knet.Topology.node_id;
  state : state;
}

val make :
  base:Kutil.Gaddr.t -> len:int -> attr:Attr.t -> home:Knet.Topology.node_id -> t
(** A fresh descriptor in [Reserved] state. Raises [Invalid_argument] on
    misaligned base or length. *)

val allocated : t -> t
(** The same descriptor flipped to [Allocated] state. *)

val page_count : t -> int
(** Number of pages ([len / attr.page_size]). *)

val pages : t -> Kutil.Gaddr.t list
(** Every page base address in the region, in ascending order. Callers
    that need the list more than once (lock/unlock paths) compute it once
    and reuse it. *)

val contains : t -> Kutil.Gaddr.t -> bool
(** Does the address fall inside [base, base+len)? *)

val contains_range : t -> Kutil.Gaddr.t -> len:int -> bool
(** Does the whole byte range fall inside the region? *)

val page_of : t -> Kutil.Gaddr.t -> Kutil.Gaddr.t
(** Enclosing page base for an address inside the region. *)

val end_ : t -> Kutil.Gaddr.t
(** One past the last address ([base + len]). *)

val encode : Kutil.Codec.encoder -> t -> unit
(** Append the wire form (descriptors travel in RPC payloads). *)

val decode : Kutil.Codec.decoder -> t
(** Inverse of {!encode}. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-line rendering for logs and tests. *)
