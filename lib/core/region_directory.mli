(** Per-node cache of recently used region descriptors.

    "To avoid expensive remote lookups, Khazana maintains a cache of
    recently used region descriptors called the region directory. The
    region directory is not kept globally consistent, and thus may contain
    stale data, but this is not a problem." Capacity-bounded with LRU
    eviction; lookups are by containing address. *)

type t

val create : capacity:int -> t
(** An empty directory holding at most [capacity] descriptors. *)

val put : t -> Region.t -> unit
(** Insert or refresh a descriptor (evicting the least recently used
    entry at capacity). *)

val find : t -> Kutil.Gaddr.t -> Region.t option
(** Descriptor of the cached region containing the address, if any;
    refreshes recency. *)

val remove : t -> Kutil.Gaddr.t -> unit
(** Drop the entry whose base is exactly this address. *)

val invalidate_containing : t -> Kutil.Gaddr.t -> unit
(** Drop whichever cached region contains the address (stale-hint
    recovery). *)

val length : t -> int
(** Current number of cached descriptors. *)

val entries : t -> Region.t list
(** Every cached descriptor (no particular order; for tests/diagnostics). *)

val hits : t -> int
(** {!find} calls that returned a descriptor. *)

val misses : t -> int
(** {!find} calls that returned [None]. *)

val reset_stats : t -> unit
(** Zero {!hits} and {!misses}. *)
