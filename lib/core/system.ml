module Topology = Knet.Topology

type t = {
  engine : Ksim.Engine.t;
  topology : Topology.t;
  transport : Wire.Transport.t;  (* what daemons hold: the packed seam *)
  rpc : Wire.Sim.Rpc.t;          (* the concrete simulated engine under it *)
  daemons : Daemon.t array;
}

let engine t = t.engine
let topology t = t.topology
let transport t = t.transport
let net t = Wire.Sim.Rpc.net t.rpc

let daemon t node =
  if node < 0 || node >= Array.length t.daemons then
    invalid_arg "System.daemon: bad node";
  t.daemons.(node)

let daemons t = Array.to_list t.daemons
let node_count t = Array.length t.daemons
let now t = Ksim.Engine.now t.engine

let client t node ?principal () =
  Client.connect (daemon t node) ~principal:(Option.value principal ~default:node)

(* Drive the engine until a fiber completes; a quiescent queue with the
   fiber still pending is a deadlock in the system under test. The failure
   message carries enough state to debug it without a rerun. *)
let run_fiber ?(name = "run_fiber") t f =
  let p = Ksim.Fiber.async t.engine ~name f in
  while (not (Ksim.Promise.is_resolved p)) && Ksim.Engine.step t.engine do
    ()
  done;
  match Ksim.Promise.peek p with
  | Some v -> v
  | None ->
    let down =
      Array.to_list t.daemons
      |> List.filter_map (fun d ->
             if Daemon.is_up d then None else Some (string_of_int (Daemon.id d)))
    in
    failwith
      (Printf.sprintf
         "System.run_fiber: simulation went quiescent (deadlock) with fiber \
          %S still blocked at t=%dns; %d RPC call(s) pending; down nodes: \
          [%s]"
         name (Ksim.Engine.now t.engine)
         (Wire.Transport.pending_calls t.transport)
         (String.concat "," down))

let run_until_quiet ?(limit = Ksim.Time.sec 60) t =
  Ksim.Engine.run ~until:(Ksim.Engine.now t.engine + limit) t.engine

let crash t node = Daemon.crash (daemon t node)
let recover t node = Daemon.recover (daemon t node)
let set_disk_faults t node faults = Daemon.set_disk_faults (daemon t node) faults

let partition t a b = Wire.Sim.Net.partition (net t) a b
let heal t = Wire.Sim.Net.heal (net t)

let set_frame_faults t ?seed ?drop ?duplicate ?delay () =
  Wire.Sim.Net.set_frame_faults (net t) ?seed ?drop ?duplicate ?delay ()

let clear_frame_faults t = Wire.Sim.Net.clear_frame_faults (net t)

let create ?(seed = 42) ?config ?lan ?wan ~nodes_per_cluster ~clusters () =
  let engine = Ksim.Engine.create ~seed () in
  let topology = Topology.symmetric ~nodes_per_cluster ~clusters in
  (match lan with Some p -> Topology.set_lan topology p | None -> ());
  (match wan with Some p -> Topology.set_wan topology p | None -> ());
  let transport, rpc = Wire.Sim.create engine topology in
  let bootstrap = 0 in
  let manager_of node =
    (* The first node of each cluster manages it. *)
    Topology.cluster_of topology node * nodes_per_cluster
  in
  let all_managers =
    List.init clusters (fun c -> c * nodes_per_cluster)
  in
  let daemons =
    Array.init (Topology.node_count topology) (fun id ->
        Daemon.create ?config ~peer_managers:all_managers ~id ~bootstrap
          ~cluster_manager:(manager_of id) transport)
  in
  let t = { engine; topology; transport; rpc; daemons } in
  run_fiber ~name:"bootstrap" t (fun () -> Daemon.bootstrap_map daemons.(bootstrap));
  t
