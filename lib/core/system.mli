(** Whole-system builder: engine + topology + transport + daemons.

    Reproduces Figure 1's shape: a set of peer Khazana nodes, possibly
    spread over several clusters with WAN links between them, with node 0 as
    the bootstrap (home of the address map) and the first node of each
    cluster as that cluster's manager. *)

type t

val create :
  ?seed:int ->
  ?config:Daemon.config ->
  ?lan:Knet.Topology.link_profile ->
  ?wan:Knet.Topology.link_profile ->
  nodes_per_cluster:int ->
  clusters:int ->
  unit ->
  t
(** Build and bootstrap a system; returns once the address map root exists
    and the simulation is quiescent. *)

val engine : t -> Ksim.Engine.t
(** The simulation engine everything runs on. *)

val topology : t -> Knet.Topology.t
(** Cluster/link layout. *)

val transport : t -> Wire.Transport.t
(** The packed transport daemons speak through (e.g. for [set_coalescing]
    and traffic {!Wire.Transport.stats} in benches). *)

val net : t -> Wire.Sim.Net.t
(** The concrete simulated network under the seam, for byte-level traffic
    counters, trace taps and fault knobs that only simulation has. *)

val daemon : t -> Knet.Topology.node_id -> Daemon.t
(** The node's daemon. *)

val daemons : t -> Daemon.t list
(** Every daemon, in node-id order. *)

val node_count : t -> int
(** Total nodes ([nodes_per_cluster × clusters]). *)

val client : t -> Knet.Topology.node_id -> ?principal:int -> unit -> Client.t
(** Connect a client application process to the daemon on a node. The
    principal defaults to the node id. *)

val run_fiber : ?name:string -> t -> (unit -> 'a) -> 'a
(** Run a fiber to completion, driving the simulation as needed. Raises
    [Failure] if the simulation goes quiescent with the fiber still blocked
    (deadlock); the message names the blocked fiber and reports the sim
    time, pending RPC count and currently-down nodes. This is the main
    entry point for tests and examples. *)

val run_until_quiet : ?limit:Ksim.Time.t -> t -> unit
(** Drain all pending simulation work (bounded by [limit] of additional
    virtual time, default 60 s). *)

val now : t -> Ksim.Time.t
(** Current simulated time. *)

(** {1 Failure injection} *)

val crash : t -> Knet.Topology.node_id -> unit
(** Crash a node: RAM (and pins) lost, disk kept subject to the fault
    model, links down, in-flight operations abandoned. *)

val recover : t -> Knet.Topology.node_id -> unit
(** Bring a crashed node back: scrub torn disk frames, replay the WAL,
    rejoin the cluster. *)

(** Install (or clear, with {!Kstorage.Disk_fault.none}) the disk fault
    model on one node's page store and intent log. *)
val set_disk_faults : t -> Knet.Topology.node_id -> Kstorage.Disk_fault.config -> unit

val partition : t -> Knet.Topology.node_id list -> Knet.Topology.node_id list -> unit
(** Cut the network between the two groups (both directions). *)

val heal : t -> unit
(** Remove every partition. *)

val set_frame_faults :
  t -> ?seed:int -> ?drop:float -> ?duplicate:float -> ?delay:float ->
  unit -> unit
(** Arm the simulated network's seeded frame-fault shim (drop, duplicate,
    extra delay per envelope) — the same knob
    [Transport_unix.set_frame_faults] exposes for real sockets. See
    {!Knet.Network.Make.set_frame_faults}. *)

val clear_frame_faults : t -> unit
