(** Inter-daemon wire protocol.

    Everything Khazana nodes say to each other travels as one of these
    requests over the {!Ktransport.Transport} seam. Consistency-manager
    traffic ([Cm_msg]) is one-way; the rest follow request/response. The
    protocol is a full {!Ktransport.Transport.WIRE}: it round-trips
    through {!Kutil.Codec} bytes, so the same daemon runs over the
    simulated network or real sockets. *)

module Gaddr = Kutil.Gaddr
module Ctypes = Kconsistency.Types
module Codec = Kutil.Codec

type request =
  | Cm_msg of { page : Gaddr.t; region_base : Gaddr.t; body : Ctypes.msg }
      (** Consistency protocol traffic for one page. [region_base] lets the
          receiver resolve the region (and thus protocol/home) lazily. *)
  | Get_descriptor of { addr : Gaddr.t }
      (** Ask a node for the descriptor of the region containing [addr];
          answered from its homed table or its region directory. *)
  | Alloc_region of { desc : Region.t }
      (** Sent to the region's home: allocate backing storage. *)
  | Free_region of { base : Gaddr.t }
      (** Sent to the region's home: release backing storage. *)
  | Unreserve_region of { base : Gaddr.t }
      (** Sent to the region's home: forget the descriptor. *)
  | Set_attr of { base : Gaddr.t; attr : Attr.t }
  | Chunk_request
      (** Node -> cluster manager: grant me a fresh 1 GiB chunk of
          unreserved address space to manage locally. *)
  | Cluster_lookup of { addr : Gaddr.t }
      (** Node -> cluster manager: is this region cached nearby? *)
  | Cluster_walk of { addr : Gaddr.t }
      (** Cluster manager -> peer cluster managers: the paper's fallback
          when the address map is stale or unreachable — "the region can
          still be located using a cluster-walk algorithm". Answered from
          local hints only; never forwarded further. *)
  | Cluster_report of { node_regions : (Gaddr.t * Region.t) list; free_bytes : int }
      (** One-way hint refresh: regions this node caches/homes, free pool.
          Doubles as the failure detector's heartbeat. *)
  | Suspect_hint of { cluster : int; suspects : Knet.Topology.node_id list }
      (** One-way, cluster manager -> members and peer managers: the
          manager's current suspicion list for its cluster (nodes whose
          heartbeats went stale). A wholesale view, not a delta; a
          receiving manager relays it to its own members. *)
  | Page_pull of { page : Gaddr.t }
      (** Recovering home -> recorded sharer: "send me your copy of this
          page, if you still hold a protocol-valid one". Used by the repair
          loop to reconcile a possibly-stale disk image with live replicas
          before re-serving the page — a valid remote copy can never be
          older than the crashed home's disk. *)
  | Page_probe of { page : Gaddr.t }
      (** Home -> recorded holder: "do you still hold a protocol-valid
          copy?". The repair loop uses it to unmask phantom holders — nodes
          that crashed (losing their copy) and recovered before the home
          rebuilt its books — which would otherwise count toward the
          replica floor forever. *)
  | Ping
  | Tx_prepare of { gtx : Kutil.Txid.t; pages : (Gaddr.t * bytes) list }
      (** 2PC phase one, coordinator -> participant home: force the page
          images under a prepared WAL transaction and vote. Idempotent: a
          participant that already prepared or decided [gtx] re-votes yes
          without re-logging. *)
  | Tx_decide of { gtx : Kutil.Txid.t; commit : bool }
      (** 2PC phase two, coordinator -> participant: apply or drop the
          prepared images. Idempotent: a duplicate decision (or one for an
          unknown, already-forgotten transaction) acks as a no-op. *)
  | Tx_status of { gtx : Kutil.Txid.t }
      (** In-doubt participant -> coordinator: what became of [gtx]?
          Presumed abort — a coordinator with no record of the decision
          answers aborted, unless the transaction is still in its voting
          window. *)
  | Page_flush of
      { page : Gaddr.t; region_base : Gaddr.t; data : bytes; version : int }
      (** Writer -> region home: write-through of a freshly written page
          image under strict consistency. The home logs and installs the
          image (keeping its manager backup as fresh as every acknowledged
          write) before acking; the writer acks its client only after the
          flush, so an owner crash can no longer swallow an acknowledged
          write. Idempotent — the home keeps the freshest version. *)
  | Page_diff of {
      page : Gaddr.t;
      region_base : Gaddr.t;
      parent : int;
      expected : int option;
      payload : Ctypes.publish_payload;
    }
      (** Writer -> region home (versioned CM): publish a new immutable
          page version. [payload] is sparse dirty runs against the
          retained image of [parent], or a whole image when the write was
          dense (or the parent fell past the home's GC watermark —
          [Parent_gone] tells the writer to resend whole). [expected] is
          the optional per-page CAS: publish only if the home's latest
          version still equals it. Answered with {!R_publish}. *)
  | Page_version of { page : Gaddr.t; region_base : Gaddr.t; at : int option }
      (** Snapshot reader -> region home (versioned CM): the image of the
          page at version [at] ([None] = latest settled). Answered with
          {!R_page}: [None] means the version fell past the GC watermark
          (the snapshot expired) or the page is unknown. *)

type tx_state = Tx_committed | Tx_aborted | Tx_in_progress

type response =
  | R_unit
  | R_descriptor of Region.t option
  | R_page of (bytes * int) option
      (** The sharer's valid copy and its protocol version, or [None]. *)
  | R_held of bool
  | R_chunk of { base : Gaddr.t; len : int }
  | R_lookup of { desc : Region.t option; holders : Knet.Topology.node_id list }
  | R_error of string
  | R_tx_vote of bool
      (** Participant's phase-one vote: [true] = prepared, will commit on
          decision. *)
  | R_tx_status of tx_state
  | R_publish of Ctypes.publish_result
      (** Outcome of a {!request.Page_diff} publish at the home. *)

let addr_size = 16
let desc_size = 64 (* serialized descriptor estimate *)

let request_size = function
  | Cm_msg { body; _ } -> (2 * addr_size) + Ctypes.msg_size body
  | Get_descriptor _ -> addr_size + 8
  | Alloc_region _ -> desc_size
  | Free_region _ | Unreserve_region _ -> addr_size + 8
  | Set_attr _ -> addr_size + 32
  | Chunk_request -> 8
  | Cluster_lookup _ -> addr_size + 8
  | Cluster_walk _ -> addr_size + 8
  | Cluster_report { node_regions; _ } ->
    16 + (List.length node_regions * (addr_size + desc_size))
  | Suspect_hint { suspects; _ } -> 16 + (4 * List.length suspects)
  | Page_pull _ | Page_probe _ -> addr_size + 8
  | Ping -> 8
  | Tx_prepare { pages; _ } ->
    20 + List.fold_left (fun a (_, img) -> a + addr_size + Bytes.length img) 0 pages
  | Tx_decide _ -> 21
  | Tx_status _ -> 20
  | Page_flush { data; _ } -> (2 * addr_size) + 16 + Bytes.length data
  | Page_diff { payload; _ } ->
    (2 * addr_size) + 16 + Ctypes.publish_payload_size payload
  | Page_version _ -> (2 * addr_size) + 16

let response_size = function
  | R_unit -> 8
  | R_descriptor None -> 9
  | R_descriptor (Some _) -> 8 + desc_size
  | R_chunk _ -> 8 + addr_size + 8
  | R_lookup { desc; holders } ->
    8 + (match desc with Some _ -> desc_size | None -> 1)
    + (4 * List.length holders)
  | R_page None -> 9
  | R_page (Some (data, _)) -> 16 + Bytes.length data
  | R_held _ -> 9
  | R_error s -> 8 + String.length s
  | R_tx_vote _ -> 9
  | R_tx_status _ -> 9
  | R_publish _ -> 17

let request_kind = function
  | Cm_msg { body; _ } -> Ctypes.msg_kind body
  | Get_descriptor _ -> "get_descriptor"
  | Alloc_region _ -> "alloc_region"
  | Free_region _ -> "free_region"
  | Unreserve_region _ -> "unreserve_region"
  | Set_attr _ -> "set_attr"
  | Chunk_request -> "chunk_request"
  | Cluster_lookup _ -> "cluster_lookup"
  | Cluster_walk _ -> "cluster_walk"
  | Cluster_report _ -> "cluster_report"
  | Suspect_hint _ -> "suspect_hint"
  | Page_pull _ -> "page_pull"
  | Page_probe _ -> "page_probe"
  | Ping -> "ping"
  | Tx_prepare _ -> "tx_prepare"
  | Tx_decide _ -> "tx_decide"
  | Tx_status _ -> "tx_status"
  | Page_flush _ -> "page_flush"
  | Page_diff _ -> "page_diff"
  | Page_version _ -> "page_version"

(* ---------------- byte codecs ---------------- *)

(* Tags are wire format; renumbering breaks cross-version interop. *)

let encode_request enc req =
  match req with
  | Cm_msg { page; region_base; body } ->
    Codec.u8 enc 0;
    Codec.u128 enc page;
    Codec.u128 enc region_base;
    Ctypes.encode_msg enc body
  | Get_descriptor { addr } ->
    Codec.u8 enc 1;
    Codec.u128 enc addr
  | Alloc_region { desc } ->
    Codec.u8 enc 2;
    Region.encode enc desc
  | Free_region { base } ->
    Codec.u8 enc 3;
    Codec.u128 enc base
  | Unreserve_region { base } ->
    Codec.u8 enc 4;
    Codec.u128 enc base
  | Set_attr { base; attr } ->
    Codec.u8 enc 5;
    Codec.u128 enc base;
    Attr.encode enc attr
  | Chunk_request -> Codec.u8 enc 6
  | Cluster_lookup { addr } ->
    Codec.u8 enc 7;
    Codec.u128 enc addr
  | Cluster_walk { addr } ->
    Codec.u8 enc 8;
    Codec.u128 enc addr
  | Cluster_report { node_regions; free_bytes } ->
    Codec.u8 enc 9;
    Codec.list enc
      (fun (base, desc) ->
        Codec.u128 enc base;
        Region.encode enc desc)
      node_regions;
    Codec.int enc free_bytes
  | Suspect_hint { cluster; suspects } ->
    Codec.u8 enc 10;
    Codec.int enc cluster;
    Codec.list enc (Codec.u32 enc) suspects
  | Page_pull { page } ->
    Codec.u8 enc 11;
    Codec.u128 enc page
  | Page_probe { page } ->
    Codec.u8 enc 12;
    Codec.u128 enc page
  | Ping -> Codec.u8 enc 13
  | Tx_prepare { gtx; pages } ->
    Codec.u8 enc 14;
    Kutil.Txid.encode enc gtx;
    Codec.list enc
      (fun (page, img) ->
        Codec.u128 enc page;
        Codec.bytes enc img)
      pages
  | Tx_decide { gtx; commit } ->
    Codec.u8 enc 15;
    Kutil.Txid.encode enc gtx;
    Codec.bool enc commit
  | Tx_status { gtx } ->
    Codec.u8 enc 16;
    Kutil.Txid.encode enc gtx
  | Page_flush { page; region_base; data; version } ->
    Codec.u8 enc 17;
    Codec.u128 enc page;
    Codec.u128 enc region_base;
    Codec.bytes enc data;
    Codec.int enc version
  | Page_diff { page; region_base; parent; expected; payload } ->
    Codec.u8 enc 18;
    Codec.u128 enc page;
    Codec.u128 enc region_base;
    Codec.int enc parent;
    Codec.option enc (Codec.int enc) expected;
    Ctypes.encode_publish_payload enc payload
  | Page_version { page; region_base; at } ->
    Codec.u8 enc 19;
    Codec.u128 enc page;
    Codec.u128 enc region_base;
    Codec.option enc (Codec.int enc) at

let decode_request dec =
  match Codec.read_u8 dec with
  | 0 ->
    let page = Codec.read_u128 dec in
    let region_base = Codec.read_u128 dec in
    Cm_msg { page; region_base; body = Ctypes.decode_msg dec }
  | 1 -> Get_descriptor { addr = Codec.read_u128 dec }
  | 2 -> Alloc_region { desc = Region.decode dec }
  | 3 -> Free_region { base = Codec.read_u128 dec }
  | 4 -> Unreserve_region { base = Codec.read_u128 dec }
  | 5 ->
    let base = Codec.read_u128 dec in
    Set_attr { base; attr = Attr.decode dec }
  | 6 -> Chunk_request
  | 7 -> Cluster_lookup { addr = Codec.read_u128 dec }
  | 8 -> Cluster_walk { addr = Codec.read_u128 dec }
  | 9 ->
    let node_regions =
      Codec.read_list dec (fun () ->
          let base = Codec.read_u128 dec in
          (base, Region.decode dec))
    in
    Cluster_report { node_regions; free_bytes = Codec.read_int dec }
  | 10 ->
    let cluster = Codec.read_int dec in
    Suspect_hint { cluster; suspects = Codec.read_list dec (fun () -> Codec.read_u32 dec) }
  | 11 -> Page_pull { page = Codec.read_u128 dec }
  | 12 -> Page_probe { page = Codec.read_u128 dec }
  | 13 -> Ping
  | 14 ->
    let gtx = Kutil.Txid.decode dec in
    let pages =
      Codec.read_list dec (fun () ->
          let page = Codec.read_u128 dec in
          (page, Codec.read_bytes dec))
    in
    Tx_prepare { gtx; pages }
  | 15 ->
    let gtx = Kutil.Txid.decode dec in
    Tx_decide { gtx; commit = Codec.read_bool dec }
  | 16 -> Tx_status { gtx = Kutil.Txid.decode dec }
  | 17 ->
    let page = Codec.read_u128 dec in
    let region_base = Codec.read_u128 dec in
    let data = Codec.read_bytes dec in
    Page_flush { page; region_base; data; version = Codec.read_int dec }
  | 18 ->
    let page = Codec.read_u128 dec in
    let region_base = Codec.read_u128 dec in
    let parent = Codec.read_int dec in
    let expected = Codec.read_option dec (fun () -> Codec.read_int dec) in
    Page_diff
      { page; region_base; parent; expected;
        payload = Ctypes.decode_publish_payload dec }
  | 19 ->
    let page = Codec.read_u128 dec in
    let region_base = Codec.read_u128 dec in
    Page_version
      { page; region_base;
        at = Codec.read_option dec (fun () -> Codec.read_int dec) }
  | n -> raise (Codec.Decode_error (Printf.sprintf "Wire.request: tag %d" n))

let encode_response enc resp =
  match resp with
  | R_unit -> Codec.u8 enc 0
  | R_descriptor d ->
    Codec.u8 enc 1;
    Codec.option enc (Region.encode enc) d
  | R_page p ->
    Codec.u8 enc 2;
    Codec.option enc
      (fun (data, version) ->
        Codec.bytes enc data;
        Codec.int enc version)
      p
  | R_held b ->
    Codec.u8 enc 3;
    Codec.bool enc b
  | R_chunk { base; len } ->
    Codec.u8 enc 4;
    Codec.u128 enc base;
    Codec.int enc len
  | R_lookup { desc; holders } ->
    Codec.u8 enc 5;
    Codec.option enc (Region.encode enc) desc;
    Codec.list enc (Codec.u32 enc) holders
  | R_error s ->
    Codec.u8 enc 6;
    Codec.string enc s
  | R_tx_vote ok ->
    Codec.u8 enc 7;
    Codec.bool enc ok
  | R_tx_status st ->
    Codec.u8 enc 8;
    Codec.u8 enc
      (match st with Tx_committed -> 0 | Tx_aborted -> 1 | Tx_in_progress -> 2)
  | R_publish r ->
    Codec.u8 enc 9;
    Ctypes.encode_publish_result enc r

let decode_response dec =
  match Codec.read_u8 dec with
  | 0 -> R_unit
  | 1 -> R_descriptor (Codec.read_option dec (fun () -> Region.decode dec))
  | 2 ->
    R_page
      (Codec.read_option dec (fun () ->
           let data = Codec.read_bytes dec in
           (data, Codec.read_int dec)))
  | 3 -> R_held (Codec.read_bool dec)
  | 4 ->
    let base = Codec.read_u128 dec in
    R_chunk { base; len = Codec.read_int dec }
  | 5 ->
    let desc = Codec.read_option dec (fun () -> Region.decode dec) in
    R_lookup { desc; holders = Codec.read_list dec (fun () -> Codec.read_u32 dec) }
  | 6 -> R_error (Codec.read_string dec)
  | 7 -> R_tx_vote (Codec.read_bool dec)
  | 8 ->
    R_tx_status
      (match Codec.read_u8 dec with
      | 0 -> Tx_committed
      | 1 -> Tx_aborted
      | 2 -> Tx_in_progress
      | n -> raise (Codec.Decode_error (Printf.sprintf "Wire.tx_state: %d" n)))
  | 9 -> R_publish (Ctypes.decode_publish_result dec)
  | n -> raise (Codec.Decode_error (Printf.sprintf "Wire.response: tag %d" n))

(* ---------------- the transport seam, instantiated ----------------

   [P] must stay a named module path: OCaml's applicative functors then
   make [Transport.t] from the three [Make] applications below one and the
   same abstract type, so a packed simulated transport and a packed socket
   transport are interchangeable values. *)

module P = struct
  type nonrec request = request
  type nonrec response = response

  let request_size = request_size
  let response_size = response_size
  let request_kind = request_kind
  let encode_request = encode_request
  let decode_request = decode_request
  let encode_response = encode_response
  let decode_response = decode_response
end

module Transport = Ktransport.Transport.Make (P)
(** What daemons hold: a packed first-class transport. *)

module Sim = Ktransport.Transport_sim.Make (P)
(** The simulated backend ([Sim.T.t = Transport.t]). [Sim.Rpc] and
    [Sim.Net] expose the concrete engine for harnesses. *)

module Sockets = Ktransport.Transport_unix.Make (P)
(** The real backend: frames over Unix-domain sockets. *)

module Policy = Krpc.Policy
