(** Inter-daemon wire protocol.

    Everything Khazana nodes say to each other travels as one of these
    requests over {!Krpc.Rpc}. Consistency-manager traffic ([Cm_msg]) is
    one-way; the rest follow request/response. *)

module Gaddr = Kutil.Gaddr
module Ctypes = Kconsistency.Types

type request =
  | Cm_msg of { page : Gaddr.t; region_base : Gaddr.t; body : Ctypes.msg }
      (** Consistency protocol traffic for one page. [region_base] lets the
          receiver resolve the region (and thus protocol/home) lazily. *)
  | Get_descriptor of { addr : Gaddr.t }
      (** Ask a node for the descriptor of the region containing [addr];
          answered from its homed table or its region directory. *)
  | Alloc_region of { desc : Region.t }
      (** Sent to the region's home: allocate backing storage. *)
  | Free_region of { base : Gaddr.t }
      (** Sent to the region's home: release backing storage. *)
  | Unreserve_region of { base : Gaddr.t }
      (** Sent to the region's home: forget the descriptor. *)
  | Set_attr of { base : Gaddr.t; attr : Attr.t }
  | Chunk_request
      (** Node -> cluster manager: grant me a fresh 1 GiB chunk of
          unreserved address space to manage locally. *)
  | Cluster_lookup of { addr : Gaddr.t }
      (** Node -> cluster manager: is this region cached nearby? *)
  | Cluster_walk of { addr : Gaddr.t }
      (** Cluster manager -> peer cluster managers: the paper's fallback
          when the address map is stale or unreachable — "the region can
          still be located using a cluster-walk algorithm". Answered from
          local hints only; never forwarded further. *)
  | Cluster_report of { node_regions : (Gaddr.t * Region.t) list; free_bytes : int }
      (** One-way hint refresh: regions this node caches/homes, free pool.
          Doubles as the failure detector's heartbeat. *)
  | Suspect_hint of { cluster : int; suspects : Knet.Topology.node_id list }
      (** One-way, cluster manager -> members and peer managers: the
          manager's current suspicion list for its cluster (nodes whose
          heartbeats went stale). A wholesale view, not a delta; a
          receiving manager relays it to its own members. *)
  | Page_pull of { page : Gaddr.t }
      (** Recovering home -> recorded sharer: "send me your copy of this
          page, if you still hold a protocol-valid one". Used by the repair
          loop to reconcile a possibly-stale disk image with live replicas
          before re-serving the page — a valid remote copy can never be
          older than the crashed home's disk. *)
  | Page_probe of { page : Gaddr.t }
      (** Home -> recorded holder: "do you still hold a protocol-valid
          copy?". The repair loop uses it to unmask phantom holders — nodes
          that crashed (losing their copy) and recovered before the home
          rebuilt its books — which would otherwise count toward the
          replica floor forever. *)
  | Ping

type response =
  | R_unit
  | R_descriptor of Region.t option
  | R_page of (bytes * int) option
      (** The sharer's valid copy and its protocol version, or [None]. *)
  | R_held of bool
  | R_chunk of { base : Gaddr.t; len : int }
  | R_lookup of { desc : Region.t option; holders : Knet.Topology.node_id list }
  | R_error of string

let addr_size = 16
let desc_size = 64 (* serialized descriptor estimate *)

let request_size = function
  | Cm_msg { body; _ } -> (2 * addr_size) + Ctypes.msg_size body
  | Get_descriptor _ -> addr_size + 8
  | Alloc_region _ -> desc_size
  | Free_region _ | Unreserve_region _ -> addr_size + 8
  | Set_attr _ -> addr_size + 32
  | Chunk_request -> 8
  | Cluster_lookup _ -> addr_size + 8
  | Cluster_walk _ -> addr_size + 8
  | Cluster_report { node_regions; _ } ->
    16 + (List.length node_regions * (addr_size + desc_size))
  | Suspect_hint { suspects; _ } -> 16 + (4 * List.length suspects)
  | Page_pull _ | Page_probe _ -> addr_size + 8
  | Ping -> 8

let response_size = function
  | R_unit -> 8
  | R_descriptor None -> 9
  | R_descriptor (Some _) -> 8 + desc_size
  | R_chunk _ -> 8 + addr_size + 8
  | R_lookup { desc; holders } ->
    8 + (match desc with Some _ -> desc_size | None -> 1)
    + (4 * List.length holders)
  | R_page None -> 9
  | R_page (Some (data, _)) -> 16 + Bytes.length data
  | R_held _ -> 9
  | R_error s -> 8 + String.length s

let request_kind = function
  | Cm_msg { body; _ } -> Ctypes.msg_kind body
  | Get_descriptor _ -> "get_descriptor"
  | Alloc_region _ -> "alloc_region"
  | Free_region _ -> "free_region"
  | Unreserve_region _ -> "unreserve_region"
  | Set_attr _ -> "set_attr"
  | Chunk_request -> "chunk_request"
  | Cluster_lookup _ -> "cluster_lookup"
  | Cluster_walk _ -> "cluster_walk"
  | Cluster_report _ -> "cluster_report"
  | Suspect_hint _ -> "suspect_hint"
  | Page_pull _ -> "page_pull"
  | Page_probe _ -> "page_probe"
  | Ping -> "ping"

module Transport = Krpc.Rpc.Make (struct
  type nonrec request = request
  type nonrec response = response

  let request_size = request_size
  let response_size = response_size
  let request_kind = request_kind
end)
