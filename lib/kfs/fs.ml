module Gaddr = Kutil.Gaddr
module Codec = Kutil.Codec
module Client = Khazana.Client
module Attr = Khazana.Attr
module Region = Khazana.Region

type block_policy = Per_block_regions | Contiguous of int

type error =
  [ Khazana.Daemon.error
  | `Not_found
  | `Exists
  | `Not_a_directory
  | `Is_a_directory
  | `Not_empty
  | `File_too_big
  | `Corrupt of string ]

let error_to_string : error -> string = function
  | #Khazana.Daemon.error as e -> Khazana.Daemon.error_to_string e
  | `Not_found -> "not found"
  | `Exists -> "already exists"
  | `Not_a_directory -> "not a directory"
  | `Is_a_directory -> "is a directory"
  | `Not_empty -> "directory not empty"
  | `File_too_big -> "file too big"
  | `Corrupt s -> "corrupt filesystem: " ^ s

let ( let* ) = Result.bind
let lift (r : ('a, Khazana.Daemon.error) result) : ('a, error) result =
  (r :> ('a, error) result)

type kind = File | Directory

type stat = {
  kind : kind;
  bytes : int;
  blocks : int;
  inode_addr : Gaddr.t;
}

(* ------------------------------------------------------------------ *)
(* On-disk structures                                                  *)
(* ------------------------------------------------------------------ *)

let sb_magic = 0x4B465331 (* "KFS1" *)
let inode_magic = 0x494E4F44 (* "INOD" *)

(* An inode fits one page; with a 56-byte header and 16-byte block
   pointers, ~200 direct blocks are safe within 4 KiB. *)
let max_direct_blocks = 200

type superblock = {
  policy : block_policy;
  root_inode : Gaddr.t;
  default_attr : Attr.t;
}

let encode_superblock sb =
  let e = Codec.encoder () in
  Codec.u32 e sb_magic;
  (match sb.policy with
   | Per_block_regions -> Codec.u8 e 0
   | Contiguous max -> (
     Codec.u8 e 1;
     Codec.int e max));
  Codec.u128 e sb.root_inode;
  Attr.encode e sb.default_attr;
  Codec.to_bytes e

let decode_superblock bytes =
  let d = Codec.decoder bytes in
  let m = Codec.read_u32 d in
  if m <> sb_magic then raise (Codec.Decode_error "bad superblock magic");
  let policy =
    match Codec.read_u8 d with
    | 0 -> Per_block_regions
    | 1 -> Contiguous (Codec.read_int d)
    | n -> raise (Codec.Decode_error (Printf.sprintf "bad policy %d" n))
  in
  let root_inode = Codec.read_u128 d in
  let default_attr = Attr.decode d in
  { policy; root_inode; default_attr }

type inode = {
  ikind : kind;
  isize : int;
  (* Per_block_regions: one region address per block, in order.
     Contiguous: a single-element list holding the data region base. *)
  iblocks : Gaddr.t list;
}

let encode_inode ino =
  let e = Codec.encoder () in
  Codec.u32 e inode_magic;
  Codec.u8 e (match ino.ikind with File -> 0 | Directory -> 1);
  Codec.int e ino.isize;
  Codec.list e (Codec.u128 e) ino.iblocks;
  Codec.to_bytes e

let decode_inode bytes =
  let d = Codec.decoder bytes in
  let m = Codec.read_u32 d in
  if m <> inode_magic then raise (Codec.Decode_error "bad inode magic");
  let ikind =
    match Codec.read_u8 d with
    | 0 -> File
    | 1 -> Directory
    | n -> raise (Codec.Decode_error (Printf.sprintf "bad kind %d" n))
  in
  let isize = Codec.read_int d in
  let iblocks = Codec.read_list d (fun () -> Codec.read_u128 d) in
  { ikind; isize; iblocks }

type dirent = { name : string; addr : Gaddr.t; dkind : kind }

let encode_dirents entries =
  let e = Codec.encoder () in
  Codec.list e
    (fun ent ->
      Codec.string e ent.name;
      Codec.u128 e ent.addr;
      Codec.u8 e (match ent.dkind with File -> 0 | Directory -> 1))
    entries;
  Codec.to_bytes e

let decode_dirents bytes =
  let d = Codec.decoder bytes in
  Codec.read_list d (fun () ->
      let name = Codec.read_string d in
      let addr = Codec.read_u128 d in
      let dkind =
        match Codec.read_u8 d with
        | 0 -> File
        | 1 -> Directory
        | n -> raise (Codec.Decode_error (Printf.sprintf "bad dirent kind %d" n))
      in
      { name; addr; dkind })

(* ------------------------------------------------------------------ *)
(* Mounted instance                                                    *)
(* ------------------------------------------------------------------ *)

type t = {
  client : Client.t;
  sb_addr : Gaddr.t;
  sb : superblock;
  block_size : int;
}

let client t = t.client
let superblock_addr t = t.sb_addr

let decode_guard ?(what = "") f =
  try Ok (f ())
  with Codec.Decode_error m -> Error (`Corrupt (what ^ ": " ^ m))

(* ------------------------------------------------------------------ *)
(* Low-level region helpers                                            *)
(* ------------------------------------------------------------------ *)

let page_size t = t.sb.default_attr.Attr.page_size

let new_region client ~attr ~len =
  lift (Client.create_region client ~attr len)

let read_struct t addr ~len decode =
  let* bytes = lift (Client.read_bytes t.client ~addr len) in
  decode_guard ~what:"struct" (fun () -> decode bytes)

let write_struct t addr bytes = lift (Client.write_bytes t.client ~addr bytes)

(* Inodes occupy exactly one page-sized region. *)
let read_inode t addr = read_struct t addr ~len:(page_size t) decode_inode

let pad_inode t ino =
  let bytes = encode_inode ino in
  let padded = Bytes.make (page_size t) '\000' in
  Bytes.blit bytes 0 padded 0 (Bytes.length bytes);
  padded

let write_inode t addr ino = write_struct t addr (pad_inode t ino)

(* Mutations serialise on the inode's write lock: the whole
   read-inode / modify / write-inode cycle runs under one lock context, so
   concurrent mutators (on any node) cannot lose each other's updates.
   Block data lives in other regions and may be touched while the inode
   lock is held without deadlock (lock order is always inode-then-blocks,
   one inode at a time). *)
let with_inode_locked t addr f =
  match Client.lock t.client ~addr ~len:(page_size t) Kconsistency.Types.Write with
  | Error e -> Error (e :> error)
  | Ok ctx ->
    Fun.protect
      ~finally:(fun () -> Client.unlock t.client ctx)
      (fun () ->
        let* raw = lift (Client.read t.client ctx ~addr ~len:(page_size t)) in
        let* ino = decode_guard ~what:"inode" (fun () -> decode_inode raw) in
        f ctx ino)

let put_inode_locked t ctx ~addr ino =
  lift (Client.write t.client ctx ~addr (pad_inode t ino))

(* ------------------------------------------------------------------ *)
(* File data: block mapping under both policies                        *)
(* ------------------------------------------------------------------ *)

let block_of_offset t off = off / t.block_size

let max_file_size t =
  match t.sb.policy with
  | Per_block_regions -> max_direct_blocks * t.block_size
  | Contiguous max -> max

(* Ensure the inode has blocks covering [0, upto); allocates missing ones
   and returns the updated inode. *)
let ensure_blocks t ~attr ino ~upto =
  if upto > max_file_size t then Error `File_too_big
  else
    match t.sb.policy with
    | Contiguous max -> (
      match ino.iblocks with
      | _ :: _ -> Ok ino
      | [] ->
        let* data = new_region t.client ~attr ~len:max in
        Ok { ino with iblocks = [ data.Region.base ] })
    | Per_block_regions ->
      let needed = (upto + t.block_size - 1) / t.block_size in
      let have = List.length ino.iblocks in
      if have >= needed then Ok ino
      else begin
        let rec alloc acc n =
          if n = 0 then Ok (List.rev acc)
          else
            let* r = new_region t.client ~attr ~len:t.block_size in
            alloc (r.Region.base :: acc) (n - 1)
        in
        let* fresh = alloc [] (needed - have) in
        Ok { ino with iblocks = ino.iblocks @ fresh }
      end

(* Address of byte [off] within the file, given its block table. *)
let data_addr t ino off =
  match t.sb.policy with
  | Contiguous _ -> (
    match ino.iblocks with
    | [ base ] -> Some (Gaddr.add_int base off)
    | [] | _ :: _ :: _ -> None)
  | Per_block_regions -> (
    match List.nth_opt ino.iblocks (block_of_offset t off) with
    | Some base -> Some (Gaddr.add_int base (off mod t.block_size))
    | None -> None)

(* Contiguous runs share one lock; per-block goes block by block. *)
let write_file_data t ino ~off data =
  match t.sb.policy with
  | Contiguous _ -> (
    match data_addr t ino off with
    | Some addr -> lift (Client.write_bytes t.client ~addr data)
    | None -> Error (`Corrupt "missing data region"))
  | Per_block_regions ->
    let len = Bytes.length data in
    let rec go off consumed =
      if consumed >= len then Ok ()
      else begin
        let chunk = min (len - consumed) (t.block_size - (off mod t.block_size)) in
        match data_addr t ino off with
        | None -> Error (`Corrupt "missing block")
        | Some addr ->
          let piece = Bytes.sub data consumed chunk in
          let* () = lift (Client.write_bytes t.client ~addr piece) in
          go (off + chunk) (consumed + chunk)
      end
    in
    go off 0

let read_file_data t ino ~off ~len =
  match t.sb.policy with
  | Contiguous _ -> (
    match data_addr t ino off with
    | Some addr -> lift (Client.read_bytes t.client ~addr len)
    | None -> Error (`Corrupt "missing data region"))
  | Per_block_regions ->
    let out = Bytes.create len in
    let rec go off produced =
      if produced >= len then Ok out
      else begin
        let chunk = min (len - produced) (t.block_size - (off mod t.block_size)) in
        match data_addr t ino off with
        | None -> Error (`Corrupt "missing block")
        | Some addr ->
          let* piece = lift (Client.read_bytes t.client ~addr chunk) in
          Bytes.blit piece 0 out produced chunk;
          go (off + chunk) (produced + chunk)
      end
    in
    go off 0

(* ------------------------------------------------------------------ *)
(* Directories                                                         *)
(* ------------------------------------------------------------------ *)

let read_dirents t ino =
  if ino.isize = 0 then Ok []
  else
    let* raw = read_file_data t ino ~off:0 ~len:ino.isize in
    decode_guard ~what:"dirents" (fun () -> decode_dirents raw)

(* Directory reads must serialise against mutators: the entry blob and the
   inode's size are updated under the inode's write lock, so a lockless
   reader could decode a torn pair. Hold the inode's read lock across
   both. *)
let read_dir_entries t addr =
  match Client.lock t.client ~addr ~len:(page_size t) Kconsistency.Types.Read with
  | Error e -> Error (e :> error)
  | Ok ctx ->
    Fun.protect
      ~finally:(fun () -> Client.unlock t.client ctx)
      (fun () ->
        let* raw = lift (Client.read t.client ctx ~addr ~len:(page_size t)) in
        let* ino = decode_guard ~what:"inode" (fun () -> decode_inode raw) in
        if ino.ikind <> Directory then Error `Not_a_directory
        else
          let* entries = read_dirents t ino in
          Ok entries)

(* Caller holds the directory inode's write lock via [ctx]. *)
let write_dirents_locked t ctx inode_addr ino entries =
  let raw = encode_dirents entries in
  let* ino = ensure_blocks t ~attr:t.sb.default_attr ino ~upto:(Bytes.length raw) in
  let* () = write_file_data t ino ~off:0 raw in
  put_inode_locked t ctx ~addr:inode_addr { ino with isize = Bytes.length raw }

(* ---- transactional variants: all reads and writes go through a
   [Client.txn] handle, so a multi-directory update commits atomically
   (or not at all) across the inodes' homes. The handle's write-intent
   locks double as the mutual-exclusion the [_locked] variants get from
   [with_inode_locked]. *)

let txn_read_inode t txn addr =
  let* raw = Client.txn_read t.client txn ~addr ~len:(page_size t) in
  decode_guard ~what:"inode" (fun () -> decode_inode raw)

let txn_write_inode t txn addr ino =
  Client.txn_write t.client txn ~addr (pad_inode t ino)

let txn_read_file_data t txn ino ~off ~len =
  match t.sb.policy with
  | Contiguous _ -> (
    match data_addr t ino off with
    | Some addr -> Client.txn_read t.client txn ~addr ~len
    | None -> Error (`Corrupt "missing data region"))
  | Per_block_regions ->
    let out = Bytes.create len in
    let rec go off produced =
      if produced >= len then Ok out
      else begin
        let chunk = min (len - produced) (t.block_size - (off mod t.block_size)) in
        match data_addr t ino off with
        | None -> Error (`Corrupt "missing block")
        | Some addr ->
          let* piece = Client.txn_read t.client txn ~addr ~len:chunk in
          Bytes.blit piece 0 out produced chunk;
          go (off + chunk) (produced + chunk)
      end
    in
    go off 0

let txn_write_file_data t txn ino ~off data =
  match t.sb.policy with
  | Contiguous _ -> (
    match data_addr t ino off with
    | Some addr -> Client.txn_write t.client txn ~addr data
    | None -> Error (`Corrupt "missing data region"))
  | Per_block_regions ->
    let len = Bytes.length data in
    let rec go off consumed =
      if consumed >= len then Ok ()
      else begin
        let chunk = min (len - consumed) (t.block_size - (off mod t.block_size)) in
        match data_addr t ino off with
        | None -> Error (`Corrupt "missing block")
        | Some addr ->
          let piece = Bytes.sub data consumed chunk in
          let* () = Client.txn_write t.client txn ~addr piece in
          go (off + chunk) (consumed + chunk)
      end
    in
    go off 0

let txn_read_dirents t txn ino =
  if ino.isize = 0 then Ok []
  else
    let* raw = txn_read_file_data t txn ino ~off:0 ~len:ino.isize in
    decode_guard ~what:"dirents" (fun () -> decode_dirents raw)

(* Block allocation ([ensure_blocks]) is deliberately outside the
   transaction: region reservation is not transactional, so an abort after
   growth leaks the fresh block region (benign — same leak as a crash
   between reserve and use). The entry blob and inode size updates are
   what must commit atomically, and do. *)
let txn_write_dirents t txn inode_addr ino entries =
  let raw = encode_dirents entries in
  let* ino = ensure_blocks t ~attr:t.sb.default_attr ino ~upto:(Bytes.length raw) in
  let* () = txn_write_file_data t txn ino ~off:0 raw in
  txn_write_inode t txn inode_addr { ino with isize = Bytes.length raw }

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)
(* ------------------------------------------------------------------ *)

let split_path path =
  List.filter (fun s -> s <> "" && s <> ".") (String.split_on_char '/' path)

let rec resolve t addr = function
  | [] -> Ok (addr, None)
  | name :: rest -> (
    let* entries = read_dir_entries t addr in
    match List.find_opt (fun e -> e.name = name) entries with
    | None -> Error `Not_found
    | Some entry ->
      if rest = [] then Ok (addr, Some entry) else resolve t entry.addr rest)

(* Resolve a path to (parent_dir_inode_addr, entry). Root resolves to
   (root, None). *)
let lookup t path = resolve t t.sb.root_inode (split_path path)

let inode_of t path =
  let* parent, entry = lookup t path in
  match entry with
  | None -> Ok (parent (* the root itself *))
  | Some e -> Ok e.addr

(* ------------------------------------------------------------------ *)
(* Formatting and mounting                                             *)
(* ------------------------------------------------------------------ *)

let format client ?(policy = Per_block_regions) ?attr () =
  let attr =
    match attr with
    | Some a -> a
    | None -> Attr.make ~owner:(Client.principal client) ()
  in
  let page = attr.Attr.page_size in
  (* Superblock and root inode, each a region of its own. *)
  let* sb_region = lift (Client.create_region client ~attr page) in
  let* root_region = lift (Client.create_region client ~attr page) in
  let sb = { policy; root_inode = root_region.Region.base; default_attr = attr } in
  let t =
    { client; sb_addr = sb_region.Region.base; sb; block_size = page }
  in
  let* () =
    write_inode t root_region.Region.base
      { ikind = Directory; isize = 0; iblocks = [] }
  in
  let raw = encode_superblock sb in
  let padded = Bytes.make page '\000' in
  Bytes.blit raw 0 padded 0 (Bytes.length raw);
  let* () = write_struct t sb_region.Region.base padded in
  Ok sb_region.Region.base

let mount client sb_addr =
  let* attr = lift (Client.get_attr client sb_addr) in
  let* raw = lift (Client.read_bytes client ~addr:sb_addr attr.Attr.page_size) in
  let* sb = decode_guard ~what:"superblock" (fun () -> decode_superblock raw) in
  Ok { client; sb_addr; sb; block_size = sb.default_attr.Attr.page_size }

(* ------------------------------------------------------------------ *)
(* Namespace operations                                                *)
(* ------------------------------------------------------------------ *)

let parent_and_name t path =
  match List.rev (split_path path) with
  | [] -> Error `Exists (* the root *)
  | name :: rev_parents -> (
    let parents = List.rev rev_parents in
    let* parent, entry = resolve t t.sb.root_inode parents |> fun r ->
      match (parents, r) with
      | [], _ -> Ok (t.sb.root_inode, None)
      | _, Ok (dir, Some e) when e.dkind = Directory ->
        ignore dir;
        Ok (e.addr, None)
      | _, Ok (_, Some _) -> Error `Not_a_directory
      | _, Ok (dir, None) -> Ok (dir, None)
      | _, (Error _ as e) -> e
    in
    ignore entry;
    Ok (parent, name))

let add_entry t ~attr ~dkind path =
  let* dir_addr, name = parent_and_name t path in
  with_inode_locked t dir_addr (fun ctx dir_ino ->
      if dir_ino.ikind <> Directory then Error `Not_a_directory
      else
        let* entries = read_dirents t dir_ino in
        if List.exists (fun e -> e.name = name) entries then Error `Exists
        else begin
          (* Each inode is a region of its own (paper §4.1). *)
          let* ino_region = new_region t.client ~attr ~len:(page_size t) in
          let addr = ino_region.Region.base in
          let* () = write_inode t addr { ikind = dkind; isize = 0; iblocks = [] } in
          let* () =
            write_dirents_locked t ctx dir_addr dir_ino
              ({ name; addr; dkind } :: entries)
          in
          Ok addr
        end)

let create t ?attr path =
  let attr = Option.value attr ~default:t.sb.default_attr in
  if attr.Attr.page_size <> page_size t then Error `Bad_range
  else
    let* _addr = add_entry t ~attr ~dkind:File path in
    Ok ()

let mkdir t path =
  let* _addr = add_entry t ~attr:t.sb.default_attr ~dkind:Directory path in
  Ok ()

let stat t path =
  let* addr = inode_of t path in
  let* ino = read_inode t addr in
  Ok { kind = ino.ikind; bytes = ino.isize; blocks = List.length ino.iblocks;
       inode_addr = addr }

let exists t path = match stat t path with Ok _ -> true | Error _ -> false

let readdir t path =
  let* addr = inode_of t path in
  let* entries = read_dir_entries t addr in
  Ok (List.sort compare (List.map (fun e -> e.name) entries))

let file_inode t path =
  let* addr = inode_of t path in
  let* ino = read_inode t addr in
  if ino.ikind <> File then Error `Is_a_directory else Ok (addr, ino)

let write t path ~off data =
  if off < 0 then Error `Bad_range
  else
    let* addr, ino0 = file_inode t path in
    if ino0.ikind <> File then Error `Is_a_directory
    else
      with_inode_locked t addr (fun ctx ino ->
          let upto = off + Bytes.length data in
          let* attr = lift (Client.get_attr t.client addr) in
          let* ino = ensure_blocks t ~attr ino ~upto in
          let* () = write_file_data t ino ~off data in
          let isize = max ino.isize upto in
          put_inode_locked t ctx ~addr { ino with isize })

let append t path data =
  let* addr, _ = file_inode t path in
  with_inode_locked t addr (fun ctx ino ->
      let off = ino.isize in
      let upto = off + Bytes.length data in
      let* attr = lift (Client.get_attr t.client addr) in
      let* ino = ensure_blocks t ~attr ino ~upto in
      let* () = write_file_data t ino ~off data in
      put_inode_locked t ctx ~addr { ino with isize = upto })

let read t path ~off ~len =
  if off < 0 || len < 0 then Error `Bad_range
  else
    let* _addr, ino = file_inode t path in
    if off >= ino.isize then Ok Bytes.empty
    else read_file_data t ino ~off ~len:(min len (ino.isize - off))

let size t path =
  let* _addr, ino = file_inode t path in
  Ok ino.isize

(* "To truncate a file, the system deallocates regions no longer needed." *)
let truncate t path ~len =
  if len < 0 then Error `Bad_range
  else
    let* addr, ino0 = file_inode t path in
    if ino0.ikind <> File then Error `Is_a_directory
    else
      with_inode_locked t addr (fun ctx ino ->
          if len >= ino.isize then put_inode_locked t ctx ~addr { ino with isize = len }
          else begin
            match t.sb.policy with
            | Contiguous _ -> put_inode_locked t ctx ~addr { ino with isize = len }
            | Per_block_regions ->
              let keep = (len + t.block_size - 1) / t.block_size in
              let kept, dropped =
                List.filteri (fun i _ -> i < keep) ino.iblocks,
                List.filteri (fun i _ -> i >= keep) ino.iblocks
              in
              List.iter
                (fun b ->
                  Client.free t.client b;
                  Client.unreserve t.client b)
                dropped;
              put_inode_locked t ctx ~addr { ino with isize = len; iblocks = kept }
          end)

let remove_entry t path ~want =
  let* dir_addr, name = parent_and_name t path in
  with_inode_locked t dir_addr (fun ctx dir_ino ->
      let* entries = read_dirents t dir_ino in
      match List.find_opt (fun e -> e.name = name) entries with
      | None -> Error `Not_found
      | Some entry ->
        if entry.dkind <> want then
          Error
            (match want with
             | File -> `Is_a_directory
             | Directory -> `Not_a_directory)
        else
          let* ino = read_inode t entry.addr in
          let* () =
            match want with
            | Directory ->
              let* sub = read_dirents t ino in
              if sub <> [] then Error `Not_empty else Ok ()
            | File -> Ok ()
          in
          (* Free data regions, then the inode region itself. *)
          List.iter
            (fun b ->
              Client.free t.client b;
              Client.unreserve t.client b)
            ino.iblocks;
          Client.free t.client entry.addr;
          Client.unreserve t.client entry.addr;
          write_dirents_locked t ctx dir_addr dir_ino
            (List.filter (fun e -> e.name <> name) entries))

let unlink t path = remove_entry t path ~want:File
let rmdir t path = remove_entry t path ~want:Directory

(* Rename moves a directory entry between (possibly distinct) parents.
   The whole move runs inside one Khazana transaction: the removal from
   the source directory and the insertion into the destination commit
   atomically through 2PC across the two inodes' homes, so no observer —
   and no crash at any protocol step — can see the entry in both
   directories or in neither. Distinct parents are still touched (and
   therefore write-intent-locked) in global-address order, ruling out
   deadlock between concurrent renames in opposite directions. *)
let rename t src dst =
  let* src_dir, src_name = parent_and_name t src in
  let* dst_dir, dst_name = parent_and_name t dst in
  let same = Gaddr.equal src_dir dst_dir in
  Client.txn t.client (fun txn ->
      let* ino_src, ino_dst =
        if same then
          let* ino = txn_read_inode t txn src_dir in
          Ok (ino, ino)
        else if Gaddr.compare src_dir dst_dir <= 0 then
          let* ino_src = txn_read_inode t txn src_dir in
          let* ino_dst = txn_read_inode t txn dst_dir in
          Ok (ino_src, ino_dst)
        else
          let* ino_dst = txn_read_inode t txn dst_dir in
          let* ino_src = txn_read_inode t txn src_dir in
          Ok (ino_src, ino_dst)
      in
      if ino_src.ikind <> Directory || ino_dst.ikind <> Directory then
        Error `Not_a_directory
      else
        let* src_entries = txn_read_dirents t txn ino_src in
        match List.find_opt (fun e -> e.name = src_name) src_entries with
        | None -> Error `Not_found
        | Some entry ->
          let* dst_entries =
            if same then Ok src_entries else txn_read_dirents t txn ino_dst
          in
          if List.exists (fun e -> e.name = dst_name) dst_entries then
            Error `Exists
          else if same then
            txn_write_dirents t txn src_dir ino_src
              ({ entry with name = dst_name }
               :: List.filter (fun e -> e.name <> src_name) src_entries)
          else
            let* () =
              txn_write_dirents t txn src_dir ino_src
                (List.filter (fun e -> e.name <> src_name) src_entries)
            in
            txn_write_dirents t txn dst_dir ino_dst
              ({ entry with name = dst_name } :: dst_entries))
