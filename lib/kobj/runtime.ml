module Gaddr = Kutil.Gaddr
module Codec = Kutil.Codec
module Client = Khazana.Client
module Attr = Khazana.Attr
module Region = Khazana.Region
module Topology = Knet.Topology

type error =
  [ Khazana.Daemon.error
  | `Unknown_class of string
  | `Unknown_method of string
  | `Unknown_object
  | `Remote_failure of string
  | `Corrupt of string ]

let error_to_string : error -> string = function
  | #Khazana.Daemon.error as e -> Khazana.Daemon.error_to_string e
  | `Unknown_class c -> "unknown class: " ^ c
  | `Unknown_method m -> "unknown method: " ^ m
  | `Unknown_object -> "unknown object"
  | `Remote_failure s -> "remote failure: " ^ s
  | `Corrupt s -> "corrupt object: " ^ s

let ( let* ) = Result.bind
let lift (r : ('a, Khazana.Daemon.error) result) : ('a, error) result =
  (r :> ('a, error) result)

type method_impl = state:bytes -> arg:bytes -> bytes * bytes option
type class_def = { class_name : string; methods : (string * method_impl) list }
type obj = { addr : Gaddr.t }
type placement = Own_region | Pooled

(* ------------------------------------------------------------------ *)
(* Object headers                                                      *)
(* ------------------------------------------------------------------ *)

let obj_magic = 0x4B4F424A (* "KOBJ" *)
let slot_size = 256
let pool_pages = 16

type header = { cls : string; refcount : int; state : bytes }

let encode_header h =
  let e = Codec.encoder () in
  Codec.u32 e obj_magic;
  Codec.string e h.cls;
  Codec.u32 e h.refcount;
  Codec.bytes e h.state;
  Codec.to_bytes e

let decode_header bytes =
  let d = Codec.decoder bytes in
  let m = Codec.read_u32 d in
  if m <> obj_magic then raise (Codec.Decode_error "bad object magic");
  let cls = Codec.read_string d in
  let refcount = Codec.read_u32 d in
  let state = Codec.read_bytes d in
  { cls; refcount; state }

let header_overhead cls = 4 + 4 + String.length cls + 4 + 4

(* ------------------------------------------------------------------ *)
(* Overlay                                                             *)
(* ------------------------------------------------------------------ *)

module Overlay_proto = struct
  type request = { obj_addr : Gaddr.t; meth : string; arg : bytes }
  type response = R_ok of bytes | R_err of string

  let request_size r = 16 + String.length r.meth + Bytes.length r.arg + 16

  let response_size = function
    | R_ok b -> 16 + Bytes.length b
    | R_err s -> 16 + String.length s

  let request_kind _ = "obj.invoke"
end

module Overlay = struct
  module T = Krpc.Rpc.Make (Overlay_proto)

  type t = { transport : T.t }

  let create engine topology = { transport = T.create engine topology }
end

(* ------------------------------------------------------------------ *)
(* Runtime                                                             *)
(* ------------------------------------------------------------------ *)

type stats = { local_invocations : int; remote_invocations : int }

type t = {
  overlay : Overlay.t;
  client : Client.t;
  node : Topology.node_id;
  classes : (string, class_def) Hashtbl.t;
  (* pooled-slot allocator: one pool region, bump-with-freelist *)
  mutable pool : Region.t option;
  mutable next_slot : int;
  mutable free_slots : int list;
  mutable local_invocations : int;
  mutable remote_invocations : int;
  access_counts : int Gaddr.Table.t;
      (* per-object invocation history driving the ship-vs-migrate choice *)
}

(* After this many invocations of a non-resident object, stop shipping
   calls and fault a replica in locally. *)
let migrate_threshold = 2

let stats t =
  { local_invocations = t.local_invocations;
    remote_invocations = t.remote_invocations }

let register_class t cls = Hashtbl.replace t.classes cls.class_name cls

(* ---- locking helpers: an object's lock unit is its slot (pooled) or
   its whole region (own-region); both sit within one page in practice. *)

(* Own-region objects occupy exactly one page-sized region (enforced at
   creation); anything else is a pooled slot inside a larger region. *)
let object_extent t addr =
  match Khazana.Daemon.locate_region (Client.daemon t.client) addr with
  | Error e -> Error (e :> error)
  | Ok region ->
    if Gaddr.equal region.Region.base addr
       && region.Region.len = region.Region.attr.Attr.page_size
    then Ok (addr, region.Region.len)
    else Ok (addr, slot_size)

let with_object_lock t addr mode f =
  let* addr, len = object_extent t addr in
  match Client.lock t.client ~addr ~len mode with
  | Error e -> Error (e :> error)
  | Ok ctx ->
    Fun.protect
      ~finally:(fun () -> Client.unlock t.client ctx)
      (fun () -> f ctx ~len)

let read_header t ctx ~addr ~len =
  let* raw = lift (Client.read t.client ctx ~addr ~len) in
  try Ok (decode_header raw) with Codec.Decode_error m -> Error (`Corrupt m)

let write_header t ctx ~addr ~len h =
  let raw = encode_header h in
  if Bytes.length raw > len then Error (`Corrupt "object state overflows slot")
  else begin
    let padded = Bytes.make len '\000' in
    Bytes.blit raw 0 padded 0 (Bytes.length raw);
    lift (Client.write t.client ctx ~addr padded)
  end

(* ---- allocation ---- *)

let ensure_pool t ~attr =
  match t.pool with
  | Some r -> Ok r
  | None ->
    let len = pool_pages * attr.Attr.page_size in
    let* r = lift (Client.create_region t.client ~attr len) in
    t.pool <- Some r;
    Ok r

let alloc_slot t ~attr =
  let* pool = ensure_pool t ~attr in
  match t.free_slots with
  | slot :: rest ->
    t.free_slots <- rest;
    Ok (Gaddr.add_int pool.Region.base (slot * slot_size))
  | [] ->
    let capacity = pool.Region.len / slot_size in
    if t.next_slot >= capacity then Error (`Unavailable "object pool full")
    else begin
      let slot = t.next_slot in
      t.next_slot <- slot + 1;
      Ok (Gaddr.add_int pool.Region.base (slot * slot_size))
    end

let new_object t ~class_name ?(placement = Own_region) ?attr ~init () =
  if not (Hashtbl.mem t.classes class_name) then Error (`Unknown_class class_name)
  else begin
    let attr =
      match attr with
      | Some a -> a
      | None -> Attr.make ~owner:(Client.principal t.client) ()
    in
    let header = { cls = class_name; refcount = 1; state = init } in
    let needed = header_overhead class_name + Bytes.length init in
    match placement with
    | Own_region when needed > attr.Attr.page_size ->
      Error (`Corrupt "object too big for a region page")
    | Own_region ->
      let len = attr.Attr.page_size in
      let* region = lift (Client.create_region t.client ~attr len) in
      let addr = region.Region.base in
      let* () =
        with_object_lock t addr Kconsistency.Types.Write (fun ctx ~len ->
            write_header t ctx ~addr ~len header)
      in
      Ok { addr }
    | Pooled ->
      if needed > slot_size then Error (`Corrupt "object too big for a pooled slot")
      else
        let* addr = alloc_slot t ~attr in
        let* () =
          with_object_lock t addr Kconsistency.Types.Write (fun ctx ~len ->
              write_header t ctx ~addr ~len header)
        in
        Ok { addr }
  end

(* ---- invocation ---- *)

let run_method t cls_name meth ~state ~arg =
  match Hashtbl.find_opt t.classes cls_name with
  | None -> Error (`Unknown_class cls_name)
  | Some cls -> (
    match List.assoc_opt meth cls.methods with
    | None -> Error (`Unknown_method meth)
    | Some f -> Ok (f ~state ~arg))

let invoke_local t obj ~meth ~arg =
  t.local_invocations <- t.local_invocations + 1;
  with_object_lock t obj.addr Kconsistency.Types.Write (fun ctx ~len ->
      let* h = read_header t ctx ~addr:obj.addr ~len in
      let* result, new_state = run_method t h.cls meth ~state:h.state ~arg in
      match new_state with
      | None -> Ok result
      | Some state ->
        let* () = write_header t ctx ~addr:obj.addr ~len { h with state } in
        Ok result)

let invoke_at t node obj ~meth ~arg =
  if node = t.node then invoke_local t obj ~meth ~arg
  else begin
    t.remote_invocations <- t.remote_invocations + 1;
    match
      Overlay.T.call t.overlay.Overlay.transport ~src:t.node ~dst:node
        ~policy:(Krpc.Policy.with_timeout (Ksim.Time.sec 2))
        { Overlay_proto.obj_addr = obj.addr; meth; arg }
    with
    | Ok (Overlay_proto.R_ok bytes) -> Ok bytes
    | Ok (Overlay_proto.R_err e) -> Error (`Remote_failure e)
    | Error `Timeout -> Error `Timeout
  end

(* "It also could use location information exported from Khazana to decide
   if it is more efficient to load a local copy of the object or perform a
   remote invocation of the object on a node where it is already physically
   instantiated."

   Policy: objects with a local copy run locally; otherwise occasional
   calls ship to a node known to instantiate the object (a page-directory
   sharer hint, falling back to the region's home), while repeated use —
   [migrate_threshold] or more calls — faults a replica in and goes local
   from then on. *)
let invoke t obj ~meth ~arg =
  let daemon = Client.daemon t.client in
  let region = Khazana.Daemon.locate_region daemon obj.addr in
  let holds =
    match region with
    | Ok r ->
      let page =
        Gaddr.page_floor obj.addr ~page_size:r.Region.attr.Attr.page_size
      in
      Khazana.Daemon.holds_page daemon page
    | Error _ -> false
  in
  if holds then invoke_local t obj ~meth ~arg
  else begin
    let uses =
      1 + Option.value (Gaddr.Table.find_opt t.access_counts obj.addr) ~default:0
    in
    Gaddr.Table.replace t.access_counts obj.addr uses;
    let candidate =
      if uses >= migrate_threshold then None (* hot: replicate locally *)
      else
        match region with
        | Error _ -> None
        | Ok r -> (
          let page =
            Gaddr.page_floor obj.addr ~page_size:r.Region.attr.Attr.page_size
          in
          let pdir = Khazana.Daemon.page_directory daemon in
          let hint =
            match Khazana.Page_directory.find pdir page with
            | Some entry ->
              List.find_opt (fun n -> n <> t.node)
                entry.Khazana.Page_directory.sharers
            | None -> None
          in
          match hint with
          | Some _ as h -> h
          | None -> if r.Region.home <> t.node then Some r.Region.home else None)
    in
    match candidate with
    | Some node -> invoke_at t node obj ~meth ~arg
    | None -> invoke_local t obj ~meth ~arg (* fault it in *)
  end

(* ---- reference counting ---- *)

let update_refcount t obj delta =
  with_object_lock t obj.addr Kconsistency.Types.Write (fun ctx ~len ->
      let* h = read_header t ctx ~addr:obj.addr ~len in
      let refcount = max 0 (h.refcount + delta) in
      let* () = write_header t ctx ~addr:obj.addr ~len { h with refcount } in
      Ok refcount)

let incref t obj = update_refcount t obj 1

let release_storage t obj =
  match t.pool with
  | Some pool
    when Gaddr.compare pool.Region.base obj.addr <= 0
         && Gaddr.compare obj.addr (Region.end_ pool) < 0 ->
    (* A pooled slot: recycle it locally. *)
    let slot = Gaddr.diff obj.addr pool.Region.base / slot_size in
    t.free_slots <- slot :: t.free_slots
  | Some _ | None ->
    Client.free t.client obj.addr;
    Client.unreserve t.client obj.addr

let decref t obj =
  let* refcount = update_refcount t obj (-1) in
  if refcount = 0 then release_storage t obj;
  Ok refcount

let get_state t obj =
  with_object_lock t obj.addr Kconsistency.Types.Read (fun ctx ~len ->
      let* h = read_header t ctx ~addr:obj.addr ~len in
      Ok h.state)

(* ------------------------------------------------------------------ *)
(* Wiring                                                              *)
(* ------------------------------------------------------------------ *)

let create overlay client =
  let daemon = Client.daemon client in
  let node = Khazana.Daemon.id daemon in
  let t =
    {
      overlay;
      client;
      node;
      classes = Hashtbl.create 8;
      pool = None;
      next_slot = 0;
      free_slots = [];
      local_invocations = 0;
      remote_invocations = 0;
      access_counts = Gaddr.Table.create 32;
    }
  in
  Overlay.T.set_server overlay.Overlay.transport node (fun ~src:_ ~span:_ req ~reply ->
      Ksim.Fiber.spawn
        (Khazana.Daemon.engine daemon)
        ~name:"obj-serve"
        (fun () ->
          match
            invoke_local t
              { addr = req.Overlay_proto.obj_addr }
              ~meth:req.Overlay_proto.meth ~arg:req.Overlay_proto.arg
          with
          | Ok bytes -> reply (Overlay_proto.R_ok bytes)
          | Error e -> reply (Overlay_proto.R_err (error_to_string e))));
  t
