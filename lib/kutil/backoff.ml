type t = {
  base : int;
  cap : int;
  rng : Rng.t option;
  mutable tries : int;
}

let make ?rng ?cap ~base () =
  let cap = Option.value cap ~default:(32 * base) in
  if base <= 0 then invalid_arg "Backoff.make: base must be positive";
  if cap < base then invalid_arg "Backoff.make: cap below base";
  { base; cap; rng; tries = 0 }

(* base * 2^k without overflow: doubling saturates at cap. *)
let raw_delay t k =
  let rec grow v k = if k <= 0 || v >= t.cap then v else grow (v * 2) (k - 1) in
  min t.cap (grow t.base k)

let next t =
  let d = raw_delay t t.tries in
  t.tries <- t.tries + 1;
  match t.rng with
  | Some rng when d >= 2 -> (d / 2) + Rng.int rng ((d - (d / 2)) + 1)
  | Some _ | None -> d

let reset t = t.tries <- 0
let attempts t = t.tries
