(** Exponential backoff with optional jitter.

    Shared retry policy for every layer that re-attempts work over the
    unreliable substrate (RPC timeouts, background release-class retries,
    lock re-acquisition, location walks). Delays grow [base], [2*base],
    [4*base], ... capped at [cap]; with an {!Rng.t} attached, each delay is
    equal-jittered into [[d/2, d]] so synchronised retry storms decorrelate
    while staying fully deterministic under the simulation seed.

    Values are plain integers in whatever unit the caller uses (the
    simulator's [Time.t] nanoseconds, usually). *)

type t

val make : ?rng:Rng.t -> ?cap:int -> base:int -> unit -> t
(** [make ~base ()] starts at [base] per attempt. [cap] bounds the raw
    (pre-jitter) delay; it defaults to [32 * base]. Raises
    [Invalid_argument] if [base <= 0] or [cap < base]. *)

val next : t -> int
(** Delay for the next attempt; advances the attempt counter. *)

val reset : t -> unit
(** Forget past attempts: the next delay is [base] again. Call after a
    success so later failures start patient, not paranoid. *)

val attempts : t -> int
(** Attempts drawn since creation or the last {!reset}. *)
