type t = { coord : int; epoch : int; seq : int }

let make ~coord ~epoch ~seq = { coord; epoch; seq }

let equal a b = a.coord = b.coord && a.epoch = b.epoch && a.seq = b.seq

let compare a b =
  match Int.compare a.coord b.coord with
  | 0 -> (
      match Int.compare a.epoch b.epoch with
      | 0 -> Int.compare a.seq b.seq
      | c -> c)
  | c -> c

let hash t = Hashtbl.hash (t.coord, t.epoch, t.seq)
let to_string t = Printf.sprintf "%d.%d.%d" t.coord t.epoch t.seq
let pp fmt t = Format.pp_print_string fmt (to_string t)

let encode e t =
  Codec.u32 e t.coord;
  Codec.u32 e t.epoch;
  Codec.u32 e t.seq

let decode d =
  let coord = Codec.read_u32 d in
  let epoch = Codec.read_u32 d in
  let seq = Codec.read_u32 d in
  { coord; epoch; seq }

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
