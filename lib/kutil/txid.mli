(** Global transaction identifiers for distributed atomic commit.

    A transaction is named by the node that coordinates it, the epoch that
    node was in when it assigned the id, and a per-coordinator sequence
    number. The epoch component makes ids from before a coordinator crash
    distinguishable from ids minted after recovery, so a recovered
    coordinator can never be confused into adopting a predecessor's
    in-flight transaction as its own (the presumed-abort rules in
    {!Kstorage.Wal} and the daemon rely on this).

    Lives in [kutil] because both the storage layer (WAL records) and the
    wire layer (2PC messages) need the type, and [kstorage] sits below the
    core library. *)

type t = { coord : int;  (** coordinating node id *)
           epoch : int;  (** coordinator epoch at assignment *)
           seq : int     (** per-coordinator, per-epoch sequence number *) }

val make : coord:int -> epoch:int -> seq:int -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val to_string : t -> string
(** ["coord.epoch.seq"], stable — used as a trace attribute so a
    transaction can be reconstructed from a jsonl sink. *)

val pp : Format.formatter -> t -> unit

val encode : Codec.encoder -> t -> unit
val decode : Codec.decoder -> t

module Table : Hashtbl.S with type key = t
