module type MESSAGE = sig
  type t

  val size_bytes : t -> int
  val kind : t -> string
  val kinds : t -> string list
end

module Make (M : MESSAGE) = struct
  type handler = src:Topology.node_id -> M.t -> unit

  type t = {
    engine : Ksim.Engine.t;
    topology : Topology.t;
    rng : Kutil.Rng.t;
    handlers : handler option array;
    up : bool array;
    (* Messages scheduled but not yet delivered, per destination. A crash
       folds the destination's count into [dropped] and bumps its epoch so
       the stale delivery callbacks know not to double-account (or leak a
       pre-crash message into a recovered node). *)
    inflight : int array;
    node_epoch : int array;
    mutable partitions : (int array * int array) list;
    mutable sent : int;
    mutable delivered : int;
    mutable dropped : int;
    (* [reset_stats] does not zero the raw counters (that would break the
       sent = delivered + dropped + in_flight conservation when traffic is
       in flight at reset time); it snapshots baselines that [stats]
       subtracts. [base_sent] is set to delivered + dropped at reset, so
       messages in flight across the reset count as sent in the new window
       and their eventual delivery/drop balances the books. *)
    mutable base_sent : int;
    mutable base_delivered : int;
    mutable base_dropped : int;
    mutable atoms : int;
    mutable bytes_sent : int;
    by_kind : (string, int) Hashtbl.t;
    mutable trace :
      (Ksim.Time.t -> src:Topology.node_id -> dst:Topology.node_id -> M.t -> unit)
      option;
    (* Seeded frame-level fault shim, mirroring Transport_unix's: each
       remote envelope independently dropped/duplicated/delayed. Off by
       default; draws only from its private rng so arming it never
       perturbs the engine's seeded draw sequence. *)
    mutable ff_drop : float;
    mutable ff_duplicate : float;
    mutable ff_delay : float;
    mutable frng : Kutil.Rng.t;
  }

  let create engine topology =
    let n = Topology.node_count topology in
    {
      engine;
      topology;
      rng = Kutil.Rng.split (Ksim.Engine.rng engine);
      handlers = Array.make n None;
      up = Array.make n true;
      inflight = Array.make n 0;
      node_epoch = Array.make n 0;
      partitions = [];
      sent = 0;
      delivered = 0;
      dropped = 0;
      base_sent = 0;
      base_delivered = 0;
      base_dropped = 0;
      atoms = 0;
      bytes_sent = 0;
      by_kind = Hashtbl.create 32;
      trace = None;
      ff_drop = 0.0;
      ff_duplicate = 0.0;
      ff_delay = 0.0;
      frng = Kutil.Rng.create ~seed:0x66726d;
    }

  let engine t = t.engine
  let topology t = t.topology

  let check_node t n =
    if n < 0 || n >= Array.length t.up then invalid_arg "Network: bad node id"

  let set_handler t node h =
    check_node t node;
    t.handlers.(node) <- Some h

  let crash t node =
    check_node t node;
    t.up.(node) <- false;
    t.dropped <- t.dropped + t.inflight.(node);
    t.inflight.(node) <- 0;
    t.node_epoch.(node) <- t.node_epoch.(node) + 1

  let recover t node =
    check_node t node;
    t.up.(node) <- true

  let is_up t node =
    check_node t node;
    t.up.(node)

  let partition t a b =
    t.partitions <- (Array.of_list a, Array.of_list b) :: t.partitions

  let heal t = t.partitions <- []

  let blocked t a b =
    let mem x arr = Array.exists (fun y -> y = x) arr in
    List.exists
      (fun (ga, gb) -> (mem a ga && mem b gb) || (mem a gb && mem b ga))
      t.partitions

  let reachable t a b =
    check_node t a;
    check_node t b;
    t.up.(a) && t.up.(b) && not (blocked t a b)

  (* Per-kind counters follow the logical messages, not the envelopes: a
     batch of N invalidations counts as N under "cm.inval", so kind-level
     comparisons stay meaningful whether or not coalescing is on. *)
  let account_kind t msg =
    List.iter
      (fun k ->
        t.atoms <- t.atoms + 1;
        Hashtbl.replace t.by_kind k
          (1 + Option.value (Hashtbl.find_opt t.by_kind k) ~default:0))
      (M.kinds msg)

  let deliver t ~src ~dst msg =
    if t.up.(dst) && not (blocked t src dst) then begin
      match t.handlers.(dst) with
      | Some h ->
        t.delivered <- t.delivered + 1;
        h ~src msg
      | None -> t.dropped <- t.dropped + 1
    end
    else t.dropped <- t.dropped + 1

  (* Put a message in flight towards [dst]: the delivery callback is a
     no-op if the destination crashed in the meantime (the crash already
     accounted the message as dropped). *)
  let schedule_delivery t ~after ~src ~dst msg =
    let epoch = t.node_epoch.(dst) in
    t.inflight.(dst) <- t.inflight.(dst) + 1;
    ignore
      (Ksim.Engine.schedule t.engine ~after (fun () ->
           if t.node_epoch.(dst) = epoch then begin
             t.inflight.(dst) <- t.inflight.(dst) - 1;
             deliver t ~src ~dst msg
           end))

  (* A local send still goes through the scheduler (at a nominal IPC cost)
     so that handler re-entrancy never depends on whether a peer happens to
     be co-located. *)
  let local_delay = Ksim.Time.us 5

  let send t ~src ~dst msg =
    check_node t src;
    check_node t dst;
    if not t.up.(src) then ()
    else begin
      t.sent <- t.sent + 1;
      t.bytes_sent <- t.bytes_sent + M.size_bytes msg;
      account_kind t msg;
      (match t.trace with
       | Some f -> f (Ksim.Engine.now t.engine) ~src ~dst msg
       | None -> ());
      if src = dst then
        schedule_delivery t ~after:local_delay ~src ~dst msg
      else if blocked t src dst || not t.up.(dst) then
        (* Unreachable at send time: the packet leaves but can never land. *)
        t.dropped <- t.dropped + 1
      else begin
        let profile = Topology.profile t.topology src dst in
        if profile.loss > 0.0 && Kutil.Rng.float t.rng 1.0 < profile.loss then
          t.dropped <- t.dropped + 1
        else begin
          let jitter =
            if profile.jitter > 0 then Kutil.Rng.int t.rng profile.jitter else 0
          in
          let serialisation =
            Ksim.Time.of_sec_f
              (float_of_int (M.size_bytes msg) /. profile.bandwidth_bps)
          in
          let delay = profile.base_latency + jitter + serialisation in
          if t.ff_drop > 0.0 && Kutil.Rng.float t.frng 1.0 < t.ff_drop then
            t.dropped <- t.dropped + 1
          else begin
            let extra () =
              if t.ff_delay > 0.0 then
                Ksim.Time.of_sec_f (Kutil.Rng.float t.frng t.ff_delay)
              else 0
            in
            schedule_delivery t ~after:(delay + extra ()) ~src ~dst msg;
            if
              t.ff_duplicate > 0.0
              && Kutil.Rng.float t.frng 1.0 < t.ff_duplicate
            then begin
              (* the duplicate is a second envelope on the wire: count it
                 as sent so the conservation invariant keeps holding *)
              t.sent <- t.sent + 1;
              schedule_delivery t ~after:(delay + extra ()) ~src ~dst msg
            end
          end
        end
      end
    end

  let set_frame_faults t ?seed ?(drop = 0.0) ?(duplicate = 0.0) ?(delay = 0.0)
      () =
    (match seed with
    | Some s -> t.frng <- Kutil.Rng.create ~seed:s
    | None -> ());
    t.ff_drop <- drop;
    t.ff_duplicate <- duplicate;
    t.ff_delay <- delay

  let clear_frame_faults t =
    t.ff_drop <- 0.0;
    t.ff_duplicate <- 0.0;
    t.ff_delay <- 0.0

  type stats = {
    sent : int;
    delivered : int;
    dropped : int;
    in_flight : int;
    atoms : int;
    bytes_sent : int;
    by_kind : (string * int) list;
  }

  let stats (t : t) =
    let by_kind =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.by_kind []
      |> List.sort compare
    in
    {
      sent = t.sent - t.base_sent;
      delivered = t.delivered - t.base_delivered;
      dropped = t.dropped - t.base_dropped;
      in_flight = Array.fold_left ( + ) 0 t.inflight;
      atoms = t.atoms;
      bytes_sent = t.bytes_sent;
      by_kind;
    }

  let reset_stats (t : t) =
    t.base_delivered <- t.delivered;
    t.base_dropped <- t.dropped;
    (* Not [t.sent]: anything still in flight stays counted as sent in the
       new window, so conservation holds when it later delivers or drops. *)
    t.base_sent <- t.delivered + t.dropped;
    t.atoms <- 0;
    t.bytes_sent <- 0;
    Hashtbl.reset t.by_kind

  let set_trace t f = t.trace <- Some f
  let clear_trace t = t.trace <- None
end
