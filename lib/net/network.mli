(** Simulated message network.

    Delivers typed messages between nodes of a {!Topology.t} with per-link
    latency, serialisation delay, probabilistic loss, node crashes and
    network partitions. Delivery is at-most-once and unordered across links
    (ordered per src/dst pair at equal delay only by scheduling order) —
    the unreliable substrate the paper's retry logic assumes. *)

module type MESSAGE = sig
  type t

  val size_bytes : t -> int
  (** Approximate wire size, used for serialisation delay and traffic
      accounting. *)

  val kind : t -> string
  (** Short label for per-message-kind counters and traces. *)

  val kinds : t -> string list
  (** Kind labels of the logical messages inside this envelope — a
      singleton [[kind m]] for ordinary messages, one label per item for
      batch envelopes (see {!Krpc.Rpc}). Feeds [stats.by_kind] and
      [stats.atoms] so per-kind counts stay comparable whether or not
      coalescing is on. *)
end

module Make (M : MESSAGE) : sig
  type t

  val create : Ksim.Engine.t -> Topology.t -> t
  val engine : t -> Ksim.Engine.t
  val topology : t -> Topology.t

  val set_handler : t -> Topology.node_id -> (src:Topology.node_id -> M.t -> unit) -> unit
  (** Install the message handler for a node; replaces any previous one. *)

  val send : t -> src:Topology.node_id -> dst:Topology.node_id -> M.t -> unit
  (** Fire-and-forget. Dropped silently when the source is down, the
      destination is down at delivery time, the pair is partitioned at send
      or delivery time, or the link's loss model says so. Local sends
      ([src = dst]) bypass the wire and cost a small constant. *)

  (** {1 Failure injection} *)

  val crash : t -> Topology.node_id -> unit
  (** Take the node off the network. In-flight messages towards it are
      lost and counted in [stats.dropped] — they never deliver, even if
      the node {!recover}s before their scheduled arrival. *)

  val recover : t -> Topology.node_id -> unit
  val is_up : t -> Topology.node_id -> bool

  val partition : t -> Topology.node_id list -> Topology.node_id list -> unit
  (** [partition t a b] blocks all traffic between the two groups (in both
      directions) until {!heal}. *)

  val heal : t -> unit
  (** Remove all partitions. *)

  val reachable : t -> Topology.node_id -> Topology.node_id -> bool

  val set_frame_faults :
    t -> ?seed:int -> ?drop:float -> ?duplicate:float -> ?delay:float ->
    unit -> unit
  (** Arm a seeded frame-level fault shim mirroring
      [Transport_unix.set_frame_faults]: each remote envelope is
      independently dropped with probability [drop], duplicated with
      probability [duplicate], and delayed by an extra uniform
      [[0, delay]] seconds (defaults all zero). [seed] reseeds the shim's
      private rng — it never draws from the engine's, so arming the shim
      does not perturb an existing seeded run's draw sequence. Shim drops
      count in [stats.dropped]; duplicates count as extra sent envelopes,
      preserving the conservation invariant. *)

  val clear_frame_faults : t -> unit

  (** {1 Accounting} *)

  type stats = {
    sent : int;       (** envelopes handed to the wire *)
    delivered : int;
    dropped : int;
    in_flight : int;  (** scheduled but not yet delivered *)
    atoms : int;
        (** logical messages sent: each item of a batch envelope counts
            once, so [atoms >= sent] and the gap measures coalescing *)
    bytes_sent : int;
    by_kind : (string * int) list;
        (** logical messages sent, per kind, sorted; sums to [atoms] *)
  }

  val stats : t -> stats
  (** Traffic counters. [sent = delivered + dropped + in_flight] holds at
      all times, including across {!reset_stats}; the conservation
      invariant is over envelopes, not atoms. *)

  val reset_stats : t -> unit
  (** Zero the counters for a fresh measurement window. Messages in flight
      at reset time count as [sent] in the new window, so the conservation
      invariant above keeps holding as they deliver or drop. *)

  val set_trace : t -> (Ksim.Time.t -> src:Topology.node_id -> dst:Topology.node_id -> M.t -> unit) -> unit
  (** Called once per message at send time (after drop decisions for
      partitions/crashes at send, before loss/delivery). *)

  val clear_trace : t -> unit
end
