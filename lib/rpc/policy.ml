type backoff = { cap : Ksim.Time.t; rng : Kutil.Rng.t option }

type t = {
  timeout : Ksim.Time.t;
  attempts : int;
  backoff : backoff option;
}

let default = { timeout = Ksim.Time.sec 1; attempts = 1; backoff = None }

let wan =
  {
    timeout = Ksim.Time.sec 2;
    attempts = 4;
    backoff = Some { cap = Ksim.Time.sec 16; rng = None };
  }

let idempotent =
  {
    timeout = Ksim.Time.ms 300;
    attempts = 8;
    backoff = Some { cap = Ksim.Time.sec 2; rng = None };
  }

let with_timeout ?(attempts = 1) timeout =
  if attempts <= 0 then invalid_arg "Policy.with_timeout: attempts must be positive";
  { timeout; attempts; backoff = None }

let jittered ~rng ?(attempts = 1) ~base ~cap () =
  if attempts <= 0 then invalid_arg "Policy.jittered: attempts must be positive";
  if cap < base then invalid_arg "Policy.jittered: cap < base";
  { timeout = base; attempts; backoff = Some { cap; rng = Some rng } }

(* The per-call attempt-timeout source. A fresh [Backoff.t] per call keeps
   the growth schedule call-local (a daemon's hundredth RPC starts patient
   at [base] again), while the jitter stream — the policy's [rng] — persists
   across calls so simultaneous retriers stay decorrelated. *)
let timeout_source t =
  match t.backoff with
  | None -> fun () -> t.timeout
  | Some { cap; rng } ->
    let b = Kutil.Backoff.make ?rng ~cap ~base:t.timeout () in
    fun () -> Kutil.Backoff.next b
