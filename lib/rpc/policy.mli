(** Retry policy for remote calls.

    One record replaces the old [?timeout]/[?backoff]/[?attempts] optional
    trio of {!Rpc.Make.call}: what a caller actually chooses is a single
    coherent policy — how long to wait per attempt, how many attempts, and
    how the wait grows between them — and passing the pieces separately
    invited incoherent combinations (a backoff with one attempt, a timeout
    silently ignored because a backoff was also given). *)

type backoff = {
  cap : Ksim.Time.t;
      (** ceiling for the raw (pre-jitter) per-attempt timeout *)
  rng : Kutil.Rng.t option;
      (** jitter stream; [None] gives the deterministic exponential
          schedule, [Some rng] equal-jitters each timeout into [[d/2, d]]
          (see {!Kutil.Backoff}) so synchronised retriers decorrelate *)
}

type t = {
  timeout : Ksim.Time.t;  (** first-attempt timeout, and the backoff base *)
  attempts : int;         (** total send attempts; must be positive *)
  backoff : backoff option;
      (** [None]: every attempt waits exactly [timeout] *)
}

val default : t
(** One attempt, 1 s timeout, no backoff — the old [call] defaults. *)

val wan : t
(** Patient preset for slow or lossy links: 2 s base, four attempts,
    exponential growth capped at 16 s. *)

val idempotent : t
(** Aggressive-retry preset for messages the receiver treats as
    idempotent — 2PC prepare/decision traffic above all: 300 ms base,
    eight attempts, exponential growth capped at 2 s. Safe only when a
    duplicate delivery is a no-op at the receiver (a participant that has
    already decided a transaction must ack a re-sent decision without
    re-applying it); deterministic (no jitter) so simulated fault
    schedules replay exactly. *)

val with_timeout : ?attempts:int -> Ksim.Time.t -> t
(** Fixed per-attempt timeout, default one attempt. *)

val jittered :
  rng:Kutil.Rng.t -> ?attempts:int -> base:Ksim.Time.t -> cap:Ksim.Time.t ->
  unit -> t
(** Exponential-with-jitter policy drawing from the caller's [rng] — the
    shared retry shape for daemon control-plane traffic. *)

val timeout_source : t -> unit -> Ksim.Time.t
(** A fresh per-call source of successive attempt timeouts (transport
    implementations call this once per [call], then once per attempt). *)
