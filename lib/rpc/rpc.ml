module type PROTOCOL = sig
  type request
  type response

  val request_size : request -> int
  val response_size : response -> int
  val request_kind : request -> string
end

module Make (P : PROTOCOL) = struct
  module Msg = struct
    type t =
      | Request of { id : int; span : int; body : P.request }
      | Response of { id : int; body : P.response }
      | Oneway of { span : int; body : P.request }
      | Batch of { items : (int * P.request) list }

    let header_size = 16

    (* A non-null trace span id adds one correlation word to the envelope;
       untraced traffic is byte-identical to the pre-tracing protocol. *)
    let span_size span = if span = 0 then 0 else 8

    (* Batched items share one envelope header and pay a small per-item
       length prefix instead: coalescing N messages saves
       (N-1) * (header_size - item_header) bytes on top of the N-1 saved
       envelopes. *)
    let item_header = 4

    let size_bytes = function
      | Request { span; body; _ } ->
        header_size + span_size span + P.request_size body
      | Response { body; _ } -> header_size + P.response_size body
      | Oneway { span; body } ->
        header_size + span_size span + P.request_size body
      | Batch { items } ->
        List.fold_left
          (fun acc (span, body) ->
            acc + item_header + span_size span + P.request_size body)
          header_size items

    let kind = function
      | Request { body; _ } -> P.request_kind body
      | Response _ -> "response"
      | Oneway { body; _ } -> P.request_kind body
      | Batch _ -> "rpc.batch"

    let kinds = function
      | Batch { items } -> List.map (fun (_, body) -> P.request_kind body) items
      | m -> [ kind m ]
  end

  module Net = Knet.Network.Make (Msg)

  type t = {
    net : Net.t;
    engine : Ksim.Engine.t;
    mutable next_id : int;
    pending : (int, P.response Ksim.Promise.t) Hashtbl.t;
    servers :
      (src:Knet.Topology.node_id ->
       span:int ->
       P.request ->
       reply:(P.response -> unit) ->
       unit)
        option
        array;
    mutable coalescing : bool;
    (* Per-(src, dst) queues of oneways waiting for the end-of-tick flush,
       items in reverse send order. A key is present iff a flush for it is
       scheduled at the current instant. *)
    queues : (int * int, (int * P.request) list ref) Hashtbl.t;
  }

  let create engine topology =
    let net = Net.create engine topology in
    let t =
      {
        net;
        engine;
        next_id = 0;
        pending = Hashtbl.create 64;
        servers = Array.make (Knet.Topology.node_count topology) None;
        coalescing = true;
        queues = Hashtbl.create 16;
      }
    in
    List.iter
      (fun node ->
        Net.set_handler net node (fun ~src msg ->
            match msg with
            | Msg.Request { id; span; body } -> (
              match t.servers.(node) with
              | None -> ()
              | Some server ->
                let reply resp =
                  Net.send net ~src:node ~dst:src (Msg.Response { id; body = resp })
                in
                server ~src ~span body ~reply)
            | Msg.Response { id; body } -> (
              match Hashtbl.find_opt t.pending id with
              | None -> () (* late reply after timeout: drop *)
              | Some promise ->
                Hashtbl.remove t.pending id;
                ignore (Ksim.Promise.try_resolve promise body))
            | Msg.Oneway { span; body } -> (
              match t.servers.(node) with
              | None -> ()
              | Some server -> server ~src ~span body ~reply:(fun _ -> ()))
            | Msg.Batch { items } -> (
              match t.servers.(node) with
              | None -> ()
              | Some server ->
                List.iter
                  (fun (span, body) -> server ~src ~span body ~reply:(fun _ -> ()))
                  items)))
      (Knet.Topology.nodes topology);
    t

  let net t = t.net
  let engine t = t.engine

  let set_server t node handler = t.servers.(node) <- Some handler

  let call t ~src ~dst ?(policy = Policy.default) ?(span = 0) request =
    let attempt_timeout = Policy.timeout_source policy in
    let attempts = policy.Policy.attempts in
    let rec attempt n =
      if n <= 0 then Error `Timeout
      else begin
        let id = t.next_id in
        t.next_id <- t.next_id + 1;
        let promise = Ksim.Promise.create () in
        Hashtbl.replace t.pending id promise;
        Net.send t.net ~src ~dst (Msg.Request { id; span; body = request });
        let timeout = attempt_timeout () in
        match Ksim.Fiber.await_timeout t.engine promise ~timeout with
        | Some resp -> Ok resp
        | None ->
          Hashtbl.remove t.pending id;
          attempt (n - 1)
      end
    in
    if attempts <= 0 then invalid_arg "Rpc.call: policy attempts must be positive";
    attempt attempts

  let flush_queue t ~src ~dst =
    match Hashtbl.find_opt t.queues (src, dst) with
    | None -> ()
    | Some q ->
      Hashtbl.remove t.queues (src, dst);
      (match List.rev !q with
       | [] -> ()
       | [ (span, body) ] ->
         (* A batch of one gains nothing: send the plain envelope so the
            uncontended path is byte-identical to the uncoalesced one. *)
         Net.send t.net ~src ~dst (Msg.Oneway { span; body })
       | items ->
         (if Ktrace.Trace.enabled () then
            (* Parent the batch event under the first traced item so E1/E3
               breakdowns can attribute the envelope saving to an op. *)
            match List.find_opt (fun (s, _) -> s <> 0) items with
            | Some (s, _) ->
              Ktrace.Trace.event ~engine:t.engine ~node:src
                ~span:(Ktrace.Trace.of_id s) "rpc.batch"
                ~attrs:
                  [ ("dst", string_of_int dst);
                    ("items", string_of_int (List.length items)) ]
            | None -> ());
         Net.send t.net ~src ~dst (Msg.Batch { items }))

  let notify t ~src ~dst ?(span = 0) ?(coalesce = false) request =
    if coalesce && t.coalescing then begin
      match Hashtbl.find_opt t.queues (src, dst) with
      | Some q -> q := (span, request) :: !q
      | None ->
        Hashtbl.replace t.queues (src, dst) (ref [ (span, request) ]);
        (* ~after:0 = end of the current instant: every coalescable send
           to this destination issued while the current event cascade runs
           lands in the same envelope; the flush costs no simulated time. *)
        ignore
          (Ksim.Engine.schedule t.engine ~after:0 (fun () ->
               flush_queue t ~src ~dst))
    end
    else Net.send t.net ~src ~dst (Msg.Oneway { span; body = request })

  let set_coalescing t on =
    (* Draining on disable keeps the no-queued-message invariant trivial:
       a queue entry always has a scheduled flush, and a scheduled flush
       always finds its entry or an empty slot. *)
    if not on then
      List.iter
        (fun (src, dst) -> flush_queue t ~src ~dst)
        (Hashtbl.fold (fun k _ acc -> k :: acc) t.queues []);
    t.coalescing <- on

  let coalescing t = t.coalescing

  let pending_calls t = Hashtbl.length t.pending
end
