module type PROTOCOL = sig
  type request
  type response

  val request_size : request -> int
  val response_size : response -> int
  val request_kind : request -> string
end

module Make (P : PROTOCOL) = struct
  module Msg = struct
    type t =
      | Request of { id : int; span : int; body : P.request }
      | Response of { id : int; body : P.response }
      | Oneway of { span : int; body : P.request }

    let header_size = 16

    (* A non-null trace span id adds one correlation word to the envelope;
       untraced traffic is byte-identical to the pre-tracing protocol. *)
    let span_size span = if span = 0 then 0 else 8

    let size_bytes = function
      | Request { span; body; _ } ->
        header_size + span_size span + P.request_size body
      | Response { body; _ } -> header_size + P.response_size body
      | Oneway { span; body } ->
        header_size + span_size span + P.request_size body

    let kind = function
      | Request { body; _ } -> P.request_kind body
      | Response _ -> "response"
      | Oneway { body; _ } -> P.request_kind body
  end

  module Net = Knet.Network.Make (Msg)

  type t = {
    net : Net.t;
    engine : Ksim.Engine.t;
    mutable next_id : int;
    pending : (int, P.response Ksim.Promise.t) Hashtbl.t;
    servers :
      (src:Knet.Topology.node_id ->
       span:int ->
       P.request ->
       reply:(P.response -> unit) ->
       unit)
        option
        array;
  }

  let create engine topology =
    let net = Net.create engine topology in
    let t =
      {
        net;
        engine;
        next_id = 0;
        pending = Hashtbl.create 64;
        servers = Array.make (Knet.Topology.node_count topology) None;
      }
    in
    List.iter
      (fun node ->
        Net.set_handler net node (fun ~src msg ->
            match msg with
            | Msg.Request { id; span; body } -> (
              match t.servers.(node) with
              | None -> ()
              | Some server ->
                let reply resp =
                  Net.send net ~src:node ~dst:src (Msg.Response { id; body = resp })
                in
                server ~src ~span body ~reply)
            | Msg.Response { id; body } -> (
              match Hashtbl.find_opt t.pending id with
              | None -> () (* late reply after timeout: drop *)
              | Some promise ->
                Hashtbl.remove t.pending id;
                ignore (Ksim.Promise.try_resolve promise body))
            | Msg.Oneway { span; body } -> (
              match t.servers.(node) with
              | None -> ()
              | Some server -> server ~src ~span body ~reply:(fun _ -> ()))))
      (Knet.Topology.nodes topology);
    t

  let net t = t.net
  let engine t = t.engine

  let set_server t node handler = t.servers.(node) <- Some handler

  let default_timeout = Ksim.Time.sec 1

  let call t ~src ~dst ?(timeout = default_timeout) ?backoff ?(attempts = 1)
      ?(span = 0) request =
    let attempt_timeout () =
      match backoff with
      | Some b -> Kutil.Backoff.next b
      | None -> timeout
    in
    let rec attempt n =
      if n <= 0 then Error `Timeout
      else begin
        let id = t.next_id in
        t.next_id <- t.next_id + 1;
        let promise = Ksim.Promise.create () in
        Hashtbl.replace t.pending id promise;
        Net.send t.net ~src ~dst (Msg.Request { id; span; body = request });
        let timeout = attempt_timeout () in
        match Ksim.Fiber.await_timeout t.engine promise ~timeout with
        | Some resp -> Ok resp
        | None ->
          Hashtbl.remove t.pending id;
          attempt (n - 1)
      end
    in
    if attempts <= 0 then invalid_arg "Rpc.call: attempts must be positive";
    attempt attempts

  let notify t ~src ~dst ?(span = 0) request =
    Net.send t.net ~src ~dst (Msg.Oneway { span; body = request })

  let pending_calls t = Hashtbl.length t.pending
end
