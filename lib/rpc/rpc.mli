(** Request/response messaging over the simulated network.

    Wraps {!Knet.Network} with correlation ids, timeouts and retries.
    Khazana daemons use this for all inter-node protocol traffic. Retried
    requests give at-least-once execution: handlers must be idempotent or
    deduplicate, as the paper's own retry-until-success error handling
    requires.

    One-way messages marked coalescable are not sent immediately: they sit
    in a per-destination queue until the end of the current simulated
    instant, then travel as one {!Make.Msg.t.Batch} envelope. A home
    invalidating N pages at one sharer in a single event cascade therefore
    pays one envelope, not N. *)

(** The user-supplied wire protocol: one request and one response type,
    with enough metadata for the network's size and kind accounting. *)
module type PROTOCOL = sig
  type request
  type response

  val request_size : request -> int
  (** Approximate serialised size of a request body in bytes. *)

  val response_size : response -> int
  (** Approximate serialised size of a response body in bytes. *)

  val request_kind : request -> string
  (** Short label for per-kind traffic counters ({!Knet.Network}). *)
end

module Make (P : PROTOCOL) : sig
  type t

  module Msg : sig
    type t =
      | Request of { id : int; span : int; body : P.request }
      | Response of { id : int; body : P.response }
      | Oneway of { span : int; body : P.request }
          (** [span] is the sender's enclosing {!Ktrace} span id (0 when
              untraced); receivers parent their dispatch spans under it so a
              multi-hop operation forms one causally-linked trace. *)
      | Batch of { items : (int * P.request) list }
          (** Same-tick one-way messages to one destination coalesced into
              a single envelope; each item keeps its own [(span, body)]
              pair and is dispatched to the server exactly as a separate
              [Oneway] would have been. *)

    val size_bytes : t -> int
    (** Envelope wire size: header + body, plus a span correlation word
        when traced; batches share one header across items. *)

    val kind : t -> string
    (** Envelope-level label ("rpc.batch" for batches). *)

    val kinds : t -> string list
    (** Per-logical-message labels; see {!Knet.Network.MESSAGE.kinds}. *)
  end

  module Net : module type of Knet.Network.Make (Msg)

  val create : Ksim.Engine.t -> Knet.Topology.t -> t
  (** Build a transport over the topology and hook every node's network
      handler; servers are installed separately with {!set_server}. *)

  val net : t -> Net.t
  (** The underlying network (failure injection, traffic stats). *)

  val engine : t -> Ksim.Engine.t
  (** The simulation engine this transport schedules on. *)

  val set_server :
    t ->
    Knet.Topology.node_id ->
    (src:Knet.Topology.node_id ->
     span:int ->
     P.request ->
     reply:(P.response -> unit) ->
     unit) ->
    unit
  (** Install a node's request handler. [span] is the caller's trace span
      id (0 when untraced). The handler may reply immediately, or capture
      [reply] and call it later from a fiber; replying is optional (the
      caller then times out). *)

  val call :
    t ->
    src:Knet.Topology.node_id ->
    dst:Knet.Topology.node_id ->
    ?policy:Policy.t ->
    ?span:int ->
    P.request ->
    (P.response, [ `Timeout ]) result
  (** Fiber-blocking remote call governed by [policy] (default
      {!Policy.default}: one attempt, 1 s timeout): the request is resent
      up to [policy.attempts] times, each attempt waiting for the policy's
      next per-attempt timeout (fixed, or growing along its backoff
      schedule). [span] rides in the envelope so the callee can link its
      work into the caller's trace. *)

  val notify :
    t ->
    src:Knet.Topology.node_id ->
    dst:Knet.Topology.node_id ->
    ?span:int ->
    ?coalesce:bool ->
    P.request ->
    unit
  (** One-way message: no response, no retry. With [~coalesce:true]
      (default false) the message is queued and flushed at the end of the
      current simulated instant, sharing a {!Msg.t.Batch} envelope with
      every other coalescable same-tick message from [src] to [dst]; the
      flush emits an "rpc.batch" {!Ktrace} event when it merged two or
      more. Delivery semantics are otherwise unchanged — the network's
      crash/partition/loss decisions apply to the whole envelope at flush
      time. *)

  val set_coalescing : t -> bool -> unit
  (** Globally enable/disable batching of [~coalesce:true] notifies
      (default enabled). Disabling flushes any queued messages first;
      benches use this to measure the uncoalesced baseline. *)

  val coalescing : t -> bool
  (** Whether coalescing is currently enabled. *)

  val pending_calls : t -> int
  (** Outstanding requests (diagnostics). *)
end
