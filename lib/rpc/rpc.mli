(** Request/response messaging over the simulated network.

    Wraps {!Knet.Network} with correlation ids, timeouts and retries.
    Khazana daemons use this for all inter-node protocol traffic. Retried
    requests give at-least-once execution: handlers must be idempotent or
    deduplicate, as the paper's own retry-until-success error handling
    requires. *)

module type PROTOCOL = sig
  type request
  type response

  val request_size : request -> int
  val response_size : response -> int
  val request_kind : request -> string
end

module Make (P : PROTOCOL) : sig
  type t

  module Msg : sig
    type t =
      | Request of { id : int; span : int; body : P.request }
      | Response of { id : int; body : P.response }
      | Oneway of { span : int; body : P.request }
          (** [span] is the sender's enclosing {!Ktrace} span id (0 when
              untraced); receivers parent their dispatch spans under it so a
              multi-hop operation forms one causally-linked trace. *)

    val size_bytes : t -> int
    val kind : t -> string
  end

  module Net : module type of Knet.Network.Make (Msg)

  val create : Ksim.Engine.t -> Knet.Topology.t -> t
  val net : t -> Net.t
  val engine : t -> Ksim.Engine.t

  val set_server :
    t ->
    Knet.Topology.node_id ->
    (src:Knet.Topology.node_id ->
     span:int ->
     P.request ->
     reply:(P.response -> unit) ->
     unit) ->
    unit
  (** Install a node's request handler. [span] is the caller's trace span
      id (0 when untraced). The handler may reply immediately, or capture
      [reply] and call it later from a fiber; replying is optional (the
      caller then times out). *)

  val call :
    t ->
    src:Knet.Topology.node_id ->
    dst:Knet.Topology.node_id ->
    ?timeout:Ksim.Time.t ->
    ?backoff:Kutil.Backoff.t ->
    ?attempts:int ->
    ?span:int ->
    P.request ->
    (P.response, [ `Timeout ]) result
  (** Fiber-blocking remote call; resends up to [attempts] times (default 1
      attempt, timeout 1s of virtual time per attempt). When [backoff] is
      given, each attempt's timeout is drawn from it instead of [timeout] —
      successive attempts wait exponentially longer (jittered), which is
      the shared retry policy for all daemon traffic. [span] rides in the
      envelope so the callee can link its work into the caller's trace. *)

  val notify :
    t ->
    src:Knet.Topology.node_id ->
    dst:Knet.Topology.node_id ->
    ?span:int ->
    P.request ->
    unit
  (** One-way message: no response, no retry. *)

  val pending_calls : t -> int
  (** Outstanding requests (diagnostics). *)
end
