type timer = {
  at : Time.t;
  seq : int;
  fn : unit -> unit;
  mutable cancelled : bool;
}

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  mutable live : int;
  mutable fired : int;
  queue : timer Kutil.Heap.t;
  rng : Kutil.Rng.t;
}

let cmp_timer a b =
  let c = compare a.at b.at in
  if c <> 0 then c else compare a.seq b.seq

let create ?(seed = 42) () =
  {
    clock = 0;
    seq = 0;
    live = 0;
    fired = 0;
    queue = Kutil.Heap.create ~cmp:cmp_timer;
    rng = Kutil.Rng.create ~seed;
  }

let now t = t.clock
let rng t = t.rng

let schedule_at t ~at fn =
  let at = max at t.clock in
  let timer = { at; seq = t.seq; fn; cancelled = false } in
  t.seq <- t.seq + 1;
  t.live <- t.live + 1;
  Kutil.Heap.push t.queue timer;
  timer

let schedule t ~after fn = schedule_at t ~at:(t.clock + max 0 after) fn

let cancel timer =
  timer.cancelled <- true

let pending t =
  (* [live] over-counts cancelled-but-queued timers; scanning would be
     O(n), so report live minus nothing and fix up lazily in [step]. *)
  t.live

let rec next_at t =
  match Kutil.Heap.peek t.queue with
  | None -> None
  | Some timer when timer.cancelled ->
    (* Dead head-of-queue entries can be discarded eagerly. *)
    ignore (Kutil.Heap.pop t.queue);
    t.live <- t.live - 1;
    next_at t
  | Some timer -> Some timer.at

let step t =
  let rec next () =
    match Kutil.Heap.pop t.queue with
    | None -> false
    | Some timer when timer.cancelled ->
      t.live <- t.live - 1;
      next ()
    | Some timer ->
      t.live <- t.live - 1;
      t.clock <- timer.at;
      t.fired <- t.fired + 1;
      timer.fn ();
      true
  in
  next ()

let run ?until t =
  let continue () =
    match until with
    | None -> true
    | Some limit -> (
      match Kutil.Heap.peek t.queue with
      | None -> false
      | Some timer -> timer.at <= limit)
  in
  while continue () && step t do
    ()
  done;
  (* Advance the clock to the horizon so back-to-back [run_for] calls keep a
     monotone notion of time even when the queue drains early. *)
  match until with
  | Some limit when t.clock < limit -> t.clock <- limit
  | Some _ | None -> ()

let run_for t d = run ~until:(t.clock + d) t
let events_fired t = t.fired
