(** Discrete-event simulation engine.

    A single-threaded virtual clock with a deterministic event queue: events
    scheduled for the same instant fire in scheduling order. All Khazana
    nodes in a simulation share one engine. *)

type t

val create : ?seed:int -> unit -> t
(** [create ~seed ()] makes an engine whose {!rng} stream is derived from
    [seed] (default 42). *)

val now : t -> Time.t
val rng : t -> Kutil.Rng.t

type timer

val schedule : t -> after:Time.t -> (unit -> unit) -> timer
(** [schedule t ~after f] runs [f] at [now t + after]. Negative delays are
    clamped to zero. *)

val schedule_at : t -> at:Time.t -> (unit -> unit) -> timer
val cancel : timer -> unit
(** Cancelling an already-fired timer is a no-op. *)

val pending : t -> int
(** Number of live (uncancelled, unfired) events. *)

val next_at : t -> Time.t option
(** Virtual time of the earliest live event, or [None] when the queue is
    empty. Real-time drivers use it to sleep exactly until the engine next
    has work. *)

val step : t -> bool
(** Fire the next event; [false] when the queue is empty. *)

val run : ?until:Time.t -> t -> unit
(** Drain the event queue, stopping early once the clock would pass
    [until]. Events beyond [until] remain queued. *)

val run_for : t -> Time.t -> unit
(** [run_for t d] is [run ~until:(now t + d) t]. *)

val events_fired : t -> int
(** Total events executed so far (for microbenchmarks and sanity checks). *)
