type config = {
  lost_write_prob : float;
  torn_write_prob : float;
  crash_during_io_prob : float;
}

let none =
  { lost_write_prob = 0.0; torn_write_prob = 0.0; crash_during_io_prob = 0.0 }

let active c =
  c.lost_write_prob > 0.0 || c.torn_write_prob > 0.0
  || c.crash_during_io_prob > 0.0

(* FNV-1a (offset basis truncated to OCaml's 63-bit int), folded over every
   byte. [Hashtbl.hash] samples only a prefix of large buffers, which would
   let a torn tail slip through verification. *)
let checksum b =
  let h = ref 0x3bf29ce484222325 in
  for i = 0 to Bytes.length b - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b i)) * 0x100000001b3
  done;
  !h land max_int

let tear rng ~intended ~prior =
  let len = Bytes.length intended in
  let out =
    match prior with
    | Some p when Bytes.length p = len -> Bytes.copy p
    | Some _ | None -> Bytes.make len '\000'
  in
  (* At least one byte written, at least one byte missing: a cut strictly
     inside the buffer (single-byte writes cannot tear). *)
  if len >= 2 then begin
    let cut = 1 + Kutil.Rng.int rng (len - 1) in
    Bytes.blit intended 0 out 0 cut
  end
  else Bytes.blit intended 0 out 0 len;
  out
