(** Disk fault model shared by the page store and the write-ahead log.

    The simulated disk tier has a volatile write cache: writes land in it
    immediately but only become durable at a [sync] barrier. A crash rolls
    the cache back according to this model — each unsynced write may be
    lost, and the write at the crash frontier may additionally be {e torn}
    (a partial page/record image). All draws come from a seeded
    {!Kutil.Rng} stream, so every failure is replayable from the seed. *)

type config = {
  lost_write_prob : float;
      (** chance that an unsynced write (and, for a sequential log,
          everything after it) rolls back on crash *)
  torn_write_prob : float;
      (** chance that the write at the crash frontier leaves a partial
          image instead of disappearing cleanly; detectable by checksum *)
  crash_during_io_prob : float;
      (** chance that a disk I/O invokes the registered crash hook
          mid-flight (inside the disk-latency sleep) *)
}

val none : config
(** All probabilities zero: the seed-state "disk is perfect" model. *)

val active : config -> bool
(** At least one probability is non-zero. *)

val checksum : bytes -> int
(** FNV-1a over the whole buffer. Every disk frame and log record carries
    the checksum of its content; a torn image fails verification, which is
    how recovery discards it instead of serving garbage. *)

val tear : Kutil.Rng.t -> intended:bytes -> prior:bytes option -> bytes
(** A torn image of a write that was cut off partway: a prefix of the
    intended bytes over a suffix of the prior durable content (zeros when
    the sector was never written). The cut point comes from [rng]. *)
