module Gaddr = Kutil.Gaddr

type config = {
  ram_pages : int;
  disk_pages : int;
  ram_latency : Ksim.Time.t;
  disk_read_latency : Ksim.Time.t;
  disk_write_latency : Ksim.Time.t;
}

let default_config =
  {
    ram_pages = 256;
    disk_pages = 65_536;
    ram_latency = Ksim.Time.us 2;
    disk_read_latency = Ksim.Time.ms 6;
    disk_write_latency = Ksim.Time.ms 8;
  }

let config ?(ram_pages = default_config.ram_pages)
    ?(disk_pages = default_config.disk_pages) () =
  { default_config with ram_pages; disk_pages }

type frame = {
  mutable data : bytes;
  mutable dirty : bool;
  mutable pins : int;
  mutable last_use : int;
  mutable sum : int;  (* checksum of [data]; maintained on the disk tier *)
}

type evict_hook = Gaddr.t -> bytes -> dirty:bool -> unit

type stats = {
  ram_hits : int;
  disk_hits : int;
  misses : int;
  ram_evictions : int;
  disk_evictions : int;
  writebacks : int;
  syncs : int;
  lost_writes : int;
  torn_writes : int;
  torn_detected : int;
}

type t = {
  engine : Ksim.Engine.t;
  cfg : config;
  rng : Kutil.Rng.t;
  ram : frame Gaddr.Table.t;
  disk : frame Gaddr.Table.t;
  (* Disk writes since the last {!sync} barrier, with the content that was
     durable before the first overwrite ([None]: page was absent). A crash
     rolls each entry back according to the fault model. *)
  unsynced : (bytes * int) option Gaddr.Table.t;
  (* Demotions currently inside their disk-latency sleep; a crash catches
     these mid-write and may tear them onto the platter. *)
  mutable in_flight : (Gaddr.t * frame) list;
  (* Dirty byte ranges per page, noted by the daemon's sub-page writes and
     consumed by the versioned CM's diff publisher. Advisory: missing
     entries just mean "ship the whole image". *)
  ranges : (int * int) list Gaddr.Table.t;
  mutable faults : Disk_fault.config;
  mutable crash_hook : unit -> unit;
  mutable epoch : int;
  mutable hook : evict_hook;
  mutable node : int;  (* owning daemon's node id, -1 until set: trace tag *)
  mutable tick : int;
  mutable ram_hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable ram_evictions : int;
  mutable disk_evictions : int;
  mutable writebacks : int;
  mutable sync_count : int;
  mutable lost_writes : int;
  mutable torn_writes : int;
  mutable torn_detected : int;
}

let create engine cfg =
  if cfg.ram_pages <= 0 || cfg.disk_pages <= 0 then
    invalid_arg "Page_store.create: capacities must be positive";
  {
    engine;
    cfg;
    rng = Kutil.Rng.split (Ksim.Engine.rng engine);
    ram = Gaddr.Table.create 64;
    disk = Gaddr.Table.create 256;
    unsynced = Gaddr.Table.create 64;
    in_flight = [];
    ranges = Gaddr.Table.create 64;
    faults = Disk_fault.none;
    crash_hook = (fun () -> ());
    epoch = 0;
    hook = (fun _ _ ~dirty:_ -> ());
    node = -1;
    tick = 0;
    ram_hits = 0;
    disk_hits = 0;
    misses = 0;
    ram_evictions = 0;
    disk_evictions = 0;
    writebacks = 0;
    sync_count = 0;
    lost_writes = 0;
    torn_writes = 0;
    torn_detected = 0;
  }

let set_evict_hook t hook = t.hook <- hook
let set_node t node = t.node <- node
let set_faults t faults = t.faults <- faults
let faults t = t.faults
let set_crash_hook t hook = t.crash_hook <- hook

(* Tier transitions land in the global trace stream (unattached to any
   span: eviction is a side effect of whoever faulted the cache, not of
   one operation). Free when no sink is installed. *)
let trace_tier t name addr ~attrs =
  if Ktrace.Trace.enabled () then
    Ktrace.Trace.event ~engine:t.engine ~node:t.node name
      ~attrs:(("page", Gaddr.to_string addr) :: attrs)

type tier = Ram | Disk

let where t addr =
  if Gaddr.Table.mem t.ram addr then Some Ram
  else if Gaddr.Table.mem t.disk addr then Some Disk
  else None

let touch t frame =
  t.tick <- t.tick + 1;
  frame.last_use <- t.tick

(* A disk I/O may hit a crash point partway through its latency window. The
   hook fires from the event queue, never synchronously from inside the
   caller's operation, so the crash lands mid-sleep exactly as a real power
   cut would: after the op started, before it completed. *)
let maybe_crash_during_io t latency =
  let p = t.faults.Disk_fault.crash_during_io_prob in
  if p > 0.0 && Kutil.Rng.float t.rng 1.0 < p then begin
    let after = 1 + Kutil.Rng.int t.rng (max 1 (latency - 1)) in
    let hook = t.crash_hook in
    ignore (Ksim.Engine.schedule t.engine ~after (fun () -> hook ()))
  end

(* Install/overwrite a page on the disk tier, remembering the content that
   was durable before the first unsynced overwrite so a crash can roll it
   back. *)
let install_disk t addr frame =
  if not (Gaddr.Table.mem t.unsynced addr) then begin
    let prior =
      match Gaddr.Table.find_opt t.disk addr with
      | Some old -> Some (old.data, old.sum)
      | None -> None
    in
    Gaddr.Table.replace t.unsynced addr prior
  end;
  frame.sum <- Disk_fault.checksum frame.data;
  Gaddr.Table.replace t.disk addr frame

(* Least-recently-used unpinned entry of a table; O(size), which is fine at
   simulated-cache scale. *)
let victim table =
  Gaddr.Table.fold
    (fun addr frame best ->
      if frame.pins > 0 then best
      else
        match best with
        | Some (_, f) when f.last_use <= frame.last_use -> best
        | _ -> Some (addr, frame))
    table None

let rec make_disk_room t =
  if Gaddr.Table.length t.disk >= t.cfg.disk_pages then begin
    match victim t.disk with
    | None -> () (* everything pinned: overcommit rather than deadlock *)
    | Some (addr, frame) ->
      Gaddr.Table.remove t.disk addr;
      Gaddr.Table.remove t.unsynced addr;
      t.disk_evictions <- t.disk_evictions + 1;
      trace_tier t "store.evict" addr
        ~attrs:[ ("tier", "disk"); ("dirty", string_of_bool frame.dirty) ];
      if frame.dirty then begin
        t.writebacks <- t.writebacks + 1;
        t.hook addr frame.data ~dirty:true
      end
      else t.hook addr frame.data ~dirty:false;
      make_disk_room t
  end

(* Demote a RAM victim to disk. Writing disk costs simulated time on the
   data plane; control-plane installs skip the sleep. If the store crashed
   while we slept, the write never completed — the crash handler decides
   (from [in_flight]) whether it tore; either way this fiber must not touch
   the post-crash tables. *)
let rec make_ram_room t ~charge =
  if Gaddr.Table.length t.ram >= t.cfg.ram_pages then begin
    match victim t.ram with
    | None -> ()
    | Some (addr, frame) ->
      Gaddr.Table.remove t.ram addr;
      t.ram_evictions <- t.ram_evictions + 1;
      trace_tier t "store.demote" addr
        ~attrs:[ ("from", "ram"); ("to", "disk") ];
      (* Replacing an existing disk frame doesn't grow the table. *)
      if not (Gaddr.Table.mem t.disk addr) then make_disk_room t;
      let survived =
        if charge then begin
          let epoch = t.epoch in
          t.in_flight <- (addr, frame) :: t.in_flight;
          maybe_crash_during_io t t.cfg.disk_write_latency;
          Ksim.Fiber.sleep t.cfg.disk_write_latency;
          if t.epoch = epoch then begin
            t.in_flight <-
              List.filter (fun (_, f) -> f != frame) t.in_flight;
            true
          end
          else false
        end
        else true
      in
      if survived then begin
        install_disk t addr frame;
        make_ram_room t ~charge
      end
  end

let install_ram ?(charge = true) t addr frame =
  let epoch = t.epoch in
  make_ram_room t ~charge;
  (* The demotion above may have slept across a crash; the fresh tables
     belong to the next life of this store. *)
  if t.epoch = epoch then Gaddr.Table.replace t.ram addr frame

(* Reading a disk frame verifies its checksum; a torn image is dropped on
   detection and reads as a miss — the store never serves one. *)
let verify_disk t addr frame =
  if Disk_fault.checksum frame.data = frame.sum then true
  else begin
    Gaddr.Table.remove t.disk addr;
    Gaddr.Table.remove t.unsynced addr;
    t.torn_detected <- t.torn_detected + 1;
    trace_tier t "store.torn" addr ~attrs:[ ("tier", "disk") ];
    false
  end

let read t addr =
  match Gaddr.Table.find_opt t.ram addr with
  | Some frame ->
    t.ram_hits <- t.ram_hits + 1;
    touch t frame;
    let epoch = t.epoch in
    Ksim.Fiber.sleep t.cfg.ram_latency;
    if t.epoch = epoch then Some (Bytes.copy frame.data) else None
  | None -> (
    match Gaddr.Table.find_opt t.disk addr with
    | Some frame when verify_disk t addr frame ->
      t.disk_hits <- t.disk_hits + 1;
      touch t frame;
      let epoch = t.epoch in
      maybe_crash_during_io t t.cfg.disk_read_latency;
      Ksim.Fiber.sleep t.cfg.disk_read_latency;
      if t.epoch <> epoch then None
      else begin
        (* Inclusive promotion: the disk frame stays put — after a WAL
           checkpoint truncates a page's log records it can be the only
           durable copy of a committed image, and a read must not turn
           durable data into RAM-only data. A copy fronts it in RAM;
           pins move to the RAM copy (pin/unpin resolve RAM first). *)
        let data = Bytes.copy frame.data in
        (match Gaddr.Table.find_opt t.disk addr with
         | Some f when f == frame && not (Gaddr.Table.mem t.ram addr) ->
           let ram_frame =
             {
               data = Bytes.copy frame.data;
               dirty = frame.dirty;
               pins = frame.pins;
               last_use = frame.last_use;
               sum = 0;
             }
           in
           frame.pins <- 0;
           trace_tier t "store.promote" addr
             ~attrs:[ ("from", "disk"); ("to", "ram") ];
           install_ram t addr ram_frame
         | _ -> () (* dropped or overwritten while we slept *));
        Some data
      end
    | Some _ | None ->
      t.misses <- t.misses + 1;
      None)

let write t addr data ~dirty =
  let data = Bytes.copy data in
  match Gaddr.Table.find_opt t.ram addr with
  | Some frame ->
    frame.data <- data;
    frame.dirty <- frame.dirty || dirty;
    touch t frame;
    Ksim.Fiber.sleep t.cfg.ram_latency
  | None ->
    (* Overwriting a disk-resident page installs the new content in RAM in
       front of it; the disk frame keeps the prior durable bytes until a
       flush or demotion writes the new ones (a crash before then correctly
       reverts to the old image). The old frame's dirty bit still matters
       (the overwritten bytes were never pushed) but its pins belonged to
       fibers of a previous life of this page and must not resurrect. *)
    let was_dirty =
      match Gaddr.Table.find_opt t.disk addr with
      | Some old ->
        old.pins <- 0;
        old.dirty
      | None -> false
    in
    let frame =
      { data; dirty = dirty || was_dirty; pins = 0; last_use = 0; sum = 0 }
    in
    touch t frame;
    let epoch = t.epoch in
    install_ram t addr frame;
    if t.epoch = epoch then Ksim.Fiber.sleep t.cfg.ram_latency

let find_frame t addr =
  match Gaddr.Table.find_opt t.ram addr with
  | Some f -> Some f
  | None -> Gaddr.Table.find_opt t.disk addr

let read_immediate t addr =
  match Gaddr.Table.find_opt t.ram addr with
  | Some frame -> Some (Bytes.copy frame.data)
  | None -> (
    match Gaddr.Table.find_opt t.disk addr with
    | Some frame when verify_disk t addr frame -> Some (Bytes.copy frame.data)
    | Some _ | None -> None)

let write_immediate t addr data ~dirty =
  let data = Bytes.copy data in
  match Gaddr.Table.find_opt t.ram addr with
  | Some frame ->
    frame.data <- data;
    frame.dirty <- frame.dirty || dirty;
    touch t frame
  | None ->
    (* A disk-resident page keeps its durable frame; the new content goes
       into a RAM frame in front of it (the data plane sees a RAM hit
       next), reaching disk only through an explicit flush or demotion. *)
    let was_dirty =
      match Gaddr.Table.find_opt t.disk addr with
      | Some old ->
        old.pins <- 0;
        old.dirty
      | None -> false
    in
    let frame =
      { data; dirty = dirty || was_dirty; pins = 0; last_use = 0; sum = 0 }
    in
    touch t frame;
    install_ram ~charge:false t addr frame

(* Past this many runs the bookkeeping collapses to the bounding hull:
   a pathological scatter of tiny writes degrades to one wide run (still
   correct — runs only select which bytes ship) instead of an unbounded
   list. *)
let max_tracked_runs = 16

let note_range t addr ~off ~len =
  if off >= 0 && len > 0 then begin
    let existing =
      Option.value (Gaddr.Table.find_opt t.ranges addr) ~default:[]
    in
    (* Fold every overlapping-or-adjacent run into the new one. *)
    let lo, hi, rest =
      List.fold_left
        (fun (lo, hi, rest) (o, l) ->
          if o <= hi && o + l >= lo then (min lo o, max hi (o + l), rest)
          else (lo, hi, (o, l) :: rest))
        (off, off + len, [])
        existing
    in
    let runs = (lo, hi - lo) :: rest in
    let runs =
      if List.length runs <= max_tracked_runs then runs
      else begin
        let lo = List.fold_left (fun a (o, _) -> min a o) max_int runs in
        let hi = List.fold_left (fun a (o, l) -> max a (o + l)) 0 runs in
        [ (lo, hi - lo) ]
      end
    in
    Gaddr.Table.replace t.ranges addr runs
  end

let dirty_ranges t addr =
  List.sort compare
    (Option.value (Gaddr.Table.find_opt t.ranges addr) ~default:[])

let clear_ranges t addr = Gaddr.Table.remove t.ranges addr

let mark_clean t addr =
  match find_frame t addr with Some f -> f.dirty <- false | None -> ()

let is_dirty t addr =
  match find_frame t addr with Some f -> f.dirty | None -> false

(* Pin/unpin tolerate non-resident pages symmetrically: a page can be
   invalidated or crash away while a lock context holds it, and the
   context's cleanup must not distinguish the cases. *)
let pin t addr =
  match find_frame t addr with Some f -> f.pins <- f.pins + 1 | None -> ()

let unpin t addr =
  match find_frame t addr with
  | Some f -> if f.pins > 0 then f.pins <- f.pins - 1
  | None -> ()

let pinned_pages t =
  let count tbl acc =
    Gaddr.Table.fold (fun _ f acc -> if f.pins > 0 then acc + 1 else acc) tbl acc
  in
  count t.ram (count t.disk 0)

let flush_immediate t addr =
  match Gaddr.Table.find_opt t.ram addr with
  | None -> ()
  | Some frame ->
    t.writebacks <- t.writebacks + 1;
    (* The RAM copy is now backed by disk: clear its dirty bit, or the
       same bytes get counted and written back a second time on
       demotion. *)
    frame.dirty <- false;
    if not (Gaddr.Table.mem t.disk addr) then make_disk_room t;
    install_disk t addr
      {
        data = Bytes.copy frame.data;
        dirty = false;
        pins = 0;
        last_use = frame.last_use;
        sum = 0;
      }

let sync t =
  if Gaddr.Table.length t.unsynced > 0 then
    t.sync_count <- t.sync_count + 1;
  Gaddr.Table.reset t.unsynced

let drop t addr =
  Gaddr.Table.remove t.ram addr;
  Gaddr.Table.remove t.disk addr;
  Gaddr.Table.remove t.unsynced addr;
  Gaddr.Table.remove t.ranges addr

let crash t =
  (* Fence: fibers asleep inside an operation observe the epoch change and
     abandon their work instead of polluting the post-crash tables. *)
  t.epoch <- t.epoch + 1;
  Gaddr.Table.reset t.ram;
  Gaddr.Table.reset t.ranges;
  (* Demotions caught mid-write: the write never completed. With the fault
     model on, it may have torn — a partial image lands on disk whose
     checksum (of the intended content) won't verify. *)
  let flights = List.rev t.in_flight in
  t.in_flight <- [];
  if Disk_fault.active t.faults then
    List.iter
      (fun (addr, frame) ->
        if Kutil.Rng.float t.rng 1.0 < t.faults.Disk_fault.torn_write_prob
        then begin
          let prior =
            Option.map
              (fun f -> f.data)
              (Gaddr.Table.find_opt t.disk addr)
          in
          let torn = Disk_fault.tear t.rng ~intended:frame.data ~prior in
          Gaddr.Table.replace t.disk addr
            {
              data = torn;
              dirty = false;
              pins = 0;
              last_use = frame.last_use;
              sum = Disk_fault.checksum frame.data;
            };
          t.torn_writes <- t.torn_writes + 1
        end)
      flights;
  (* Completed-but-unsynced writes: each may roll back to the prior durable
     content, and the rolled-back write may tear instead of vanishing
     cleanly. Sorted order keeps the rng draw sequence independent of hash
     table iteration. *)
  if Disk_fault.active t.faults then begin
    let entries = Gaddr.Table.fold (fun a p acc -> (a, p) :: acc) t.unsynced [] in
    let entries = List.sort (fun (a, _) (b, _) -> Gaddr.compare a b) entries in
    List.iter
      (fun (addr, prior) ->
        match Gaddr.Table.find_opt t.disk addr with
        | None -> ()
        | Some frame ->
          if Kutil.Rng.float t.rng 1.0 < t.faults.Disk_fault.lost_write_prob
          then
            if
              Kutil.Rng.float t.rng 1.0 < t.faults.Disk_fault.torn_write_prob
            then begin
              let pdata = Option.map fst prior in
              frame.data <-
                Disk_fault.tear t.rng ~intended:frame.data ~prior:pdata;
              (* frame.sum still covers the intended bytes: mismatch. *)
              t.torn_writes <- t.torn_writes + 1
            end
            else begin
              (match prior with
              | Some (pdata, psum) ->
                frame.data <- pdata;
                frame.sum <- psum;
                frame.dirty <- false
              | None -> Gaddr.Table.remove t.disk addr);
              t.lost_writes <- t.lost_writes + 1
            end)
      entries
  end;
  Gaddr.Table.reset t.unsynced;
  (* Pins were owned by fibers the crash killed. *)
  Gaddr.Table.iter (fun _ f -> f.pins <- 0) t.disk

let scrub t =
  let torn =
    Gaddr.Table.fold
      (fun addr frame acc ->
        if Disk_fault.checksum frame.data = frame.sum then acc
        else addr :: acc)
      t.disk []
  in
  List.iter
    (fun addr ->
      Gaddr.Table.remove t.disk addr;
      t.torn_detected <- t.torn_detected + 1;
      trace_tier t "store.torn" addr ~attrs:[ ("tier", "disk") ])
    torn;
  List.length torn

(* A page can be resident in both tiers (inclusive caching): list each
   address once. *)
let pages t =
  let seen = Gaddr.Table.create 64 in
  Gaddr.Table.iter (fun a _ -> Gaddr.Table.replace seen a ()) t.ram;
  Gaddr.Table.iter (fun a _ -> Gaddr.Table.replace seen a ()) t.disk;
  Gaddr.Table.fold (fun a () acc -> a :: acc) seen []

let ram_used t = Gaddr.Table.length t.ram
let disk_used t = Gaddr.Table.length t.disk

let stats t =
  {
    ram_hits = t.ram_hits;
    disk_hits = t.disk_hits;
    misses = t.misses;
    ram_evictions = t.ram_evictions;
    disk_evictions = t.disk_evictions;
    writebacks = t.writebacks;
    syncs = t.sync_count;
    lost_writes = t.lost_writes;
    torn_writes = t.torn_writes;
    torn_detected = t.torn_detected;
  }

let reset_stats t =
  t.ram_hits <- 0;
  t.disk_hits <- 0;
  t.misses <- 0;
  t.ram_evictions <- 0;
  t.disk_evictions <- 0;
  t.writebacks <- 0;
  t.sync_count <- 0;
  t.lost_writes <- 0;
  t.torn_writes <- 0;
  t.torn_detected <- 0
