module Gaddr = Kutil.Gaddr

type config = {
  ram_pages : int;
  disk_pages : int;
  ram_latency : Ksim.Time.t;
  disk_read_latency : Ksim.Time.t;
  disk_write_latency : Ksim.Time.t;
}

let default_config =
  {
    ram_pages = 256;
    disk_pages = 65_536;
    ram_latency = Ksim.Time.us 2;
    disk_read_latency = Ksim.Time.ms 6;
    disk_write_latency = Ksim.Time.ms 8;
  }

let config ?(ram_pages = default_config.ram_pages)
    ?(disk_pages = default_config.disk_pages) () =
  { default_config with ram_pages; disk_pages }

type frame = {
  mutable data : bytes;
  mutable dirty : bool;
  mutable pins : int;
  mutable last_use : int;
}

type evict_hook = Gaddr.t -> bytes -> dirty:bool -> unit

type stats = {
  ram_hits : int;
  disk_hits : int;
  misses : int;
  ram_evictions : int;
  disk_evictions : int;
  writebacks : int;
}

type t = {
  engine : Ksim.Engine.t;
  cfg : config;
  ram : frame Gaddr.Table.t;
  disk : frame Gaddr.Table.t;
  mutable hook : evict_hook;
  mutable node : int;  (* owning daemon's node id, -1 until set: trace tag *)
  mutable tick : int;
  mutable ram_hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable ram_evictions : int;
  mutable disk_evictions : int;
  mutable writebacks : int;
}

let create engine cfg =
  if cfg.ram_pages <= 0 || cfg.disk_pages <= 0 then
    invalid_arg "Page_store.create: capacities must be positive";
  {
    engine;
    cfg;
    ram = Gaddr.Table.create 64;
    disk = Gaddr.Table.create 256;
    hook = (fun _ _ ~dirty:_ -> ());
    node = -1;
    tick = 0;
    ram_hits = 0;
    disk_hits = 0;
    misses = 0;
    ram_evictions = 0;
    disk_evictions = 0;
    writebacks = 0;
  }

let set_evict_hook t hook = t.hook <- hook
let set_node t node = t.node <- node

(* Tier transitions land in the global trace stream (unattached to any
   span: eviction is a side effect of whoever faulted the cache, not of
   one operation). Free when no sink is installed. *)
let trace_tier t name addr ~attrs =
  if Ktrace.Trace.enabled () then
    Ktrace.Trace.event ~engine:t.engine ~node:t.node name
      ~attrs:(("page", Gaddr.to_string addr) :: attrs)

type tier = Ram | Disk

let where t addr =
  if Gaddr.Table.mem t.ram addr then Some Ram
  else if Gaddr.Table.mem t.disk addr then Some Disk
  else None

let touch t frame =
  t.tick <- t.tick + 1;
  frame.last_use <- t.tick

(* Least-recently-used unpinned entry of a table; O(size), which is fine at
   simulated-cache scale. *)
let victim table =
  Gaddr.Table.fold
    (fun addr frame best ->
      if frame.pins > 0 then best
      else
        match best with
        | Some (_, f) when f.last_use <= frame.last_use -> best
        | _ -> Some (addr, frame))
    table None

let rec make_disk_room t =
  if Gaddr.Table.length t.disk >= t.cfg.disk_pages then begin
    match victim t.disk with
    | None -> () (* everything pinned: overcommit rather than deadlock *)
    | Some (addr, frame) ->
      Gaddr.Table.remove t.disk addr;
      t.disk_evictions <- t.disk_evictions + 1;
      trace_tier t "store.evict" addr
        ~attrs:[ ("tier", "disk"); ("dirty", string_of_bool frame.dirty) ];
      if frame.dirty then begin
        t.writebacks <- t.writebacks + 1;
        t.hook addr frame.data ~dirty:true
      end
      else t.hook addr frame.data ~dirty:false;
      make_disk_room t
  end

(* Demote a RAM victim to disk. Writing disk costs simulated time on the
   data plane; control-plane installs skip the sleep. *)
let rec make_ram_room t ~charge =
  if Gaddr.Table.length t.ram >= t.cfg.ram_pages then begin
    match victim t.ram with
    | None -> ()
    | Some (addr, frame) ->
      Gaddr.Table.remove t.ram addr;
      t.ram_evictions <- t.ram_evictions + 1;
      trace_tier t "store.demote" addr
        ~attrs:[ ("from", "ram"); ("to", "disk") ];
      make_disk_room t;
      if charge then Ksim.Fiber.sleep t.cfg.disk_write_latency;
      Gaddr.Table.replace t.disk addr frame;
      make_ram_room t ~charge
  end

let install_ram ?(charge = true) t addr frame =
  make_ram_room t ~charge;
  Gaddr.Table.replace t.ram addr frame

let read t addr =
  match Gaddr.Table.find_opt t.ram addr with
  | Some frame ->
    t.ram_hits <- t.ram_hits + 1;
    touch t frame;
    Ksim.Fiber.sleep t.cfg.ram_latency;
    Some (Bytes.copy frame.data)
  | None -> (
    match Gaddr.Table.find_opt t.disk addr with
    | Some frame ->
      t.disk_hits <- t.disk_hits + 1;
      touch t frame;
      Ksim.Fiber.sleep t.cfg.disk_read_latency;
      Gaddr.Table.remove t.disk addr;
      trace_tier t "store.promote" addr
        ~attrs:[ ("from", "disk"); ("to", "ram") ];
      install_ram t addr frame;
      Some (Bytes.copy frame.data)
    | None ->
      t.misses <- t.misses + 1;
      None)

let write t addr data ~dirty =
  let data = Bytes.copy data in
  match Gaddr.Table.find_opt t.ram addr with
  | Some frame ->
    frame.data <- data;
    frame.dirty <- frame.dirty || dirty;
    touch t frame;
    Ksim.Fiber.sleep t.cfg.ram_latency
  | None ->
    let pins, was_dirty =
      match Gaddr.Table.find_opt t.disk addr with
      | Some old ->
        Gaddr.Table.remove t.disk addr;
        (old.pins, old.dirty)
      | None -> (0, false)
    in
    let frame = { data; dirty = dirty || was_dirty; pins; last_use = 0 } in
    touch t frame;
    install_ram t addr frame;
    Ksim.Fiber.sleep t.cfg.ram_latency

let find_frame t addr =
  match Gaddr.Table.find_opt t.ram addr with
  | Some f -> Some f
  | None -> Gaddr.Table.find_opt t.disk addr

let read_immediate t addr =
  match find_frame t addr with
  | Some frame -> Some (Bytes.copy frame.data)
  | None -> None

let write_immediate t addr data ~dirty =
  let data = Bytes.copy data in
  match find_frame t addr with
  | Some frame ->
    frame.data <- data;
    frame.dirty <- frame.dirty || dirty;
    touch t frame;
    (* Promote disk frames so the data plane sees a RAM hit next. *)
    if (not (Gaddr.Table.mem t.ram addr)) && Gaddr.Table.mem t.disk addr then begin
      Gaddr.Table.remove t.disk addr;
      install_ram ~charge:false t addr frame
    end
  | None ->
    let frame = { data; dirty; pins = 0; last_use = 0 } in
    touch t frame;
    install_ram ~charge:false t addr frame

let mark_clean t addr =
  match find_frame t addr with Some f -> f.dirty <- false | None -> ()

let is_dirty t addr =
  match find_frame t addr with Some f -> f.dirty | None -> false

let pin t addr =
  match find_frame t addr with
  | Some f -> f.pins <- f.pins + 1
  | None -> invalid_arg "Page_store.pin: page not resident"

let unpin t addr =
  match find_frame t addr with
  | Some f -> if f.pins > 0 then f.pins <- f.pins - 1
  | None -> ()

let flush_immediate t addr =
  match Gaddr.Table.find_opt t.ram addr with
  | None -> ()
  | Some frame -> (
    t.writebacks <- t.writebacks + 1;
    match Gaddr.Table.find_opt t.disk addr with
    | Some d ->
      d.data <- Bytes.copy frame.data;
      d.dirty <- false
    | None ->
      make_disk_room t;
      Gaddr.Table.replace t.disk addr
        {
          data = Bytes.copy frame.data;
          dirty = false;
          pins = 0;
          last_use = frame.last_use;
        })

let drop t addr =
  Gaddr.Table.remove t.ram addr;
  Gaddr.Table.remove t.disk addr

let crash t = Gaddr.Table.reset t.ram

let pages t =
  let acc = Gaddr.Table.fold (fun a _ acc -> a :: acc) t.ram [] in
  Gaddr.Table.fold (fun a _ acc -> a :: acc) t.disk acc

let ram_used t = Gaddr.Table.length t.ram
let disk_used t = Gaddr.Table.length t.disk

let stats t =
  {
    ram_hits = t.ram_hits;
    disk_hits = t.disk_hits;
    misses = t.misses;
    ram_evictions = t.ram_evictions;
    disk_evictions = t.disk_evictions;
    writebacks = t.writebacks;
  }

let reset_stats t =
  t.ram_hits <- 0;
  t.disk_hits <- 0;
  t.misses <- 0;
  t.ram_evictions <- 0;
  t.disk_evictions <- 0;
  t.writebacks <- 0
