(** Per-node local storage: a two-tier cache of global pages.

    The paper treats node-local storage as "a cache of global data indexed
    by global addresses" with a RAM tier over a disk tier. Reads and writes
    charge simulated latency (call them from a fiber). When RAM fills,
    unpinned pages are victimised to disk; when disk fills, the victim is
    handed to the eviction hook so the consistency protocol can push dirty
    data and update sharer lists before the copy disappears.

    The disk tier has a volatile write cache: a write becomes durable only
    at the next {!sync} barrier. A crash wipes RAM and — under an active
    {!Disk_fault.config} — rolls unsynced disk writes back to their prior
    durable content, possibly leaving torn (checksum-failing) images, which
    the store detects and drops rather than serves. Disk I/O can also hit
    an injected crash point inside its latency window, firing the
    registered crash hook mid-operation. All fault draws come from an rng
    split off the engine's seeded stream, so failures replay from the
    seed. *)

type config = {
  ram_pages : int;                  (** RAM frames *)
  disk_pages : int;                 (** disk frames *)
  ram_latency : Ksim.Time.t;        (** per access, default 2us *)
  disk_read_latency : Ksim.Time.t;  (** default 6ms *)
  disk_write_latency : Ksim.Time.t; (** default 8ms *)
}

val default_config : config
(** 256 RAM frames, 65536 disk frames, 2us/6ms/8ms. *)

val config : ?ram_pages:int -> ?disk_pages:int -> unit -> config

type t

type evict_hook = Kutil.Gaddr.t -> bytes -> dirty:bool -> unit
(** Called (from a fiber) when a page is about to leave the disk tier. *)

val create : Ksim.Engine.t -> config -> t
val set_evict_hook : t -> evict_hook -> unit

val set_node : t -> int -> unit
(** Tag this store with its daemon's node id so the {!Ktrace} tier events
    it emits ([store.promote] / [store.demote] / [store.evict] /
    [store.torn]) identify their node. Events cost nothing while no trace
    sink is installed. *)

val set_faults : t -> Disk_fault.config -> unit
(** Default {!Disk_fault.none}: the disk never lies. *)

val faults : t -> Disk_fault.config

val set_crash_hook : t -> (unit -> unit) -> unit
(** Invoked (from the event queue, never synchronously from inside a store
    operation) when an injected crash point inside a disk I/O fires. The
    owning daemon points this at its own crash entry point. *)

type tier = Ram | Disk

val where : t -> Kutil.Gaddr.t -> tier option
(** Instantaneous lookup (no simulated latency). *)

val read : t -> Kutil.Gaddr.t -> bytes option
(** Fetch a copy of the page, promoting disk hits into RAM. Promotion is
    inclusive: the disk frame is retained (it may be the only durable copy
    of a checkpointed page), with a RAM copy installed in front of it.
    Returns a fresh buffer; mutating it does not affect the store. Torn
    disk images are dropped, not served. [None] also when the store
    crashed while the read slept. *)

val write : t -> Kutil.Gaddr.t -> bytes -> dirty:bool -> unit
(** Install or overwrite the page in RAM. [dirty] marks it as needing
    writeback before the local copy may be discarded. A disk-resident
    frame of the same page is kept with its prior durable bytes; the new
    content reaches disk only through {!flush_immediate} or demotion. *)

val read_immediate : t -> Kutil.Gaddr.t -> bytes option
(** Control-plane read: no simulated latency, no tier promotion. Safe to
    call outside a fiber. Torn disk images are dropped, not served. *)

val write_immediate : t -> Kutil.Gaddr.t -> bytes -> dirty:bool -> unit
(** Control-plane install: no simulated latency. Evictions it forces still
    invoke the eviction hook synchronously. *)

val flush_immediate : t -> Kutil.Gaddr.t -> unit
(** Copy the RAM-resident frame of [addr] through to the disk tier and
    clear the RAM frame's dirty bit (the bytes are now backed; leaving it
    set would write them back a second time on demotion). The write is
    unsynced until the next {!sync}. Control-plane: no simulated latency.
    No-op when the page is not RAM-resident. *)

val sync : t -> unit
(** Durability barrier: every disk write so far survives any later crash.
    Control-plane (the simulated cost of reaching a barrier is charged by
    callers where it matters). *)

val mark_clean : t -> Kutil.Gaddr.t -> unit
val is_dirty : t -> Kutil.Gaddr.t -> bool

(** {2 Dirty byte ranges (sub-page diff propagation)}

    The daemon notes which byte spans of a page its clients actually
    wrote; the versioned CM's publisher reads them back to ship sparse
    [(offset, bytes)] runs instead of whole 4 KiB images. The tracking is
    advisory: a page with no noted ranges simply publishes whole. Ranges
    survive until explicitly cleared (after a successful publish) and die
    with {!drop} and {!crash}. *)

val note_range : t -> Kutil.Gaddr.t -> off:int -> len:int -> unit
(** Record that [off, off+len) of the page was overwritten. Overlapping
    and adjacent spans coalesce; past an internal run-count cap the set
    collapses to its bounding hull (wider, never wrong — runs only select
    which bytes ship). Zero/negative lengths are ignored. *)

val dirty_ranges : t -> Kutil.Gaddr.t -> (int * int) list
(** The noted [(off, len)] spans, sorted by offset, [[]] when none. *)

val clear_ranges : t -> Kutil.Gaddr.t -> unit
(** Forget the noted spans (the publish consumed them). *)

val pin : t -> Kutil.Gaddr.t -> unit
(** Pinned pages (under an active lock context) are never victimised.
    Pins nest. No-op on non-resident pages — a page can be invalidated or
    crash away under an active lock context, and pin/unpin stay
    symmetric. *)

val unpin : t -> Kutil.Gaddr.t -> unit

val pinned_pages : t -> int
(** Resident pages with at least one pin — 0 whenever no lock context is
    live (tests use this to prove failed multi-page locks leak no pins). *)

val drop : t -> Kutil.Gaddr.t -> unit
(** Remove the local copy without writeback (after invalidation). *)

val crash : t -> unit
(** Lose the RAM tier (including dirty pages!) and all pins; apply the
    fault model to unsynced disk writes (roll back to prior durable
    content, possibly tearing the image at the crash frontier) and to
    demotions caught mid-write. Fibers asleep inside store operations
    observe the crash and abandon their work. *)

val scrub : t -> int
(** Recovery pass: drop every disk frame whose checksum fails (torn
    images), returning how many were dropped. Run before replaying the
    WAL so replayed images repair the holes. *)

val pages : t -> Kutil.Gaddr.t list
(** All locally cached page addresses. *)

val ram_used : t -> int
val disk_used : t -> int

type stats = {
  ram_hits : int;
  disk_hits : int;
  misses : int;
  ram_evictions : int;
  disk_evictions : int;
  writebacks : int;     (** dirty pages handed to the evict hook *)
  syncs : int;          (** {!sync} barriers that had writes to harden *)
  lost_writes : int;    (** unsynced writes rolled back by a crash *)
  torn_writes : int;    (** partial images left on disk by a crash *)
  torn_detected : int;  (** torn images caught by checksum and dropped *)
}

val stats : t -> stats
val reset_stats : t -> unit
