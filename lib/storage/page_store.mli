(** Per-node local storage: a two-tier cache of global pages.

    The paper treats node-local storage as "a cache of global data indexed
    by global addresses" with a RAM tier over a disk tier. Reads and writes
    charge simulated latency (call them from a fiber). When RAM fills,
    unpinned pages are victimised to disk; when disk fills, the victim is
    handed to the eviction hook so the consistency protocol can push dirty
    data and update sharer lists before the copy disappears. A crash wipes
    RAM; disk contents survive into recovery. *)

type config = {
  ram_pages : int;                  (** RAM frames *)
  disk_pages : int;                 (** disk frames *)
  ram_latency : Ksim.Time.t;        (** per access, default 2us *)
  disk_read_latency : Ksim.Time.t;  (** default 6ms *)
  disk_write_latency : Ksim.Time.t; (** default 8ms *)
}

val default_config : config
(** 256 RAM frames, 65536 disk frames, 2us/6ms/8ms. *)

val config : ?ram_pages:int -> ?disk_pages:int -> unit -> config

type t

type evict_hook = Kutil.Gaddr.t -> bytes -> dirty:bool -> unit
(** Called (from a fiber) when a page is about to leave the disk tier. *)

val create : Ksim.Engine.t -> config -> t
val set_evict_hook : t -> evict_hook -> unit

val set_node : t -> int -> unit
(** Tag this store with its daemon's node id so the {!Ktrace} tier events
    it emits ([store.promote] / [store.demote] / [store.evict]) identify
    their node. Events cost nothing while no trace sink is installed. *)

type tier = Ram | Disk

val where : t -> Kutil.Gaddr.t -> tier option
(** Instantaneous lookup (no simulated latency). *)

val read : t -> Kutil.Gaddr.t -> bytes option
(** Fetch a copy of the page, promoting disk hits into RAM. Returns a fresh
    buffer; mutating it does not affect the store. *)

val write : t -> Kutil.Gaddr.t -> bytes -> dirty:bool -> unit
(** Install or overwrite the page in RAM. [dirty] marks it as needing
    writeback before the local copy may be discarded. *)

val read_immediate : t -> Kutil.Gaddr.t -> bytes option
(** Control-plane read: no simulated latency, no tier promotion. Safe to
    call outside a fiber. *)

val write_immediate : t -> Kutil.Gaddr.t -> bytes -> dirty:bool -> unit
(** Control-plane install: no simulated latency. Evictions it forces still
    invoke the eviction hook synchronously. *)

val flush_immediate : t -> Kutil.Gaddr.t -> unit
(** Copy the RAM-resident frame of [addr] through to the disk tier (the
    page stays in RAM, and keeps its dirty flag for protocol purposes) so
    its current content survives {!crash}. Control-plane: no simulated
    latency. No-op when the page is not RAM-resident. *)

val mark_clean : t -> Kutil.Gaddr.t -> unit
val is_dirty : t -> Kutil.Gaddr.t -> bool

val pin : t -> Kutil.Gaddr.t -> unit
(** Pinned pages (under an active lock context) are never victimised.
    Pins nest. *)

val unpin : t -> Kutil.Gaddr.t -> unit

val drop : t -> Kutil.Gaddr.t -> unit
(** Remove the local copy without writeback (after invalidation). *)

val crash : t -> unit
(** Lose the RAM tier (including dirty pages!); keep disk. *)

val pages : t -> Kutil.Gaddr.t list
(** All locally cached page addresses. *)

val ram_used : t -> int
val disk_used : t -> int

type stats = {
  ram_hits : int;
  disk_hits : int;
  misses : int;
  ram_evictions : int;
  disk_evictions : int;
  writebacks : int;  (** dirty pages handed to the evict hook *)
}

val stats : t -> stats
val reset_stats : t -> unit
