let src = Logs.Src.create "khazana.wal" ~doc:"Write-ahead intent log"

module Log = (val Logs.src_log src : Logs.LOG)
module Gaddr = Kutil.Gaddr
module Codec = Kutil.Codec

type config = {
  checkpoint_every : int;
  replay_open_cost : Ksim.Time.t;
  replay_record_cost : Ksim.Time.t;
}

let default_config =
  {
    checkpoint_every = 512;
    replay_open_cost = Ksim.Time.ms 6;
    replay_record_cost = Ksim.Time.us 40;
  }

type payload = Page of Gaddr.t * bytes | Note of string * bytes

type body =
  | Begin of int
  | Data of int * payload
  | Commit of int
  | Control of payload
  | Checkpoint of bytes

(* Each record carries the checksum of its encoded body, standing in for the
   on-disk framing a real log would have. A torn record is modelled by
   replacing [image] with a cut of the encoding; [check] then fails. *)
type record = { body : body; image : bytes; check : int }

type stats = {
  appends : int;
  syncs : int;
  commits : int;
  checkpoints : int;
  torn_tail : int;
  lost_records : int;
}

type t = {
  config : config;
  rng : Kutil.Rng.t;
  mutable faults : Disk_fault.config;
  mutable records : record list; (* newest first *)
  mutable synced : int;          (* durable prefix length (oldest-first) *)
  mutable len : int;
  mutable since_checkpoint : int;
  mutable next_tx : int;
  mutable generation : int;      (* bumped on crash: fences stale tx handles *)
  mutable appends : int;
  mutable sync_count : int;
  mutable commit_count : int;
  mutable checkpoint_count : int;
  mutable torn_count : int;
  mutable lost_count : int;
}

type tx = { id : int; born : int (* generation *) }

let create ?(config = default_config) ~rng () =
  {
    config;
    rng;
    faults = Disk_fault.none;
    records = [];
    synced = 0;
    len = 0;
    since_checkpoint = 0;
    next_tx = 1;
    generation = 0;
    appends = 0;
    sync_count = 0;
    commit_count = 0;
    checkpoint_count = 0;
    torn_count = 0;
    lost_count = 0;
  }

let set_faults t faults = t.faults <- faults
let faults t = t.faults

let encode_payload e = function
  | Page (addr, data) ->
      Codec.u8 e 0;
      Codec.u128 e addr;
      Codec.bytes e data
  | Note (tag, data) ->
      Codec.u8 e 1;
      Codec.string e tag;
      Codec.bytes e data

let encode_body body =
  let e = Codec.encoder () in
  (match body with
  | Begin id ->
      Codec.u8 e 0;
      Codec.int e id
  | Data (id, p) ->
      Codec.u8 e 1;
      Codec.int e id;
      encode_payload e p
  | Commit id ->
      Codec.u8 e 2;
      Codec.int e id
  | Control p ->
      Codec.u8 e 3;
      encode_payload e p
  | Checkpoint snap ->
      Codec.u8 e 4;
      Codec.bytes e snap);
  Codec.to_bytes e

let append t body =
  let image = encode_body body in
  let r = { body; image; check = Disk_fault.checksum image } in
  t.records <- r :: t.records;
  t.len <- t.len + 1;
  t.since_checkpoint <- t.since_checkpoint + 1;
  t.appends <- t.appends + 1

let sync t =
  if t.synced < t.len then t.sync_count <- t.sync_count + 1;
  t.synced <- t.len

let begin_tx t =
  let id = t.next_tx in
  t.next_tx <- id + 1;
  append t (Begin id);
  { id; born = t.generation }

let live t tx = tx.born = t.generation
let log_page t tx addr data = if live t tx then append t (Data (tx.id, Page (addr, Bytes.copy data)))
let log_note t tx tag data = if live t tx then append t (Data (tx.id, Note (tag, Bytes.copy data)))

let commit t tx =
  if live t tx then begin
    append t (Commit tx.id);
    t.commit_count <- t.commit_count + 1;
    sync t
  end

let control t ?(sync_ = true) tag data =
  append t (Control (Note (tag, Bytes.copy data)));
  if sync_ then sync t

(* .mli exposes the label as ?sync; shadowing dance below. *)
let control t ?(sync = true) tag data = control t ~sync_:sync tag data

let needs_checkpoint t = t.since_checkpoint >= t.config.checkpoint_every
let size t = t.len
let records_since_checkpoint t = t.since_checkpoint

let checkpoint t snapshot =
  t.records <- [];
  t.len <- 0;
  t.synced <- 0;
  append t (Checkpoint (Bytes.copy snapshot));
  t.since_checkpoint <- 0;
  t.checkpoint_count <- t.checkpoint_count + 1;
  sync t

let crash t =
  t.generation <- t.generation + 1;
  let unsynced = t.len - t.synced in
  if unsynced > 0 && Disk_fault.active t.faults then begin
    (* Oldest-first unsynced suffix; a sequential log loses a contiguous
       tail, so the first lost record truncates everything after it. *)
    let tail = List.rev (List.filteri (fun i _ -> i < unsynced) t.records) in
    let survive = ref [] in
    let stopped = ref false in
    List.iter
      (fun r ->
        if not !stopped then
          if Kutil.Rng.float t.rng 1.0 < t.faults.Disk_fault.lost_write_prob
          then begin
            stopped := true;
            if
              Kutil.Rng.float t.rng 1.0 < t.faults.Disk_fault.torn_write_prob
              && Bytes.length r.image >= 2
            then begin
              (* The frontier record was cut off partway: keep it with a
                 mangled image so replay sees a checksum mismatch. *)
              let torn =
                Disk_fault.tear t.rng ~intended:r.image ~prior:None
              in
              survive := { r with image = torn } :: !survive;
              t.torn_count <- t.torn_count + 1
            end
          end
          else survive := r :: !survive)
      tail;
    let kept = List.length !survive in
    t.lost_count <- t.lost_count + (unsynced - kept);
    if unsynced <> kept then
      Log.debug (fun m ->
          m "crash truncated WAL tail: %d unsynced, %d survive" unsynced kept);
    t.records <-
      !survive @ List.filteri (fun i _ -> i >= unsynced) t.records;
    t.len <- t.synced + kept;
    (* Recount the checkpoint-cadence counter from what actually survived:
       the records newer than the last checkpoint record (the checkpoint
       itself is not counted, matching {!checkpoint}/{!append}). *)
    let rec after_checkpoint acc = function
      | [] -> acc
      | { body = Checkpoint _; _ } :: _ -> acc
      | _ :: rest -> after_checkpoint (acc + 1) rest
    in
    t.since_checkpoint <- after_checkpoint 0 t.records
  end;
  t.synced <- t.len

type replay = {
  snapshot : bytes option;
  ops : payload list;
  replayed : int;
  discarded : int;
}

let replay t =
  let oldest_first = List.rev t.records in
  (* Pass 1: stop at the first torn record, collect committed tx ids. *)
  let readable = ref [] in
  let torn = ref false in
  List.iter
    (fun r ->
      if (not !torn) && Disk_fault.checksum r.image = r.check then
        readable := r :: !readable
      else torn := true)
    oldest_first;
  let readable = List.rev !readable in
  let committed = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match r.body with
      | Commit id -> Hashtbl.replace committed id ()
      | _ -> ())
    readable;
  (* Pass 2: emit in log order — control records inline, tx payloads
     buffered and emitted at their commit record, so ordering between a
     transaction and later control records is the commit point's. *)
  let pending : (int, payload list ref) Hashtbl.t = Hashtbl.create 8 in
  let snapshot = ref None in
  let ops = ref [] in
  let replayed = ref 0 in
  let discarded = ref 0 in
  List.iter
    (fun r ->
      match r.body with
      | Checkpoint snap ->
          snapshot := Some snap;
          incr replayed
      | Control p ->
          ops := p :: !ops;
          incr replayed
      | Begin id ->
          if Hashtbl.mem committed id then begin
            Hashtbl.replace pending id (ref []);
            incr replayed
          end
          else incr discarded
      | Data (id, p) ->
          if Hashtbl.mem committed id then begin
            (match Hashtbl.find_opt pending id with
            | Some buf -> buf := p :: !buf
            | None -> Hashtbl.replace pending id (ref [ p ]));
            incr replayed
          end
          else incr discarded
      | Commit id -> (
          match Hashtbl.find_opt pending id with
          | Some buf ->
              ops := !buf @ !ops;
              Hashtbl.remove pending id;
              incr replayed
          | None -> incr replayed))
    readable;
  let lost = List.length oldest_first - List.length readable in
  {
    snapshot = !snapshot;
    ops = List.rev !ops;
    replayed = !replayed;
    discarded = !discarded + lost;
  }

let replay_cost t =
  t.config.replay_open_cost + (t.config.replay_record_cost * t.len)

let stats t =
  {
    appends = t.appends;
    syncs = t.sync_count;
    commits = t.commit_count;
    checkpoints = t.checkpoint_count;
    torn_tail = t.torn_count;
    lost_records = t.lost_count;
  }
