let src = Logs.Src.create "khazana.wal" ~doc:"Write-ahead intent log"

module Log = (val Logs.src_log src : Logs.LOG)
module Gaddr = Kutil.Gaddr
module Codec = Kutil.Codec

type config = {
  checkpoint_every : int;
  replay_open_cost : Ksim.Time.t;
  replay_record_cost : Ksim.Time.t;
}

let default_config =
  {
    checkpoint_every = 512;
    replay_open_cost = Ksim.Time.ms 6;
    replay_record_cost = Ksim.Time.us 40;
  }

type payload = Page of Gaddr.t * bytes | Note of string * bytes

type body =
  | Begin of int
  | Data of int * payload
  | Commit of int
  | Control of payload
  | Checkpoint of bytes
  | Prepare of int * Kutil.Txid.t
  | Decide of Kutil.Txid.t * bool * int list

(* Each record carries the checksum of its encoded body, standing in for the
   on-disk framing a real log would have. A torn record is modelled by
   replacing [image] with a cut of the encoding; [check] then fails. *)
type record = { body : body; image : bytes; check : int }

(* Real-file backing: the same record stream framed as [u32 length][image]
   on an fd. [on_disk] is the length of the oldest-first prefix already
   written; {!sync} appends the rest and fsyncs, {!checkpoint} rewrites
   the whole (now tiny) log atomically. *)
type file = {
  path : string;
  mutable fd : Unix.file_descr;
  mutable on_disk : int;
}

type stats = {
  appends : int;
  syncs : int;
  commits : int;
  checkpoints : int;
  torn_tail : int;
  lost_records : int;
}

type t = {
  config : config;
  rng : Kutil.Rng.t;
  mutable faults : Disk_fault.config;
  mutable records : record list; (* newest first *)
  mutable synced : int;          (* durable prefix length (oldest-first) *)
  mutable len : int;
  mutable since_checkpoint : int;
  mutable next_tx : int;
  mutable generation : int;      (* bumped on crash: fences stale tx handles *)
  mutable appends : int;
  mutable sync_count : int;
  mutable commit_count : int;
  mutable checkpoint_count : int;
  mutable torn_count : int;
  mutable lost_count : int;
  mutable file : file option;
}

type tx = { id : int; born : int (* generation *) }

let create ?(config = default_config) ~rng () =
  {
    config;
    rng;
    faults = Disk_fault.none;
    records = [];
    synced = 0;
    len = 0;
    since_checkpoint = 0;
    next_tx = 1;
    generation = 0;
    appends = 0;
    sync_count = 0;
    commit_count = 0;
    checkpoint_count = 0;
    torn_count = 0;
    lost_count = 0;
    file = None;
  }

let set_faults t faults = t.faults <- faults
let faults t = t.faults

let encode_payload e = function
  | Page (addr, data) ->
      Codec.u8 e 0;
      Codec.u128 e addr;
      Codec.bytes e data
  | Note (tag, data) ->
      Codec.u8 e 1;
      Codec.string e tag;
      Codec.bytes e data

let encode_body body =
  let e = Codec.encoder () in
  (match body with
  | Begin id ->
      Codec.u8 e 0;
      Codec.int e id
  | Data (id, p) ->
      Codec.u8 e 1;
      Codec.int e id;
      encode_payload e p
  | Commit id ->
      Codec.u8 e 2;
      Codec.int e id
  | Control p ->
      Codec.u8 e 3;
      encode_payload e p
  | Checkpoint snap ->
      Codec.u8 e 4;
      Codec.bytes e snap
  | Prepare (id, gtx) ->
      Codec.u8 e 5;
      Codec.int e id;
      Kutil.Txid.encode e gtx
  | Decide (gtx, commit, participants) ->
      Codec.u8 e 6;
      Kutil.Txid.encode e gtx;
      Codec.bool e commit;
      Codec.list e (Codec.u32 e) participants);
  Codec.to_bytes e

let decode_payload d =
  match Codec.read_u8 d with
  | 0 ->
      let addr = Codec.read_u128 d in
      Page (addr, Codec.read_bytes d)
  | 1 ->
      let tag = Codec.read_string d in
      Note (tag, Codec.read_bytes d)
  | n -> raise (Codec.Decode_error (Printf.sprintf "Wal.payload: tag %d" n))

(* Inverse of {!encode_body}; raises {!Codec.Decode_error} on a mangled
   image (a torn on-disk record). *)
let decode_body image =
  let d = Codec.decoder image in
  match Codec.read_u8 d with
  | 0 -> Begin (Codec.read_int d)
  | 1 ->
      let id = Codec.read_int d in
      Data (id, decode_payload d)
  | 2 -> Commit (Codec.read_int d)
  | 3 -> Control (decode_payload d)
  | 4 -> Checkpoint (Codec.read_bytes d)
  | 5 ->
      let id = Codec.read_int d in
      Prepare (id, Kutil.Txid.decode d)
  | 6 ->
      let gtx = Kutil.Txid.decode d in
      let commit = Codec.read_bool d in
      let participants = Codec.read_list d (fun () -> Codec.read_u32 d) in
      Decide (gtx, commit, participants)
  | n -> raise (Codec.Decode_error (Printf.sprintf "Wal.body: tag %d" n))

let append t body =
  let image = encode_body body in
  let r = { body; image; check = Disk_fault.checksum image } in
  t.records <- r :: t.records;
  t.len <- t.len + 1;
  t.since_checkpoint <- t.since_checkpoint + 1;
  t.appends <- t.appends + 1

(* ---------------- real-file backing ---------------- *)

let file_frame r =
  let n = Bytes.length r.image in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit r.image 0 b 4 n;
  b

let write_all fd b =
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let file_append_unsynced t f =
  if f.on_disk < t.len then begin
    let oldest_first = List.rev t.records in
    List.iteri
      (fun i r -> if i >= f.on_disk then write_all f.fd (file_frame r))
      oldest_first;
    Unix.fsync f.fd;
    f.on_disk <- t.len
  end

(* Checkpoint truncation on a real file: write the whole (now tiny) log to
   a sibling and rename over — the old log remains the durable copy until
   the new one is complete, so a crash mid-checkpoint loses nothing. *)
let file_rewrite t f =
  let tmp = f.path ^ ".tmp" in
  let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC ] 0o600 in
  List.iter (fun r -> write_all fd (file_frame r)) (List.rev t.records);
  Unix.fsync fd;
  Unix.close fd;
  Unix.rename tmp f.path;
  (try Unix.close f.fd with Unix.Unix_error _ -> ());
  f.fd <- Unix.openfile f.path [ O_WRONLY; O_APPEND ] 0o600;
  f.on_disk <- t.len

let sync t =
  if t.synced < t.len then t.sync_count <- t.sync_count + 1;
  t.synced <- t.len;
  match t.file with Some f -> file_append_unsynced t f | None -> ()

let begin_tx t =
  let id = t.next_tx in
  t.next_tx <- id + 1;
  append t (Begin id);
  { id; born = t.generation }

let live t tx = tx.born = t.generation
let log_page t tx addr data = if live t tx then append t (Data (tx.id, Page (addr, Bytes.copy data)))
let log_note t tx tag data = if live t tx then append t (Data (tx.id, Note (tag, Bytes.copy data)))

let commit t tx =
  if live t tx then begin
    append t (Commit tx.id);
    t.commit_count <- t.commit_count + 1;
    sync t
  end

let prepare t tx gtx =
  if live t tx then begin
    append t (Prepare (tx.id, gtx));
    sync t
  end

let decide t ?(sync_ = true) gtx ~commit ~participants =
  append t (Decide (gtx, commit, participants));
  if sync_ then sync t

(* Same ?sync shadowing dance as [control]. *)
let decide t ?(sync = true) gtx ~commit ~participants =
  decide t ~sync_:sync gtx ~commit ~participants

let control t ?(sync_ = true) tag data =
  append t (Control (Note (tag, Bytes.copy data)));
  if sync_ then sync t

(* .mli exposes the label as ?sync; shadowing dance below. *)
let control t ?(sync = true) tag data = control t ~sync_:sync tag data

let needs_checkpoint t = t.since_checkpoint >= t.config.checkpoint_every
let size t = t.len
let records_since_checkpoint t = t.since_checkpoint

(* Oldest-first records up to (not including) the first torn one. *)
let readable_records t =
  let oldest_first = List.rev t.records in
  let readable = ref [] in
  let torn = ref false in
  List.iter
    (fun r ->
      if (not !torn) && Disk_fault.checksum r.image = r.check then
        readable := r :: !readable
      else torn := true)
    oldest_first;
  (List.rev !readable, List.length oldest_first - List.length !readable)

(* Local tx ids that are prepared under a global transaction whose decision
   has not been logged yet. Their page images exist nowhere but here — the
   disk tier only gets them once the decision arrives — so truncation must
   carry their records over. *)
let in_doubt_ids readable =
  let prepared : (int, Kutil.Txid.t) Hashtbl.t = Hashtbl.create 4 in
  let decided : (Kutil.Txid.t, unit) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun r ->
      match r.body with
      | Prepare (id, gtx) -> Hashtbl.replace prepared id gtx
      | Decide (gtx, _, _) -> Hashtbl.replace decided gtx ()
      | _ -> ())
    readable;
  let keep = Hashtbl.create 4 in
  Hashtbl.iter
    (fun id gtx -> if not (Hashtbl.mem decided gtx) then Hashtbl.replace keep id ())
    prepared;
  keep

let checkpoint t snapshot =
  let readable, _ = readable_records t in
  let keep = in_doubt_ids readable in
  let carried =
    List.filter
      (fun r ->
        match r.body with
        | Begin id | Data (id, _) | Prepare (id, _) -> Hashtbl.mem keep id
        | _ -> false)
      readable
  in
  t.records <- [];
  t.len <- 0;
  t.synced <- 0;
  append t (Checkpoint (Bytes.copy snapshot));
  List.iter (fun r -> append t r.body) carried;
  (* Carried-over records are old news, not post-checkpoint activity. *)
  t.since_checkpoint <- 0;
  t.checkpoint_count <- t.checkpoint_count + 1;
  (match t.file with Some f -> file_rewrite t f | None -> ());
  sync t

let crash t =
  t.generation <- t.generation + 1;
  let unsynced = t.len - t.synced in
  (* File-backed logs get their tail loss from the real kill, not the
     simulated fault model. *)
  if unsynced > 0 && Disk_fault.active t.faults && t.file = None then begin
    (* Oldest-first unsynced suffix; a sequential log loses a contiguous
       tail, so the first lost record truncates everything after it. *)
    let tail = List.rev (List.filteri (fun i _ -> i < unsynced) t.records) in
    let survive = ref [] in
    let stopped = ref false in
    List.iter
      (fun r ->
        if not !stopped then
          if Kutil.Rng.float t.rng 1.0 < t.faults.Disk_fault.lost_write_prob
          then begin
            stopped := true;
            if
              Kutil.Rng.float t.rng 1.0 < t.faults.Disk_fault.torn_write_prob
              && Bytes.length r.image >= 2
            then begin
              (* The frontier record was cut off partway: keep it with a
                 mangled image so replay sees a checksum mismatch. *)
              let torn =
                Disk_fault.tear t.rng ~intended:r.image ~prior:None
              in
              survive := { r with image = torn } :: !survive;
              t.torn_count <- t.torn_count + 1
            end
          end
          else survive := r :: !survive)
      tail;
    let kept = List.length !survive in
    t.lost_count <- t.lost_count + (unsynced - kept);
    if unsynced <> kept then
      Log.debug (fun m ->
          m "crash truncated WAL tail: %d unsynced, %d survive" unsynced kept);
    t.records <-
      !survive @ List.filteri (fun i _ -> i >= unsynced) t.records;
    t.len <- t.synced + kept;
    (* Recount the checkpoint-cadence counter from what actually survived:
       the records newer than the last checkpoint record (the checkpoint
       itself is not counted, matching {!checkpoint}/{!append}). *)
    let rec after_checkpoint acc = function
      | [] -> acc
      | { body = Checkpoint _; _ } :: _ -> acc
      | _ :: rest -> after_checkpoint (acc + 1) rest
    in
    t.since_checkpoint <- after_checkpoint 0 t.records
  end;
  t.synced <- t.len

type replay = {
  snapshot : bytes option;
  ops : payload list;
  in_doubt : (Kutil.Txid.t * payload list) list;
  decisions : (Kutil.Txid.t * bool * int list) list;
  replayed : int;
  discarded : int;
}

let replay t =
  (* Pass 1: stop at the first torn record; collect committed tx ids,
     prepared-tx -> global-txid, and logged 2PC decisions. *)
  let readable, lost = readable_records t in
  let committed = Hashtbl.create 8 in
  let prepared : (int, Kutil.Txid.t) Hashtbl.t = Hashtbl.create 4 in
  let decided : (Kutil.Txid.t, bool) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun r ->
      match r.body with
      | Commit id -> Hashtbl.replace committed id ()
      | Prepare (id, gtx) -> Hashtbl.replace prepared id gtx
      | Decide (gtx, c, _) -> Hashtbl.replace decided gtx c
      | _ -> ())
    readable;
  (* Apply a tx if it locally committed, or if it prepared under a global
     transaction whose commit decision is on record. A prepared tx with no
     decision is in doubt: its payloads are surfaced separately for the
     owner to hold until the coordinator answers (presumed abort: a
     decision that is nowhere on record will resolve to abort). *)
  let apply_tx id =
    Hashtbl.mem committed id
    ||
    match Hashtbl.find_opt prepared id with
    | Some gtx -> Hashtbl.find_opt decided gtx = Some true
    | None -> false
  in
  let doubt_tx id =
    match Hashtbl.find_opt prepared id with
    | Some gtx -> if Hashtbl.mem decided gtx then None else Some gtx
    | None -> None
  in
  (* Pass 2: emit in log order — control records inline, tx payloads
     buffered and emitted at their commit/prepare record, so ordering
     between a transaction and later control records is the commit
     point's. *)
  let pending : (int, payload list ref) Hashtbl.t = Hashtbl.create 8 in
  let snapshot = ref None in
  let ops = ref [] in
  let in_doubt = ref [] in
  let decisions = ref [] in
  let replayed = ref 0 in
  let discarded = ref 0 in
  let buffer id p =
    match Hashtbl.find_opt pending id with
    | Some buf -> buf := p :: !buf
    | None -> Hashtbl.replace pending id (ref [ p ])
  in
  let flush id =
    match Hashtbl.find_opt pending id with
    | Some buf ->
        ops := !buf @ !ops;
        Hashtbl.remove pending id
    | None -> ()
  in
  List.iter
    (fun r ->
      match r.body with
      | Checkpoint snap ->
          snapshot := Some snap;
          incr replayed
      | Control p ->
          ops := p :: !ops;
          incr replayed
      | Begin id ->
          if apply_tx id || doubt_tx id <> None then begin
            Hashtbl.replace pending id (ref []);
            incr replayed
          end
          else incr discarded
      | Data (id, p) ->
          if apply_tx id || doubt_tx id <> None then begin
            buffer id p;
            incr replayed
          end
          else incr discarded
      | Commit id ->
          flush id;
          incr replayed
      | Prepare (id, _) -> (
          if apply_tx id then begin
            flush id;
            incr replayed
          end
          else
            match doubt_tx id with
            | Some gtx ->
                let buf =
                  match Hashtbl.find_opt pending id with
                  | Some buf -> List.rev !buf
                  | None -> []
                in
                Hashtbl.remove pending id;
                in_doubt := (gtx, buf) :: !in_doubt;
                incr replayed
            | None ->
                (* Decision on record says abort. *)
                Hashtbl.remove pending id;
                incr discarded)
      | Decide (gtx, c, participants) ->
          decisions := (gtx, c, participants) :: !decisions;
          incr replayed)
    readable;
  {
    snapshot = !snapshot;
    ops = List.rev !ops;
    in_doubt = List.rev !in_doubt;
    decisions = List.rev !decisions;
    replayed = !replayed;
    discarded = !discarded + lost;
  }

let replay_cost t =
  t.config.replay_open_cost + (t.config.replay_record_cost * t.len)

let file_backed t = t.file <> None

let attach_file t path =
  if t.file <> None then invalid_arg "Wal.attach_file: already attached";
  if t.len > 0 then invalid_arg "Wal.attach_file: log not empty";
  (* Load every complete frame; a torn or garbage tail (the write a kill
     interrupted) ends the readable log and is truncated away so later
     appends don't land after junk. *)
  let valid_bytes = ref 0 in
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let size = in_channel_length ic in
    let data = really_input_string ic size |> Bytes.of_string in
    close_in ic;
    let pos = ref 0 in
    let continue = ref true in
    let loaded = ref [] in
    while !continue && !pos + 4 <= size do
      let n = Int32.to_int (Bytes.get_int32_be data !pos) in
      if n < 0 || !pos + 4 + n > size then continue := false
      else begin
        let image = Bytes.sub data (!pos + 4) n in
        match decode_body image with
        | body ->
            loaded :=
              { body; image; check = Disk_fault.checksum image } :: !loaded;
            pos := !pos + 4 + n;
            valid_bytes := !pos
        | exception Codec.Decode_error _ -> continue := false
      end
    done;
    (* newest first, like the in-memory log *)
    t.records <- !loaded;
    t.len <- List.length !loaded;
    t.synced <- t.len;
    let rec after_checkpoint acc = function
      | [] -> acc
      | { body = Checkpoint _; _ } :: _ -> acc
      | _ :: rest -> after_checkpoint (acc + 1) rest
    in
    t.since_checkpoint <- after_checkpoint 0 t.records;
    (* Never re-mint a local tx id that appears in the loaded log. *)
    List.iter
      (fun r ->
        match r.body with
        | Begin id | Data (id, _) | Commit id | Prepare (id, _) ->
            if id >= t.next_tx then t.next_tx <- id + 1
        | Control _ | Checkpoint _ | Decide _ -> ())
      t.records;
    if !valid_bytes < size then
      Log.info (fun m ->
          m "wal file %s: dropped torn tail (%d of %d bytes readable)" path
            !valid_bytes size)
  end;
  let fd = Unix.openfile path [ O_WRONLY; O_CREAT; O_APPEND ] 0o600 in
  if Sys.file_exists path && !valid_bytes < (Unix.fstat fd).st_size then
    Unix.ftruncate fd !valid_bytes;
  t.file <- Some { path; fd; on_disk = t.len }

let stats t =
  {
    appends = t.appends;
    syncs = t.sync_count;
    commits = t.commit_count;
    checkpoints = t.checkpoint_count;
    torn_tail = t.torn_count;
    lost_records = t.lost_count;
  }
