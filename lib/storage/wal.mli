(** Per-node write-ahead intent log.

    The durability backbone of a daemon's local storage: every durable
    mutation (a committed page image at a region's home, a persistent
    page-directory or region-table change) is appended here {e before} it
    touches the lazily-synced disk tier. Appends go into the log's volatile
    tail; {!sync} (called implicitly by {!commit}) makes the whole prefix
    durable. A crash truncates the log at a fault-model-chosen point in the
    unsynced tail — possibly leaving one torn (checksum-failing) record at
    the frontier — and {!replay} then reconstructs exactly the committed
    prefix: transactional records apply only if their [Commit] made it,
    control records apply in log order, and a torn record ends the readable
    log.

    Multi-record transactions make multi-page operations atomic across
    crashes: either every payload of a committed transaction reappears
    after replay, or none does.

    The log is bounded: once {!needs_checkpoint}, the owner should sync its
    disk tier, snapshot its persistent metadata and call {!checkpoint},
    which truncates the log to a single checkpoint record.

    Replay is a pure read — applying its op list is the caller's job — and
    is idempotent by construction: the ops are plain "set" payloads, so
    applying a replayed prefix twice leaves the same state as once. *)

type config = {
  checkpoint_every : int;
      (** records appended since the last checkpoint before
          {!needs_checkpoint} turns true (default 512) *)
  replay_open_cost : Ksim.Time.t;
      (** fixed simulated cost of opening the log at recovery (default
          6 ms, one disk seek) *)
  replay_record_cost : Ksim.Time.t;
      (** simulated cost per surviving record at recovery (default 40 us:
          sequential read + re-apply) *)
}

val default_config : config

type t

val create : ?config:config -> rng:Kutil.Rng.t -> unit -> t
(** [rng] drives the crash fault model; split it from the owning node's
    deterministic stream. *)

val set_faults : t -> Disk_fault.config -> unit
val faults : t -> Disk_fault.config

(** {1 Real-file backing}

    By default the log lives in process memory and "durability" is an
    accounting fiction the simulated fault model chews on. A log attached
    to a file is actually durable: {!sync} appends the unsynced records
    ([u32 length]-framed body images) and fsyncs, {!checkpoint} rewrites
    the truncated log via a rename so no crash point loses it, and a
    SIGKILL's torn tail is dropped (and truncated away) at the next
    {!attach_file}. Real processes get real crashes, so the simulated
    {!crash} fault model never truncates a file-backed log. *)

val attach_file : t -> string -> unit
(** Arm file persistence on a freshly created (empty) log. If [path]
    exists its records are loaded — ready for {!replay} — and the local
    tx-id counter advances past every loaded id. Raises [Invalid_argument]
    if the log already holds records or is already attached. *)

val file_backed : t -> bool

(** {1 Appending} *)

type tx

val begin_tx : t -> tx
(** Open an intent: appends a begin record (unsynced). *)

val log_page : t -> tx -> Kutil.Gaddr.t -> bytes -> unit
(** Record a page image under the transaction. *)

val log_note : t -> tx -> string -> bytes -> unit
(** Record an opaque, caller-interpreted metadata mutation under the
    transaction. *)

val commit : t -> tx -> unit
(** Append the commit record and {!sync}. After [commit] returns, the
    transaction's payloads survive any crash. Committing a transaction
    begun before a crash of this log is a no-op (the intent died). *)

(** {2 Distributed atomic commit}

    A participant in two-phase commit logs its vote by {e preparing} a
    local transaction under a global {!Kutil.Txid.t} instead of committing
    it. A prepared transaction is in limbo: replay neither applies nor
    drops it until a {!decide} record for the same global id appears later
    in the log (possibly after intervening crashes — prepared-but-
    undecided transactions survive {!checkpoint} truncation). Presumed
    abort: only the commit decision is ever required to be on record;
    a prepared transaction whose coordinator has no decision resolves to
    abort. *)

val prepare : t -> tx -> Kutil.Txid.t -> unit
(** Append the prepare record and {!sync} — the participant's vote is
    durable before it is sent. No-op on a dead (pre-crash) handle. *)

val decide : t -> ?sync:bool -> Kutil.Txid.t -> commit:bool -> participants:int list -> unit
(** Append the decision for a global transaction. At a coordinator,
    [participants] lists the nodes still owed the decision (so a recovered
    coordinator can resume the broadcast); at a participant it is [[]].
    [sync] defaults to [true] and must be [true] for a commit decision a
    caller acts on; abort decisions may ride unsynced — losing one merely
    re-runs presumed-abort resolution. *)

val control : t -> ?sync:bool -> string -> bytes -> unit
(** Non-transactional note, applied at replay in log order. [sync]
    defaults to [true]; pass [false] for hint-grade records whose loss is
    safe, leaving a genuine unsynced tail for the fault model to chew. *)

val sync : t -> unit
(** Durability barrier: the entire log as of now survives any crash. *)

(** {1 Checkpointing} *)

val needs_checkpoint : t -> bool
val size : t -> int
(** Records currently in the log. *)

val records_since_checkpoint : t -> int

val checkpoint : t -> bytes -> unit
(** Truncate the log to a single (synced) checkpoint record carrying the
    caller's snapshot of its persistent state. The caller must first make
    its disk tier durable ({!Page_store.sync}) — a checkpoint asserts
    "everything the truncated records described is on disk". Exception:
    prepared-but-undecided transactions are carried across the truncation
    verbatim — their images are deliberately {e not} in the disk tier yet,
    so the log remains their only durable copy until a decision lands. *)

(** {1 Crash and recovery} *)

val crash : t -> unit
(** Apply the fault model to the unsynced tail: pick the surviving prefix,
    possibly tear the record at the frontier. Open transactions die. A
    torn frontier record stays in the log (it is on the platter); since
    {!replay} stops reading at it, the owner must {!checkpoint} after
    applying its recovery replay — otherwise records appended after the
    torn one are unreachable at the next replay. *)

type payload =
  | Page of Kutil.Gaddr.t * bytes   (** page image to reinstall *)
  | Note of string * bytes          (** caller-interpreted metadata *)

type replay = {
  snapshot : bytes option;  (** last surviving checkpoint's snapshot *)
  ops : payload list;       (** application order: control + committed tx
                                payloads + prepared payloads whose commit
                                decision is on record, oldest first *)
  in_doubt : (Kutil.Txid.t * payload list) list;
                            (** prepared transactions with no logged
                                decision, oldest first: held, not applied,
                                until the coordinator answers *)
  decisions : (Kutil.Txid.t * bool * int list) list;
                            (** surviving [Decide] records in log order:
                                (global id, committed, participants still
                                owed the decision) *)
  replayed : int;           (** records contributing to [ops] *)
  discarded : int;          (** torn / uncommitted records dropped *)
}

val replay : t -> replay
(** Pure: reads the surviving log, verifies record checksums, stops at a
    torn record, drops transactions without a commit. Prepared
    transactions resolve through their global id: decided-commit ones
    apply with [ops], decided-abort ones drop, undecided ones surface in
    [in_doubt]. Calling it twice returns the same value. *)

val replay_cost : t -> Ksim.Time.t
(** Simulated time recovery should charge for replaying the current log. *)

type stats = {
  appends : int;
  syncs : int;
  commits : int;
  checkpoints : int;
  torn_tail : int;     (** crashes that left a torn frontier record *)
  lost_records : int;  (** records dropped by crash truncation *)
}

val stats : t -> stats
