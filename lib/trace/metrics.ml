module Stats = Kutil.Stats

type t = {
  counters : (string, Stats.counter) Hashtbl.t;
  summaries : (string, Stats.summary) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 16; summaries = Hashtbl.create 16 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = Stats.counter () in
    Hashtbl.replace t.counters name c;
    c

let summary t name =
  match Hashtbl.find_opt t.summaries name with
  | Some s -> s
  | None ->
    let s = Stats.summary () in
    Hashtbl.replace t.summaries name s;
    s

let incr t ?by name = Stats.incr ?by (counter t name)
let observe t name v = Stats.add (summary t name) v

let sorted_bindings tbl =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let counters t =
  List.map (fun (k, c) -> (k, Stats.count c)) (sorted_bindings t.counters)

let summaries t = sorted_bindings t.summaries

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.summaries

let pp ppf t =
  List.iter
    (fun (name, n) -> Format.fprintf ppf "%-32s %d@." name n)
    (counters t);
  List.iter
    (fun (name, s) ->
      if Stats.samples s > 0 then
        Format.fprintf ppf "%-32s %a@." name (Stats.pp_summary ~unit:"ms") s)
    (summaries t)
