(** Named per-component metrics built on {!Kutil.Stats}.

    A registry of counters and latency summaries keyed by name; each
    daemon owns one. Unlike trace sinks these are always on — a counter
    bump is one int store — so they complement spans: metrics answer
    "how often / how slow on average", traces answer "where exactly". *)

type t

val create : unit -> t

val counter : t -> string -> Kutil.Stats.counter
(** Find-or-create. *)

val summary : t -> string -> Kutil.Stats.summary
(** Find-or-create. *)

val incr : t -> ?by:int -> string -> unit
val observe : t -> string -> float -> unit

val counters : t -> (string * int) list
(** Name-sorted snapshot. *)

val summaries : t -> (string * Kutil.Stats.summary) list
(** Name-sorted; summaries with zero samples are included. *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit
(** Multi-line dump: counters, then summaries (ms units assumed). *)
