type t = {
  principal : int;
  span : Trace.span;
  deadline : Ksim.Time.t option;
}

let make ?(span = Trace.null) ?deadline principal = { principal; span; deadline }
let background = { principal = -1; span = Trace.null; deadline = None }
let principal t = t.principal
let span t = t.span
let deadline t = t.deadline
let with_span t span = { t with span }

let remaining t ~now =
  Option.map (fun d -> if d > now then d - now else 0) t.deadline

let expired t ~now = match t.deadline with Some d -> d <= now | None -> false
