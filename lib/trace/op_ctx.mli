(** Per-operation context threaded through the Khazana stack.

    An [Op_ctx.t] travels with every client-initiated operation from the
    client library through the daemon, the RPC layer and the consistency
    managers. It carries {e who} is acting (the principal), {e where} the
    operation sits in a trace ({!Trace.span}), and {e how long} it may
    keep trying (an optional absolute deadline in simulated time).

    Contexts are immutable; deriving a narrower context ({!with_span})
    allocates a new one. *)

type t

val make : ?span:Trace.span -> ?deadline:Ksim.Time.t -> int -> t
(** [make principal] — [span] defaults to {!Trace.null} (untraced),
    [deadline] to none (operation-level timeouts apply unchanged). *)

val background : t
(** Daemon-internal work with no originating client: principal [-1], no
    span, no deadline (background retries, timers, reporting fibers). *)

val principal : t -> int
val span : t -> Trace.span
val deadline : t -> Ksim.Time.t option

val with_span : t -> Trace.span -> t
(** Same principal and deadline, new enclosing span. *)

val remaining : t -> now:Ksim.Time.t -> Ksim.Time.t option
(** Time left until the deadline (clamped at 0); [None] when unbounded. *)

val expired : t -> now:Ksim.Time.t -> bool
