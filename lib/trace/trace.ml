type span = int

let null = 0
let is_null s = s = 0
let id s = s
let of_id i = if i < 0 then 0 else i

type attrs = (string * string) list

type record =
  | Span_start of {
      id : int;
      parent : int;
      node : int;
      name : string;
      ts : Ksim.Time.t;
      attrs : attrs;
    }
  | Span_end of { id : int; ts : Ksim.Time.t; attrs : attrs }
  | Event of {
      span : int;
      node : int;
      name : string;
      ts : Ksim.Time.t;
      attrs : attrs;
    }

(* ------------------------------------------------------------------ *)
(* Sink registry                                                       *)
(* ------------------------------------------------------------------ *)

type sink = { sink_id : int; fn : record -> unit }

let sinks : sink list ref = ref []
let next_sink = ref 1
let next_span = ref 1
let span_base = ref 0

let set_namespace n =
  if n < 0 || n >= 1 lsl 20 then invalid_arg "Trace.set_namespace";
  span_base := n lsl 40

let enabled () = !sinks <> []

let install fn =
  let s = { sink_id = !next_sink; fn } in
  incr next_sink;
  sinks := !sinks @ [ s ];
  s

let uninstall s =
  sinks := List.filter (fun s' -> s'.sink_id <> s.sink_id) !sinks

let clear_sinks () = sinks := []

let reset () =
  clear_sinks ();
  next_span := 1;
  span_base := 0

let emit r = List.iter (fun s -> s.fn r) !sinks

(* ------------------------------------------------------------------ *)
(* Emitting                                                            *)
(* ------------------------------------------------------------------ *)

let fresh_span () =
  let i = !next_span in
  incr next_span;
  !span_base lor i

let start ~engine ~node ~attrs ~parent name =
  let id = fresh_span () in
  emit
    (Span_start { id; parent; node; name; ts = Ksim.Engine.now engine; attrs });
  id

let root ~engine ?(node = -1) ?(attrs = []) name =
  if not (enabled ()) then null
  else start ~engine ~node ~attrs ~parent:0 name

let child ~engine ?(node = -1) ?(attrs = []) ~parent name =
  if not (enabled ()) then null
  else start ~engine ~node ~attrs ~parent name

let finish ~engine ?(attrs = []) span =
  if span <> 0 && enabled () then
    emit (Span_end { id = span; ts = Ksim.Engine.now engine; attrs })

let event ~engine ?(node = -1) ?(span = null) ?(attrs = []) name =
  if enabled () then
    emit (Event { span; node; name; ts = Ksim.Engine.now engine; attrs })

let with_span ~engine ?node ?attrs ~parent name f =
  let s = child ~engine ?node ?attrs ~parent name in
  Fun.protect ~finally:(fun () -> finish ~engine s) (fun () -> f s)

(* ------------------------------------------------------------------ *)
(* Built-in sinks                                                      *)
(* ------------------------------------------------------------------ *)

module Ring = struct
  type t = { buf : record option array; mutable head : int; mutable len : int }

  let create ?(capacity = 65_536) () =
    if capacity <= 0 then invalid_arg "Trace.Ring.create: capacity";
    { buf = Array.make capacity None; head = 0; len = 0 }

  let push t r =
    let cap = Array.length t.buf in
    t.buf.((t.head + t.len) mod cap) <- Some r;
    if t.len < cap then t.len <- t.len + 1
    else t.head <- (t.head + 1) mod cap

  let install t = install (push t)

  let records t =
    let cap = Array.length t.buf in
    List.init t.len (fun i ->
        match t.buf.((t.head + i) mod cap) with
        | Some r -> r
        | None -> assert false)

  let length t = t.len

  let clear t =
    Array.fill t.buf 0 (Array.length t.buf) None;
    t.head <- 0;
    t.len <- 0
end

let pp_attrs ppf = function
  | [] -> ()
  | attrs ->
    Format.fprintf ppf " {%s}"
      (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs))

let pretty_sink ppf = function
  | Span_start { id; parent; node; name; ts; attrs } ->
    Format.fprintf ppf "[%a] n%d > %s #%d%s%a@." Ksim.Time.pp ts node name id
      (if parent = 0 then "" else Printf.sprintf " (in #%d)" parent)
      pp_attrs attrs
  | Span_end { id; ts; attrs } ->
    Format.fprintf ppf "[%a] < #%d%a@." Ksim.Time.pp ts id pp_attrs attrs
  | Event { span; node; name; ts; attrs } ->
    Format.fprintf ppf "[%a] n%d . %s%s%a@." Ksim.Time.pp ts node name
      (if span = 0 then "" else Printf.sprintf " (in #%d)" span)
      pp_attrs attrs

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_attrs attrs =
  String.concat ","
    (List.map
       (fun (k, v) ->
         Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
       attrs)

let jsonl_sink ppf = function
  | Span_start { id; parent; node; name; ts; attrs } ->
    Format.fprintf ppf
      {|{"type":"span_start","id":%d,"parent":%d,"node":%d,"name":"%s","ts_ns":%d,"attrs":{%s}}|}
      id parent node (json_escape name) ts (json_attrs attrs);
    Format.pp_print_newline ppf ()
  | Span_end { id; ts; attrs } ->
    Format.fprintf ppf {|{"type":"span_end","id":%d,"ts_ns":%d,"attrs":{%s}}|}
      id ts (json_attrs attrs);
    Format.pp_print_newline ppf ()
  | Event { span; node; name; ts; attrs } ->
    Format.fprintf ppf
      {|{"type":"event","span":%d,"node":%d,"name":"%s","ts_ns":%d,"attrs":{%s}}|}
      span node (json_escape name) ts (json_attrs attrs);
    Format.pp_print_newline ppf ()

(* ------------------------------------------------------------------ *)
(* Offline analysis                                                    *)
(* ------------------------------------------------------------------ *)

type span_info = {
  span_id : int;
  span_parent : int;
  span_node : int;
  span_name : string;
  span_start : Ksim.Time.t;
  span_finish : Ksim.Time.t option;
  span_attrs : attrs;
}

let spans records =
  let ends = Hashtbl.create 64 in
  List.iter
    (function
      | Span_end { id; ts; attrs } ->
        if not (Hashtbl.mem ends id) then Hashtbl.replace ends id (ts, attrs)
      | Span_start _ | Event _ -> ())
    records;
  List.rev
    (List.fold_left
       (fun acc r ->
         match r with
         | Span_start { id; parent; node; name; ts; attrs } ->
           let span_finish, end_attrs =
             match Hashtbl.find_opt ends id with
             | Some (ts, a) -> (Some ts, a)
             | None -> (None, [])
           in
           {
             span_id = id;
             span_parent = parent;
             span_node = node;
             span_name = name;
             span_start = ts;
             span_finish;
             span_attrs = attrs @ end_attrs;
           }
           :: acc
         | Span_end _ | Event _ -> acc)
       [] records)

let find_spans records ~name =
  List.filter (fun s -> s.span_name = name) (spans records)

let ancestors infos id =
  let parent_of =
    let tbl = Hashtbl.create 64 in
    List.iter (fun s -> Hashtbl.replace tbl s.span_id s.span_parent) infos;
    fun i -> Hashtbl.find_opt tbl i
  in
  (* Bound the walk to the number of spans: malformed input must not loop. *)
  let rec go acc i fuel =
    if fuel <= 0 then List.rev acc
    else
      match parent_of i with
      | Some p when p <> 0 -> go (p :: acc) p (fuel - 1)
      | Some _ | None -> List.rev acc
  in
  go [] id (List.length infos)

let is_descendant infos ~ancestor id =
  List.exists (fun a -> a = ancestor) (ancestors infos id)

let events_under records ~ancestor =
  let infos = spans records in
  let in_subtree span =
    span <> 0
    && (span = ancestor || is_descendant infos ~ancestor span)
  in
  List.filter
    (function Event { span; _ } -> in_subtree span | _ -> false)
    records

let phase_breakdown records =
  let tbl : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun s ->
      match s.span_finish with
      | None -> ()
      | Some fin ->
        let count, total =
          match Hashtbl.find_opt tbl s.span_name with
          | Some cell -> cell
          | None ->
            let cell = (ref 0, ref 0.0) in
            Hashtbl.replace tbl s.span_name cell;
            cell
        in
        incr count;
        total := !total +. Ksim.Time.to_ms_f (fin - s.span_start))
    (spans records);
  let rows =
    Hashtbl.fold (fun name (c, t) acc -> (name, !c, !t) :: acc) tbl []
  in
  List.sort (fun (_, _, a) (_, _, b) -> Float.compare b a) rows
