(** Ktrace: hierarchical operation tracing over simulated time.

    Every Khazana operation (client call, daemon dispatch, RPC hop,
    consistency-manager transition, page-store access) can emit structured
    records into globally installed {e sinks}. With no sink installed the
    whole subsystem is disabled: span creation returns {!null} and no
    record is materialised, so the traced code paths cost nothing.

    Spans form a tree via parent ids; ids are process-global, so a span
    started on one simulated node can parent a span on another — that is
    what stitches a multi-hop operation into one causally-linked trace
    (the span id travels in the RPC envelope, see {!Krpc.Rpc}).

    Timestamps are simulated time read from the {!Ksim.Engine} that the
    caller passes in; tracing never advances the clock. *)

type span
(** A handle to a live span. {!null} when tracing is disabled. *)

val null : span
val is_null : span -> bool

val id : span -> int
(** Wire representation: 0 for {!null}, unique positive int otherwise. *)

val of_id : int -> span
(** Reconstruct a parent handle from a wire-carried id (inverse of {!id}). *)

type attrs = (string * string) list

type record =
  | Span_start of {
      id : int;
      parent : int;  (** 0 = root *)
      node : int;    (** simulated node id, -1 when unknown *)
      name : string;
      ts : Ksim.Time.t;
      attrs : attrs;
    }
  | Span_end of { id : int; ts : Ksim.Time.t; attrs : attrs }
  | Event of {
      span : int;  (** enclosing span id, 0 = unattached *)
      node : int;
      name : string;
      ts : Ksim.Time.t;
      attrs : attrs;
    }

(** {1 Sinks} *)

val enabled : unit -> bool
(** At least one sink is installed. *)

type sink

val install : (record -> unit) -> sink
val uninstall : sink -> unit
val clear_sinks : unit -> unit

val reset : unit -> unit
(** Remove all sinks, restart the span-id counter and clear the namespace
    (tests). *)

val set_namespace : int -> unit
(** Namespace this process's span ids by folding [n] (< 2^20, typically
    the node id) into their high bits. Span ids cross the wire in RPC
    envelopes; when each daemon is a separate OS process the per-process
    counters would collide without this. The default namespace 0 leaves
    ids as bare small ints (single-process simulation). *)

(** {1 Emitting} *)

val root :
  engine:Ksim.Engine.t -> ?node:int -> ?attrs:attrs -> string -> span
(** Start a top-level span; {!null} when tracing is disabled. *)

val child :
  engine:Ksim.Engine.t -> ?node:int -> ?attrs:attrs -> parent:span ->
  string -> span
(** Start a span under [parent]. A [null] parent yields a fresh root, so
    background fibers get their own traces. {!null} when disabled. *)

val finish : engine:Ksim.Engine.t -> ?attrs:attrs -> span -> unit
(** Close a span (no-op on {!null}). [attrs] typically carry a status. *)

val event :
  engine:Ksim.Engine.t -> ?node:int -> ?span:span -> ?attrs:attrs ->
  string -> unit
(** Emit a point event, attached to [span] when given. *)

val with_span :
  engine:Ksim.Engine.t -> ?node:int -> ?attrs:attrs -> parent:span ->
  string -> (span -> 'a) -> 'a
(** [child] + run + always [finish]. *)

(** {1 Built-in sinks} *)

module Ring : sig
  (** Bounded in-memory buffer of the most recent records (tests). *)

  type t

  val create : ?capacity:int -> unit -> t
  (** Default capacity 65536 records. *)

  val install : t -> sink
  val records : t -> record list
  (** Oldest first. *)

  val length : t -> int
  val clear : t -> unit
end

val pretty_sink : Format.formatter -> record -> unit
(** Human-readable one-line-per-record rendering (demos). *)

val jsonl_sink : Format.formatter -> record -> unit
(** One JSON object per line (benches / offline analysis). *)

(** {1 Offline analysis over collected records} *)

type span_info = {
  span_id : int;
  span_parent : int;
  span_node : int;
  span_name : string;
  span_start : Ksim.Time.t;
  span_finish : Ksim.Time.t option;  (** [None]: never closed *)
  span_attrs : attrs;                (** start attrs @ end attrs *)
}

val spans : record list -> span_info list
(** All spans started in the record stream, in start order. *)

val find_spans : record list -> name:string -> span_info list

val ancestors : span_info list -> int -> int list
(** Parent chain of a span id, nearest first (excludes the id itself). *)

val is_descendant : span_info list -> ancestor:int -> int -> bool

val events_under : record list -> ancestor:int -> record list
(** [Event] records whose span lies in [ancestor]'s subtree (or is
    [ancestor] itself). *)

val phase_breakdown : record list -> (string * int * float) list
(** Span durations grouped by span name: (name, count, total ms), sorted
    by total descending. Unfinished spans are skipped. *)
