module Policy = Krpc.Policy

type node_id = Knet.Topology.node_id

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
  in_flight : int;
  atoms : int;
  bytes_sent : int;
  by_kind : (string * int) list;
}

module Faults = struct
  type t = {
    crash : node_id -> unit;
    recover : node_id -> unit;
    is_up : node_id -> bool;
    partition : node_id list -> node_id list -> unit;
    heal : unit -> unit;
    reachable : node_id -> node_id -> bool;
  }
end

module type PROTOCOL = sig
  type request
  type response

  val request_size : request -> int
  val response_size : response -> int
  val request_kind : request -> string
end

module type WIRE = sig
  include PROTOCOL

  val encode_request : Kutil.Codec.encoder -> request -> unit
  val decode_request : Kutil.Codec.decoder -> request
  val encode_response : Kutil.Codec.encoder -> response -> unit
  val decode_response : Kutil.Codec.decoder -> response
end

module Make (P : PROTOCOL) = struct
  type handler =
    src:node_id -> span:int -> P.request -> reply:(P.response -> unit) -> unit

  module type S = sig
    type t

    val engine : t -> Ksim.Engine.t
    val topology : t -> Knet.Topology.t
    val set_server : t -> node_id -> handler -> unit

    val call :
      t ->
      src:node_id ->
      dst:node_id ->
      policy:Policy.t ->
      span:int ->
      P.request ->
      (P.response, [ `Timeout | `Unreachable ]) result

    val notify :
      t ->
      src:node_id ->
      dst:node_id ->
      span:int ->
      coalesce:bool ->
      P.request ->
      unit

    val set_coalescing : t -> bool -> unit
    val coalescing : t -> bool
    val stats : t -> stats
    val reset_stats : t -> unit
    val pending_calls : t -> int
    val faults : t -> Faults.t option
  end

  type t = Pack : (module S with type t = 'a) * 'a -> t

  let pack (type a) (module B : S with type t = a) (v : a) = Pack ((module B), v)

  let engine (Pack ((module B), v)) = B.engine v
  let topology (Pack ((module B), v)) = B.topology v
  let set_server (Pack ((module B), v)) node h = B.set_server v node h

  let call (Pack ((module B), v)) ~src ~dst ?(policy = Policy.default)
      ?(span = 0) req =
    B.call v ~src ~dst ~policy ~span req

  let notify (Pack ((module B), v)) ~src ~dst ?(span = 0) ?(coalesce = false)
      req =
    B.notify v ~src ~dst ~span ~coalesce req

  let set_coalescing (Pack ((module B), v)) on = B.set_coalescing v on
  let coalescing (Pack ((module B), v)) = B.coalescing v
  let stats (Pack ((module B), v)) = B.stats v
  let reset_stats (Pack ((module B), v)) = B.reset_stats v
  let pending_calls (Pack ((module B), v)) = B.pending_calls v
  let faults (Pack ((module B), v)) = B.faults v
end
