(** The transport seam: the network API Khazana daemons program against.

    Daemon, client and service code never names a concrete messaging engine;
    it holds a first-class {!Make.t} and speaks through the {!Make.S}
    operations — request/response {!Make.call} with a retry {!Policy},
    one-way {!Make.notify} with optional same-instant coalescing, a server
    handler per node, traffic {!stats}, and failure injection as an
    {e optional} capability ({!Make.faults} is [None] on backends that
    cannot simulate failures at all).

    Two backends implement the seam, and both expose {!Make.faults}:
    - {!Transport_sim} — the deterministic simulated network
      ({!Knet.Network} under {!Krpc.Rpc}), every node sharing one virtual
      clock; injection edits global network state.
    - {!Transport_unix} — real length-prefixed frames over Unix-domain
      sockets, one endpoint (and one {!Ksim.Engine.t} scheduler, driven
      against the wall clock) per OS process; injection edits the local
      endpoint's frame filter, and {e genuine} failures (a dead peer, a
      refused dial) additionally surface as [`Unreachable] calls.

    The scheduling dependency is explicit: every backend exposes the
    {!Ksim.Engine.t} its fibers and timers run on. Under simulation that
    engine is shared by the whole system and time is virtual; under the
    Unix backend each process owns one and its clock tracks real elapsed
    time, so the same fiber-blocking daemon code runs unchanged. *)

module Policy = Krpc.Policy

type node_id = Knet.Topology.node_id

(** Backend-independent traffic counters (same shape as
    {!Knet.Network.Make.stats}). [sent = delivered + dropped + in_flight]
    holds for the simulated backend; real backends count each endpoint's
    local view, so the books balance per process pair, not globally. *)
type stats = {
  sent : int;        (** envelopes handed to the wire by this vantage *)
  delivered : int;   (** envelopes dispatched to a local handler *)
  dropped : int;     (** lost to crash/partition/loss or a dead socket *)
  in_flight : int;   (** scheduled but undelivered (0 on real backends) *)
  atoms : int;       (** logical messages: batch items count separately *)
  bytes_sent : int;
  by_kind : (string * int) list;  (** logical messages per kind, sorted *)
}

(** Failure injection, for backends whose failures are simulated. *)
module Faults : sig
  type t = {
    crash : node_id -> unit;
    recover : node_id -> unit;
    is_up : node_id -> bool;
    partition : node_id list -> node_id list -> unit;
    heal : unit -> unit;
    reachable : node_id -> node_id -> bool;
  }
end

(** What the simulated backend needs of a protocol: size and kind
    accounting only (messages travel as OCaml values). *)
module type PROTOCOL = sig
  type request
  type response

  val request_size : request -> int
  val response_size : response -> int
  val request_kind : request -> string
end

(** What a real backend needs: a protocol that also round-trips through
    bytes ({!Kutil.Codec} wire format). *)
module type WIRE = sig
  include PROTOCOL

  val encode_request : Kutil.Codec.encoder -> request -> unit
  val decode_request : Kutil.Codec.decoder -> request
  val encode_response : Kutil.Codec.encoder -> response -> unit
  val decode_response : Kutil.Codec.decoder -> response
end

module Make (P : PROTOCOL) : sig
  type handler =
    src:node_id -> span:int -> P.request -> reply:(P.response -> unit) -> unit
  (** A node's server. [span] is the caller's trace span id (0 untraced).
      The handler may reply immediately, capture [reply] and resolve it
      later from a fiber, or never reply (the caller then times out). *)

  (** The capability a backend must provide. All operations are named-
      argument total functions; [call] is fiber-blocking and must run in a
      {!Ksim.Fiber} on the backend's engine. *)
  module type S = sig
    type t

    val engine : t -> Ksim.Engine.t
    (** The scheduler this endpoint's fibers, timers and deliveries run
        on. Shared system-wide under simulation; per-process for real
        backends. *)

    val topology : t -> Knet.Topology.t
    (** Cluster layout metadata (node count, cluster membership). Real
        backends carry it for the same bookkeeping; its link profiles are
        simply not consulted. *)

    val set_server : t -> node_id -> handler -> unit

    val call :
      t ->
      src:node_id ->
      dst:node_id ->
      policy:Policy.t ->
      span:int ->
      P.request ->
      (P.response, [ `Timeout | `Unreachable ]) result
    (** [`Timeout] is silence (every attempt's reply window elapsed);
        [`Unreachable] is positive evidence the peer is gone right now —
        the final attempt's send itself failed (dead socket, refused
        dial, or an injected fault filtered the frame at send time). *)

    val notify :
      t ->
      src:node_id ->
      dst:node_id ->
      span:int ->
      coalesce:bool ->
      P.request ->
      unit

    val set_coalescing : t -> bool -> unit
    val coalescing : t -> bool
    val stats : t -> stats
    val reset_stats : t -> unit
    val pending_calls : t -> int

    val faults : t -> Faults.t option
    (** [None] only on backends with no failure injection at all. Real
        backends interpret the operations as edits to the {e local}
        endpoint's frame filter; apply them at every endpoint to recover
        the simulated backend's global semantics. *)
  end

  type t = Pack : (module S with type t = 'a) * 'a -> t
  (** A first-class transport: any backend packed with its value. *)

  val pack : (module S with type t = 'a) -> 'a -> t

  (** {1 Forwarders} — the API daemon code actually calls. *)

  val engine : t -> Ksim.Engine.t
  val topology : t -> Knet.Topology.t
  val set_server : t -> node_id -> handler -> unit

  val call :
    t ->
    src:node_id ->
    dst:node_id ->
    ?policy:Policy.t ->
    ?span:int ->
    P.request ->
    (P.response, [ `Timeout | `Unreachable ]) result
  (** Fiber-blocking request/response under [policy] (default
      {!Policy.default}). *)

  val notify :
    t ->
    src:node_id ->
    dst:node_id ->
    ?span:int ->
    ?coalesce:bool ->
    P.request ->
    unit
  (** One-way message; with [~coalesce:true] (default false) it may share
      a batch envelope with other same-instant messages to [dst]. *)

  val set_coalescing : t -> bool -> unit
  val coalescing : t -> bool
  val stats : t -> stats
  val reset_stats : t -> unit
  val pending_calls : t -> int
  val faults : t -> Faults.t option
end
