module Make (P : Transport.PROTOCOL) = struct
  module T = Transport.Make (P)
  module Rpc = Krpc.Rpc.Make (P)
  module Net = Rpc.Net

  module Backend = struct
    type t = Rpc.t

    let engine = Rpc.engine
    let topology t = Net.topology (Rpc.net t)
    let set_server = Rpc.set_server

    (* The simulated network never refuses a send — a frame to a crashed or
       partitioned node leaves and silently dies — so calls here only ever
       time out; [`Unreachable] is the real backend's row. *)
    let call t ~src ~dst ~policy ~span req =
      (Rpc.call t ~src ~dst ~policy ~span req
        :> (P.response, [ `Timeout | `Unreachable ]) result)

    let notify t ~src ~dst ~span ~coalesce req =
      Rpc.notify t ~src ~dst ~span ~coalesce req

    let set_coalescing = Rpc.set_coalescing
    let coalescing = Rpc.coalescing

    let stats t =
      let s = Net.stats (Rpc.net t) in
      {
        Transport.sent = s.Net.sent;
        delivered = s.Net.delivered;
        dropped = s.Net.dropped;
        in_flight = s.Net.in_flight;
        atoms = s.Net.atoms;
        bytes_sent = s.Net.bytes_sent;
        by_kind = s.Net.by_kind;
      }

    let reset_stats t = Net.reset_stats (Rpc.net t)
    let pending_calls = Rpc.pending_calls

    let faults t =
      let net = Rpc.net t in
      Some
        {
          Transport.Faults.crash = Net.crash net;
          recover = Net.recover net;
          is_up = Net.is_up net;
          partition = Net.partition net;
          heal = (fun () -> Net.heal net);
          reachable = Net.reachable net;
        }
  end

  let pack rpc = T.pack (module Backend) rpc

  let create engine topology =
    let rpc = Rpc.create engine topology in
    (pack rpc, rpc)
end
