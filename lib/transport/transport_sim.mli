(** The simulated backend of the {!Transport} seam.

    A thin adapter re-homing {!Krpc.Rpc} (and under it {!Knet.Network})
    behind {!Transport.Make.S}: same engine, same envelopes, same
    coalescing and accounting — a system built on the packed transport is
    event-for-event identical to one built on [Krpc.Rpc] directly. The one
    capability unique to this backend, failure injection, is exposed
    through {!Transport.Make.S.faults} (always [Some _] here). *)

module Make (P : Transport.PROTOCOL) : sig
  module T : module type of Transport.Make (P)
  module Rpc : module type of Krpc.Rpc.Make (P)
  module Net = Rpc.Net

  val create : Ksim.Engine.t -> Knet.Topology.t -> T.t * Rpc.t
  (** Build the simulated engine over the topology; returns both the packed
      transport (for daemons) and the raw {!Rpc.t} (for harnesses that need
      the concrete network: trace taps, byte-level counters). *)

  val pack : Rpc.t -> T.t
end
