module Codec = Kutil.Codec
module Policy = Krpc.Policy

let frame_header = 4

type incoming = {
  in_fd : Unix.file_descr;
  in_buf : Buffer.t;
  mutable in_src : int option;
      (* learned from the first decoded frame; lets [sever] target the
         connection a given peer speaks on *)
}

(* Seeded frame-level fault shim: probabilities roll per frame from a
   dedicated deterministic stream, so a given seed always mutilates the
   same frames in the same order. *)
type frame_faults = { drop : float; duplicate : float; delay : float }

let no_frame_faults = { drop = 0.0; duplicate = 0.0; delay = 0.0 }

(* Re-dial pacing for a peer whose connection died. [ever] distinguishes
   start-up (peer may simply not have bound yet: wait politely) from a
   genuine loss (fail fast, back off between dial attempts). *)
type dial = {
  d_backoff : Kutil.Backoff.t;
  mutable d_next : float;  (* wall-clock time before which we won't dial *)
  mutable d_ever : bool;   (* some connect to this peer has succeeded *)
}

module Make (W : Transport.WIRE) = struct
  module T = Transport.Make (W)

  (* Envelope alphabet, mirroring {!Krpc.Rpc.Make.Msg} on real bytes. *)
  type msg =
    | Request of { call : int; span : int; body : W.request }
    | Response of { call : int; body : W.response }
    | Oneway of { span : int; body : W.request }
    | Batch of { items : (int * W.request) list }

  type t = {
    id : int;
    topology : Knet.Topology.t;
    dir : string;
    engine : Ksim.Engine.t;
    start : float;  (* wall-clock origin of the engine's virtual clock *)
    listen_fd : Unix.file_descr;
    outgoing : (int, Unix.file_descr) Hashtbl.t;
    mutable incoming : incoming list;
    mutable server : T.handler option;
    pending : (int, W.response Ksim.Promise.t) Hashtbl.t;
    mutable next_call : int;
    mutable coalescing : bool;
    (* Same-instant coalescing queues, keyed by destination (the source is
       always this endpoint); reverse send order, flushed at the end of the
       engine instant that first filled them. *)
    queues : (int, (int * W.request) list ref) Hashtbl.t;
    mutable sent : int;
    mutable delivered : int;
    mutable dropped : int;
    mutable atoms : int;
    mutable bytes_sent : int;
    by_kind : (string, int) Hashtbl.t;
    mutable closed : bool;
    (* injected-fault state; every filter is this endpoint's local view *)
    mutable frng : Kutil.Rng.t;
    mutable frame_faults : frame_faults;
    mutable self_down : bool;
    peer_down : (int, unit) Hashtbl.t;
    mutable partitions : (int list * int list) list;
    dials : (int, dial) Hashtbl.t;
  }

  let sock_path dir node =
    Filename.concat dir (Printf.sprintf "node-%d.sock" node)

  let elapsed t = int_of_float ((Unix.gettimeofday () -. t.start) *. 1e9)

  let id t = t.id
  let engine t = t.engine
  let topology t = t.topology

  (* ---------------- frames ---------------- *)

  let tag_request = 1
  and tag_response = 2
  and tag_oneway = 3
  and tag_batch = 4

  let encode_msg ~src msg =
    let enc = Codec.encoder () in
    (match msg with
     | Request { call; span; body } ->
       Codec.u8 enc tag_request;
       Codec.u32 enc src;
       Codec.int enc call;
       Codec.int enc span;
       W.encode_request enc body
     | Response { call; body } ->
       Codec.u8 enc tag_response;
       Codec.u32 enc src;
       Codec.int enc call;
       W.encode_response enc body
     | Oneway { span; body } ->
       Codec.u8 enc tag_oneway;
       Codec.u32 enc src;
       Codec.int enc span;
       W.encode_request enc body
     | Batch { items } ->
       Codec.u8 enc tag_batch;
       Codec.u32 enc src;
       Codec.list enc
         (fun (span, body) ->
           Codec.int enc span;
           W.encode_request enc body)
         items);
    let payload = Codec.to_bytes enc in
    let n = Bytes.length payload in
    let frame = Bytes.create (frame_header + n) in
    Bytes.set_int32_be frame 0 (Int32.of_int n);
    Bytes.blit payload 0 frame frame_header n;
    frame

  let decode_payload payload =
    let dec = Codec.decoder payload in
    let tag = Codec.read_u8 dec in
    let src = Codec.read_u32 dec in
    let msg =
      if tag = tag_request then
        let call = Codec.read_int dec in
        let span = Codec.read_int dec in
        Request { call; span; body = W.decode_request dec }
      else if tag = tag_response then
        let call = Codec.read_int dec in
        Response { call; body = W.decode_response dec }
      else if tag = tag_oneway then
        let span = Codec.read_int dec in
        Oneway { span; body = W.decode_request dec }
      else if tag = tag_batch then
        Batch
          {
            items =
              Codec.read_list dec (fun () ->
                  let span = Codec.read_int dec in
                  (span, W.decode_request dec));
          }
      else raise (Codec.Decode_error "Transport_unix: unknown frame tag")
    in
    (src, msg)

  (* ---------------- accounting ---------------- *)

  let account_kind t k =
    t.atoms <- t.atoms + 1;
    Hashtbl.replace t.by_kind k
      (1 + Option.value (Hashtbl.find_opt t.by_kind k) ~default:0)

  let account_sent t msg frame =
    t.sent <- t.sent + 1;
    t.bytes_sent <- t.bytes_sent + Bytes.length frame;
    match msg with
    | Request { body; _ } | Oneway { body; _ } ->
      account_kind t (W.request_kind body)
    | Response _ -> account_kind t "response"
    | Batch { items } ->
      List.iter (fun (_, body) -> account_kind t (W.request_kind body)) items

  (* ---------------- sockets ---------------- *)

  let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

  let drop_outgoing t dst =
    match Hashtbl.find_opt t.outgoing dst with
    | Some fd ->
      Hashtbl.remove t.outgoing dst;
      close_quietly fd
    | None -> ()

  (* Tear down every connection this endpoint shares with [dst]: the
     cached outgoing socket and any accepted connection whose first frame
     identified [dst] as the speaker. The next send re-dials. *)
  let sever t dst =
    drop_outgoing t dst;
    t.incoming <-
      List.filter
        (fun c ->
          match c.in_src with
          | Some s when s = dst ->
            close_quietly c.in_fd;
            false
          | _ -> true)
        t.incoming

  (* ---------------- injected faults (local view) ---------------- *)

  (* A real process cannot reach into a peer, so fault injection here is
     each endpoint's local belief: frames to or from a node marked down,
     or across a declared partition, are discarded at this endpoint's
     edge. Single-process harnesses apply the same calls to every
     endpoint and get the simulated backend's global semantics. *)

  let across (l, r) a b =
    (List.mem a l && List.mem b r) || (List.mem a r && List.mem b l)

  let node_down t n =
    if n = t.id then t.self_down else Hashtbl.mem t.peer_down n

  let fault_blocked t a b =
    node_down t a || node_down t b
    || List.exists (fun p -> across p a b) t.partitions

  let fault_crash t n =
    if n = t.id then begin
      t.self_down <- true;
      (* drop live connections so recovery exercises the re-dial path *)
      List.iter (fun d -> sever t d)
        (Hashtbl.fold (fun k _ acc -> k :: acc) t.outgoing [])
    end
    else begin
      Hashtbl.replace t.peer_down n ();
      sever t n
    end

  let fault_recover t n =
    if n = t.id then t.self_down <- false else Hashtbl.remove t.peer_down n

  (* ---------------- dialing ---------------- *)

  (* How long a send will politely block waiting for a peer that has
     never yet answered (process start is not synchronised). After first
     contact the wait drops to zero: a dead socket fails fast and re-dial
     attempts are paced by exponential backoff instead. *)
  let connect_grace = 10.0 (* seconds *)
  let dial_backoff_base = Ksim.Time.ms 50
  let dial_backoff_cap = Ksim.Time.ms 1000

  let dial_state t dst =
    match Hashtbl.find_opt t.dials dst with
    | Some d -> d
    | None ->
      let d =
        {
          d_backoff =
            Kutil.Backoff.make ~rng:t.frng ~base:dial_backoff_base
              ~cap:dial_backoff_cap ();
          d_next = 0.0;
          d_ever = false;
        }
      in
      Hashtbl.replace t.dials dst d;
      d

  let connect_out t dst =
    match Hashtbl.find_opt t.outgoing dst with
    | Some fd -> Some fd
    | None ->
      let d = dial_state t dst in
      if Unix.gettimeofday () < d.d_next then None
      else begin
        let path = sock_path t.dir dst in
        let fail () =
          d.d_next <-
            Unix.gettimeofday ()
            +. (float_of_int (Kutil.Backoff.next d.d_backoff) /. 1e9);
          None
        in
        let deadline = Unix.gettimeofday () +. connect_grace in
        let rec go () =
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          match Unix.connect fd (Unix.ADDR_UNIX path) with
          | () ->
            Hashtbl.replace t.outgoing dst fd;
            d.d_ever <- true;
            d.d_next <- 0.0;
            Kutil.Backoff.reset d.d_backoff;
            Some fd
          | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _) ->
            close_quietly fd;
            if d.d_ever then fail ()
            else if Unix.gettimeofday () > deadline then fail ()
            else begin
              Unix.sleepf 0.02;
              go ()
            end
          | exception Unix.Unix_error _ ->
            close_quietly fd;
            fail ()
        in
        go ()
      end

  let write_all fd b =
    let n = Bytes.length b in
    let rec go off =
      if off < n then go (off + Unix.write fd b off (n - off))
    in
    go 0

  (* ---------------- delivery ---------------- *)

  (* Local sends skip the socket but still round-trip through the codec, so
     a self-message exercises exactly the bytes a remote peer would see. *)
  let local_delay = Ksim.Time.us 5

  (* Push one encoded frame at [dst] right now. [false] means the send
     itself failed — no connection and the dial was refused, or the write
     hit a dead socket (peer vanished: evict the cached connection so the
     next send re-dials). Either way the frame is counted dropped. *)
  let send_frame t ~dst frame =
    match connect_out t dst with
    | None ->
      t.dropped <- t.dropped + 1;
      false
    | Some fd -> (
      try
        write_all fd frame;
        true
      with Unix.Unix_error _ ->
        drop_outgoing t dst;
        t.dropped <- t.dropped + 1;
        false)

  (* Transmit = encode, roll the fault shim, then hand to the socket (or
     the local loopback). Returns [false] only on positive evidence the
     peer is unreachable right now; shim losses return [true] because the
     frame left this endpoint as far as the caller can tell. *)
  let rec transmit t ~dst msg =
    let frame = encode_msg ~src:t.id msg in
    account_sent t msg frame;
    if fault_blocked t t.id dst then begin
      t.dropped <- t.dropped + 1;
      false
    end
    else begin
      let ff = t.frame_faults in
      if ff.drop > 0.0 && Kutil.Rng.float t.frng 1.0 < ff.drop then begin
        t.dropped <- t.dropped + 1;
        true (* silently lost in flight: the caller sees only silence *)
      end
      else begin
        let delay_ns =
          if ff.delay > 0.0 then
            int_of_float (Kutil.Rng.float t.frng ff.delay *. 1e9)
          else 0
        in
        let copies =
          if ff.duplicate > 0.0 && Kutil.Rng.float t.frng 1.0 < ff.duplicate
          then 2
          else 1
        in
        let push () =
          if dst = t.id then begin
            let payload =
              Bytes.sub frame frame_header (Bytes.length frame - frame_header)
            in
            ignore
              (Ksim.Engine.schedule t.engine ~after:(local_delay + delay_ns)
                 (fun () -> deliver_payload t payload));
            true
          end
          else if delay_ns > 0 then begin
            ignore
              (Ksim.Engine.schedule t.engine ~after:delay_ns (fun () ->
                   ignore (send_frame t ~dst frame)));
            true
          end
          else send_frame t ~dst frame
        in
        let ok = push () in
        if copies > 1 then begin
          (* duplicated on the wire: more bytes, same logical message *)
          t.bytes_sent <- t.bytes_sent + Bytes.length frame;
          ignore (push ())
        end;
        ok
      end
    end

  (* Decode and dispatch one received payload, filtering frames whose
     speaker this endpoint currently believes down or partitioned away. *)
  and deliver_payload t payload =
    match decode_payload payload with
    | src, msg ->
      if fault_blocked t src t.id then t.dropped <- t.dropped + 1
      else deliver t ~src msg
    | exception Codec.Decode_error _ -> t.dropped <- t.dropped + 1

  and deliver t ~src msg =
    match msg with
    | Request { call; span; body } -> (
      match t.server with
      | None -> t.dropped <- t.dropped + 1
      | Some server ->
        t.delivered <- t.delivered + 1;
        let reply resp =
          ignore (transmit t ~dst:src (Response { call; body = resp }))
        in
        server ~src ~span body ~reply)
    | Response { call; body } -> (
      t.delivered <- t.delivered + 1;
      match Hashtbl.find_opt t.pending call with
      | None -> () (* late reply after timeout: drop *)
      | Some promise ->
        Hashtbl.remove t.pending call;
        ignore (Ksim.Promise.try_resolve promise body))
    | Oneway { span; body } -> (
      match t.server with
      | None -> t.dropped <- t.dropped + 1
      | Some server ->
        t.delivered <- t.delivered + 1;
        server ~src ~span body ~reply:(fun _ -> ()))
    | Batch { items } -> (
      match t.server with
      | None -> t.dropped <- t.dropped + 1
      | Some server ->
        t.delivered <- t.delivered + 1;
        List.iter
          (fun (span, body) -> server ~src ~span body ~reply:(fun _ -> ()))
          items)

  (* Incoming frames dispatch from inside an engine event, so handlers run
     in the same context as under simulation (and fibers they resume are
     driven by the engine, not by the socket pump's stack). *)
  let dispatch_payload t payload =
    ignore
      (Ksim.Engine.schedule t.engine ~after:0 (fun () ->
           deliver_payload t payload))

  (* ---------------- socket pump ---------------- *)

  let accept_all t =
    let rec go () =
      match Unix.accept t.listen_fd with
      | fd, _ ->
        Unix.set_nonblock fd;
        t.incoming <-
          { in_fd = fd; in_buf = Buffer.create 4096; in_src = None }
          :: t.incoming;
        go ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (EINTR, _, _) -> go ()
    in
    go ()

  (* Returns [false] when the connection is gone and should be removed. *)
  let read_into t c =
    let chunk = Bytes.create 65536 in
    let rec go () =
      match Unix.read c.in_fd chunk 0 (Bytes.length chunk) with
      | 0 -> false
      | n ->
        Buffer.add_subbytes c.in_buf chunk 0 n;
        go ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> true
      | exception Unix.Unix_error (EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> false
    in
    let alive = go () in
    (* Extract every complete length-prefixed frame buffered so far. *)
    let data = Buffer.to_bytes c.in_buf in
    let len = Bytes.length data in
    let pos = ref 0 in
    let continue = ref true in
    while !continue && !pos + frame_header <= len do
      let n = Int32.to_int (Bytes.get_int32_be data !pos) in
      if n < 0 || !pos + frame_header + n > len then continue := false
      else begin
        let payload = Bytes.sub data (!pos + frame_header) n in
        (* Every frame begins [u8 tag][u32 src] (see [encode_msg]); peek
           the src so [sever] can find the connection a peer speaks on. *)
        if c.in_src = None && n >= 5 then
          c.in_src <- Some (Int32.to_int (Bytes.get_int32_be payload 1));
        dispatch_payload t payload;
        pos := !pos + frame_header + n
      end
    done;
    if !pos > 0 then begin
      Buffer.clear c.in_buf;
      Buffer.add_subbytes c.in_buf data !pos (len - !pos)
    end;
    if not alive then close_quietly c.in_fd;
    alive

  (* One scheduler-and-sockets turn: run every engine event due by the wall
     clock, sleep in select until the sockets speak or the next timer is
     due, ingest frames, run the engine again. *)
  let pump ?(max_wait = 0.05) t =
    if t.closed then invalid_arg "Transport_unix.pump: endpoint closed";
    Ksim.Engine.run ~until:(elapsed t) t.engine;
    let timeout =
      match Ksim.Engine.next_at t.engine with
      | Some at ->
        let now = elapsed t in
        if at <= now then 0.0
        else Float.min max_wait (float_of_int (at - now) /. 1e9)
      | None -> max_wait
    in
    let fds = t.listen_fd :: List.map (fun c -> c.in_fd) t.incoming in
    (match Unix.select fds [] [] timeout with
     | ready, _, _ ->
       if List.memq t.listen_fd ready then accept_all t;
       if ready <> [] then
         t.incoming <-
           List.filter
             (fun c -> if List.memq c.in_fd ready then read_into t c else true)
             t.incoming
     | exception Unix.Unix_error (EINTR, _, _) -> ());
    Ksim.Engine.run ~until:(elapsed t) t.engine

  (* ---------------- the Transport.S operations ---------------- *)

  let set_server t node h =
    if node <> t.id then
      invalid_arg "Transport_unix.set_server: not the local node";
    t.server <- Some h

  let require_local t src op =
    if src <> t.id then
      invalid_arg ("Transport_unix." ^ op ^ ": src must be the local node")

  let call t ~src ~dst ~policy ~span request =
    require_local t src "call";
    let attempt_timeout = Policy.timeout_source policy in
    let attempts = policy.Policy.attempts in
    if attempts <= 0 then
      invalid_arg "Transport_unix.call: policy attempts must be positive";
    let rec attempt n =
      if n <= 0 then Error `Timeout
      else begin
        let call_id = t.next_call in
        t.next_call <- t.next_call + 1;
        let promise = Ksim.Promise.create () in
        Hashtbl.replace t.pending call_id promise;
        if not (transmit t ~dst (Request { call = call_id; span; body = request }))
        then begin
          (* The send itself failed: dead socket or refused dial. Don't
             burn a full reply window waiting for an answer that never
             left — pause briefly (the peer may be rebinding) and retry,
             or report the positive evidence if attempts are spent. *)
          Hashtbl.remove t.pending call_id;
          if n = 1 then Error `Unreachable
          else begin
            Ksim.Fiber.sleep (min (attempt_timeout ()) (Ksim.Time.ms 100));
            attempt (n - 1)
          end
        end
        else
          match
            Ksim.Fiber.await_timeout t.engine promise
              ~timeout:(attempt_timeout ())
          with
          | Some resp -> Ok resp
          | None ->
            Hashtbl.remove t.pending call_id;
            attempt (n - 1)
      end
    in
    attempt attempts

  let flush_queue t ~dst =
    match Hashtbl.find_opt t.queues dst with
    | None -> ()
    | Some q ->
      Hashtbl.remove t.queues dst;
      (match List.rev !q with
       | [] -> ()
       | [ (span, body) ] -> ignore (transmit t ~dst (Oneway { span; body }))
       | items -> ignore (transmit t ~dst (Batch { items })))

  let notify t ~src ~dst ~span ~coalesce request =
    require_local t src "notify";
    if coalesce && t.coalescing then begin
      match Hashtbl.find_opt t.queues dst with
      | Some q -> q := (span, request) :: !q
      | None ->
        Hashtbl.replace t.queues dst (ref [ (span, request) ]);
        ignore
          (Ksim.Engine.schedule t.engine ~after:0 (fun () -> flush_queue t ~dst))
    end
    else ignore (transmit t ~dst (Oneway { span; body = request }))

  let set_coalescing t on =
    if not on then
      List.iter
        (fun dst -> flush_queue t ~dst)
        (Hashtbl.fold (fun k _ acc -> k :: acc) t.queues []);
    t.coalescing <- on

  let coalescing t = t.coalescing

  let stats t =
    let by_kind =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.by_kind []
      |> List.sort compare
    in
    {
      Transport.sent = t.sent;
      delivered = t.delivered;
      dropped = t.dropped;
      in_flight = 0;
      atoms = t.atoms;
      bytes_sent = t.bytes_sent;
      by_kind;
    }

  let reset_stats t =
    t.sent <- 0;
    t.delivered <- 0;
    t.dropped <- 0;
    t.atoms <- 0;
    t.bytes_sent <- 0;
    Hashtbl.reset t.by_kind

  let pending_calls t = Hashtbl.length t.pending

  (* Fault injection over real sockets: each operation edits this
     endpoint's local filter (and severs live connections where the
     simulated equivalent would kill them), so the conformance suite can
     drive both backends through one interface. *)
  let faults t =
    Some
      {
        Transport.Faults.crash = (fun n -> fault_crash t n);
        recover = (fun n -> fault_recover t n);
        is_up = (fun n -> not (node_down t n));
        partition =
          (fun l r -> t.partitions <- (l, r) :: t.partitions);
        heal = (fun () -> t.partitions <- []);
        reachable = (fun a b -> not (fault_blocked t a b));
      }

  let set_frame_faults t ?seed ?(drop = 0.0) ?(duplicate = 0.0)
      ?(delay = 0.0) () =
    (match seed with
     | Some s -> t.frng <- Kutil.Rng.create ~seed:s
     | None -> ());
    t.frame_faults <- { drop; duplicate; delay }

  let clear_frame_faults t = t.frame_faults <- no_frame_faults

  module Backend = struct
    type nonrec t = t

    let engine = engine
    let topology = topology
    let set_server = set_server
    let call = call
    let notify = notify
    let set_coalescing = set_coalescing
    let coalescing = coalescing
    let stats = stats
    let reset_stats = reset_stats
    let pending_calls = pending_calls
    let faults = faults
  end

  let pack t = T.pack (module Backend) t

  (* ---------------- lifecycle and driving ---------------- *)

  let create ?(seed = 42) ~dir ~id topology =
    if id < 0 || id >= Knet.Topology.node_count topology then
      invalid_arg "Transport_unix.create: bad node id";
    (* A peer that vanished mid-write must surface as EPIPE, not kill the
       process. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.set_nonblock listen_fd;
    let path = sock_path dir id in
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    Unix.bind listen_fd (Unix.ADDR_UNIX path);
    Unix.listen listen_fd 64;
    {
      id;
      topology;
      dir;
      engine = Ksim.Engine.create ~seed:(seed + id) ();
      start = Unix.gettimeofday ();
      listen_fd;
      outgoing = Hashtbl.create 8;
      incoming = [];
      server = None;
      pending = Hashtbl.create 32;
      next_call = 0;
      coalescing = true;
      queues = Hashtbl.create 8;
      sent = 0;
      delivered = 0;
      dropped = 0;
      atoms = 0;
      bytes_sent = 0;
      by_kind = Hashtbl.create 16;
      closed = false;
      frng = Kutil.Rng.create ~seed:(seed + (1000 * (id + 1)));
      frame_faults = no_frame_faults;
      self_down = false;
      peer_down = Hashtbl.create 4;
      partitions = [];
      dials = Hashtbl.create 8;
    }

  (* Drive a fiber to completion against the wall clock, pumping this
     endpoint (and [others], for single-process multi-endpoint harnesses)
     until its promise resolves. There is no quiescence-based deadlock
     detection here — real time keeps flowing — so liveness comes from the
     call policies' timeouts. *)
  let run_fiber ?(others = []) ?(name = "run_fiber") t f =
    let p = Ksim.Fiber.async t.engine ~name f in
    while not (Ksim.Promise.is_resolved p) do
      (* Work that needs no socket (a purely local operation) completes
         right here; only re-enter the blocking select while the fiber is
         genuinely waiting on the wire or a timer. *)
      Ksim.Engine.run ~until:(elapsed t) t.engine;
      if not (Ksim.Promise.is_resolved p) then begin
        pump ~max_wait:0.01 t;
        List.iter (fun o -> pump ~max_wait:0.0 o) others
      end
    done;
    Option.get (Ksim.Promise.peek p)

  let close t =
    if not t.closed then begin
      t.closed <- true;
      close_quietly t.listen_fd;
      Hashtbl.iter (fun _ fd -> close_quietly fd) t.outgoing;
      Hashtbl.reset t.outgoing;
      List.iter (fun c -> close_quietly c.in_fd) t.incoming;
      t.incoming <- [];
      try Unix.unlink (sock_path t.dir t.id) with Unix.Unix_error _ -> ()
    end
end
