(** The real backend of the {!Transport} seam: length-prefixed frames over
    Unix-domain sockets, one endpoint per OS process.

    Each endpoint owns a listening socket ([<dir>/node-<id>.sock]), lazily
    opened outgoing connections to peers, and a private {!Ksim.Engine.t}
    whose virtual clock is driven to track real elapsed time — so the same
    fiber-blocking daemon code that runs under simulation runs here with
    real-time semantics. Frames are a 4-byte big-endian length followed by
    a {!Kutil.Codec} payload; the envelope alphabet (request / response /
    oneway / batch) mirrors the simulated RPC layer's, so coalescing and
    per-kind accounting behave identically.

    Failure injection is not available ({!Transport.Make.S.faults} returns
    [None]): on this backend, a crashed peer is a dead socket. *)

module Make (W : Transport.WIRE) : sig
  module T : module type of Transport.Make (W)

  type t
  (** One process's endpoint. *)

  val create : ?seed:int -> dir:string -> id:Knet.Topology.node_id ->
    Knet.Topology.t -> t
  (** Bind [<dir>/node-<id>.sock] and build the endpoint with a fresh
      engine (rng seeded [seed + id], default seed 42). Ignores SIGPIPE
      process-wide: a peer that died mid-write must surface as an error on
      the write, not kill us. Connections to peers open lazily on first
      send, retrying for a few seconds to tolerate unsynchronised process
      start-up. *)

  val pack : t -> T.t
  (** View the endpoint through the transport seam. *)

  val id : t -> Knet.Topology.node_id
  val engine : t -> Ksim.Engine.t

  val pump : ?max_wait:float -> t -> unit
  (** One scheduler-and-sockets turn: run engine events due by the wall
      clock, select on the sockets for at most [max_wait] seconds (bounded
      tighter by the engine's next timer), ingest complete frames
      (dispatching each from inside an engine event), and run the engine
      again. A daemon process's main loop is [while running do pump t done]. *)

  val run_fiber : ?others:t list -> ?name:string -> t -> (unit -> 'a) -> 'a
  (** Spawn a fiber on the endpoint's engine and pump until it completes.
      [others] are sibling endpoints in the same process (single-process
      harnesses, e.g. the conformance suite) that must be pumped too or the
      conversation deadlocks. Liveness comes from call policies' timeouts:
      real time keeps flowing, there is no quiescence detection. *)

  val close : t -> unit
  (** Close all sockets and unlink the listening path. Idempotent. *)
end
