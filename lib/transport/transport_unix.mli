(** The real backend of the {!Transport} seam: length-prefixed frames over
    Unix-domain sockets, one endpoint per OS process.

    Each endpoint owns a listening socket ([<dir>/node-<id>.sock]), lazily
    opened outgoing connections to peers, and a private {!Ksim.Engine.t}
    whose virtual clock is driven to track real elapsed time — so the same
    fiber-blocking daemon code that runs under simulation runs here with
    real-time semantics. Frames are a 4-byte big-endian length followed by
    a {!Kutil.Codec} payload; the envelope alphabet (request / response /
    oneway / batch) mirrors the simulated RPC layer's, so coalescing and
    per-kind accounting behave identically.

    Two kinds of failure coexist on this backend. {e Genuine} failures —
    a peer process that died, a refused dial, a dead socket mid-write —
    surface as evicted connections, [Stats.dropped] frames and
    [`Unreachable] calls, with re-dials paced by {!Kutil.Backoff}.
    {e Injected} failures are a deterministic local filter over the frame
    layer: {!Transport.Make.S.faults} returns [Some _] whose operations
    edit this endpoint's view (frames to or from a "crashed" node, or
    across a declared partition, are discarded at this endpoint's edge),
    and {!Make.set_frame_faults} arms a seeded shim that drops, delays or
    duplicates individual frames. Single-process harnesses that apply the
    same fault calls to every endpoint recover the simulated backend's
    global semantics, so one conformance suite drives both. *)

module Make (W : Transport.WIRE) : sig
  module T : module type of Transport.Make (W)

  type t
  (** One process's endpoint. *)

  val create : ?seed:int -> dir:string -> id:Knet.Topology.node_id ->
    Knet.Topology.t -> t
  (** Bind [<dir>/node-<id>.sock] and build the endpoint with a fresh
      engine (rng seeded [seed + id], default seed 42). Ignores SIGPIPE
      process-wide: a peer that died mid-write must surface as an error on
      the write, not kill us. Connections to peers open lazily on first
      send; a never-yet-answering peer is awaited for a start-up grace
      period, while a peer that vanished after first contact fails fast
      and is re-dialed under exponential backoff. *)

  val pack : t -> T.t
  (** View the endpoint through the transport seam. *)

  val id : t -> Knet.Topology.node_id
  val engine : t -> Ksim.Engine.t

  val pump : ?max_wait:float -> t -> unit
  (** One scheduler-and-sockets turn: run engine events due by the wall
      clock, select on the sockets for at most [max_wait] seconds (bounded
      tighter by the engine's next timer), ingest complete frames
      (dispatching each from inside an engine event), and run the engine
      again. A daemon process's main loop is [while running do pump t done]. *)

  val run_fiber : ?others:t list -> ?name:string -> t -> (unit -> 'a) -> 'a
  (** Spawn a fiber on the endpoint's engine and pump until it completes.
      [others] are sibling endpoints in the same process (single-process
      harnesses, e.g. the conformance suite) that must be pumped too or the
      conversation deadlocks. Liveness comes from call policies' timeouts:
      real time keeps flowing, there is no quiescence detection. *)

  val close : t -> unit
  (** Close all sockets and unlink the listening path. Idempotent. *)

  (** {1 Fault injection}

      Deterministic, endpoint-local failure modes for tests and chaos
      harnesses. Topology-level injection (crash / partition) lives behind
      the seam's {!Transport.Make.S.faults} capability; the operations
      below are this backend's extras. *)

  val sever : t -> Knet.Topology.node_id -> unit
  (** Tear down every live connection shared with the peer — the cached
      outgoing socket and any accepted connection the peer speaks on — as
      if the TCP-level link died. Subsequent sends re-dial; the peer is
      {e not} marked down, so a rebound peer is reached again. *)

  val set_frame_faults :
    t ->
    ?seed:int ->
    ?drop:float ->
    ?duplicate:float ->
    ?delay:float ->
    unit ->
    unit
  (** Arm the seeded frame shim: each outgoing frame is independently
      dropped with probability [drop], duplicated on the wire with
      probability [duplicate], and delayed uniformly in [[0, delay]]
      seconds (defaults all zero). [seed] reseeds the shim's private rng
      so a run's mutilation sequence is reproducible. Shim drops count in
      [Stats.dropped] but still look like silence to callers ([`Timeout],
      not [`Unreachable]): the frame left the endpoint as far as the
      sender can tell. *)

  val clear_frame_faults : t -> unit
  (** Disarm the shim: back to faithful frame delivery. *)
end
