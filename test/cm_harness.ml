(* A network-free test harness for consistency-manager machines.

   One machine per node for a single shared page; messages queue in a list
   the test drains explicitly (in order, or in a seeded random order, to
   explore interleavings). Timers are collected and only fired when a test
   asks for it, so the fault-free properties can be checked strictly. *)

module Ctypes = Kconsistency.Types
module Machine = Kconsistency.Machine_intf

type t = {
  nodes : int list;
  machines : (int, Machine.packed) Hashtbl.t;
  mutable wire : (int * int * Ctypes.msg) list; (* src, dst, msg; in-flight *)
  mutable timers : (int * int) list;            (* node, timer id *)
  mutable granted : (int * int) list;           (* node, req *)
  mutable rejected : (int * int) list;
  mutable installed : (int * bytes) list;       (* node, data: last install *)
  mutable next_req : int;
  rng : Kutil.Rng.t;
}

let create ?(seed = 1) ~protocol ~home ~min_replicas ~nodes ~initial () =
  let machines = Hashtbl.create 8 in
  List.iter
    (fun node ->
      let cfg =
        {
          (Ctypes.default_config ~self:node ~home) with
          Ctypes.min_replicas;
          replica_targets = List.filter (fun n -> n <> home) nodes;
        }
      in
      let init =
        if node = home then Ctypes.Start_owner initial else Ctypes.Start_unknown
      in
      match Kconsistency.Registry.instantiate protocol cfg init with
      | Some m -> Hashtbl.replace machines node m
      | None -> failwith ("unknown protocol " ^ protocol))
    nodes;
  {
    nodes;
    machines;
    wire = [];
    timers = [];
    granted = [];
    rejected = [];
    installed = [];
    next_req = 0;
    rng = Kutil.Rng.create ~seed;
  }

let machine t node = Hashtbl.find t.machines node

let rec apply t node actions =
  List.iter
    (fun action ->
      match action with
      | Ctypes.Send (dst, msg) -> t.wire <- t.wire @ [ (node, dst, msg) ]
      | Ctypes.Grant req -> t.granted <- (node, req) :: t.granted
      | Ctypes.Reject (req, _) -> t.rejected <- (node, req) :: t.rejected
      | Ctypes.Install { data; _ } ->
        t.installed <- (node, data) :: List.remove_assoc node t.installed
      | Ctypes.Discard -> t.installed <- List.remove_assoc node t.installed
      | Ctypes.Start_timer { id; _ } -> t.timers <- (node, id) :: t.timers
      | Ctypes.Sharers_hint _ -> ())
    actions

and feed t node event = apply t node (Machine.handle_packed (machine t node) event)

(* Deliver the in-flight message at [index]. *)
let deliver_nth t index =
  match List.nth_opt t.wire index with
  | None -> false
  | Some (src, dst, msg) ->
    t.wire <- List.filteri (fun i _ -> i <> index) t.wire;
    feed t dst (Ctypes.Peer { src; msg });
    true

let deliver_one t = deliver_nth t 0
let deliver_random t = deliver_nth t (Kutil.Rng.int t.rng (max 1 (List.length t.wire)))

let rec drain ?(random = false) t =
  if t.wire <> [] then begin
    ignore (if random then deliver_random t else deliver_one t);
    drain ~random t
  end

(* Drop every in-flight message to or from a node (models its crash). *)
let drop_node t node =
  t.wire <- List.filter (fun (s, d, _) -> s <> node && d <> node) t.wire

let fire_all_timers t =
  let timers = t.timers in
  t.timers <- [];
  List.iter (fun (node, id) -> feed t node (Ctypes.Timeout id)) timers

let acquire t node mode =
  let req = t.next_req in
  t.next_req <- t.next_req + 1;
  feed t node (Ctypes.Acquire { req; mode });
  req

let release t node mode ~data = feed t node (Ctypes.Release { mode; data })
let is_granted t req = List.exists (fun (_, r) -> r = req) t.granted
let is_rejected t req = List.exists (fun (_, r) -> r = req) t.rejected

let acquire_sync ?(random = false) t node mode =
  let req = acquire t node mode in
  drain ~random t;
  if not (is_granted t req) then
    failwith
      (Printf.sprintf "acquire %s on n%d not granted"
         (Ctypes.mode_to_string mode) node);
  req

let locks t node = Machine.packed_locks_held (machine t node)
let state t node = Machine.packed_state_name (machine t node)
let has_copy t node = Machine.packed_has_valid_copy (machine t node)
let version t node = Machine.packed_version (machine t node)
let installed_data t node = List.assoc_opt node t.installed

(* ----------------------- Multi-page delivery ----------------------- *)

(* A multi-page conversation is several single-page harnesses (machines
   are strictly per page; pages never exchange messages). The two drain
   orders below model the wire-level difference RPC coalescing makes:
   per-page unicast interleaves pages arbitrarily, while a batch envelope
   lands every same-destination message in one consecutive burst. The
   machines must not care — see the equivalence test. *)

let multi_pending harnesses = List.exists (fun t -> t.wire <> []) harnesses

(* One message from each page that has one: the interleaved unicast order. *)
let deliver_interleaved harnesses =
  List.iter (fun t -> ignore (deliver_one t)) harnesses

(* Every in-flight message (across all pages) bound for the destination of
   the oldest in-flight message, delivered back to back: what the receiver
   of one batch envelope observes. *)
let deliver_batched harnesses =
  match List.find_opt (fun t -> t.wire <> []) harnesses with
  | None -> ()
  | Some first ->
    let _, dst, _ = List.hd first.wire in
    List.iter
      (fun t ->
        let mine, rest = List.partition (fun (_, d, _) -> d = dst) t.wire in
        t.wire <- rest;
        List.iter (fun (src, _, msg) -> feed t dst (Ctypes.Peer { src; msg })) mine)
      harnesses

let rec multi_drain ~batched harnesses =
  if multi_pending harnesses then begin
    if batched then deliver_batched harnesses
    else deliver_interleaved harnesses;
    multi_drain ~batched harnesses
  end

(* CREW safety: at most one write lock system-wide, never concurrent with
   any other lock on another node. *)
let crew_invariant_violation t =
  let holders =
    List.filter_map
      (fun node ->
        let readers, writer = locks t node in
        if readers > 0 || writer then Some (node, readers, writer) else None)
      t.nodes
  in
  let writers = List.filter (fun (_, _, w) -> w) holders in
  match writers with
  | [] -> None
  | [ (w, _, _) ] ->
    if List.exists (fun (n, _, _) -> n <> w) holders then
      Some
        (Printf.sprintf "writer on n%d concurrent with other lock holders" w)
    else None
  | _ -> Some "multiple concurrent writers"
